//! Cross-crate integration: every path through the pipeline must compute
//! the same tensor as the reference einsum oracle.
//!
//! The chain under test spans five crates: `octopi` (factorization) →
//! `tcr` (lowering + search space + mapping) → `gpusim` (functional
//! execution) and `cpusim` (real CPU executors), all validated against
//! `tensor`'s brute-force evaluator.

use barracuda::prelude::*;
use tensor::index::uniform_dims;

/// Workloads covering the benchmark families at validation-friendly sizes.
fn validation_workloads() -> Vec<Workload> {
    vec![
        kernels::eqn1(4),
        kernels::lg3(4, 3),
        kernels::lg3t(4, 3),
        kernels::tce_ex(3),
        kernels::nwchem_s1(2, 4),
        kernels::nwchem_d1(5, 4),
        kernels::nwchem_d2(8, 4),
        Workload::parse(
            "mv",
            "y[i] = Sum([j], A[i j] * x[j])",
            &uniform_dims(&["i", "j"], 7),
        )
        .unwrap(),
    ]
}

#[test]
fn tuned_kernels_match_oracle_on_every_family() {
    for w in validation_workloads() {
        let tuner = WorkloadTuner::build(&w);
        for arch in gpusim::arch::all_architectures() {
            let tuned = tuner.autotune(&arch, TuneParams::quick()).unwrap();
            let inputs = w.random_inputs(17);
            let expect = w.evaluate_reference(&inputs).unwrap();
            let got = tuned.execute(&w, &inputs).unwrap();
            for ((n1, t1), (n2, t2)) in expect.iter().zip(&got) {
                assert_eq!(n1, n2);
                assert!(
                    t1.approx_eq(t2, 1e-10),
                    "{} on {} produced a wrong {}",
                    w.name,
                    arch.name,
                    n1
                );
            }
        }
    }
}

#[test]
fn cpu_executors_match_oracle_on_every_family() {
    for w in validation_workloads() {
        let inputs = w.random_inputs(23);
        let expect = w.evaluate_reference(&inputs).unwrap();
        for threads in [1, 4] {
            let got = barracuda::cpu::execute_workload_cpu(&w, &inputs, threads);
            for ((n1, t1), (n2, t2)) in expect.iter().zip(&got) {
                assert_eq!(n1, n2);
                assert!(
                    t1.approx_eq(t2, 1e-10),
                    "{} with {} threads produced a wrong {}",
                    w.name,
                    threads,
                    n1
                );
            }
        }
    }
}

#[test]
fn openacc_mappings_match_oracle() {
    for w in validation_workloads() {
        let acc = barracuda::openacc::openacc_naive(&w);
        let inputs = w.random_inputs(29);
        let expect = w.evaluate_reference(&inputs).unwrap();
        // Chain the naive-ACC kernels through a name environment.
        let mut env: std::collections::BTreeMap<String, tensor::Tensor> =
            inputs.iter().cloned().collect();
        for (program, (st, kernels)) in acc
            .programs
            .iter()
            .zip(w.statements.iter().zip(&acc.kernels))
        {
            let operands: Vec<&tensor::Tensor> = program
                .input_ids()
                .iter()
                .map(|&id| &env[&program.arrays[id].name])
                .collect();
            let fresh = gpusim::execute_program(program, kernels, &operands);
            match env.entry(st.output.name.clone()) {
                std::collections::btree_map::Entry::Occupied(mut o) if st.accumulate => {
                    for (a, b) in o.get_mut().data_mut().iter_mut().zip(fresh.data()) {
                        *a += b;
                    }
                }
                std::collections::btree_map::Entry::Occupied(mut o) => *o.get_mut() = fresh,
                std::collections::btree_map::Entry::Vacant(v) => {
                    v.insert(fresh);
                }
            }
        }
        for (name, t) in &expect {
            assert!(
                t.approx_eq(&env[name], 1e-10),
                "{}: naive-ACC mapping wrong for {}",
                w.name,
                name
            );
        }
    }
}

#[test]
fn every_variant_of_eqn1_is_executable_and_correct() {
    let w = kernels::eqn1(3);
    let tuner = WorkloadTuner::build(&w);
    let st = &tuner.statements[0];
    let inputs = w.random_inputs(31);
    let expect = w.evaluate_reference(&inputs).unwrap();
    for (vi, v) in st.variants.iter().enumerate() {
        // First, middle, and last configuration of every version.
        let total = v.space.len();
        for id in [0, total / 2, total - 1] {
            let cfg = v.space.config(id);
            let Ok(kernels) = tcr::mapping::map_program(&v.program, &v.space, &cfg, false) else {
                continue; // unmappable sample point: not a correctness question
            };
            let operands: Vec<&tensor::Tensor> = v
                .program
                .input_ids()
                .iter()
                .map(|&aid| {
                    let name = &v.program.arrays[aid].name;
                    &inputs.iter().find(|(n, _)| n == name).unwrap().1
                })
                .collect();
            let got = gpusim::execute_program(&v.program, &kernels, &operands);
            assert!(
                expect[0].1.approx_eq(&got, 1e-10),
                "version {vi} config {id} wrong"
            );
        }
    }
}

#[test]
fn signed_statements_flow_through_every_executor() {
    // A -= statement followed by an accumulating 2.5x statement: the
    // coefficient must survive OCTOPI, TCR, the GPU executor, the fused
    // executor and the CPU executors identically.
    let w = Workload::parse(
        "signed",
        "y[i k] -= Sum([j], A[i j] * B[j k])\ny[i k] += Sum([j], 2.5 * A[i j] * B[j k])",
        &tensor::index::uniform_dims(&["i", "j", "k"], 6),
    )
    .unwrap();
    let inputs = w.random_inputs(37);
    let expect = w.evaluate_reference(&inputs).unwrap();
    // Net effect: +1.5x of A*B plus the initial y.
    let tuner = WorkloadTuner::build(&w);
    for arch in [gpusim::gtx980(), gpusim::k20()] {
        let tuned = tuner.autotune(&arch, TuneParams::quick()).unwrap();
        let got = tuned.execute(&w, &inputs).unwrap();
        assert!(
            expect[0].1.approx_eq(&got[0].1, 1e-10),
            "GPU executor wrong on {}",
            arch.name
        );
        let fused = barracuda::fusionopt::execute_with_fusion(&tuned, &w, &arch, &inputs);
        assert!(expect[0].1.approx_eq(&fused[0].1, 1e-10), "fused wrong");
    }
    for threads in [1, 3] {
        let got = barracuda::cpu::execute_workload_cpu(&w, &inputs, threads);
        assert!(expect[0].1.approx_eq(&got[0].1, 1e-10), "CPU wrong");
    }
}

#[test]
fn cuda_source_emitted_for_all_families() {
    for w in validation_workloads() {
        let tuner = WorkloadTuner::build(&w);
        let tuned = tuner
            .autotune(&gpusim::gtx980(), TuneParams::quick())
            .unwrap();
        let src = tuned.cuda_source();
        let n: usize = tuned.kernels.iter().map(|k| k.len()).sum();
        assert_eq!(
            src.matches("__global__").count(),
            n,
            "{}: kernel count mismatch in CUDA source",
            w.name
        );
        assert!(src.contains("threadIdx.x"));
    }
}
