//! Fault-tolerant autotuning: the search must survive injected evaluator
//! faults, quarantine exactly the configurations the deterministic fault
//! plan corrupts, stay bit-identical across thread counts, and respect
//! evaluation budgets and deadlines with an explicit degraded status.

use barracuda::prelude::*;
use barracuda::EvalCache;
use surf::{FaultPlan, SearchStatus};

fn quick() -> TuneParams {
    let mut p = TuneParams::quick();
    p.surf.max_evals = 40;
    p
}

/// With 20% of configurations corrupted (half hard failures, half silent
/// NaN times), every Table II workload still tunes to a finite result, and
/// the quarantine report matches the plan exactly.
#[test]
fn table2_survives_twenty_percent_injected_faults() {
    let plan = FaultPlan::mixed(0.20, 99);
    for w in kernels::table2_benchmarks() {
        let mut params = quick();
        params.fault_injection = Some(plan);
        let tuner = WorkloadTuner::build(&w);
        let tuned = tuner
            .autotune(&gpusim::gtx980(), params)
            .unwrap_or_else(|e| panic!("{} must survive 20% faults: {e}", w.name));

        assert!(
            tuned.gpu_seconds.is_finite() && tuned.gpu_seconds > 0.0,
            "{}: best time {} must be finite",
            w.name,
            tuned.gpu_seconds
        );
        // Counts on the stats mirror the report.
        assert_eq!(tuned.search.quarantined_configs, tuned.quarantine.configs());
        assert_eq!(
            tuned.search.quarantined_versions,
            tuned.quarantine.versions()
        );
        // Every quarantined config was one the plan corrupted (this model
        // has no organic mapping/simulation failures on these pools), and
        // the injected ones carry the injection marker in their reason.
        let injected: Vec<_> = tuned
            .quarantine
            .entries
            .iter()
            .filter_map(|e| e.config)
            .collect();
        assert!(
            !injected.is_empty(),
            "{}: a 20% fault rate must quarantine something over 40 attempts",
            w.name
        );
        for id in &injected {
            assert!(
                plan.decide(*id).is_some(),
                "{}: config {id} quarantined but the plan never corrupted it",
                w.name
            );
        }
        // No survivor was corrupted: the chosen config and every evaluated
        // time came from clean evaluations.
        assert!(
            plan.decide(tuned.id).is_none(),
            "{}: winner was corrupted",
            w.name
        );
        assert!(
            tuned.search.evaluated_times.iter().all(|t| t.is_finite()),
            "{}: quarantine must keep NaN out of the trace",
            w.name
        );
        assert_eq!(tuned.status, SearchStatus::Complete);
    }
}

/// Injected faults are keyed by configuration id, so the faulted search is
/// bit-identical serial vs parallel — same winner, same trace, same
/// quarantine report.
#[test]
fn faulted_search_is_bit_identical_serial_vs_parallel() {
    let w = kernels::lg3t(8, 16);
    let arch = gpusim::k20();
    let mut serial = quick();
    serial.threads = 1;
    serial.fault_injection = Some(FaultPlan::mixed(0.25, 7));
    let mut parallel = serial;
    parallel.threads = 0; // rayon pool

    let a = WorkloadTuner::build(&w).autotune(&arch, serial).unwrap();
    let b = WorkloadTuner::build(&w).autotune(&arch, parallel).unwrap();

    assert_eq!(a.id, b.id);
    assert_eq!(a.gpu_seconds.to_bits(), b.gpu_seconds.to_bits());
    let bits = |v: &[f64]| v.iter().map(|t| t.to_bits()).collect::<Vec<_>>();
    assert_eq!(
        bits(&a.search.evaluated_times),
        bits(&b.search.evaluated_times)
    );
    // Identical quarantine: same ids, same stages, same reasons, same order.
    assert_eq!(a.quarantine.len(), b.quarantine.len());
    for (ea, eb) in a.quarantine.entries.iter().zip(&b.quarantine.entries) {
        assert_eq!(ea.config, eb.config);
        assert_eq!(ea.stage, eb.stage);
        assert_eq!(ea.reason, eb.reason);
    }
}

/// A shared cache memoizes failures as well as successes: a second run over
/// the same pool re-simulates nothing, and reports the same quarantine.
#[test]
fn shared_cache_never_resimulates_across_runs() {
    let w = kernels::eqn1(8);
    let arch = gpusim::gtx980();
    let cache = EvalCache::new();
    let tuner = WorkloadTuner::build(&w);
    let a = tuner.autotune_with_cache(&arch, quick(), &cache).unwrap();
    assert!(a.search.cache_misses > 0);
    let b = tuner.autotune_with_cache(&arch, quick(), &cache).unwrap();
    assert_eq!(
        b.search.cache_misses, 0,
        "second run must be served entirely from the shared cache"
    );
    assert_eq!(a.id, b.id);
    assert_eq!(a.search.quarantined_configs, b.search.quarantined_configs);
}

/// `max_evaluations` is a hard attempt cap, and exhausting it is an
/// explicit degradation, not a silent completion.
#[test]
fn evaluation_budget_caps_attempts_and_degrades() {
    let w = kernels::lg3(8, 16);
    let arch = gpusim::k20();
    let mut params = quick();
    params.max_evaluations = Some(12);
    let tuned = WorkloadTuner::build(&w).autotune(&arch, params).unwrap();
    assert!(
        tuned.search.n_evals + tuned.search.quarantined_configs <= 12,
        "attempts {} + {} must respect the cap",
        tuned.search.n_evals,
        tuned.search.quarantined_configs
    );
    assert!(tuned.is_degraded(), "a truncating budget must degrade");
    assert!(tuned.gpu_seconds.is_finite());
}

/// An already-expired wall deadline stops the search at the first batch
/// boundary with best-so-far and a deadline reason.
#[test]
fn expired_deadline_degrades_with_best_so_far() {
    let w = kernels::eqn1(8);
    let arch = gpusim::gtx980();
    let mut params = quick();
    params.wall_deadline_s = Some(0.0);
    let tuned = WorkloadTuner::build(&w).autotune(&arch, params).unwrap();
    match &tuned.status {
        SearchStatus::Degraded { reason } => {
            assert!(reason.contains("deadline"), "reason: {reason}")
        }
        s => panic!("expected a degraded status, got {s:?}"),
    }
    assert!(tuned.gpu_seconds.is_finite());
}

/// When quarantine eats more than the survivor-fraction threshold allows,
/// the search stops early (degraded) instead of burning the whole budget on
/// a poisoned pool.
#[test]
fn survivor_fraction_threshold_stops_poisoned_searches() {
    let w = kernels::lg3t(8, 16);
    let arch = gpusim::k20();
    let mut params = quick();
    params.fault_injection = Some(FaultPlan::mixed(0.6, 3));
    params.min_survivor_fraction = 0.7;
    let tuned = WorkloadTuner::build(&w).autotune(&arch, params).unwrap();
    match &tuned.status {
        SearchStatus::Degraded { reason } => {
            assert!(reason.contains("survivor fraction"), "reason: {reason}")
        }
        s => panic!("expected a degraded status, got {s:?}"),
    }
    assert!(tuned.gpu_seconds.is_finite());
}

/// A fully poisoned pool is the one hard search failure: every attempt
/// quarantined, no survivor to rank — a typed `Search` error, not a panic.
#[test]
fn total_fault_saturation_is_a_typed_error() {
    let w = kernels::eqn1(8);
    let mut params = quick();
    params.fault_injection = Some(FaultPlan {
        failure_rate: 1.0,
        nan_rate: 0.0,
        slow_rate: 0.0,
        slow_ms: 0,
        seed: 1,
    });
    let err = WorkloadTuner::build(&w)
        .autotune(&gpusim::gtx980(), params)
        .expect_err("a 100% fault rate cannot produce a result");
    match &err {
        BarracudaError::Search { workload, detail } => {
            assert_eq!(workload, &w.name);
            assert!(detail.contains("quarantined"), "detail: {detail}");
        }
        other => panic!("expected a Search error, got {other:?}"),
    }
    assert_eq!(err.exit_code(), 8);
}

/// Decomposed tuning shares one budget across statements and carries the
/// per-statement quarantine through to the merged report.
#[test]
fn decomposed_tuning_survives_faults_with_shared_budget() {
    let w = kernels::lg3(8, 16); // three statements
    let arch = gpusim::k20();
    let mut params = quick();
    params.fault_injection = Some(FaultPlan::mixed(0.2, 11));
    params.max_evaluations = Some(60);
    let tuned = WorkloadTuner::build(&w)
        .autotune_decomposed(&arch, params)
        .unwrap();
    assert!(tuned.gpu_seconds.is_finite() && tuned.gpu_seconds > 0.0);
    // The cap is shared; once it runs dry each remaining statement still
    // gets a single attempt (it needs *a* configuration), so the bound is
    // cap + one per statement.
    assert!(
        tuned.search.n_evals + tuned.search.quarantined_configs <= 60 + 3,
        "shared budget must bound total attempts, got {} + {}",
        tuned.search.n_evals,
        tuned.search.quarantined_configs
    );
    // Quarantined configs in the decomposed path are attributed to their
    // statement.
    for e in &tuned.quarantine.entries {
        if e.config.is_some() {
            assert!(
                e.statement.is_some(),
                "decomposed quarantine must name the statement"
            );
        }
    }
}
