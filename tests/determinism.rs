//! Reproducibility: every experiment driver must produce bit-identical
//! results across runs (the tables in EXPERIMENTS.md are regenerable).

use barracuda::prelude::*;

fn quick() -> TuneParams {
    let mut p = TuneParams::quick();
    p.surf.max_evals = 30;
    p
}

#[test]
fn autotuning_is_bit_deterministic() {
    let w = kernels::lg3t(8, 16);
    let arch = gpusim::k20();
    let a = WorkloadTuner::build(&w).autotune(&arch, quick()).unwrap();
    let b = WorkloadTuner::build(&w).autotune(&arch, quick()).unwrap();
    assert_eq!(a.id, b.id);
    assert_eq!(a.gpu_seconds.to_bits(), b.gpu_seconds.to_bits());
    assert_eq!(a.search.evaluated_times, b.search.evaluated_times);
}

#[test]
fn parallel_tuning_is_bit_identical_to_serial() {
    // The parallel evaluation engine must not perturb the search: noise is
    // keyed by configuration id and batches fold in batch order, so any
    // thread count reproduces the serial trace bit for bit.
    let w = kernels::lg3t(8, 16);
    let arch = gpusim::k20();
    let mut serial = quick();
    serial.threads = 1;
    let mut parallel = quick();
    parallel.threads = 0; // rayon pool (RAYON_NUM_THREADS or all cores)
    let a = WorkloadTuner::build(&w).autotune(&arch, serial).unwrap();
    let b = WorkloadTuner::build(&w).autotune(&arch, parallel).unwrap();
    assert_eq!(a.id, b.id);
    assert_eq!(a.gpu_seconds.to_bits(), b.gpu_seconds.to_bits());
    let bits = |v: &[f64]| v.iter().map(|t| t.to_bits()).collect::<Vec<_>>();
    assert_eq!(
        bits(&a.search.evaluated_times),
        bits(&b.search.evaluated_times)
    );
    assert_eq!(a.search.n_evals, b.search.n_evals);
    assert_eq!(a.search.batches, b.search.batches);
}

#[test]
fn noisy_paper_params_are_still_deterministic() {
    // Noise is seeded, so even the noisy search must reproduce exactly.
    let w = kernels::eqn1(8);
    let arch = gpusim::gtx980();
    let mut p = TuneParams::paper();
    p.surf.max_evals = 60;
    let a = WorkloadTuner::build(&w).autotune(&arch, p).unwrap();
    let b = WorkloadTuner::build(&w).autotune(&arch, p).unwrap();
    assert_eq!(a.id, b.id);
    assert_eq!(a.search.n_evals, b.search.n_evals);
}

#[test]
fn simulator_times_are_pure_functions() {
    let w = kernels::nwchem_d2(3, 8);
    let tuner = WorkloadTuner::build(&w);
    for arch in gpusim::arch::all_architectures() {
        let pool = tuner.pool(32, 5);
        for &id in &pool {
            let t1 = tuner.gpu_seconds(id, &arch);
            let t2 = tuner.gpu_seconds(id, &arch);
            assert_eq!(t1.to_bits(), t2.to_bits());
        }
    }
}

#[test]
fn cpu_model_is_deterministic() {
    use barracuda::cpu::workload_cpu_time;
    use cpusim::model::CpuModel;
    let w = kernels::lg3(8, 16);
    for threads in [1, 4] {
        let a = workload_cpu_time(&w, &CpuModel::haswell(), threads);
        let b = workload_cpu_time(&w, &CpuModel::haswell(), threads);
        assert_eq!(a.time_s.to_bits(), b.time_s.to_bits());
    }
}

#[test]
fn random_inputs_and_reference_reproduce() {
    let w = kernels::tce_ex(3);
    let i1 = w.random_inputs(9);
    let i2 = w.random_inputs(9);
    assert_eq!(i1, i2);
    let o1 = w.evaluate_reference(&i1).unwrap();
    let o2 = w.evaluate_reference(&i2).unwrap();
    for ((_, a), (_, b)) in o1.iter().zip(&o2) {
        assert_eq!(a.data(), b.data());
    }
}
