//! Property-based tests over randomly generated contractions.
//!
//! The generator builds arbitrary valid summation statements (2–4 operands,
//! 2–6 indices of extents 2–4), then checks the pipeline's core invariants:
//! every factorization preserves semantics, lowering preserves flop counts,
//! configuration ids round-trip, mapped kernels execute to the oracle's
//! result, and the parser round-trips through pretty-printing.

use octopi::ast::{Contraction, TensorRef};
use octopi::{enumerate_factorizations, parse_program};
use proptest::prelude::*;
use tcr::space::ProgramSpace;
use tcr::TcrProgram;
use tensor::{IndexMap, IndexVar, Shape, Tensor};

const NAMES: [&str; 6] = ["i", "j", "k", "l", "m", "n"];

#[derive(Clone, Debug)]
struct GenContraction {
    c: Contraction,
    dims: IndexMap,
}

/// Strategy: random valid contraction with at least one output index.
fn contraction_strategy() -> impl Strategy<Value = GenContraction> {
    // number of indices, extents, term memberships, output choice
    (2usize..=6, proptest::collection::vec(2usize..=4, 6))
        .prop_flat_map(|(n_idx, extents)| {
            let n_terms = 2usize..=4;
            // Each term: bitmask over indices (non-empty).
            let masks = proptest::collection::vec(1u32..(1 << n_idx), n_terms);
            (Just(n_idx), Just(extents), masks, 0u32..u32::MAX)
        })
        .prop_filter_map("valid contraction", |(n_idx, extents, masks, outsel)| {
            let idx: Vec<IndexVar> = NAMES[..n_idx].iter().map(|s| IndexVar::new(*s)).collect();
            let mut dims = IndexMap::new();
            for (k, ix) in idx.iter().enumerate() {
                dims.insert(ix.clone(), extents[k]);
            }
            // Union of term indices.
            let mut union = 0u32;
            for m in &masks {
                union |= m;
            }
            // Output: arbitrary non-empty subset of the union.
            let out_mask = (outsel & union).max(union & union.wrapping_neg());
            let output: Vec<IndexVar> = idx
                .iter()
                .enumerate()
                .filter(|(k, _)| out_mask >> k & 1 == 1)
                .map(|(_, ix)| ix.clone())
                .collect();
            if output.is_empty() {
                return None;
            }
            let sum_indices: Vec<IndexVar> = idx
                .iter()
                .enumerate()
                .filter(|(k, _)| union >> k & 1 == 1 && out_mask >> k & 1 == 0)
                .map(|(_, ix)| ix.clone())
                .collect();
            let terms: Vec<TensorRef> = masks
                .iter()
                .enumerate()
                .map(|(t, m)| TensorRef {
                    name: format!("T{t}"),
                    indices: idx
                        .iter()
                        .enumerate()
                        .filter(|(k, _)| m >> k & 1 == 1)
                        .map(|(_, ix)| ix.clone())
                        .collect(),
                })
                .collect();
            let c = Contraction {
                output: TensorRef {
                    name: "OUT".to_string(),
                    indices: output,
                },
                sum_indices,
                terms,
                accumulate: false,
                coefficient: 1.0,
            };
            c.validate(&dims).ok()?;
            Some(GenContraction { c, dims })
        })
}

fn random_operands(g: &GenContraction, seed: u64) -> Vec<Tensor> {
    g.c.terms
        .iter()
        .enumerate()
        .map(|(k, t)| {
            let shape = Shape::new(t.indices.iter().map(|ix| g.dims[ix]).collect::<Vec<_>>());
            Tensor::random(shape, seed + k as u64)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every factorization computes exactly the original statement.
    #[test]
    fn factorizations_preserve_semantics(g in contraction_strategy()) {
        let operands = random_operands(&g, 5);
        let refs: Vec<&Tensor> = operands.iter().collect();
        let expect = g.c.to_einsum(&g.dims).evaluate(&refs);
        for f in enumerate_factorizations(&g.c, &g.dims).iter().take(8) {
            let got = f.evaluate(&g.c, &g.dims, &refs);
            prop_assert!(expect.approx_eq(&got, 1e-9), "factorization {} diverges", f.key);
        }
    }

    /// Lowering to TCR preserves the factorization's flop count, and the
    /// lowered program evaluates to the oracle result.
    #[test]
    fn lowering_preserves_flops_and_semantics(g in contraction_strategy()) {
        let operands = random_operands(&g, 11);
        let refs: Vec<&Tensor> = operands.iter().collect();
        let expect = g.c.to_einsum(&g.dims).evaluate(&refs);
        let fs = enumerate_factorizations(&g.c, &g.dims);
        let f = &fs[0];
        let p = TcrProgram::from_factorization("p", &g.c, f, &g.dims);
        prop_assert_eq!(p.flops(), f.flops);
        // Gather program inputs by name (terms can repeat a tensor).
        let ins: Vec<&Tensor> = p.input_ids().iter().map(|&id| {
            let name = &p.arrays[id].name;
            let k: usize = name[1..].parse().unwrap();
            &operands[k]
        }).collect();
        let got = p.evaluate(&ins);
        prop_assert!(expect.approx_eq(&got, 1e-9));
    }

    /// Configuration ids round-trip through the mixed-radix encoding.
    #[test]
    fn config_ids_roundtrip(g in contraction_strategy(), frac in 0u64..1000) {
        let fs = enumerate_factorizations(&g.c, &g.dims);
        let p = TcrProgram::from_factorization("p", &g.c, &fs[0], &g.dims);
        let space = ProgramSpace::build(&p);
        prop_assume!(!space.is_empty());
        let id = space.len() * frac as u128 / 1000;
        let id = id.min(space.len() - 1);
        let cfg = space.config(id);
        prop_assert_eq!(space.config_id(&cfg), id);
    }

    /// Any generated configuration maps to an executable kernel whose
    /// result matches the oracle (the core transformation-safety property).
    #[test]
    fn mapped_kernels_execute_correctly(g in contraction_strategy(), frac in 0u64..1000) {
        let operands = random_operands(&g, 13);
        let expect = {
            let refs: Vec<&Tensor> = operands.iter().collect();
            g.c.to_einsum(&g.dims).evaluate(&refs)
        };
        let fs = enumerate_factorizations(&g.c, &g.dims);
        let f = &fs[0];
        let p = TcrProgram::from_factorization("p", &g.c, f, &g.dims);
        let space = ProgramSpace::build(&p);
        prop_assume!(!space.is_empty());
        let id = (space.len() * frac as u128 / 1000).min(space.len() - 1);
        let cfg = space.config(id);
        let Ok(kernels) = tcr::mapping::map_program(&p, &space, &cfg, false) else {
            // Unmappable config: typed rejection, not a correctness question.
            return Ok(());
        };
        let ins: Vec<&Tensor> = p.input_ids().iter().map(|&aid| {
            let name = &p.arrays[aid].name;
            let k: usize = name[1..].parse().unwrap();
            &operands[k]
        }).collect();
        let got = gpusim::execute_program(&p, &kernels, &ins);
        prop_assert!(expect.approx_eq(&got, 1e-9), "config {id} diverges");
    }

    /// Real CPU executors agree with the oracle for random statements.
    #[test]
    fn cpu_executors_agree(g in contraction_strategy(), threads in 1usize..5) {
        let operands = random_operands(&g, 19);
        let expect = {
            let refs: Vec<&Tensor> = operands.iter().collect();
            g.c.to_einsum(&g.dims).evaluate(&refs)
        };
        let fs = enumerate_factorizations(&g.c, &g.dims);
        let p = TcrProgram::from_factorization("p", &g.c, &fs[0], &g.dims);
        let ins: Vec<&Tensor> = p.input_ids().iter().map(|&aid| {
            let name = &p.arrays[aid].name;
            let k: usize = name[1..].parse().unwrap();
            &operands[k]
        }).collect();
        let got = if threads == 1 {
            cpusim::execute_sequential(&p, &ins)
        } else {
            cpusim::execute_parallel(&p, &ins, threads)
        };
        prop_assert!(expect.approx_eq(&got, 1e-9));
    }

    /// Fused chains (when fusable) execute to the oracle result.
    #[test]
    fn fused_kernels_execute_correctly(g in contraction_strategy()) {
        let operands = random_operands(&g, 29);
        let expect = {
            let refs: Vec<&Tensor> = operands.iter().collect();
            g.c.to_einsum(&g.dims).evaluate(&refs)
        };
        let fs = enumerate_factorizations(&g.c, &g.dims);
        let f = &fs[0];
        let p = TcrProgram::from_factorization("p", &g.c, f, &g.dims);
        let Some(k) = tcr::fusion::build_fused(&p) else {
            return Ok(());
        };
        tcr::fusion::validate_fused(&k, &p).unwrap();
        prop_assert_eq!(k.flops(), p.flops());
        let ins: Vec<&Tensor> = p.input_ids().iter().map(|&aid| {
            let name = &p.arrays[aid].name;
            let idx: usize = name[1..].parse().unwrap();
            &operands[idx]
        }).collect();
        let got = gpusim::execute_fused_program(&k, &p, &ins);
        prop_assert!(expect.approx_eq(&got, 1e-9), "fused execution diverges");
    }

    /// Pruned spaces only contain configurations from the full space, and
    /// every one still maps and executes correctly.
    #[test]
    fn pruned_configs_remain_valid(g in contraction_strategy(), frac in 0u64..1000) {
        let fs = enumerate_factorizations(&g.c, &g.dims);
        let p = TcrProgram::from_factorization("p", &g.c, &fs[0], &g.dims);
        let full = ProgramSpace::build(&p);
        prop_assume!(!full.is_empty());
        let pruned = tcr::prune_space(&p, &full, &tcr::PruneRules::aggressive());
        prop_assert!(pruned.len() <= full.len());
        prop_assert!(!pruned.is_empty());
        let id = (pruned.len() * frac as u128 / 1000).min(pruned.len() - 1);
        let cfg = pruned.config(id);
        // Must map without panicking.
        let _ = tcr::mapping::map_program(&p, &pruned, &cfg, false);
    }

    /// Pretty-printed statements re-parse to the same AST.
    #[test]
    fn parser_roundtrip(g in contraction_strategy()) {
        let printed = g.c.to_string();
        let reparsed = parse_program(&printed).unwrap();
        prop_assert_eq!(&reparsed.statements[0], &g.c);
    }

    /// Factorization flop counts never exceed the naive count by more than
    /// the joint-space blow-up bound, and the minimum never exceeds naive
    /// ... wait, at tiny extents a factorization *can* exceed naive; the
    /// sorted-first one is the cheapest and must be the minimum.
    #[test]
    fn factorizations_sorted_and_bounded(g in contraction_strategy()) {
        let fs = enumerate_factorizations(&g.c, &g.dims);
        prop_assert!(!fs.is_empty());
        for w in fs.windows(2) {
            prop_assert!(w[0].flops <= w[1].flops);
        }
    }
}
