//! Minimal, dependency-free stand-in for the `proptest` crate, vendored so
//! the workspace builds offline.
//!
//! Supported surface (what this workspace's tests use):
//!
//! - strategies: integer ranges (`lo..hi`, `lo..=hi`), `Just`, tuples up
//!   to arity 6, `proptest::collection::vec`, and the `prop_map` /
//!   `prop_flat_map` / `prop_filter` / `prop_filter_map` combinators;
//! - the `proptest!` macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header;
//! - `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`;
//! - `.proptest-regressions` files: `cc <hex>` seeds are replayed before
//!   novel cases, and new failures are appended in the same format.
//!
//! Differences from upstream: generation is *deterministic* (the novel-case
//! seed sequence is fixed per test name rather than drawn from the OS), and
//! failing cases are reported without shrinking — the failing input's
//! `Debug` form plus its replay seed are printed instead.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Deterministic 64-bit generator (SplitMix64) used for all case generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut z = seed.wrapping_add(0x6A09E667F3BCC909);
        z = (z ^ (z >> 33)).wrapping_mul(0xFF51AFD7ED558CCD);
        TestRng {
            state: z ^ (z >> 33),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u128) -> u128 {
        debug_assert!(n > 0);
        let hi = self.next_u64() as u128;
        let lo = self.next_u64() as u128;
        ((hi << 64) | lo) % n
    }
}
