//! The `Strategy` trait and the combinators/primitive strategies this
//! workspace uses. Strategies generate values directly (no shrink trees).

use crate::TestRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A generation attempt either yields a value or rejects (filtered out);
/// the runner retries rejections with fresh randomness.
pub type NewTree<T> = Result<T, Rejection>;

/// Why a generation attempt was discarded.
#[derive(Clone, Debug)]
pub struct Rejection(pub String);

/// Generates random values of `Self::Value`.
pub trait Strategy {
    type Value: Debug;

    fn generate(&self, rng: &mut TestRng) -> NewTree<Self::Value>;

    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }

    fn prop_filter<R, F>(self, whence: R, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        R: Into<String>,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            whence: whence.into(),
            f,
        }
    }

    fn prop_filter_map<R, O, F>(self, whence: R, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        R: Into<String>,
        O: Debug,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            source: self,
            whence: whence.into(),
            f,
        }
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> NewTree<T> {
        Ok(self.0.clone())
    }
}

pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> NewTree<O> {
        self.source.generate(rng).map(&self.f)
    }
}

pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> NewTree<T::Value> {
        let inner = (self.f)(self.source.generate(rng)?);
        inner.generate(rng)
    }
}

pub struct Filter<S, F> {
    source: S,
    whence: String,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> NewTree<S::Value> {
        let v = self.source.generate(rng)?;
        if (self.f)(&v) {
            Ok(v)
        } else {
            Err(Rejection(self.whence.clone()))
        }
    }
}

pub struct FilterMap<S, F> {
    source: S,
    whence: String,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> NewTree<O> {
        match (self.f)(self.source.generate(rng)?) {
            Some(v) => Ok(v),
            None => Err(Rejection(self.whence.clone())),
        }
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> NewTree<$t> {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u128;
                Ok(self.start + rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> NewTree<$t> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u128 + 1;
                Ok(lo + rng.below(span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> NewTree<Self::Value> {
                let ($($name,)+) = self;
                Ok(($($name.generate(rng)?,)+))
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// `impl Strategy` for shared references to strategies (handy for reuse).
impl<S: Strategy> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> NewTree<S::Value> {
        (*self).generate(rng)
    }
}
