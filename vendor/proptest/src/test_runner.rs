//! Case runner: regression replay, novel-case generation, failure
//! persistence, and the `proptest!` / `prop_assert*` macros.

use crate::strategy::Strategy;
use crate::TestRng;
use std::io::Write;
use std::path::PathBuf;

/// Runner configuration (`ProptestConfig` in the prelude).
#[derive(Clone, Debug)]
pub struct Config {
    /// Novel cases to run per test (after regression replay).
    pub cases: u32,
    /// Upper bound on discarded generation attempts across the whole run.
    pub max_global_rejects: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl Config {
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }
}

/// Failure or rejection raised inside a test case body.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    Fail(String),
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// FNV-1a, used to derive replay seeds from regression-file hex strings and
/// per-test base seeds from test names.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF29CE484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001B3);
    }
    h
}

/// `tests/foo.rs` → `tests/foo.proptest-regressions` (same convention as
/// upstream proptest).
fn regression_path(source_file: &str) -> PathBuf {
    PathBuf::from(source_file).with_extension("proptest-regressions")
}

/// Seeds recorded in the regression file (`cc <hex> # ...` lines).
fn regression_seeds(source_file: &str) -> Vec<u64> {
    let Ok(text) = std::fs::read_to_string(regression_path(source_file)) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| {
            let line = line.trim();
            let rest = line.strip_prefix("cc ")?;
            let token = rest.split_whitespace().next()?;
            Some(fnv1a(token.as_bytes()))
        })
        .collect()
}

/// Best-effort append of a fresh failure to the regression file.
fn persist_failure(source_file: &str, seed: u64, input: &str) {
    let path = regression_path(source_file);
    let new_file = !path.exists();
    let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    else {
        return;
    };
    if new_file {
        let _ = writeln!(
            f,
            "# Seeds for failure cases proptest has generated in the past. It is\n\
             # automatically read and these particular cases re-run before any\n\
             # novel cases are generated."
        );
    }
    // One line of input only, to keep the file grep-friendly.
    let input = input.replace('\n', " ");
    let _ = writeln!(f, "cc {seed:016x} # shrinks to input = {input}");
}

/// Runs `body` over regression cases then `config.cases` novel cases.
/// Panics (failing the enclosing `#[test]`) on the first failing case,
/// printing the input and its replay seed.
pub fn run<S, F>(config: &Config, test_name: &str, source_file: &str, strategy: S, body: F)
where
    S: Strategy,
    F: Fn(S::Value) -> TestCaseResult,
{
    let run_seed = |seed: u64, persist: bool| {
        // One seed = one fully deterministic case, including the retries
        // consumed by filtered-out generation attempts.
        let mut rng = TestRng::seed_from_u64(seed);
        let mut rejects = 0u32;
        loop {
            match strategy.generate(&mut rng) {
                Ok(input) => {
                    let rendered = format!("{input:?}");
                    match body(input) {
                        Ok(()) => return 0,
                        Err(TestCaseError::Reject(_)) => return 1,
                        Err(TestCaseError::Fail(msg)) => {
                            if persist {
                                persist_failure(source_file, seed, &rendered);
                            }
                            panic!(
                                "proptest case failed: {msg}\n  test: {test_name}\n  \
                                 input: {rendered}\n  replay seed: {seed:016x}"
                            );
                        }
                    }
                }
                Err(_) => {
                    rejects += 1;
                    if rejects >= 1000 {
                        // This seed's stream cannot produce a valid input;
                        // treat it as globally rejected rather than spin.
                        return 1;
                    }
                }
            }
        }
    };

    // Phase 1: replay previously failing cases.
    for seed in regression_seeds(source_file) {
        run_seed(seed, false);
    }

    // Phase 2: novel cases from a per-test deterministic seed sequence.
    let base = fnv1a(test_name.as_bytes()) ^ fnv1a(source_file.as_bytes()).rotate_left(17);
    let mut accepted = 0u32;
    let mut global_rejects = 0u32;
    let mut k = 0u64;
    while accepted < config.cases {
        let seed = base.wrapping_add(k.wrapping_mul(0x9E3779B97F4A7C15));
        k += 1;
        let rejected = run_seed(seed, true);
        if rejected == 0 {
            accepted += 1;
        } else {
            global_rejects += 1;
            assert!(
                global_rejects < config.max_global_rejects,
                "proptest: too many rejected inputs in {test_name} \
                 ({global_rejects} rejects for {accepted} accepted cases)"
            );
        }
    }
}

/// The `proptest!` macro: wraps each `fn name(arg in strategy, ...)` item
/// into a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr); ) => {};
    (($config:expr);
     $(#[$meta:meta])*
     fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            $crate::test_runner::run(
                &config,
                stringify!($name),
                file!(),
                ($($strat,)+),
                |($($arg,)+)| {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                },
            );
        }
        $crate::__proptest_items! { ($config); $($rest)* }
    };
}

/// `assert!` that fails the proptest case (reporting the generated input)
/// instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        $crate::prop_assert!(lhs == rhs, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        $crate::prop_assert!(
            lhs != rhs,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
            lhs,
            rhs
        );
    }};
}

/// Discards the current case (not counted against `cases`) when its
/// precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}
