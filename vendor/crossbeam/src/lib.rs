//! Minimal, dependency-free stand-in for the `crossbeam` crate, vendored so
//! the workspace builds offline. Only `crossbeam::thread::scope` /
//! `Scope::spawn` are implemented, layered over `std::thread::scope`
//! (stable since Rust 1.63), with crossbeam's `Result`-returning panic
//! semantics preserved.

pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Panic payload of a worker thread, as crossbeam reports it.
    pub type Result<T> = std::result::Result<T, Box<dyn std::any::Any + Send + 'static>>;

    /// Scope handle passed to [`scope`]'s closure and to spawned workers.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    // A `Scope` is just a shared reference; copying it lets workers receive
    // their own handle for nested spawns.
    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives a scope handle so
        /// it can spawn further threads, mirroring crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let handle = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&handle)),
            }
        }
    }

    /// Creates a scope for spawning borrowing threads. Returns `Err` with
    /// the panic payload if the closure or any *unjoined* spawned thread
    /// panicked (crossbeam semantics).
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_stack_data() {
        let data = [1u64, 2, 3, 4];
        let sum = AtomicUsize::new(0);
        crate::thread::scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|_| {
                    let part: u64 = chunk.iter().sum();
                    sum.fetch_add(part as usize, Ordering::SeqCst);
                });
            }
        })
        .unwrap();
        assert_eq!(sum.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn join_returns_value() {
        let r = crate::thread::scope(|s| {
            let h = s.spawn(|_| 21 * 2);
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(r, 42);
    }

    #[test]
    fn worker_panic_is_an_err() {
        let r = crate::thread::scope(|s| {
            s.spawn(|_| panic!("worker down"));
        });
        assert!(r.is_err());
    }
}
