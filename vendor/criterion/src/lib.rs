//! Minimal, dependency-free stand-in for the `criterion` crate, vendored so
//! the workspace's `harness = false` benches build and run offline.
//!
//! Supported surface: `Criterion` with `sample_size` / `measurement_time` /
//! `warm_up_time`, `bench_function`, `benchmark_group` (+ `bench_function`,
//! `bench_with_input`, `finish`), `Bencher::iter` / `iter_batched`,
//! `BatchSize`, `BenchmarkId::from_parameter`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement model: each benchmark runs a short warm-up, then timed
//! samples; the mean, min, and max per-iteration times are printed to
//! stdout. When invoked by `cargo test` (any `--test` argument, which cargo
//! passes to harness-less benches), each benchmark body executes exactly
//! once as a smoke test and nothing is timed.

use std::fmt;
use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost. The shim re-runs setup per
/// iteration regardless; the variants exist for API compatibility.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Identifier for a parameterized benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    pub fn new<S: Into<String>, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    test_mode: bool,
    /// Collected per-iteration times for the enclosing benchmark.
    pub(crate) recorded: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            std::hint::black_box(routine());
            return;
        }
        // Warm-up: run until the warm-up budget elapses (at least once).
        let warm_start = Instant::now();
        loop {
            std::hint::black_box(routine());
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        // Measurement: fixed sample count, bounded by the time budget.
        let bench_start = Instant::now();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.recorded.push(t0.elapsed());
            if bench_start.elapsed() >= self.measurement_time {
                break;
            }
        }
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.test_mode {
            std::hint::black_box(routine(setup()));
            return;
        }
        let warm_start = Instant::now();
        loop {
            std::hint::black_box(routine(setup()));
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let bench_start = Instant::now();
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            self.recorded.push(t0.elapsed());
            if bench_start.elapsed() >= self.measurement_time {
                break;
            }
        }
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo runs harness-less benches under `cargo test` with `--test`
        // (and under `cargo bench` with `--bench`); in test mode every
        // benchmark body must run exactly once, untimed.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
            test_mode,
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be nonzero");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            test_mode: self.test_mode,
            recorded: Vec::new(),
        };
        f(&mut b);
        report(name, self.test_mode, &b.recorded);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Final summary hook; the shim prints per-benchmark lines eagerly, so
    /// this only exists for `criterion_main!` compatibility.
    pub fn final_summary(&mut self) {}
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be nonzero");
        self.criterion.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.bench_function(&full, f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.bench_function(&full, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn report(name: &str, test_mode: bool, recorded: &[Duration]) {
    if test_mode {
        println!("bench {name}: ok (test mode, 1 iteration)");
        return;
    }
    if recorded.is_empty() {
        println!("bench {name}: no samples recorded");
        return;
    }
    let total: Duration = recorded.iter().sum();
    let mean = total / recorded.len() as u32;
    let min = recorded.iter().min().unwrap();
    let max = recorded.iter().max().unwrap();
    println!(
        "bench {name}: mean {mean:?} min {min:?} max {max:?} ({} samples)",
        recorded.len()
    );
}

/// Re-export so `use criterion::black_box` keeps working alongside
/// `std::hint::black_box`.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut n = 0u32;
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        c.bench_function("counter", |b| b.iter(|| n += 1));
        assert!(n > 0);
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(2))
            .warm_up_time(Duration::from_millis(1));
        let mut group = c.benchmark_group("g");
        let mut hits = 0u32;
        group.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &x| {
            b.iter(|| hits += x)
        });
        group.finish();
        assert!(hits >= 7);
    }

    #[test]
    fn iter_batched_consumes_setup_output() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(2))
            .warm_up_time(Duration::from_millis(1));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
