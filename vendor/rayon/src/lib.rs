//! Minimal, dependency-free stand-in for the `rayon` crate, vendored so the
//! workspace builds offline.
//!
//! A single global thread pool is spawned lazily; its size comes from
//! `RAYON_NUM_THREADS` (read once) or `std::thread::available_parallelism`.
//! The public surface is the subset this workspace uses:
//!
//! - `slice.par_iter().map(f).collect::<Vec<_>>()` (order-preserving,
//!   indexed — results are positionally identical to the serial map);
//! - `rayon::join(a, b)`;
//! - `rayon::current_num_threads()` / `rayon::in_parallel_region()`.
//!
//! Nested parallel calls from inside a pool worker run inline on the
//! calling worker (the work-stealing analog), so callees may parallelize
//! unconditionally without oversubscribing the machine. All combinators
//! write results by item index, so parallel execution is *bit-identical*
//! to serial execution for pure functions regardless of thread count or
//! scheduling order.

// Internal shim: lock()/take() on its own mutexes and slots are
// invariants, not fallible paths — the workspace unwrap gate targets the
// pipeline crates, not this stand-in.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

pub mod prelude {
    pub use crate::iter::{IntoParallelRefIterator, ParallelIterator};
}

/// Number of threads the pool runs (workers + the calling thread).
pub fn current_num_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

thread_local! {
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// True when called from inside a parallel region (worker thread or a
/// nested call on the submitting thread). Nested regions run inline.
pub fn in_parallel_region() -> bool {
    IN_POOL.with(|f| f.get())
}

type Job = Box<dyn FnOnce() + Send>;

struct PoolState {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
}

struct Pool {
    state: Arc<PoolState>,
}

impl Pool {
    fn global() -> &'static Pool {
        static POOL: OnceLock<Pool> = OnceLock::new();
        POOL.get_or_init(|| {
            let state = Arc::new(PoolState {
                queue: Mutex::new(VecDeque::new()),
                available: Condvar::new(),
            });
            // The calling thread participates in every region, so spawn
            // one fewer worker than the configured width.
            for _ in 1..current_num_threads() {
                let state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name("rayon-lite-worker".into())
                    .spawn(move || {
                        IN_POOL.with(|f| f.set(true));
                        loop {
                            let job = {
                                let mut q = state.queue.lock().unwrap();
                                loop {
                                    if let Some(job) = q.pop_front() {
                                        break job;
                                    }
                                    q = state.available.wait(q).unwrap();
                                }
                            };
                            job();
                        }
                    })
                    .expect("spawn rayon-lite worker");
            }
            Pool { state }
        })
    }

    fn submit(&self, job: Job) {
        self.state.queue.lock().unwrap().push_back(job);
        self.state.available.notify_one();
    }
}

/// Countdown latch: the region owner blocks until every helper finished.
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
    panicked: AtomicBool,
}

impl Latch {
    fn new(n: usize) -> Self {
        Latch {
            remaining: Mutex::new(n),
            done: Condvar::new(),
            panicked: AtomicBool::new(false),
        }
    }

    fn count_down(&self) {
        let mut r = self.remaining.lock().unwrap();
        *r -= 1;
        if *r == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut r = self.remaining.lock().unwrap();
        while *r > 0 {
            r = self.done.wait(r).unwrap();
        }
    }
}

/// Runs `work(i)` for every `i in 0..tasks`, spreading tasks over the pool
/// with the calling thread participating. Blocks until every task has
/// finished; propagates a panic if any task panicked. Tasks must be
/// index-disjoint in their side effects.
///
/// # Safety-by-construction
/// Helper jobs borrow `work` from the caller's stack, erased to `'static`
/// to cross into the long-lived workers. The latch guarantees the caller
/// does not return (even on panic inside its own share) before every
/// helper has dropped its borrow, so the erasure never outlives the data.
fn run_region(tasks: usize, work: &(dyn Fn(usize) + Sync)) {
    if tasks == 0 {
        return;
    }
    if tasks == 1 || in_parallel_region() || current_num_threads() == 1 {
        for i in 0..tasks {
            work(i);
        }
        return;
    }
    let latch = Arc::new(Latch::new(tasks - 1));
    // Erase the borrow lifetime; see the safety note above.
    let work_static: &'static (dyn Fn(usize) + Sync) =
        unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(work) };
    let pool = Pool::global();
    for i in 1..tasks {
        let latch = Arc::clone(&latch);
        pool.submit(Box::new(move || {
            if catch_unwind(AssertUnwindSafe(|| work_static(i))).is_err() {
                latch.panicked.store(true, Ordering::SeqCst);
            }
            latch.count_down();
        }));
    }
    // The caller runs task 0 inline, marked as inside the region so that
    // nested parallel calls serialize.
    let own = catch_unwind(AssertUnwindSafe(|| {
        IN_POOL.with(|f| f.set(true));
        work(0);
    }));
    IN_POOL.with(|f| f.set(false));
    latch.wait();
    if own.is_err() || latch.panicked.load(Ordering::SeqCst) {
        panic!("a rayon-lite task panicked");
    }
}

/// Slot vector written by index from multiple tasks. Each index is claimed
/// exactly once via an atomic counter, so writes never alias.
struct Slots<T>(Vec<std::cell::UnsafeCell<Option<T>>>);

unsafe impl<T: Send> Sync for Slots<T> {}

impl<T> Slots<T> {
    fn new(n: usize) -> Self {
        Slots((0..n).map(|_| std::cell::UnsafeCell::new(None)).collect())
    }

    /// # Safety
    /// Each index must be written at most once while the value is shared,
    /// and all writes must complete before `into_values` is called. Writes
    /// to distinct indices touch distinct cells, so they never alias.
    unsafe fn write(&self, i: usize, v: T) {
        *self.0[i].get() = Some(v);
    }

    fn into_values(self) -> Vec<T> {
        self.0
            .into_iter()
            .map(|c| c.into_inner().expect("slot filled"))
            .collect()
    }
}

/// Order-preserving parallel indexed map over `0..n`.
pub(crate) fn par_map_indexed<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if n <= 1 || in_parallel_region() || current_num_threads() == 1 {
        return (0..n).map(f).collect();
    }
    let slots = Slots::new(n);
    let next = AtomicUsize::new(0);
    let tasks = current_num_threads().min(n);
    run_region(tasks, &|_task| loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            break;
        }
        let v = f(i);
        // Sound: index i is claimed exactly once, the Vec never grows, and
        // run_region does not return before all writers have finished.
        unsafe { slots.write(i, v) }
    });
    slots.into_values()
}

/// Runs the two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let mut ra: Option<RA> = None;
    let mut rb: Option<RB> = None;
    {
        let mut a = Some(a);
        let mut b = Some(b);
        let cell_a = Mutex::new((&mut ra, &mut a));
        let cell_b = Mutex::new((&mut rb, &mut b));
        run_region(2, &|i| {
            if i == 0 {
                let mut g = cell_a.lock().unwrap();
                let f = g.1.take().unwrap();
                *g.0 = Some(f());
            } else {
                let mut g = cell_b.lock().unwrap();
                let f = g.1.take().unwrap();
                *g.0 = Some(f());
            }
        });
    }
    (ra.unwrap(), rb.unwrap())
}

pub mod iter {
    use super::par_map_indexed;

    /// `.par_iter()` on slices and `Vec`s.
    pub trait IntoParallelRefIterator<'data> {
        type Item: Sync + 'data;
        fn par_iter(&'data self) -> ParSlice<'data, Self::Item>;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = T;
        fn par_iter(&'data self) -> ParSlice<'data, T> {
            ParSlice { slice: self }
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = T;
        fn par_iter(&'data self) -> ParSlice<'data, T> {
            ParSlice { slice: self }
        }
    }

    /// Borrowing parallel iterator over a slice.
    pub struct ParSlice<'data, T> {
        slice: &'data [T],
    }

    impl<'data, T: Sync> ParSlice<'data, T> {
        pub fn map<R, F>(self, f: F) -> ParMap<'data, T, F>
        where
            R: Send,
            F: Fn(&'data T) -> R + Sync,
        {
            ParMap {
                slice: self.slice,
                f,
            }
        }
    }

    /// Lazy mapped parallel iterator; work happens at `collect`.
    pub struct ParMap<'data, T, F> {
        slice: &'data [T],
        f: F,
    }

    pub trait ParallelIterator {
        type Item: Send;
        fn collect_vec(self) -> Vec<Self::Item>;
        fn collect<C: FromIterator<Self::Item>>(self) -> C
        where
            Self: Sized,
        {
            self.collect_vec().into_iter().collect()
        }
    }

    impl<'data, T, R, F> ParallelIterator for ParMap<'data, T, F>
    where
        T: Sync,
        R: Send,
        F: Fn(&'data T) -> R + Sync,
    {
        type Item = R;
        fn collect_vec(self) -> Vec<R> {
            let ParMap { slice, f } = self;
            par_map_indexed(slice.len(), |i| f(&slice[i]))
        }
    }
}

/// Order-preserving parallel map over a slice — the convenience entry point
/// used across this workspace (equivalent to
/// `items.par_iter().map(f).collect()`).
pub fn par_map_slice<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(items.len(), |i| f(&items[i]))
}

/// Runs `f` over corresponding `chunk`-sized pieces of `input` and `out`,
/// potentially in parallel. Pieces are disjoint, each is claimed exactly
/// once, and which thread runs which piece cannot change what gets written
/// where — so for pure `f` the result is bit-identical to the serial loop.
/// Lets hot paths fill one caller-owned output buffer instead of
/// allocating a vector per piece and concatenating.
pub fn par_chunks_zip_mut<T, U, F>(input: &[T], out: &mut [U], chunk: usize, f: F)
where
    T: Sync,
    U: Send,
    F: Fn(&[T], &mut [U]) + Sync,
{
    assert_eq!(input.len(), out.len(), "zip length mismatch");
    if input.is_empty() {
        return;
    }
    let chunk = chunk.max(1);
    type Piece<'a, T, U> = Mutex<Option<(&'a [T], &'a mut [U])>>;
    let pairs: Vec<Piece<'_, T, U>> = input
        .chunks(chunk)
        .zip(out.chunks_mut(chunk))
        .map(|p| Mutex::new(Some(p)))
        .collect();
    run_region(pairs.len(), &|i| {
        let (a, b) = pairs[i].lock().unwrap().take().expect("piece claimed once");
        f(a, b);
    });
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = v.par_iter().map(|&x| x * 3).collect();
        assert_eq!(out, (0..1000).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn nested_regions_run_inline() {
        let outer: Vec<Vec<usize>> = (0..8u64)
            .collect::<Vec<_>>()
            .par_iter()
            .map(|&i| par_map_slice(&[0usize, 1, 2], |&j| i as usize * 10 + j))
            .collect();
        for (i, inner) in outer.iter().enumerate() {
            assert_eq!(inner, &vec![i * 10, i * 10 + 1, i * 10 + 2]);
        }
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [5u32];
        let out: Vec<u32> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![6]);
    }

    #[test]
    fn panics_propagate() {
        let r = std::panic::catch_unwind(|| {
            let v: Vec<u64> = (0..64).collect();
            let _: Vec<u64> = v
                .par_iter()
                .map(|&x| {
                    if x == 33 {
                        panic!("boom");
                    }
                    x
                })
                .collect();
        });
        assert!(r.is_err());
    }

    #[test]
    fn current_num_threads_is_positive() {
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn chunked_zip_matches_serial_fill() {
        let input: Vec<u64> = (0..10_000).collect();
        let mut out = vec![0u64; input.len()];
        par_chunks_zip_mut(&input, &mut out, 256, |src, dst| {
            for (s, d) in src.iter().zip(dst.iter_mut()) {
                *d = s * 7 + 1;
            }
        });
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u64 * 7 + 1));
        // Empty input is a no-op, uneven tail chunks are covered.
        let mut empty_out: Vec<u64> = Vec::new();
        par_chunks_zip_mut(&[], &mut empty_out, 8, |_: &[u64], _| unreachable!());
        let odd: Vec<u64> = (0..13).collect();
        let mut odd_out = vec![0u64; 13];
        par_chunks_zip_mut(&odd, &mut odd_out, 5, |s, d| d.copy_from_slice(s));
        assert_eq!(odd, odd_out);
    }
}
