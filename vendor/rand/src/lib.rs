//! Minimal, dependency-free stand-in for the `rand` crate, vendored so the
//! workspace builds offline (the container has no registry access).
//!
//! Only the surface this workspace uses is implemented: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::gen_range` over integer and
//! float ranges. The generator is SplitMix64 — statistically solid for
//! autotuning-search purposes and, critically, *deterministic*: every
//! search result in this repo is reproducible from its seed. The stream is
//! not byte-compatible with upstream `rand`'s ChaCha-based `StdRng`; no
//! test or experiment in this workspace depends on upstream streams.

use std::ops::{Range, RangeInclusive};

/// Core random source: a 64-bit output per step.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (only the `u64` entry point is provided).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from a half-open or inclusive range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`. Panics if the range is empty.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`. Panics if `lo > hi`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi - lo) as u128;
                lo + (wide(rng) % span) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u128;
                if span == u128::MAX {
                    return wide(rng) as $t;
                }
                lo + (wide(rng) % (span + 1)) as $t
            }
        }
    )*};
}

macro_rules! impl_sample_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u128;
                lo.wrapping_add((wide(rng) % span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u128;
                lo.wrapping_add((wide(rng) % (span + 1)) as $t)
            }
        }
    )*};
}

impl_sample_uint!(usize, u8, u16, u32, u64, u128);
impl_sample_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, i128 => u128);

/// Two generator steps folded into a u128 (enough entropy for u128 spans).
fn wide<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
    let hi = rng.next_u64() as u128;
    let lo = rng.next_u64() as u128;
    (hi << 64) | lo
}

macro_rules! impl_sample_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                // 53 (resp. 24) uniform mantissa bits in [0, 1).
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                let v = lo + (hi - lo) * unit;
                // Guard against rounding up to the excluded endpoint.
                if v >= hi { <$t>::from_bits(hi.to_bits() - 1) } else { v }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                lo + (hi - lo) * unit
            }
        }
    )*};
}

impl_sample_float!(f32, f64);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// High-level convenience methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_half_open(self, 0.0, 1.0) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64: one u64 of state, a fixed-increment Weyl sequence passed
    /// through an avalanching finalizer. Deterministic and `Send + Sync`
    /// friendly (no interior mutability).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Scramble the seed so that nearby seeds (0, 1, 2, ...) yield
            // decorrelated streams.
            let mut z = seed.wrapping_add(0xA0761D6478BD642F);
            z = (z ^ (z >> 32)).wrapping_mul(0xE7037ED1A0B428DB);
            StdRng {
                state: z ^ (z >> 29),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let run_a: Vec<usize> = (0..16).map(|_| a.gen_range(0..100)).collect();
        let run_c: Vec<usize> = (0..16).map(|_| c.gen_range(0..100)).collect();
        assert_ne!(run_a, run_c);
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-30i64..=30);
            assert!((-30..=30).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let x = rng.gen_range(5u128..1_000_000_000_000_000_000_000u128);
            assert!((5..1_000_000_000_000_000_000_000u128).contains(&x));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn inclusive_u32_full_span() {
        let mut rng = StdRng::seed_from_u64(3);
        // Regression guard: `0..u32::MAX` must not overflow the span math.
        for _ in 0..100 {
            let _ = rng.gen_range(0u32..u32::MAX);
        }
    }
}
