//! GPU decision algorithm and autotuning search-space generation (§IV).
//!
//! For every statement the algorithm picks candidates for the thread/block
//! decomposition:
//!
//! - **ThreadX**: any parallel loop whose adjacent values touch adjacent
//!   memory in some referenced tensor (global-memory coalescing),
//! - **ThreadY / BlockX / BlockY**: drawn from a pool built per the paper's
//!   two rules — parallel loop indices of *contiguous* tensors from
//!   innermost to outermost, then (if fewer than four were found) parallel
//!   indices of non-contiguous tensors from outermost to innermost.
//!   ThreadY and BlockY may also be `1` (absent ⇒ 1-D thread block/grid).
//!
//! Remaining loops stay inside the kernel; their order is a PERMUTE
//! parameter and the innermost one carries an unroll factor. Scalar
//! replacement of the output is always applied (not searched).
//!
//! The full space for one statement is enumerated eagerly into
//! [`OpSpace::configs`] (spaces per statement are small — hundreds to a few
//! thousands); the cross-product across statements and OCTOPI versions is
//! what explodes (512,000 variants for Lg3t in the paper) and is only ever
//! addressed through mixed-radix indexing ([`ProgramSpace::config`]).

use crate::contiguity::{coalescing_vars, contiguous_arrays};
use crate::loopnest::LoopNest;
use crate::program::{TcrOp, TcrProgram};
use std::fmt;
use tensor::IndexVar;

/// Maximum threads per block accepted by every simulated architecture.
pub const MAX_THREADS_PER_BLOCK: usize = 1024;

/// Largest unroll factor considered (the paper uses factors up to 10).
pub const MAX_UNROLL: usize = 10;

/// Largest array (bytes) eligible for whole-array shared-memory staging.
pub const MAX_STAGED_BYTES: usize = 16 << 10;

/// Inputs worth staging under a given thread mapping: small arrays whose
/// elements are shared by at least two threads of a block.
pub fn staging_candidates(
    program: &TcrProgram,
    op: &TcrOp,
    tx: &IndexVar,
    ty: Option<&IndexVar>,
) -> Vec<usize> {
    let ext = |v: &IndexVar| program.dims[v];
    let tpb = ext(tx) * ty.map(ext).unwrap_or(1);
    op.inputs
        .iter()
        .enumerate()
        .filter(|(_, &id)| {
            let decl = &program.arrays[id];
            let bytes = 8 * decl.len(&program.dims);
            if bytes > MAX_STAGED_BYTES {
                return false;
            }
            // Distinct elements touched by the block's threads in one
            // interior iteration: extents of thread-mapped vars the
            // reference actually depends on.
            let mut distinct = 1usize;
            if decl.stride_of(tx, &program.dims).is_some() {
                distinct *= ext(tx);
            }
            if let Some(tyv) = ty {
                if decl.stride_of(tyv, &program.dims).is_some() {
                    distinct *= ext(tyv);
                }
            }
            tpb / distinct.max(1) >= 2
        })
        .map(|(pos, _)| pos)
        .collect()
}

/// A decomposition choice: a loop variable or the literal `1` (dimension
/// absent, matching Orio's `'1'` PERMUTE value).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum LoopSel {
    One,
    Var(IndexVar),
}

impl LoopSel {
    pub fn var(&self) -> Option<&IndexVar> {
        match self {
            LoopSel::One => None,
            LoopSel::Var(v) => Some(v),
        }
    }
}

impl fmt::Display for LoopSel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoopSel::One => write!(f, "1"),
            LoopSel::Var(v) => write!(f, "{v}"),
        }
    }
}

/// One fully-specified configuration for a single statement.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct OpConfig {
    pub tx: IndexVar,
    pub ty: LoopSel,
    /// `One` only in the degenerate single-parallel-loop fallback (grid 1).
    pub bx: LoopSel,
    pub by: LoopSel,
    /// Kernel-interior loops, outermost first (unmapped parallel loops and
    /// all summation loops, in the chosen permutation).
    pub interior: Vec<IndexVar>,
    /// Unroll factor for the innermost interior loop (1 = none).
    pub unroll: usize,
    /// Input positions (indices into the statement's input list) staged in
    /// shared memory: the whole (small) array is cooperatively loaded per
    /// block. Part of Khan's decision algorithm's "data placement in
    /// different levels of the memory hierarchy".
    pub staged: Vec<usize>,
}

impl OpConfig {
    /// All loop variables consumed by the GPU decomposition.
    pub fn mapped_vars(&self) -> Vec<&IndexVar> {
        self.mapped_vars_iter().collect()
    }

    /// The grid/block-mapped loop variables, without allocating.
    pub fn mapped_vars_iter(&self) -> impl Iterator<Item = &IndexVar> {
        std::iter::once(&self.tx).chain(
            [&self.ty, &self.bx, &self.by]
                .into_iter()
                .filter_map(|s| s.var()),
        )
    }
}

/// The candidate lists the decision algorithm produced for one statement,
/// plus the enumerated valid configurations.
#[derive(Clone, Debug)]
pub struct OpSpace {
    pub op_index: usize,
    pub tx_candidates: Vec<IndexVar>,
    pub ty_candidates: Vec<LoopSel>,
    pub bx_candidates: Vec<IndexVar>,
    pub by_candidates: Vec<LoopSel>,
    pub configs: Vec<OpConfig>,
}

/// Search space of a whole TCR program: one [`OpSpace`] per statement.
#[derive(Clone, Debug)]
pub struct ProgramSpace {
    pub per_op: Vec<OpSpace>,
}

/// A program configuration: for each statement, an index into its
/// [`OpSpace::configs`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Configuration {
    pub choice: Vec<usize>,
}

impl ProgramSpace {
    /// Builds the search space for every statement of `program`.
    pub fn build(program: &TcrProgram) -> Self {
        let per_op = program
            .ops
            .iter()
            .enumerate()
            .map(|(i, op)| build_op_space(program, op, i))
            .collect();
        ProgramSpace { per_op }
    }

    /// Total number of program configurations (product across statements).
    pub fn len(&self) -> u128 {
        self.per_op
            .iter()
            .map(|s| s.configs.len() as u128)
            .product()
    }

    pub fn is_empty(&self) -> bool {
        self.per_op.iter().any(|s| s.configs.is_empty())
    }

    /// Mixed-radix decode of a flat configuration id.
    pub fn config(&self, mut id: u128) -> Configuration {
        assert!(id < self.len(), "configuration id out of range");
        let mut choice = vec![0usize; self.per_op.len()];
        for (k, s) in self.per_op.iter().enumerate().rev() {
            let radix = s.configs.len() as u128;
            choice[k] = (id % radix) as usize;
            id /= radix;
        }
        Configuration { choice }
    }

    /// Mixed-radix decode into a caller-provided scratch buffer (resized to
    /// one digit per op), so hot evaluation loops can reuse one allocation
    /// across many ids instead of building a [`Configuration`] each time.
    pub fn choices_into(&self, mut id: u128, out: &mut Vec<usize>) {
        assert!(id < self.len(), "configuration id out of range");
        out.clear();
        out.resize(self.per_op.len(), 0);
        for (k, s) in self.per_op.iter().enumerate().rev() {
            let radix = s.configs.len() as u128;
            out[k] = (id % radix) as usize;
            id /= radix;
        }
    }

    /// Inverse of [`ProgramSpace::config`].
    pub fn config_id(&self, c: &Configuration) -> u128 {
        assert_eq!(c.choice.len(), self.per_op.len());
        let mut id = 0u128;
        for (k, s) in self.per_op.iter().enumerate() {
            debug_assert!(c.choice[k] < s.configs.len());
            id = id * s.configs.len() as u128 + c.choice[k] as u128;
        }
        id
    }

    /// Per-statement view of a configuration.
    pub fn op_config<'a>(&'a self, c: &Configuration, op: usize) -> &'a OpConfig {
        &self.per_op[op].configs[c.choice[op]]
    }
}

/// Decision algorithm: candidate generation + enumeration of valid configs
/// for one statement.
fn build_op_space(program: &TcrProgram, op: &TcrOp, op_index: usize) -> OpSpace {
    let nest = LoopNest::for_op(program, op);
    let default_order = nest.vars();
    let parallel = nest.parallel_vars();
    let sequential = nest.sequential_vars();

    // ThreadX: coalescing-friendly parallel loops.
    let mut tx_candidates: Vec<IndexVar> = coalescing_vars(program, op)
        .into_iter()
        .filter(|v| parallel.contains(v))
        .collect();
    if tx_candidates.is_empty() {
        // Degenerate statement (no unit-stride parallel loop): fall back to
        // the innermost parallel loop so a mapping always exists.
        if let Some(v) = parallel.last() {
            tx_candidates.push(v.clone());
        }
    }

    // Pool for ThreadY / BlockX / BlockY.
    let referenced: Vec<usize> = {
        let mut ids = op.inputs.clone();
        ids.push(op.output);
        ids.sort_unstable();
        ids.dedup();
        ids
    };
    let contiguous = contiguous_arrays(program, op, &default_order);
    let mut pool: Vec<IndexVar> = Vec::new();
    // Rule 1: contiguous tensors, innermost → outermost.
    for &id in &contiguous {
        for ix in program.arrays[id].indices.iter().rev() {
            if parallel.contains(ix) && !pool.contains(ix) {
                pool.push(ix.clone());
            }
        }
    }
    // Rule 2: if fewer than four, non-contiguous tensors, outermost → innermost.
    if pool.len() < 4 {
        for &id in &referenced {
            if contiguous.contains(&id) {
                continue;
            }
            for ix in program.arrays[id].indices.iter() {
                if parallel.contains(ix) && !pool.contains(ix) {
                    pool.push(ix.clone());
                }
            }
        }
    }
    if pool.is_empty() {
        pool = parallel.clone();
    }

    let ty_candidates: Vec<LoopSel> = std::iter::once(LoopSel::One)
        .chain(pool.iter().cloned().map(LoopSel::Var))
        .collect();
    let bx_candidates: Vec<IndexVar> = pool.clone();
    let by_candidates: Vec<LoopSel> = std::iter::once(LoopSel::One)
        .chain(pool.iter().cloned().map(LoopSel::Var))
        .collect();

    // Enumerate valid configurations.
    let ext = |v: &IndexVar| program.dims[v];
    let mut configs = Vec::new();
    for tx in &tx_candidates {
        for ty in &ty_candidates {
            // Distinctness (the Orio PERMUTE constraint) and block size.
            if ty.var() == Some(tx) {
                continue;
            }
            let block_threads = ext(tx) * ty.var().map(ext).unwrap_or(1);
            if block_threads > MAX_THREADS_PER_BLOCK {
                continue;
            }
            for bx in &bx_candidates {
                if bx == tx || Some(bx) == ty.var() {
                    continue;
                }
                for by in &by_candidates {
                    if by.var() == Some(tx) || by.var() == Some(bx) {
                        continue;
                    }
                    if by.var().is_some() && by.var() == ty.var() {
                        continue;
                    }
                    let mapped: Vec<&IndexVar> = {
                        let mut m = vec![tx, bx];
                        m.extend(ty.var());
                        m.extend(by.var());
                        m
                    };
                    // Interior loops: unmapped parallel (in default order)
                    // then summation loops.
                    let base_interior: Vec<IndexVar> = parallel
                        .iter()
                        .filter(|v| !mapped.contains(v))
                        .chain(sequential.iter())
                        .cloned()
                        .collect();
                    // Shared-memory staging choices under this thread map
                    // (capped at two candidates to bound the blow-up).
                    let mut cands = staging_candidates(program, op, tx, ty.var());
                    cands.truncate(2);
                    let stagings = staging_subsets(&cands);
                    for interior in interior_orders(&base_interior) {
                        let max_uf = interior.last().map(|v| ext(v).min(MAX_UNROLL)).unwrap_or(1);
                        for unroll in 1..=max_uf {
                            for staged in &stagings {
                                configs.push(OpConfig {
                                    tx: tx.clone(),
                                    ty: ty.clone(),
                                    bx: LoopSel::Var(bx.clone()),
                                    by: by.clone(),
                                    interior: interior.clone(),
                                    unroll,
                                    staged: staged.clone(),
                                });
                            }
                        }
                    }
                }
            }
        }
    }

    debug_assert!(!configs.is_empty() || parallel.len() < 2);
    // Statements with a single parallel loop cannot fill tx and bx with
    // distinct loops; allow bx == a summation-free fallback by mapping the
    // single parallel loop to tx and blocks over nothing (grid 1).
    if configs.is_empty() {
        if let Some(tx) = tx_candidates.first() {
            let base_interior: Vec<IndexVar> = parallel
                .iter()
                .filter(|v| *v != tx)
                .chain(sequential.iter())
                .cloned()
                .collect();
            for interior in interior_orders(&base_interior) {
                let max_uf = interior.last().map(|v| ext(v).min(MAX_UNROLL)).unwrap_or(1);
                for unroll in 1..=max_uf {
                    configs.push(OpConfig {
                        tx: tx.clone(),
                        ty: LoopSel::One,
                        bx: LoopSel::One,
                        by: LoopSel::One,
                        interior: interior.clone(),
                        unroll,
                        staged: Vec::new(),
                    });
                }
            }
        }
    }

    OpSpace {
        op_index,
        tx_candidates,
        ty_candidates,
        bx_candidates,
        by_candidates,
        configs,
    }
}

/// All subsets of the staging candidates (empty set first).
fn staging_subsets(cands: &[usize]) -> Vec<Vec<usize>> {
    let mut out = Vec::with_capacity(1 << cands.len());
    for mask in 0..(1u32 << cands.len()) {
        out.push(
            cands
                .iter()
                .enumerate()
                .filter(|(k, _)| mask >> k & 1 == 1)
                .map(|(_, &c)| c)
                .collect(),
        );
    }
    out
}

/// Permutations of the interior loops. All orders for up to three loops;
/// beyond that, the leading loops stay fixed and only the innermost three
/// are permuted (keeps the space near the paper's scale).
fn interior_orders(base: &[IndexVar]) -> Vec<Vec<IndexVar>> {
    if base.len() <= 1 {
        return vec![base.to_vec()];
    }
    let (prefix, tail) = if base.len() <= 3 {
        (&base[..0], base)
    } else {
        base.split_at(base.len() - 3)
    };
    permutations(tail)
        .into_iter()
        .map(|perm| {
            let mut v = prefix.to_vec();
            v.extend(perm);
            v
        })
        .collect()
}

fn permutations(items: &[IndexVar]) -> Vec<Vec<IndexVar>> {
    if items.len() <= 1 {
        return vec![items.to_vec()];
    }
    let mut out = Vec::new();
    for (i, first) in items.iter().enumerate() {
        let rest: Vec<IndexVar> = items
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(_, v)| v.clone())
            .collect();
        for mut tail in permutations(&rest) {
            tail.insert(0, first.clone());
            out.push(tail);
        }
    }
    out
}

/// True when a configuration maps the same loop to two dimensions (the
/// Orio PERMUTE constraint forbids this) — exposed for tests.
pub fn violates_permute_constraint(cfg: &OpConfig) -> bool {
    let mut seen: Vec<&IndexVar> = Vec::new();
    for v in cfg.mapped_vars() {
        if seen.contains(&v) {
            return true;
        }
        seen.push(v);
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::tests_support::{eqn1_program, matmul_program};

    #[test]
    fn matmul_space_candidates() {
        let p = matmul_program(8);
        let space = ProgramSpace::build(&p);
        let s = &space.per_op[0];
        // ThreadX must be coalescing-friendly parallel loops: k (unit in B
        // and C); j is unit-stride in A but j is a summation loop.
        assert_eq!(s.tx_candidates, vec![IndexVar::new("k")]);
        assert!(s.ty_candidates.contains(&LoopSel::One));
        assert!(!s.configs.is_empty());
    }

    #[test]
    fn all_configs_satisfy_permute_constraint() {
        let p = eqn1_program(10);
        let space = ProgramSpace::build(&p);
        for s in &space.per_op {
            for c in &s.configs {
                assert!(
                    !violates_permute_constraint(c),
                    "op {} config {:?} duplicates a loop",
                    s.op_index,
                    c
                );
            }
        }
    }

    #[test]
    fn all_mapped_loops_are_parallel() {
        let p = eqn1_program(10);
        let space = ProgramSpace::build(&p);
        for (s, op) in space.per_op.iter().zip(&p.ops) {
            let nest = LoopNest::for_op(&p, op);
            let par = nest.parallel_vars();
            for c in &s.configs {
                for v in c.mapped_vars() {
                    assert!(par.contains(v), "mapped loop {v} is not parallel");
                }
            }
        }
    }

    #[test]
    fn interior_covers_unmapped_loops_exactly() {
        let p = eqn1_program(10);
        let space = ProgramSpace::build(&p);
        for (s, op) in space.per_op.iter().zip(&p.ops) {
            let all = p.loop_vars(op);
            for c in &s.configs {
                let mut covered: Vec<&IndexVar> = c.mapped_vars();
                covered.extend(c.interior.iter());
                let mut covered: Vec<String> =
                    covered.iter().map(|v| v.name().to_string()).collect();
                covered.sort();
                covered.dedup();
                let mut want: Vec<String> = all.iter().map(|v| v.name().to_string()).collect();
                want.sort();
                assert_eq!(covered, want);
            }
        }
    }

    #[test]
    fn unroll_bounded_by_extent_and_max() {
        let p = eqn1_program(10);
        let space = ProgramSpace::build(&p);
        for s in &space.per_op {
            for c in &s.configs {
                assert!(c.unroll >= 1 && c.unroll <= MAX_UNROLL);
                if let Some(inner) = c.interior.last() {
                    assert!(c.unroll <= p.dims[inner]);
                } else {
                    assert_eq!(c.unroll, 1);
                }
            }
        }
    }

    #[test]
    fn mixed_radix_roundtrip() {
        let p = eqn1_program(10);
        let space = ProgramSpace::build(&p);
        let n = space.len();
        assert!(n > 0);
        for id in [0u128, 1, n / 2, n - 1] {
            let c = space.config(id);
            assert_eq!(space.config_id(&c), id);
        }
    }

    #[test]
    fn eqn1_space_is_large() {
        let p = eqn1_program(10);
        let space = ProgramSpace::build(&p);
        // Three statements, each with hundreds+ configs: a search space the
        // paper calls "computationally prohibitive" to enumerate.
        assert!(space.len() > 10_000, "space = {}", space.len());
    }

    #[test]
    fn staging_candidates_detected_for_small_shared_matrix() {
        // lg3-like statement: ur[e i j k] = Sum(l, D[i l] u[e l j k]).
        // D is tiny and shared by every thread of a (tx=k, ty=j) block.
        use octopi::ast::{Contraction, TensorRef};
        use octopi::enumerate_factorizations;
        use tensor::index::uniform_dims;
        let mut dims = uniform_dims(&["i", "j", "k", "l"], 12);
        dims.insert("e".into(), 16);
        let c = Contraction {
            output: TensorRef::new("ur", &["e", "i", "j", "k"]),
            sum_indices: vec!["l".into()],
            terms: vec![
                TensorRef::new("D", &["i", "l"]),
                TensorRef::new("u", &["e", "l", "j", "k"]),
            ],
            accumulate: false,
            coefficient: 1.0,
        };
        let fs = enumerate_factorizations(&c, &dims);
        let p = TcrProgram::from_factorization("lg3", &c, &fs[0], &dims);
        let cands = staging_candidates(
            &p,
            &p.ops[0],
            &IndexVar::new("k"),
            Some(&IndexVar::new("j")),
        );
        // D (input position 0) qualifies; u does not (every thread touches
        // distinct elements and it is large).
        assert_eq!(cands, vec![0]);
        // And the enumerated space contains staged configurations.
        let space = ProgramSpace::build(&p);
        assert!(space.per_op[0].configs.iter().any(|c| !c.staged.is_empty()));
        assert!(space.per_op[0].configs.iter().any(|c| c.staged.is_empty()));
    }

    #[test]
    fn no_staging_candidates_when_every_thread_is_distinct() {
        let p = matmul_program(64);
        // tx=k, ty absent: A[i,j] is invariant to k -> shared; but with
        // tx=i (varies A) and array large, no candidate.
        let cands = staging_candidates(&p, &p.ops[0], &IndexVar::new("k"), None);
        // A (64x64 = 32 KB) exceeds MAX_STAGED_BYTES; B varies with tx.
        assert!(cands.is_empty(), "{cands:?}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn config_id_range_checked() {
        let p = matmul_program(8);
        let space = ProgramSpace::build(&p);
        let _ = space.config(space.len());
    }

    #[test]
    fn block_size_within_limits() {
        let p = eqn1_program(10);
        let space = ProgramSpace::build(&p);
        for s in &space.per_op {
            for c in &s.configs {
                let threads = p.dims[&c.tx] * c.ty.var().map(|v| p.dims[v]).unwrap_or(1);
                assert!(threads <= MAX_THREADS_PER_BLOCK);
            }
        }
    }
}
