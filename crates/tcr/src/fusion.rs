//! Applied loop fusion (§III of the paper).
//!
//! OCTOPI's fusion analysis (in the `octopi` crate) identifies loops shared
//! between a temporary's producer and its consumer. This module *applies*
//! the transformation on the GPU: the whole chain of a factorized
//! statement becomes **one** kernel in which the fused loops are mapped to
//! blocks and each temporary collapses to a per-block slice held in shared
//! memory, exactly like the paper's CPU example where `T1[i l m]` becomes a
//! `[l m]` slice inside the fused `i` loop:
//!
//! ```text
//! for i                      ← one block per i
//!   T1[l m] slice (shared)   ← phase 0, __syncthreads()
//!   T2[j l] slice (shared)   ← phase 1, __syncthreads()
//!   V[i j k] (global)        ← phase 2
//! ```
//!
//! Fusion eliminates the per-kernel launch overheads and all global-memory
//! traffic for the temporaries — the paper's "better memory usage".

use crate::program::{ArrayKind, TcrProgram};
use crate::space::MAX_THREADS_PER_BLOCK;
use tensor::IndexVar;

/// How one phase (one statement of the chain) reads an operand.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FusedOperand {
    /// A real input tensor in global memory: `(array id, per-var strides)`.
    Global {
        array: usize,
        terms: Vec<(IndexVar, usize)>,
    },
    /// A temporary slice in shared memory: `(slice id, compact strides over
    /// the slice's own dims)`.
    Slice {
        slice: usize,
        terms: Vec<(IndexVar, usize)>,
    },
}

impl FusedOperand {
    pub fn stride_of(&self, v: &IndexVar) -> usize {
        let terms = match self {
            FusedOperand::Global { terms, .. } | FusedOperand::Slice { terms, .. } => terms,
        };
        terms
            .iter()
            .find(|(t, _)| t == v)
            .map(|(_, s)| *s)
            .unwrap_or(0)
    }
}

/// A shared-memory slice of one temporary (its declaration minus the fused
/// variables, compactly laid out).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TempSlice {
    /// Array id of the temporary in the program.
    pub array: usize,
    pub name: String,
    /// Remaining dims in declaration order with compact strides.
    pub dims: Vec<(IndexVar, usize, usize)>, // (var, extent, stride)
    pub len: usize,
}

/// One phase of the fused kernel: computes a temp slice or the final
/// output.
#[derive(Clone, Debug)]
pub struct FusionPhase {
    pub op_index: usize,
    /// Where the result goes: `Some(slice id)` for a temp, `None` = final
    /// output written to global memory.
    pub target_slice: Option<usize>,
    /// Strides of the final output in global memory (empty for slices).
    pub out_terms: Vec<(IndexVar, usize)>,
    /// Parallel (slice/output) dims covered by threads or per-thread loops:
    /// `(var, extent)`, innermost last.
    pub par_dims: Vec<(IndexVar, usize)>,
    /// Summation loops of this phase: `(var, extent)`.
    pub sum_dims: Vec<(IndexVar, usize)>,
    pub operands: Vec<FusedOperand>,
    /// Scalar multiplier of the accumulated product.
    pub coefficient: f64,
}

/// A whole factorized statement fused into one kernel.
#[derive(Clone, Debug)]
pub struct FusedKernel {
    pub name: String,
    /// Fused loops, one block per joint value: `(var, extent)`.
    pub fused: Vec<(IndexVar, usize)>,
    /// Thread-block shape: `tx` covers the innermost parallel dim of each
    /// phase, `ty` the next (phases with smaller dims idle the rest).
    pub block: (usize, usize),
    pub slices: Vec<TempSlice>,
    pub phases: Vec<FusionPhase>,
    /// True when the final output accumulates into existing data.
    pub accumulate: bool,
}

impl FusedKernel {
    pub fn threads_per_block(&self) -> usize {
        self.block.0 * self.block.1
    }

    pub fn num_blocks(&self) -> usize {
        self.fused.iter().map(|(_, e)| e).product()
    }

    /// Shared memory for all slices, bytes.
    pub fn smem_bytes(&self) -> usize {
        self.slices.iter().map(|s| s.len * 8).sum()
    }

    /// Total floating-point operations (identical to the unfused chain).
    pub fn flops(&self) -> u64 {
        let blocks = self.num_blocks() as u64;
        self.phases
            .iter()
            .map(|p| {
                let space: u64 = p
                    .par_dims
                    .iter()
                    .chain(p.sum_dims.iter())
                    .map(|(_, e)| *e as u64)
                    .product();
                blocks * space * p.operands.len().max(1) as u64
            })
            .sum()
    }
}

/// Compact strides for `vars` (row-major over the listed extents).
fn compact_strides(dims: &[(IndexVar, usize)]) -> Vec<(IndexVar, usize, usize)> {
    let mut out: Vec<(IndexVar, usize, usize)> = Vec::with_capacity(dims.len());
    let mut stride = 1usize;
    for (v, e) in dims.iter().rev() {
        out.push((v.clone(), *e, stride));
        stride *= e;
    }
    out.reverse();
    out
}

/// Attempts to fuse the whole chain of `program` into one kernel.
///
/// Requirements (returns `None` when unmet):
/// - at least two statements (otherwise fusion is a no-op),
/// - a non-empty set of *fused* variables: output indices present in the
///   declaration of **every** statement's output (so each block owns a
///   disjoint part of every temporary — no recomputation, no cross-block
///   communication),
/// - every temp slice fits in 48 KB of shared memory together,
/// - the thread block stays within hardware limits.
pub fn build_fused(program: &TcrProgram) -> Option<FusedKernel> {
    if program.ops.len() < 2 {
        return None;
    }
    // Fused vars: present in every statement's output declaration.
    let first_out = &program.arrays[program.ops[0].output];
    let fused_vars: Vec<IndexVar> = first_out
        .indices
        .iter()
        .filter(|v| {
            program
                .ops
                .iter()
                .all(|op| program.arrays[op.output].indices.contains(v))
        })
        .cloned()
        .collect();
    if fused_vars.is_empty() {
        return None;
    }
    let fused: Vec<(IndexVar, usize)> = fused_vars
        .iter()
        .map(|v| (v.clone(), program.dims[v]))
        .collect();

    // Slices for every temporary.
    let mut slices: Vec<TempSlice> = Vec::new();
    let mut slice_of_array: Vec<Option<usize>> = vec![None; program.arrays.len()];
    for op in &program.ops {
        let decl = &program.arrays[op.output];
        if decl.kind != ArrayKind::Temp {
            continue;
        }
        let rest: Vec<(IndexVar, usize)> = decl
            .indices
            .iter()
            .filter(|v| !fused_vars.contains(v))
            .map(|v| (v.clone(), program.dims[v]))
            .collect();
        let dims = compact_strides(&rest);
        let len: usize = rest.iter().map(|(_, e)| e).product();
        slice_of_array[op.output] = Some(slices.len());
        slices.push(TempSlice {
            array: op.output,
            name: decl.name.clone(),
            dims,
            len,
        });
    }
    let smem: usize = slices.iter().map(|s| s.len * 8).sum();
    if smem > 48 << 10 {
        return None;
    }

    // Phases.
    let mut block = (1usize, 1usize);
    let mut phases = Vec::with_capacity(program.ops.len());
    for (op_index, op) in program.ops.iter().enumerate() {
        let out_decl = &program.arrays[op.output];
        let par_dims: Vec<(IndexVar, usize)> = out_decl
            .indices
            .iter()
            .filter(|v| !fused_vars.contains(v))
            .map(|v| (v.clone(), program.dims[v]))
            .collect();
        let sum_dims: Vec<(IndexVar, usize)> = op
            .sum_indices
            .iter()
            .map(|v| (v.clone(), program.dims[v]))
            .collect();
        // Thread coverage: innermost parallel dim -> tx, next -> ty.
        let n = par_dims.len();
        if n >= 1 {
            block.0 = block.0.max(par_dims[n - 1].1);
        }
        if n >= 2 {
            block.1 = block.1.max(par_dims[n - 2].1);
        }

        let operand_of = |id: usize| -> FusedOperand {
            if let Some(sid) = slice_of_array[id] {
                FusedOperand::Slice {
                    slice: sid,
                    terms: slices[sid]
                        .dims
                        .iter()
                        .map(|(v, _, s)| (v.clone(), *s))
                        .collect(),
                }
            } else {
                let decl = &program.arrays[id];
                let strides = decl.shape(&program.dims).strides();
                FusedOperand::Global {
                    array: id,
                    terms: decl.indices.iter().cloned().zip(strides).collect(),
                }
            }
        };

        let target_slice = slice_of_array[op.output];
        let out_terms = match target_slice {
            None => {
                let strides = out_decl.shape(&program.dims).strides();
                out_decl.indices.iter().cloned().zip(strides).collect()
            }
            Some(sid) => slices[sid]
                .dims
                .iter()
                .map(|(v, _, s)| (v.clone(), *s))
                .collect(),
        };

        phases.push(FusionPhase {
            op_index,
            target_slice,
            out_terms,
            par_dims,
            sum_dims,
            operands: op.inputs.iter().map(|&id| operand_of(id)).collect(),
            coefficient: op.coefficient,
        });
    }
    if block.0 * block.1 > MAX_THREADS_PER_BLOCK {
        return None;
    }

    Some(FusedKernel {
        name: format!("{}_fused", program.name),
        fused,
        block,
        slices,
        phases,
        accumulate: false,
    })
}

/// Fusion legality double-check: the only cross-phase data flow is through
/// the slices, and each slice is written before it is read.
pub fn validate_fused(kernel: &FusedKernel, program: &TcrProgram) -> Result<(), String> {
    let mut written: Vec<usize> = Vec::new();
    for phase in &kernel.phases {
        for opnd in &phase.operands {
            if let FusedOperand::Slice { slice, .. } = opnd {
                if !written.contains(slice) {
                    return Err(format!(
                        "phase {} reads slice {} before it is produced",
                        phase.op_index, slice
                    ));
                }
            }
        }
        if let Some(sid) = phase.target_slice {
            written.push(sid);
        }
    }
    // Every statement of the program must appear exactly once.
    if kernel.phases.len() != program.ops.len() {
        return Err("phase count mismatch".to_string());
    }
    Ok(())
}

/// Helper for the flop-conservation check used by callers and tests.
pub fn flops_match_program(kernel: &FusedKernel, program: &TcrProgram) -> bool {
    kernel.flops() == program.flops()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::tests_support::{eqn1_program, matmul_program};

    #[test]
    fn eqn1_best_version_fuses_over_shared_output_index() {
        let p = eqn1_program(10);
        let k = build_fused(&p).expect("eqn1 chain fuses");
        // T1[i l m], T2[j i l], V[i j k] share exactly {i}.
        assert_eq!(k.fused.len(), 1);
        assert_eq!(k.num_blocks(), 10);
        assert_eq!(k.phases.len(), 3);
        assert_eq!(k.slices.len(), 2);
        // Slices are 2-D (100 elements each).
        for s in &k.slices {
            assert_eq!(s.len, 100);
        }
        assert!(k.smem_bytes() <= 48 << 10);
        validate_fused(&k, &p).unwrap();
        assert!(flops_match_program(&k, &p));
    }

    #[test]
    fn single_statement_does_not_fuse() {
        let p = matmul_program(8);
        assert!(build_fused(&p).is_none());
    }

    #[test]
    fn block_shape_covers_largest_phase() {
        let p = eqn1_program(10);
        let k = build_fused(&p).unwrap();
        let (bx, by) = k.block;
        assert!(bx >= 10 && by >= 10, "phases have 2-D 10x10 slices");
        assert!(bx * by <= MAX_THREADS_PER_BLOCK);
    }

    #[test]
    fn oversized_slices_refuse_to_fuse() {
        // At extent 30, a rank-4 temp slice (3 dims after fusing 1) is
        // 30^3 * 8 B = 216 KB > 48 KB.
        let p = eqn1_program(30);
        // Some variants may still fuse if their temps are small; the best
        // variant of eqn1 has rank-3 temps -> slices 900 elements = 7.2 KB,
        // which *does* fit. Construct the check directly instead:
        let k = build_fused(&p);
        if let Some(k) = k {
            assert!(k.smem_bytes() <= 48 << 10);
        }
    }

    #[test]
    fn fused_operand_strides_resolve() {
        let p = eqn1_program(10);
        let k = build_fused(&p).unwrap();
        // Phase 1 reads slice 0 (T1): its operand must be a Slice with
        // compact strides.
        let reads_slice = k.phases[1]
            .operands
            .iter()
            .any(|o| matches!(o, FusedOperand::Slice { .. }));
        assert!(reads_slice);
    }
}
