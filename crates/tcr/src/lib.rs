//! TCR — Tensor Contraction Representation (paper §IV).
//!
//! The middle layer of the Barracuda pipeline. A [`TcrProgram`] is a
//! sequence of binary-contraction statements over declared arrays (the
//! direct analog of Figure 2(b) in the paper). From it, this crate:
//!
//! - builds per-statement loop nests ([`loopnest`]),
//! - runs the simplified tensor dependence analysis (summation indices carry
//!   dependences; all output indices are parallel — [`dependence`]),
//! - classifies *contiguous tensors* under a loop order ([`contiguity`]),
//! - generates the GPU autotuning **search space** with the paper's decision
//!   algorithm: ThreadX/ThreadY/BlockX/BlockY PERMUTE parameters, interior
//!   loop orders, and unroll factors ([`space`]),
//! - applies a chosen configuration, producing a [`mapping::MappedKernel`]
//!   — the CUDA-CHiLL analog: grid/block decomposition, sequential interior
//!   loops, unrolling and scalar replacement ([`mapping`]),
//! - emits CUDA C source and Orio-style annotations ([`codegen`]).

pub mod codegen;
pub mod contiguity;
pub mod dependence;
pub mod fusion;
pub mod loopnest;
pub mod mapping;
pub mod program;
pub mod prune;
pub mod space;

pub use fusion::{build_fused, FusedKernel};
pub use mapping::{map_kernel, MappedKernel};
pub use program::{ArrayDecl, ArrayKind, TcrOp, TcrProgram};
pub use prune::{prune_space, PruneRules};
pub use space::{Configuration, LoopSel, OpConfig, OpSpace, ProgramSpace};
