//! Data dependence analysis for tensor contraction statements.
//!
//! The paper (§IV) uses a dependence analysis *specialized to the domain*:
//! "Dependences can be carried only by loops with indices present in the
//! right-hand side but not in the left-hand side of a tensor operation.
//! Loops corresponding to all remaining indices may be executed in parallel."
//!
//! [`carried_by`] implements that rule. [`verify_against_pairwise`] checks
//! it against the classic general pairwise test (two iterations conflict iff
//! they touch the same element and at least one access is a write), run
//! exhaustively on a small grid — the domain-specific shortcut must agree
//! with the general analysis on every statement we generate.

use crate::program::{TcrOp, TcrProgram};
use tensor::{IndexVar, Shape};

/// Loops that carry a dependence for this statement (the summation loops).
pub fn carried_by(program: &TcrProgram, op: &TcrOp) -> Vec<IndexVar> {
    // RHS indices not on the LHS are exactly the summation indices of a
    // well-formed statement; recompute from the arrays to keep the analysis
    // independent of how the op was constructed.
    let lhs = &program.arrays[op.output].indices;
    let mut carried: Vec<IndexVar> = Vec::new();
    for id in &op.inputs {
        for ix in &program.arrays[*id].indices {
            if !lhs.contains(ix) && !carried.contains(ix) {
                carried.push(ix.clone());
            }
        }
    }
    carried
}

/// Loops that may run fully in parallel (the output loops).
pub fn parallel_loops(program: &TcrProgram, op: &TcrOp) -> Vec<IndexVar> {
    program.arrays[op.output].indices.clone()
}

/// Exhaustive general dependence test on a shrunken iteration space.
///
/// Every pair of distinct iteration points is examined: a conflict exists
/// when both points write the same output element (the only write in a
/// contraction statement is the `+=`). The function returns the set of loop
/// variables `v` such that some conflicting pair differs in `v` — i.e. the
/// loops observed to carry a dependence — and asserts nothing by itself.
pub fn pairwise_carried(program: &TcrProgram, op: &TcrOp, probe_extent: usize) -> Vec<IndexVar> {
    let vars = program.loop_vars(op);
    let extents: Vec<usize> = vars
        .iter()
        .map(|ix| program.dims[ix].min(probe_extent))
        .collect();
    let space = Shape::new(extents);
    let out_decl = &program.arrays[op.output].indices;
    let out_pos: Vec<usize> = out_decl
        .iter()
        .map(|ix| {
            vars.iter()
                .position(|v| v == ix)
                .unwrap_or_else(|| panic!("output index {} missing from loop order", ix.name()))
        })
        .collect();

    let points: Vec<Vec<usize>> = space.iter().collect();
    let mut carried: Vec<IndexVar> = Vec::new();
    for (a, pa) in points.iter().enumerate() {
        for pb in points.iter().skip(a + 1) {
            let same_out = out_pos.iter().all(|&p| pa[p] == pb[p]);
            if !same_out {
                continue;
            }
            for (k, v) in vars.iter().enumerate() {
                if pa[k] != pb[k] && !carried.contains(v) {
                    carried.push(v.clone());
                }
            }
        }
    }
    carried.sort();
    carried
}

/// Checks the domain-specific rule against the exhaustive pairwise test.
/// Returns `Ok(())` when they identify the same carried-loop set.
pub fn verify_against_pairwise(
    program: &TcrProgram,
    op: &TcrOp,
    probe_extent: usize,
) -> Result<(), String> {
    let mut fast = carried_by(program, op);
    fast.sort();
    let slow = pairwise_carried(program, op, probe_extent);
    if fast == slow {
        Ok(())
    } else {
        Err(format!(
            "simplified analysis found {fast:?}, pairwise found {slow:?}"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::tests_support::{eqn1_program, matmul_program};

    #[test]
    fn matmul_carried_by_j_only() {
        let p = matmul_program(4);
        let carried = carried_by(&p, &p.ops[0]);
        assert_eq!(carried, vec![IndexVar::new("j")]);
        assert_eq!(
            parallel_loops(&p, &p.ops[0]),
            vec![IndexVar::new("i"), IndexVar::new("k")]
        );
    }

    #[test]
    fn simplified_matches_pairwise_on_matmul() {
        let p = matmul_program(4);
        verify_against_pairwise(&p, &p.ops[0], 3).unwrap();
    }

    #[test]
    fn simplified_matches_pairwise_on_eqn1_all_ops() {
        let p = eqn1_program(4);
        for op in &p.ops {
            verify_against_pairwise(&p, op, 3).unwrap();
        }
    }

    #[test]
    fn outer_product_has_no_carried_loops() {
        use octopi::ast::{Contraction, TensorRef};
        use octopi::enumerate_factorizations;
        use tensor::index::uniform_dims;
        let dims = uniform_dims(&["i", "j"], 4);
        let c = Contraction {
            output: TensorRef::new("T", &["i", "j"]),
            sum_indices: vec![],
            terms: vec![TensorRef::new("x", &["i"]), TensorRef::new("y", &["j"])],
            accumulate: false,
            coefficient: 1.0,
        };
        let fs = enumerate_factorizations(&c, &dims);
        let p = crate::program::TcrProgram::from_factorization("outer", &c, &fs[0], &dims);
        assert!(carried_by(&p, &p.ops[0]).is_empty());
        verify_against_pairwise(&p, &p.ops[0], 4).unwrap();
    }
}
