//! Loop-nest view of a TCR statement.
//!
//! TCR "creates a for loop for each different loop index listed in the
//! operation and uses the tensor equation to generate the statement" (§IV).
//! A [`LoopNest`] is the ordered (outer→inner) list of loops for one
//! statement; reordering it is always legal for the parallel loops and legal
//! for summation loops as long as they stay sequential within a thread.

use crate::program::{TcrOp, TcrProgram};
use tensor::IndexVar;

/// One loop of a nest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Loop {
    pub var: IndexVar,
    pub extent: usize,
    /// True when iterations are independent (index appears in the output).
    pub parallel: bool,
}

/// An ordered loop nest for one statement, outermost first.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoopNest {
    pub loops: Vec<Loop>,
}

impl LoopNest {
    /// Builds the default nest for a statement: output indices in the output
    /// array's declaration order (parallel), then summation indices
    /// (sequential).
    pub fn for_op(program: &TcrProgram, op: &TcrOp) -> Self {
        let out_indices = &program.arrays[op.output].indices;
        let mut loops: Vec<Loop> = out_indices
            .iter()
            .map(|ix| Loop {
                var: ix.clone(),
                extent: program.dims[ix],
                parallel: true,
            })
            .collect();
        loops.extend(op.sum_indices.iter().map(|ix| Loop {
            var: ix.clone(),
            extent: program.dims[ix],
            parallel: false,
        }));
        LoopNest { loops }
    }

    /// Variables in nest order.
    pub fn vars(&self) -> Vec<IndexVar> {
        self.loops.iter().map(|l| l.var.clone()).collect()
    }

    /// The parallel loops, in nest order.
    pub fn parallel_vars(&self) -> Vec<IndexVar> {
        self.loops
            .iter()
            .filter(|l| l.parallel)
            .map(|l| l.var.clone())
            .collect()
    }

    /// The sequential (summation) loops, in nest order.
    pub fn sequential_vars(&self) -> Vec<IndexVar> {
        self.loops
            .iter()
            .filter(|l| !l.parallel)
            .map(|l| l.var.clone())
            .collect()
    }

    /// Total iteration count of the nest.
    pub fn trip_count(&self) -> u64 {
        self.loops.iter().map(|l| l.extent as u64).product()
    }

    /// Reorders the nest to the given variable order. Panics when `order` is
    /// not a permutation of the nest variables.
    pub fn permuted(&self, order: &[IndexVar]) -> Self {
        assert_eq!(order.len(), self.loops.len(), "order length mismatch");
        let loops = order
            .iter()
            .map(|v| {
                self.loops
                    .iter()
                    .find(|l| &l.var == v)
                    .unwrap_or_else(|| panic!("variable {v} not in nest"))
                    .clone()
            })
            .collect();
        LoopNest { loops }
    }

    /// C-like rendering of the nest (used in reports and tests).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for (d, l) in self.loops.iter().enumerate() {
            let _ = writeln!(
                s,
                "{}for ({v} = 0; {v} < {e}; {v}++){p}",
                "  ".repeat(d),
                v = l.var,
                e = l.extent,
                p = if l.parallel { "  // parallel" } else { "" }
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::tests_support::eqn1_program;

    #[test]
    fn default_nest_orders_output_then_sums() {
        let p = eqn1_program(10);
        let nest = LoopNest::for_op(&p, &p.ops[0]);
        let n_par = nest.parallel_vars().len();
        let n_seq = nest.sequential_vars().len();
        assert_eq!(n_par + n_seq, nest.loops.len());
        // Parallel loops come first in the default order.
        assert!(nest.loops[..n_par].iter().all(|l| l.parallel));
        assert!(nest.loops[n_par..].iter().all(|l| !l.parallel));
    }

    #[test]
    fn trip_count_is_product() {
        let p = eqn1_program(10);
        let nest = LoopNest::for_op(&p, &p.ops[0]);
        assert_eq!(nest.trip_count(), 10u64.pow(nest.loops.len() as u32));
    }

    #[test]
    fn permuted_reorders() {
        let p = eqn1_program(10);
        let nest = LoopNest::for_op(&p, &p.ops[0]);
        let mut order = nest.vars();
        order.reverse();
        let r = nest.permuted(&order);
        assert_eq!(r.loops[0].var, *order.first().unwrap());
        assert_eq!(r.trip_count(), nest.trip_count());
    }

    #[test]
    #[should_panic(expected = "not in nest")]
    fn permuted_rejects_foreign_vars() {
        let p = eqn1_program(10);
        let nest = LoopNest::for_op(&p, &p.ops[0]);
        let mut order = nest.vars();
        order[0] = IndexVar::new("zz");
        let _ = nest.permuted(&order);
    }

    #[test]
    fn render_contains_parallel_marker() {
        let p = eqn1_program(4);
        let nest = LoopNest::for_op(&p, &p.ops[0]);
        assert!(nest.render().contains("// parallel"));
    }
}
