//! Search-space pruning — the paper's stated future work (§VIII):
//! "we plan to extend this work to further prune the autotuning search
//! space once we develop a better understanding of where pruning does not
//! impact quality of results".
//!
//! Each rule removes configurations a human GPU programmer would reject on
//! sight; `bin/pruning` in the bench crate quantifies the space reduction
//! against the quality loss.

use crate::mapping::map_kernel;
use crate::program::TcrProgram;
use crate::space::{OpConfig, OpSpace, ProgramSpace};

/// Which pruning rules to apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PruneRules {
    /// Keep only configurations whose ThreadX loop walks the *output* with
    /// unit stride (coalesced stores). Uncoalesced stores are almost never
    /// optimal for accumulation-heavy kernels.
    pub coalesced_output: bool,
    /// Restrict unroll factors to {1, 2, 4, 8, full extent}: intermediate
    /// factors rarely win and multiply the space by ~2x.
    pub unroll_sweet_spots: bool,
    /// Keep only interior orders whose innermost loop has unit stride in at
    /// least one referenced array (temporal locality), unless no order
    /// qualifies.
    pub local_innermost: bool,
    /// Drop multi-array staging subsets (stage at most one input).
    pub single_staging: bool,
}

impl PruneRules {
    /// Everything on.
    pub fn aggressive() -> Self {
        PruneRules {
            coalesced_output: true,
            unroll_sweet_spots: true,
            local_innermost: true,
            single_staging: true,
        }
    }

    /// A conservative subset that provably cannot exclude the optimum class
    /// for store-bound kernels.
    pub fn conservative() -> Self {
        PruneRules {
            coalesced_output: false,
            unroll_sweet_spots: true,
            local_innermost: false,
            single_staging: true,
        }
    }
}

fn keeps(program: &TcrProgram, op_index: usize, cfg: &OpConfig, rules: &PruneRules) -> bool {
    let op = &program.ops[op_index];
    if rules.coalesced_output {
        let out = &program.arrays[op.output];
        if out.stride_of(&cfg.tx, &program.dims) != Some(1) {
            return false;
        }
    }
    if rules.unroll_sweet_spots {
        let full = cfg.interior.last().map(|v| program.dims[v]).unwrap_or(1);
        let full = full.min(crate::space::MAX_UNROLL);
        if ![1usize, 2, 4, 8, full].contains(&cfg.unroll) {
            return false;
        }
    }
    if rules.local_innermost {
        if let Some(inner) = cfg.interior.last() {
            let referenced: Vec<usize> = {
                let mut ids = op.inputs.clone();
                ids.push(op.output);
                ids
            };
            let local = referenced
                .iter()
                .any(|&id| program.arrays[id].stride_of(inner, &program.dims) == Some(1));
            if !local {
                return false;
            }
        }
    }
    if rules.single_staging && cfg.staged.len() > 1 {
        return false;
    }
    true
}

/// Applies the rules, keeping at least one configuration per statement
/// (falls back to the unpruned list when a rule empties it).
pub fn prune_space(program: &TcrProgram, space: &ProgramSpace, rules: &PruneRules) -> ProgramSpace {
    let per_op = space
        .per_op
        .iter()
        .map(|s| {
            let kept: Vec<OpConfig> = s
                .configs
                .iter()
                .filter(|c| keeps(program, s.op_index, c, rules))
                .cloned()
                .collect();
            OpSpace {
                op_index: s.op_index,
                tx_candidates: s.tx_candidates.clone(),
                ty_candidates: s.ty_candidates.clone(),
                bx_candidates: s.bx_candidates.clone(),
                by_candidates: s.by_candidates.clone(),
                configs: if kept.is_empty() {
                    s.configs.clone()
                } else {
                    kept
                },
            }
        })
        .collect();
    ProgramSpace { per_op }
}

/// Sanity helper: every pruned configuration must still map to a valid
/// kernel. Returns the number of configurations checked.
pub fn validate_pruned(program: &TcrProgram, space: &ProgramSpace) -> usize {
    let mut checked = 0;
    for s in &space.per_op {
        for cfg in s.configs.iter().take(64) {
            let _ = map_kernel(program, s.op_index, cfg, false);
            checked += 1;
        }
    }
    checked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::tests_support::{eqn1_program, matmul_program};

    #[test]
    fn pruning_shrinks_the_space() {
        let p = eqn1_program(10);
        let full = ProgramSpace::build(&p);
        let pruned = prune_space(&p, &full, &PruneRules::aggressive());
        assert!(
            pruned.len() < full.len() / 4,
            "{} vs {}",
            pruned.len(),
            full.len()
        );
        assert!(!pruned.is_empty());
        assert!(validate_pruned(&p, &pruned) > 0);
    }

    #[test]
    fn coalesced_output_rule_holds() {
        let p = matmul_program(8);
        let full = ProgramSpace::build(&p);
        let rules = PruneRules {
            coalesced_output: true,
            unroll_sweet_spots: false,
            local_innermost: false,
            single_staging: false,
        };
        let pruned = prune_space(&p, &full, &rules);
        for s in &pruned.per_op {
            for c in &s.configs {
                let out = &p.arrays[p.ops[s.op_index].output];
                assert_eq!(out.stride_of(&c.tx, &p.dims), Some(1));
            }
        }
    }

    #[test]
    fn unroll_rule_keeps_sweet_spots_only() {
        let p = matmul_program(10);
        let full = ProgramSpace::build(&p);
        let rules = PruneRules {
            coalesced_output: false,
            unroll_sweet_spots: true,
            local_innermost: false,
            single_staging: false,
        };
        let pruned = prune_space(&p, &full, &rules);
        for s in &pruned.per_op {
            for c in &s.configs {
                assert!([1, 2, 4, 8, 10].contains(&c.unroll), "unroll {}", c.unroll);
            }
        }
    }

    #[test]
    fn pruning_never_empties_a_statement() {
        // A rule set that matches nothing must fall back to the full list.
        let p = matmul_program(3);
        let full = ProgramSpace::build(&p);
        let rules = PruneRules::aggressive();
        let pruned = prune_space(&p, &full, &rules);
        for s in &pruned.per_op {
            assert!(!s.configs.is_empty());
        }
    }

    #[test]
    fn conservative_rules_are_weaker() {
        let p = eqn1_program(10);
        let full = ProgramSpace::build(&p);
        let a = prune_space(&p, &full, &PruneRules::aggressive());
        let c = prune_space(&p, &full, &PruneRules::conservative());
        assert!(a.len() <= c.len());
        assert!(c.len() <= full.len());
    }
}
