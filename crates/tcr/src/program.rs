//! The TCR program form: declared arrays plus binary contraction statements.
//!
//! This mirrors the paper's Figure 2(b):
//!
//! ```text
//! variables:  temp1:(I,L,M)  C:(N,I)  U:(L,M,N) ...
//! operations: temp1:(i,l,m) += C:(n,i) * U:(l,m,n)
//! ```
//!
//! Arrays are accessed with exactly their declared index tuple (tensor
//! contractions never need skewed or affine subscripts), so an access is
//! identified by the array id alone.

use octopi::{Contraction, Factorization, Operand};
use std::collections::BTreeMap;
use tensor::{EinsumSpec, IndexMap, IndexVar, Shape, Tensor};

/// Role of a declared array within a program.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArrayKind {
    /// An original input tensor (device-resident for the whole program).
    Input,
    /// An intermediate temporary produced and consumed on the GPU.
    Temp,
    /// The program's final output tensor.
    Output,
}

/// A declared array: name plus layout (index order, row-major).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArrayDecl {
    pub name: String,
    pub indices: Vec<IndexVar>,
    pub kind: ArrayKind,
}

impl ArrayDecl {
    /// Concrete shape under an extent map.
    pub fn shape(&self, dims: &IndexMap) -> Shape {
        Shape::new(self.indices.iter().map(|ix| dims[ix]).collect::<Vec<_>>())
    }

    /// Number of elements under an extent map.
    pub fn len(&self, dims: &IndexMap) -> usize {
        self.shape(dims).len()
    }

    /// Stride (in elements) of index `ix` in this array's row-major layout,
    /// or `None` when the array does not carry `ix`.
    pub fn stride_of(&self, ix: &IndexVar, dims: &IndexMap) -> Option<usize> {
        let pos = self.indices.iter().position(|d| d == ix)?;
        Some(self.shape(dims).strides()[pos])
    }
}

/// One statement: `arrays[output][...] += arrays[inputs[0]] (* arrays[inputs[1]])`,
/// summing over `sum_indices`.
#[derive(Clone, Debug, PartialEq)]
pub struct TcrOp {
    pub output: usize,
    pub inputs: Vec<usize>,
    pub sum_indices: Vec<IndexVar>,
    /// Scalar multiplier of the product (1.0 for every temporary; the final
    /// statement carries the contraction's coefficient, e.g. -1 for `-=`).
    pub coefficient: f64,
}

/// A complete TCR program: arrays + ordered statements + extents.
#[derive(Clone, Debug, PartialEq)]
pub struct TcrProgram {
    pub name: String,
    pub dims: IndexMap,
    pub arrays: Vec<ArrayDecl>,
    pub ops: Vec<TcrOp>,
}

impl TcrProgram {
    /// Lowers one OCTOPI factorization into a TCR program, panicking on a
    /// malformed factorization. Prefer [`TcrProgram::try_from_factorization`]
    /// when the factorization comes from an untrusted enumerator.
    pub fn from_factorization(
        name: impl Into<String>,
        contraction: &Contraction,
        factorization: &Factorization,
        dims: &IndexMap,
    ) -> Self {
        match Self::try_from_factorization(name, contraction, factorization, dims) {
            Ok(p) => p,
            Err(e) => panic!("from_factorization: {e}"),
        }
    }

    /// Fallible lowering of one OCTOPI factorization into a TCR program.
    ///
    /// Arrays: one per distinct original input term (shared between steps
    /// when a tensor appears in several), one per step temporary, with the
    /// final step writing the `Output` array.
    ///
    /// Fails when the factorization is malformed: no steps, an operand
    /// referencing an unknown term or not-yet-computed temporary, or an
    /// index with no extent in `dims`.
    pub fn try_from_factorization(
        name: impl Into<String>,
        contraction: &Contraction,
        factorization: &Factorization,
        dims: &IndexMap,
    ) -> Result<Self, String> {
        if factorization.steps.is_empty() {
            return Err("factorization has no steps".to_string());
        }
        let mut arrays: Vec<ArrayDecl> = Vec::new();
        // Map from input term id -> array id, merging repeated tensor names.
        let mut input_array: BTreeMap<usize, usize> = BTreeMap::new();
        for (k, term) in contraction.terms.iter().enumerate() {
            let existing = arrays
                .iter()
                .position(|a| a.name == term.name && a.indices == term.indices);
            let id = existing.unwrap_or_else(|| {
                arrays.push(ArrayDecl {
                    name: term.name.clone(),
                    indices: term.indices.clone(),
                    kind: ArrayKind::Input,
                });
                arrays.len() - 1
            });
            input_array.insert(k, id);
        }

        let n_steps = factorization.steps.len();
        let mut temp_array: BTreeMap<usize, usize> = BTreeMap::new();
        let mut ops = Vec::with_capacity(n_steps);
        for (j, step) in factorization.steps.iter().enumerate() {
            let is_final = j == n_steps - 1;
            arrays.push(ArrayDecl {
                name: step.name.clone(),
                indices: step.indices.clone(),
                kind: if is_final {
                    ArrayKind::Output
                } else {
                    ArrayKind::Temp
                },
            });
            let out_id = arrays.len() - 1;
            temp_array.insert(j, out_id);
            let inputs = step
                .operands
                .iter()
                .map(|op| match op {
                    Operand::Input(k) => input_array
                        .get(k)
                        .copied()
                        .ok_or_else(|| format!("step {j} references unknown input term {k}")),
                    Operand::Temp(t) => temp_array.get(t).copied().ok_or_else(|| {
                        format!("step {j} references not-yet-computed temporary {t}")
                    }),
                })
                .collect::<Result<Vec<usize>, String>>()?;
            ops.push(TcrOp {
                output: out_id,
                inputs,
                sum_indices: step.sum_over.clone(),
                coefficient: if is_final {
                    contraction.coefficient
                } else {
                    1.0
                },
            });
        }

        // Restrict dims to the indices actually used.
        let mut used: IndexMap = IndexMap::new();
        for a in &arrays {
            for ix in &a.indices {
                let ext = dims.get(ix).copied().ok_or_else(|| {
                    format!("index {} of array {} has no extent", ix.name(), a.name)
                })?;
                used.insert(ix.clone(), ext);
            }
        }

        Ok(TcrProgram {
            name: name.into(),
            dims: used,
            arrays,
            ops,
        })
    }

    /// Ids of the `Input` arrays, in declaration order.
    pub fn input_ids(&self) -> Vec<usize> {
        (0..self.arrays.len())
            .filter(|&i| self.arrays[i].kind == ArrayKind::Input)
            .collect()
    }

    /// Id of the `Output` array.
    pub fn output_id(&self) -> usize {
        self.arrays
            .iter()
            .position(|a| a.kind == ArrayKind::Output)
            .unwrap_or_else(|| panic!("program {} has no output array", self.name))
    }

    /// Loop variables of statement `op`: output indices (parallel) followed
    /// by summation indices (sequential), in declaration order.
    pub fn loop_vars(&self, op: &TcrOp) -> Vec<IndexVar> {
        let mut vars = self.arrays[op.output].indices.clone();
        vars.extend(op.sum_indices.iter().cloned());
        vars
    }

    /// The einsum spec of a single statement (for reference evaluation).
    pub fn op_spec(&self, op: &TcrOp) -> EinsumSpec {
        let mut dims = IndexMap::new();
        for id in op.inputs.iter().chain(std::iter::once(&op.output)) {
            for ix in &self.arrays[*id].indices {
                dims.insert(ix.clone(), self.dims[ix]);
            }
        }
        EinsumSpec {
            inputs: op
                .inputs
                .iter()
                .map(|id| self.arrays[*id].indices.clone())
                .collect(),
            output: self.arrays[op.output].indices.clone(),
            dims,
        }
    }

    /// Reference execution of the full program: runs every statement with
    /// the einsum oracle. `inputs[k]` corresponds to `input_ids()[k]`.
    pub fn evaluate(&self, inputs: &[&Tensor]) -> Tensor {
        let input_ids = self.input_ids();
        assert_eq!(inputs.len(), input_ids.len(), "input count mismatch");
        let mut storage: Vec<Option<Tensor>> = vec![None; self.arrays.len()];
        for (k, id) in input_ids.iter().enumerate() {
            assert_eq!(
                *inputs[k].shape(),
                self.arrays[*id].shape(&self.dims),
                "input {k} shape mismatch"
            );
            storage[*id] = Some(inputs[k].clone());
        }
        for op in &self.ops {
            let spec = self.op_spec(op);
            let operand_tensors: Vec<&Tensor> = op
                .inputs
                .iter()
                .map(|id| {
                    storage[*id]
                        .as_ref()
                        .unwrap_or_else(|| panic!("operand array {id} not yet computed"))
                })
                .collect();
            let mut result = spec.evaluate(&operand_tensors);
            if op.coefficient != 1.0 {
                for v in result.data_mut() {
                    *v *= op.coefficient;
                }
            }
            storage[op.output] = Some(result);
        }
        let out = self.output_id();
        storage[out]
            .take()
            .unwrap_or_else(|| panic!("output array {out} was never computed"))
    }

    /// Total floating-point operations of the program (2 per joint-space
    /// point per binary statement, 1 for unary reductions).
    pub fn flops(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| {
                let joint: u64 = self
                    .loop_vars(op)
                    .iter()
                    .map(|ix| self.dims[ix] as u64)
                    .product();
                joint * if op.inputs.len() == 2 { 2 } else { 1 }
            })
            .sum()
    }

    /// Bytes that must cross PCIe: inputs down, output up (f64 elements).
    pub fn transfer_bytes(&self) -> u64 {
        let mut bytes = 0u64;
        for a in &self.arrays {
            match a.kind {
                ArrayKind::Input | ArrayKind::Output => {
                    bytes += 8 * a.len(&self.dims) as u64;
                }
                ArrayKind::Temp => {}
            }
        }
        bytes
    }

    /// Pretty TCR listing in the style of Figure 2(b).
    pub fn listing(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "{}", self.name);
        let _ = writeln!(s, "access: linearize");
        let _ = writeln!(s, "define:");
        for (ix, ext) in &self.dims {
            let _ = writeln!(s, "  {} = {}", ix.name().to_uppercase(), ext);
        }
        let _ = writeln!(s, "variables:");
        for a in &self.arrays {
            let ups: Vec<String> = a.indices.iter().map(|i| i.name().to_uppercase()).collect();
            let _ = writeln!(s, "  {}:({})", a.name, ups.join(","));
        }
        let _ = writeln!(s, "operations:");
        for op in &self.ops {
            let fmt_ref = |id: usize| {
                let a = &self.arrays[id];
                let names: Vec<&str> = a.indices.iter().map(|i| i.name()).collect();
                format!("{}:({})", a.name, names.join(","))
            };
            let rhs: Vec<String> = op.inputs.iter().map(|&i| fmt_ref(i)).collect();
            let _ = writeln!(s, "  {} += {}", fmt_ref(op.output), rhs.join("*"));
        }
        s
    }
}

/// Shared fixtures for this crate's unit tests.
#[cfg(test)]
pub mod tests_support {
    use super::*;
    use octopi::ast::TensorRef;
    use octopi::enumerate_factorizations;
    use tensor::index::uniform_dims;

    /// The paper's Eqn. (1) statement.
    pub fn eqn1_contraction() -> Contraction {
        Contraction {
            output: TensorRef::new("V", &["i", "j", "k"]),
            sum_indices: vec!["l".into(), "m".into(), "n".into()],
            terms: vec![
                TensorRef::new("A", &["l", "k"]),
                TensorRef::new("B", &["m", "j"]),
                TensorRef::new("C", &["n", "i"]),
                TensorRef::new("U", &["l", "m", "n"]),
            ],
            accumulate: false,
            coefficient: 1.0,
        }
    }

    /// Best (minimal-flop) factorization of Eqn. (1), lowered at extent `n`.
    pub fn eqn1_program(n: usize) -> TcrProgram {
        let dims = uniform_dims(&["i", "j", "k", "l", "m", "n"], n);
        let c = eqn1_contraction();
        let fs = enumerate_factorizations(&c, &dims);
        TcrProgram::from_factorization("ex", &c, &fs[0], &dims)
    }

    /// A single matrix-multiply statement `C[i,k] = A[i,j] B[j,k]`.
    pub fn matmul_program(n: usize) -> TcrProgram {
        let dims = uniform_dims(&["i", "j", "k"], n);
        let c = Contraction {
            output: TensorRef::new("C", &["i", "k"]),
            sum_indices: vec!["j".into()],
            terms: vec![
                TensorRef::new("A", &["i", "j"]),
                TensorRef::new("B", &["j", "k"]),
            ],
            accumulate: false,
            coefficient: 1.0,
        };
        let fs = enumerate_factorizations(&c, &dims);
        TcrProgram::from_factorization("mm", &c, &fs[0], &dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopi::ast::TensorRef;
    use octopi::enumerate_factorizations;
    use tensor::index::uniform_dims;

    fn eqn1() -> Contraction {
        Contraction {
            output: TensorRef::new("V", &["i", "j", "k"]),
            sum_indices: vec!["l".into(), "m".into(), "n".into()],
            terms: vec![
                TensorRef::new("A", &["l", "k"]),
                TensorRef::new("B", &["m", "j"]),
                TensorRef::new("C", &["n", "i"]),
                TensorRef::new("U", &["l", "m", "n"]),
            ],
            accumulate: false,
            coefficient: 1.0,
        }
    }

    fn lower_best(n: usize) -> TcrProgram {
        let dims = uniform_dims(&["i", "j", "k", "l", "m", "n"], n);
        let c = eqn1();
        let fs = enumerate_factorizations(&c, &dims);
        TcrProgram::from_factorization("ex", &c, &fs[0], &dims)
    }

    #[test]
    fn lowering_creates_arrays_and_ops() {
        let p = lower_best(10);
        // 4 inputs + 2 temps + 1 output
        assert_eq!(p.arrays.len(), 7);
        assert_eq!(p.ops.len(), 3);
        assert_eq!(p.input_ids().len(), 4);
        let out = &p.arrays[p.output_id()];
        assert_eq!(out.name, "V");
        assert_eq!(out.kind, ArrayKind::Output);
    }

    #[test]
    fn program_evaluate_matches_reference() {
        let n = 4;
        let dims = uniform_dims(&["i", "j", "k", "l", "m", "n"], n);
        let c = eqn1();
        let reference = c.to_einsum(&dims);
        let a = Tensor::random(Shape::new([n, n]), 1);
        let b = Tensor::random(Shape::new([n, n]), 2);
        let cc = Tensor::random(Shape::new([n, n]), 3);
        let u = Tensor::random(Shape::new([n, n, n]), 4);
        let expect = reference.evaluate(&[&a, &b, &cc, &u]);
        for f in enumerate_factorizations(&c, &dims) {
            let p = TcrProgram::from_factorization("ex", &c, &f, &dims);
            let got = p.evaluate(&[&a, &b, &cc, &u]);
            assert!(expect.approx_eq(&got, 1e-10), "program {} diverges", f.key);
        }
    }

    #[test]
    fn flops_matches_factorization() {
        let dims = uniform_dims(&["i", "j", "k", "l", "m", "n"], 10);
        let c = eqn1();
        for f in enumerate_factorizations(&c, &dims) {
            let p = TcrProgram::from_factorization("ex", &c, &f, &dims);
            assert_eq!(p.flops(), f.flops);
        }
    }

    #[test]
    fn stride_of_row_major() {
        let p = lower_best(10);
        let u = p.arrays.iter().position(|a| a.name == "U").unwrap();
        let decl = &p.arrays[u];
        assert_eq!(decl.stride_of(&"n".into(), &p.dims), Some(1));
        assert_eq!(decl.stride_of(&"m".into(), &p.dims), Some(10));
        assert_eq!(decl.stride_of(&"l".into(), &p.dims), Some(100));
        assert_eq!(decl.stride_of(&"q".into(), &p.dims), None);
    }

    #[test]
    fn transfer_bytes_counts_inputs_and_output_only() {
        let p = lower_best(10);
        // inputs: 3x100 + 1000; output: 1000; temps excluded.
        assert_eq!(p.transfer_bytes(), 8 * (300 + 1000 + 1000));
    }

    #[test]
    fn listing_mentions_operations() {
        let p = lower_best(10);
        let l = p.listing();
        assert!(l.contains("operations:"));
        assert!(l.contains("V:("));
    }

    #[test]
    fn repeated_input_tensor_shares_array() {
        // B appears twice with identical indices: one array, referenced twice.
        let c = Contraction {
            output: TensorRef::new("S", &["i"]),
            sum_indices: vec!["j".into()],
            terms: vec![
                TensorRef::new("B", &["i", "j"]),
                TensorRef::new("B", &["i", "j"]),
            ],
            accumulate: false,
            coefficient: 1.0,
        };
        let dims = uniform_dims(&["i", "j"], 4);
        let fs = enumerate_factorizations(&c, &dims);
        let p = TcrProgram::from_factorization("sq", &c, &fs[0], &dims);
        assert_eq!(p.input_ids().len(), 1);
        assert_eq!(p.ops[0].inputs, vec![0, 0]);
    }
}
