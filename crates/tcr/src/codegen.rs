//! CUDA C source emission and Orio-style annotations.
//!
//! [`cuda_kernel`] renders a [`MappedKernel`] as the `__global__` function
//! the real Barracuda would have produced via CUDA-CHiLL (Figure 2(d)):
//! linearized subscripts, thread/block index recovery, interior loops with
//! unrolling and a remainder loop, and scalar replacement of the output.
//! [`orio_annotation`] renders the search-space description (Figure 2(c)),
//! and [`sequential_c`] the untransformed loop nest TCR starts from.

use crate::mapping::{ArrayAccess, MappedKernel};
use crate::program::{TcrOp, TcrProgram};
use crate::space::{OpSpace, ProgramSpace};
use std::fmt::Write;
use tensor::IndexVar;

/// How a loop variable is spelled inside the kernel body.
fn var_expr(kernel: &MappedKernel, v: &IndexVar, offset: Option<&str>) -> String {
    let base = if *v == kernel.tx.0 {
        "tx".to_string()
    } else if kernel.ty.as_ref().is_some_and(|(t, _)| t == v) {
        "ty".to_string()
    } else if kernel.bx.as_ref().is_some_and(|(b, _)| b == v) {
        "bx".to_string()
    } else if kernel.by.as_ref().is_some_and(|(b, _)| b == v) {
        "by".to_string()
    } else {
        v.name().to_string()
    };
    match offset {
        Some(o) if base == o => base, // not expected; defensive
        Some(o) => format!("({base} + {o})"),
        None => base,
    }
}

/// Renders `base + Σ var·stride`; `unroll_var`/`offset` substitute
/// `var -> (var + offset)` for unrolled copies.
fn addr_expr(
    kernel: &MappedKernel,
    acc: &ArrayAccess,
    unroll_var: Option<&IndexVar>,
    offset: Option<&str>,
) -> String {
    let mut parts: Vec<String> = Vec::new();
    for (v, stride) in &acc.terms {
        let off = if unroll_var == Some(v) { offset } else { None };
        let e = var_expr(kernel, v, off);
        if *stride == 1 {
            parts.push(e);
        } else {
            parts.push(format!("{e} * {stride}"));
        }
    }
    if parts.is_empty() {
        "0".to_string()
    } else {
        parts.join(" + ")
    }
}

fn body_statement(
    kernel: &MappedKernel,
    target: &str,
    unroll_var: Option<&IndexVar>,
    offset: Option<&str>,
) -> String {
    let rhs: Vec<String> = kernel
        .inputs
        .iter()
        .enumerate()
        .map(|(k, acc)| {
            let name = if kernel.is_staged(k) {
                format!("s_{}", acc.name)
            } else {
                acc.name.clone()
            };
            format!("{}[{}]", name, addr_expr(kernel, acc, unroll_var, offset))
        })
        .collect();
    if kernel.coefficient == 1.0 {
        format!("{target} = {target} + {};", rhs.join(" * "))
    } else {
        format!(
            "{target} = {target} + {} * {};",
            kernel.coefficient,
            rhs.join(" * ")
        )
    }
}

/// Emits the full `__global__` kernel source.
pub fn cuda_kernel(kernel: &MappedKernel) -> String {
    let mut s = String::new();
    let mut params: Vec<String> = vec![format!("double *{}", kernel.output.name)];
    let mut seen = vec![kernel.output.name.clone()];
    for acc in &kernel.inputs {
        if !seen.contains(&acc.name) {
            params.push(format!("double *{}", acc.name));
            seen.push(acc.name.clone());
        }
    }
    let _ = writeln!(s, "__global__ void {}", kernel.name);
    let _ = writeln!(s, "({})", params.join(", "));
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  int tx = threadIdx.x;");
    if kernel.ty.is_some() {
        let _ = writeln!(s, "  int ty = threadIdx.y;");
    }
    if kernel.bx.is_some() {
        let _ = writeln!(s, "  int bx = blockIdx.x;");
    }
    if kernel.by.is_some() {
        let _ = writeln!(s, "  int by = blockIdx.y;");
    }

    // Cooperative shared-memory staging of small reused inputs.
    if !kernel.staged.is_empty() {
        let _ = writeln!(
            s,
            "  int tid = tx{};",
            if kernel.ty.is_some() {
                " + ty * blockDim.x"
            } else {
                ""
            }
        );
        let tpb = kernel.threads_per_block();
        let mut staged_names: Vec<String> = Vec::new();
        for &k in &kernel.staged {
            let acc = &kernel.inputs[k];
            if staged_names.contains(&acc.name) {
                continue;
            }
            staged_names.push(acc.name.clone());
            let _ = writeln!(s, "  __shared__ double s_{}[{}];", acc.name, acc.len);
            let _ = writeln!(
                s,
                "  for (int q = tid; q < {}; q += {tpb}) s_{}[q] = {}[q];",
                acc.len, acc.name, acc.name
            );
        }
        let _ = writeln!(s, "  __syncthreads();");
    }

    let registered = kernel.output_fully_registered();
    let out_addr = addr_expr(kernel, &kernel.output, None, None);
    let target = if registered {
        // Scalar replacement (the paper's `registers(...)` transformation).
        if kernel.accumulate {
            let _ = writeln!(s, "  double nv = {}[{}];", kernel.output.name, out_addr);
        } else {
            let _ = writeln!(s, "  double nv = 0.0;");
        }
        "nv".to_string()
    } else {
        format!("{}[{}]", kernel.output.name, out_addr)
    };

    // Interior loops.
    let n_loops = kernel.interior.len();
    let mut depth = 1usize;
    for (li, l) in kernel.interior.iter().enumerate() {
        let last = li + 1 == n_loops;
        let pad = "  ".repeat(depth);
        if last && kernel.unroll > 1 {
            let u = kernel.unroll;
            let main_end = l.extent - l.extent % u;
            let _ = writeln!(s, "{pad}int {v};", v = l.var);
            let _ = writeln!(
                s,
                "{pad}for ({v} = 0; {v} < {main_end}; {v} += {u}) {{",
                v = l.var
            );
            for o in 0..u {
                let off = o.to_string();
                let stmt = body_statement(kernel, &target, Some(&l.var), Some(&off));
                let _ = writeln!(s, "{pad}  {stmt}");
            }
            let _ = writeln!(s, "{pad}}}");
            if main_end < l.extent {
                let _ = writeln!(
                    s,
                    "{pad}for (; {v} < {e}; {v}++) {{",
                    v = l.var,
                    e = l.extent
                );
                let stmt = body_statement(kernel, &target, None, None);
                let _ = writeln!(s, "{pad}  {stmt}");
                let _ = writeln!(s, "{pad}}}");
            }
        } else {
            let _ = writeln!(
                s,
                "{pad}for (int {v} = 0; {v} < {e}; {v}++) {{",
                v = l.var,
                e = l.extent
            );
            depth += 1;
            if last {
                let stmt = body_statement(kernel, &target, None, None);
                let _ = writeln!(s, "{}{stmt}", "  ".repeat(depth));
            }
        }
    }
    if n_loops == 0 {
        let stmt = body_statement(kernel, &target, None, None);
        let _ = writeln!(s, "  {stmt}");
    }
    // Close the non-unrolled loops.
    for d in (1..depth).rev() {
        let _ = writeln!(s, "{}}}", "  ".repeat(d));
    }

    if registered {
        let _ = writeln!(s, "  {}[{}] = nv;", kernel.output.name, out_addr);
    }
    let _ = writeln!(s, "}}");
    s
}

/// Emits host-side launch pseudo-code for a mapped program.
pub fn cuda_launcher(kernels: &[MappedKernel]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "// data stays resident on the GPU across these calls");
    for k in kernels {
        let (gx, gy) = k.grid();
        let (bx, by) = k.block();
        let mut args: Vec<&str> = vec![k.output.name.as_str()];
        for acc in &k.inputs {
            if !args.contains(&acc.name.as_str()) {
                args.push(acc.name.as_str());
            }
        }
        let _ = writeln!(
            s,
            "{}<<<dim3({gx}, {gy}), dim3({bx}, {by})>>>({});",
            k.name,
            args.join(", ")
        );
    }
    s
}

/// Renders the Orio/CHiLL-style annotation describing one statement's
/// search space (Figure 2(c)).
pub fn orio_annotation(space: &OpSpace) -> String {
    let mut s = String::new();
    let i = space.op_index;
    let fmt_vars = |vs: &[String]| -> String {
        let q: Vec<String> = vs.iter().map(|v| format!("'{v}'")).collect();
        format!("[{}]", q.join(","))
    };
    let _ = writeln!(s, "def performance_params {{");
    let tx: Vec<String> = space
        .tx_candidates
        .iter()
        .map(|v| v.name().to_string())
        .collect();
    let ty: Vec<String> = space.ty_candidates.iter().map(|v| v.to_string()).collect();
    let bx: Vec<String> = space.bx_candidates.iter().map(|v| v.to_string()).collect();
    let by: Vec<String> = space.by_candidates.iter().map(|v| v.to_string()).collect();
    let _ = writeln!(s, "  param PERMUTE_{i}_TX{i}[] = {};", fmt_vars(&tx));
    let _ = writeln!(s, "  param PERMUTE_{i}_TY{i}[] = {};", fmt_vars(&ty));
    let _ = writeln!(s, "  param PERMUTE_{i}_BX{i}[] = {};", fmt_vars(&bx));
    let _ = writeln!(s, "  param PERMUTE_{i}_BY{i}[] = {};", fmt_vars(&by));
    let ufs: Vec<String> = (1..=crate::space::MAX_UNROLL)
        .map(|u| u.to_string())
        .collect();
    let _ = writeln!(s, "  param UF_{i}[] = [{}];", ufs.join(","));
    let _ = writeln!(s, "}}");
    let _ = writeln!(s, "/*@ begin CHiLL (");
    let _ = writeln!(
        s,
        "  cuda({i},block={{PERMUTE_{i}_BX{i},PERMUTE_{i}_BY{i}}},thread={{PERMUTE_{i}_TX{i},PERMUTE_{i}_TY{i}}})"
    );
    let _ = writeln!(s, "  registers({i},\"out\")");
    let _ = writeln!(s, "  unroll({i},UF_{i})");
    let _ = writeln!(s, ") @*/");
    s
}

/// Renders every statement's annotation.
pub fn orio_annotations(space: &ProgramSpace) -> String {
    space
        .per_op
        .iter()
        .map(orio_annotation)
        .collect::<Vec<_>>()
        .join("\n")
}

/// Emits a complete, self-contained `.cu` translation unit for a mapped
/// program: every kernel, a host `main` that allocates and fills the
/// arrays, copies them to the device, launches the kernels with the tuned
/// grid/block shapes, copies the output back and checks it against a CPU
/// reference loop. The output of `--emit cuda` can be handed to `nvcc`.
pub fn cuda_file(program: &TcrProgram, kernels: &[MappedKernel]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "// Generated by barracuda (reproduction of Nelson et al., ICPP 2015)"
    );
    let _ = writeln!(s, "#include <cstdio>");
    let _ = writeln!(s, "#include <cstdlib>");
    let _ = writeln!(s, "#include <cmath>");
    let _ = writeln!(s, "#include <cuda_runtime.h>");
    let _ = writeln!(s);
    for k in kernels {
        s.push_str(&cuda_kernel(k));
        let _ = writeln!(s);
    }

    let _ = writeln!(
        s,
        "static double frand() {{ return 2.0 * rand() / RAND_MAX - 1.0; }}"
    );
    let _ = writeln!(s);
    let _ = writeln!(s, "int main() {{");
    // Host + device buffers for every array.
    for a in &program.arrays {
        let n = a.len(&program.dims);
        let _ = writeln!(
            s,
            "  double *h_{0} = (double*)calloc({1}, sizeof(double));",
            a.name, n
        );
        let _ = writeln!(
            s,
            "  double *d_{0}; cudaMalloc(&d_{0}, {1} * sizeof(double));",
            a.name, n
        );
        if a.kind == crate::program::ArrayKind::Input {
            let _ = writeln!(
                s,
                "  for (int q = 0; q < {n}; q++) h_{0}[q] = frand();",
                a.name
            );
        }
        let _ = writeln!(
            s,
            "  cudaMemcpy(d_{0}, h_{0}, {n} * sizeof(double), cudaMemcpyHostToDevice);",
            a.name
        );
    }
    let _ = writeln!(s);
    let _ = writeln!(s, "  // tuned launches (temporaries stay device-resident)");
    for k in kernels {
        let (gx, gy) = k.grid();
        let (bx, by) = k.block();
        let mut args: Vec<String> = vec![format!("d_{}", k.output.name)];
        for acc in &k.inputs {
            let d = format!("d_{}", acc.name);
            if !args.contains(&d) {
                args.push(d);
            }
        }
        let _ = writeln!(
            s,
            "  {}<<<dim3({gx}, {gy}), dim3({bx}, {by})>>>({});",
            k.name,
            args.join(", ")
        );
    }
    let out = &program.arrays[program.output_id()];
    let out_n = out.len(&program.dims);
    let _ = writeln!(s, "  cudaDeviceSynchronize();");
    let _ = writeln!(
        s,
        "  cudaMemcpy(h_{0}, d_{0}, {out_n} * sizeof(double), cudaMemcpyDeviceToHost);",
        out.name
    );
    let _ = writeln!(s);
    let _ = writeln!(s, "  // CPU reference for validation");
    for a in &program.arrays {
        if a.kind != crate::program::ArrayKind::Input {
            let _ = writeln!(
                s,
                "  double *r_{0} = (double*)calloc({1}, sizeof(double));",
                a.name,
                a.len(&program.dims)
            );
        }
    }
    for op in &program.ops {
        let mut nest = sequential_c(program, op);
        // Reference arrays carry the r_/h_ prefixes.
        for a in &program.arrays {
            let from = format!("{}[", a.name);
            let to = if a.kind == crate::program::ArrayKind::Input {
                format!("h_{}[", a.name)
            } else {
                format!("r_{}[", a.name)
            };
            nest = nest.replace(&from, &to);
        }
        for line in nest.lines() {
            let _ = writeln!(s, "  {line}");
        }
    }
    let _ = writeln!(s, "  double err = 0.0;");
    let _ = writeln!(
        s,
        "  for (int q = 0; q < {out_n}; q++) err = fmax(err, fabs(h_{0}[q] - r_{0}[q]));",
        out.name
    );
    let _ = writeln!(
        s,
        "  printf(\"max |gpu - cpu| = %.3e (%s)\\n\", err, err < 1e-9 ? \"OK\" : \"FAIL\");"
    );
    let _ = writeln!(s, "  return err < 1e-9 ? 0 : 1;");
    let _ = writeln!(s, "}}");
    s
}

/// Emits CUDA for a fused kernel (`crate::fusion`): shared-memory slices,
/// one phase per statement separated by `__syncthreads()`.
pub fn cuda_fused(kernel: &crate::fusion::FusedKernel, program: &TcrProgram) -> String {
    use crate::fusion::FusedOperand;
    let mut s = String::new();
    // Parameters: global arrays only (inputs + final output).
    let mut params: Vec<String> = Vec::new();
    let mut seen: Vec<&str> = Vec::new();
    let out_name = &program.arrays[program.output_id()].name;
    params.push(format!("double *{out_name}"));
    seen.push(out_name);
    for phase in &kernel.phases {
        for opnd in &phase.operands {
            if let FusedOperand::Global { array, .. } = opnd {
                let name = &program.arrays[*array].name;
                if !seen.contains(&name.as_str()) {
                    params.push(format!("double *{name}"));
                    seen.push(name);
                }
            }
        }
    }
    let _ = writeln!(s, "__global__ void {}", kernel.name);
    let _ = writeln!(s, "({})", params.join(", "));
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  int tx = threadIdx.x;");
    let _ = writeln!(s, "  int ty = threadIdx.y;");
    // Recover the fused loop values from the linearized block index.
    let _ = writeln!(s, "  int b = blockIdx.x;");
    let mut div = 1usize;
    for (v, e) in kernel.fused.iter().rev() {
        let _ = writeln!(s, "  int {v} = (b / {div}) % {e};");
        div *= e;
    }
    for slice in &kernel.slices {
        let _ = writeln!(s, "  __shared__ double s_{}[{}];", slice.name, slice.len);
    }

    let render_terms = |terms: &[(tensor::IndexVar, usize)],
                        tx_v: Option<&tensor::IndexVar>,
                        ty_v: Option<&tensor::IndexVar>|
     -> String {
        let parts: Vec<String> = terms
            .iter()
            .map(|(v, stride)| {
                let e = if tx_v == Some(v) {
                    "tx".to_string()
                } else if ty_v == Some(v) {
                    "ty".to_string()
                } else {
                    v.name().to_string()
                };
                if *stride == 1 {
                    e
                } else {
                    format!("{e} * {stride}")
                }
            })
            .collect();
        if parts.is_empty() {
            "0".to_string()
        } else {
            parts.join(" + ")
        }
    };

    for (pi, phase) in kernel.phases.iter().enumerate() {
        let _ = writeln!(s, "  // phase {pi}: statement {}", phase.op_index);
        let n = phase.par_dims.len();
        let tx_v = if n >= 1 {
            Some(&phase.par_dims[n - 1].0)
        } else {
            None
        };
        let ty_v = if n >= 2 {
            Some(&phase.par_dims[n - 2].0)
        } else {
            None
        };
        // Guard threads beyond this phase's extent.
        let mut guards: Vec<String> = Vec::new();
        if let Some(v) = tx_v {
            guards.push(format!("tx < {}", phase.par_dims[n - 1].1));
            let _ = v;
        }
        if let Some(v) = ty_v {
            guards.push(format!("ty < {}", phase.par_dims[n - 2].1));
            let _ = v;
        }
        let guard = if guards.is_empty() {
            "tx == 0 && ty == 0".to_string()
        } else {
            guards.join(" && ")
        };
        let _ = writeln!(s, "  if ({guard}) {{");
        let mut depth = 2usize;
        // Per-thread parallel loops (dims beyond tx/ty).
        for (v, e) in phase.par_dims.iter().take(n.saturating_sub(2)) {
            let _ = writeln!(
                s,
                "{}for (int {v} = 0; {v} < {e}; {v}++) {{",
                "  ".repeat(depth)
            );
            depth += 1;
        }
        let _ = writeln!(s, "{}double nv = 0.0;", "  ".repeat(depth));
        for (v, e) in &phase.sum_dims {
            let _ = writeln!(
                s,
                "{}for (int {v} = 0; {v} < {e}; {v}++) {{",
                "  ".repeat(depth)
            );
            depth += 1;
        }
        let rhs: Vec<String> = phase
            .operands
            .iter()
            .map(|o| match o {
                FusedOperand::Global { array, terms } => format!(
                    "{}[{}]",
                    program.arrays[*array].name,
                    render_terms(terms, tx_v, ty_v)
                ),
                FusedOperand::Slice { slice, terms } => format!(
                    "s_{}[{}]",
                    kernel.slices[*slice].name,
                    render_terms(terms, tx_v, ty_v)
                ),
            })
            .collect();
        if phase.coefficient == 1.0 {
            let _ = writeln!(s, "{}nv += {};", "  ".repeat(depth), rhs.join(" * "));
        } else {
            let _ = writeln!(
                s,
                "{}nv += {} * {};",
                "  ".repeat(depth),
                phase.coefficient,
                rhs.join(" * ")
            );
        }
        for _ in &phase.sum_dims {
            depth -= 1;
            let _ = writeln!(s, "{}}}", "  ".repeat(depth));
        }
        let target = match phase.target_slice {
            Some(sid) => format!("s_{}", kernel.slices[sid].name),
            None => out_name.clone(),
        };
        let op = if phase.target_slice.is_none() && kernel.accumulate {
            "+="
        } else {
            "="
        };
        let _ = writeln!(
            s,
            "{}{target}[{}] {op} nv;",
            "  ".repeat(depth),
            render_terms(&phase.out_terms, tx_v, ty_v)
        );
        for _ in 0..(n.saturating_sub(2)) {
            depth -= 1;
            let _ = writeln!(s, "{}}}", "  ".repeat(depth));
        }
        let _ = writeln!(s, "  }}");
        if pi + 1 < kernel.phases.len() {
            let _ = writeln!(s, "  __syncthreads();");
        }
    }
    let _ = writeln!(s, "}}");
    s
}

/// Renders the naive sequential C loop nest of one statement (the input
/// CUDA-CHiLL starts from, Figure 2 bottom-left).
pub fn sequential_c(program: &TcrProgram, op: &TcrOp) -> String {
    let mut s = String::new();
    let vars = program.loop_vars(op);
    for (d, v) in vars.iter().enumerate() {
        let _ = writeln!(
            s,
            "{}for (int {v} = 0; {v} < {e}; {v}++) {{",
            "  ".repeat(d),
            e = program.dims[v]
        );
    }
    let render_ref = |id: usize| -> String {
        let decl = &program.arrays[id];
        let strides = decl.shape(&program.dims).strides();
        let parts: Vec<String> = decl
            .indices
            .iter()
            .zip(strides)
            .map(|(v, st)| {
                if st == 1 {
                    v.name().to_string()
                } else {
                    format!("{v} * {st}")
                }
            })
            .collect();
        format!("{}[{}]", decl.name, parts.join(" + "))
    };
    let out = render_ref(op.output);
    let rhs: Vec<String> = op.inputs.iter().map(|&id| render_ref(id)).collect();
    let _ = writeln!(
        s,
        "{}{out} = {out} + {};",
        "  ".repeat(vars.len()),
        rhs.join(" * ")
    );
    for d in (0..vars.len()).rev() {
        let _ = writeln!(s, "{}}}", "  ".repeat(d));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{map_kernel, map_program};
    use crate::program::tests_support::{eqn1_program, matmul_program};
    use crate::space::ProgramSpace;

    #[test]
    fn kernel_source_has_cuda_shape() {
        let p = eqn1_program(10);
        let space = ProgramSpace::build(&p);
        let cfg = &space.per_op[2].configs[0];
        let k = map_kernel(&p, 2, cfg, false).unwrap();
        let src = cuda_kernel(&k);
        assert!(src.contains("__global__ void ex_GPU_2"));
        assert!(src.contains("threadIdx.x"));
        assert!(src.contains("double *V"));
    }

    #[test]
    fn unrolled_kernel_emits_copies_and_remainder() {
        let p = matmul_program(10);
        let space = ProgramSpace::build(&p);
        let cfg = space.per_op[0]
            .configs
            .iter()
            .find(|c| c.unroll == 3 && c.interior.len() == 1)
            .expect("an unroll-3 config exists");
        let k = map_kernel(&p, 0, cfg, false).unwrap();
        let src = cuda_kernel(&k);
        // Main unrolled loop steps by 3 and a remainder loop follows
        // (10 % 3 != 0).
        assert!(src.contains("+= 3"), "{src}");
        assert!(src.contains("(j + 1)"), "{src}");
        assert!(src.contains("(j + 2)"), "{src}");
        assert!(src.matches("for (").count() >= 2, "{src}");
    }

    #[test]
    fn scalar_replacement_emitted_when_registered() {
        let p = matmul_program(8);
        let space = ProgramSpace::build(&p);
        let cfg = space.per_op[0]
            .configs
            .iter()
            .find(|c| c.interior.len() == 1 && c.unroll == 1)
            .unwrap();
        let k = map_kernel(&p, 0, cfg, false).unwrap();
        assert!(k.output_fully_registered());
        let src = cuda_kernel(&k);
        assert!(src.contains("double nv = 0.0;"));
        assert!(src.contains("] = nv;"));
    }

    #[test]
    fn accumulate_reads_initial_output() {
        let p = matmul_program(8);
        let space = ProgramSpace::build(&p);
        let cfg = space.per_op[0]
            .configs
            .iter()
            .find(|c| c.interior.len() == 1 && c.unroll == 1)
            .unwrap();
        let k = map_kernel(&p, 0, cfg, true).unwrap();
        let src = cuda_kernel(&k);
        assert!(src.contains("double nv = C["), "{src}");
    }

    #[test]
    fn launcher_lists_every_kernel() {
        let p = eqn1_program(10);
        let space = ProgramSpace::build(&p);
        let kernels = map_program(&p, &space, &space.config(0), false).unwrap();
        let host = cuda_launcher(&kernels);
        assert_eq!(host.matches("<<<").count(), 3);
    }

    #[test]
    fn orio_annotation_mentions_params() {
        let p = eqn1_program(10);
        let space = ProgramSpace::build(&p);
        let ann = orio_annotations(&space);
        assert!(ann.contains("param PERMUTE_2_TX2[]"));
        assert!(ann.contains("param UF_0[]"));
        assert!(ann.contains("begin CHiLL"));
    }

    #[test]
    fn cuda_file_is_self_contained() {
        let p = eqn1_program(10);
        let space = ProgramSpace::build(&p);
        let kernels = map_program(&p, &space, &space.config(0), false).unwrap();
        let src = cuda_file(&p, &kernels);
        assert!(src.contains("#include <cuda_runtime.h>"));
        assert_eq!(src.matches("__global__").count(), 3);
        assert!(src.contains("int main()"));
        assert!(src.contains("cudaMalloc"));
        assert!(src.contains("cudaMemcpyDeviceToHost"));
        // The CPU reference must rename arrays to h_/r_ forms.
        assert!(src.contains("r_V["), "{src}");
        assert!(src.contains("h_A["), "{src}");
        assert!(src.contains("max |gpu - cpu|"));
        // Balanced braces (crude compile-shape check).
        assert_eq!(src.matches('{').count(), src.matches('}').count());
    }

    #[test]
    fn staged_kernel_emits_shared_memory() {
        let p = matmul_program(16);
        let space = ProgramSpace::build(&p);
        let mut cfg = space.per_op[0]
            .configs
            .iter()
            .find(|c| c.interior.len() == 1 && c.unroll == 1)
            .unwrap()
            .clone();
        cfg.staged = vec![0];
        let k = map_kernel(&p, 0, &cfg, false).unwrap();
        let src = cuda_kernel(&k);
        assert!(src.contains("__shared__ double s_A["), "{src}");
        assert!(src.contains("__syncthreads();"), "{src}");
        assert!(src.contains("s_A["), "{src}");
    }

    #[test]
    fn sequential_c_nests_all_loops() {
        let p = matmul_program(8);
        let src = sequential_c(&p, &p.ops[0]);
        assert_eq!(src.matches("for (").count(), 3);
        assert!(src.contains("C[") && src.contains("A[") && src.contains("B["));
    }
}
