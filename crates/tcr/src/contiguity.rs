//! Contiguous-tensor and coalescing analysis (§IV).
//!
//! "We use *contiguous tensors* to describe array references whose index
//! expressions refer to loops in the same order as they appear in the code;
//! that is, the array is accessed in memory order (assuming row-major
//! layout)." Contiguous tensors drive the choice of ThreadX candidates
//! (coalesced global loads) and the block/thread decomposition rules.

use crate::program::{TcrOp, TcrProgram};
use tensor::IndexVar;

/// True when array `array_id`'s declared index tuple appears as a subsequence
/// of `loop_order` in the same relative order — the reference walks memory
/// monotonically, with the innermost loop touching its fastest dimension.
pub fn is_contiguous(program: &TcrProgram, array_id: usize, loop_order: &[IndexVar]) -> bool {
    let decl = &program.arrays[array_id].indices;
    let mut positions = Vec::with_capacity(decl.len());
    for ix in decl {
        match loop_order.iter().position(|v| v == ix) {
            Some(p) => positions.push(p),
            // An index not in this statement's loops cannot occur for
            // well-formed programs; treat as non-contiguous defensively.
            None => return false,
        }
    }
    positions.windows(2).all(|w| w[0] < w[1])
}

/// Array ids of `op` (inputs and output) that are contiguous under the order.
pub fn contiguous_arrays(program: &TcrProgram, op: &TcrOp, loop_order: &[IndexVar]) -> Vec<usize> {
    let mut ids: Vec<usize> = op.inputs.clone();
    ids.push(op.output);
    ids.sort_unstable();
    ids.dedup();
    ids.into_iter()
        .filter(|&id| is_contiguous(program, id, loop_order))
        .collect()
}

/// True when loop variable `v` strides unit distance through array
/// `array_id` — adjacent values of `v` touch adjacent memory. This is the
/// paper's ThreadX criterion: "adjacent elements on an input tensor are
/// accessed by adjacent threads so as to achieve global memory coalescing."
pub fn is_unit_stride(program: &TcrProgram, array_id: usize, v: &IndexVar) -> bool {
    program.arrays[array_id].stride_of(v, &program.dims) == Some(1)
}

/// Loop variables of `op` that have unit stride in at least one referenced
/// array, in loop-nest order.
pub fn coalescing_vars(program: &TcrProgram, op: &TcrOp) -> Vec<IndexVar> {
    let mut ids: Vec<usize> = op.inputs.clone();
    ids.push(op.output);
    program
        .loop_vars(op)
        .into_iter()
        .filter(|v| ids.iter().any(|&id| is_unit_stride(program, id, v)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::tests_support::{eqn1_program, matmul_program};

    #[test]
    fn matmul_contiguity() {
        let p = matmul_program(8);
        let op = &p.ops[0];
        // loops i,k,j: A[i,j] positions (0,2) ascending => contiguous;
        // B[j,k] positions (2,1) => not contiguous; C[i,k] (0,1) => contiguous.
        let order: Vec<IndexVar> = vec!["i".into(), "k".into(), "j".into()];
        let a = p.arrays.iter().position(|a| a.name == "A").unwrap();
        let b = p.arrays.iter().position(|a| a.name == "B").unwrap();
        let c = p.arrays.iter().position(|a| a.name == "C").unwrap();
        assert!(is_contiguous(&p, a, &order));
        assert!(!is_contiguous(&p, b, &order));
        assert!(is_contiguous(&p, c, &order));
        let cont = contiguous_arrays(&p, op, &order);
        assert!(cont.contains(&a) && cont.contains(&c) && !cont.contains(&b));
    }

    #[test]
    fn unit_stride_detection() {
        let p = matmul_program(8);
        let a = p.arrays.iter().position(|a| a.name == "A").unwrap();
        assert!(is_unit_stride(&p, a, &"j".into()));
        assert!(!is_unit_stride(&p, a, &"i".into()));
        assert!(!is_unit_stride(&p, a, &"k".into()));
    }

    #[test]
    fn matmul_coalescing_vars() {
        let p = matmul_program(8);
        let vars = coalescing_vars(&p, &p.ops[0]);
        // k has unit stride in B and C; j has unit stride in A.
        assert!(vars.contains(&"k".into()));
        assert!(vars.contains(&"j".into()));
        assert!(!vars.contains(&"i".into()));
    }

    #[test]
    fn eqn1_every_op_has_coalescing_candidates() {
        let p = eqn1_program(10);
        for op in &p.ops {
            assert!(
                !coalescing_vars(&p, op).is_empty(),
                "op writing {} has no unit-stride loop",
                p.arrays[op.output].name
            );
        }
    }

    #[test]
    fn contiguity_requires_all_indices_in_order() {
        let p = matmul_program(8);
        let a = p.arrays.iter().position(|a| a.name == "A").unwrap();
        // Order missing 'j' entirely: not contiguous.
        let order: Vec<IndexVar> = vec!["i".into(), "k".into()];
        assert!(!is_contiguous(&p, a, &order));
    }
}
