//! Mapping engine: applies an [`OpConfig`] to a statement, producing a
//! [`MappedKernel`] — the analog of CUDA-CHiLL's `cuda(...)`,
//! `registers(...)`, `unroll(...)` transformation recipe (Figure 2(c)).
//!
//! A mapped kernel fixes which loops become the thread/block dimensions,
//! the order of the kernel-interior loops, the unroll factor of the
//! innermost loop, and linearized access expressions for every array
//! reference. It is *executable* (see the `gpusim` crate) and *printable*
//! as CUDA C (see [`crate::codegen`]).

use crate::program::{ArrayKind, TcrProgram};
use crate::space::{LoopSel, OpConfig};
use std::fmt;
use tensor::IndexVar;

/// A configuration that cannot be applied to its statement: the typed
/// replacement for the panics the mapper used to raise. Carried upward into
/// the pipeline's quarantine report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MapError {
    /// Statement the configuration was applied to.
    pub op_index: usize,
    pub detail: String,
}

impl MapError {
    fn new(op_index: usize, detail: impl Into<String>) -> Self {
        MapError {
            op_index,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "statement {}: {}", self.op_index, self.detail)
    }
}

impl std::error::Error for MapError {}

/// A linearized array reference: `base + Σ var·stride` over the kernel's
/// loop variables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArrayAccess {
    /// Array id within the program.
    pub array: usize,
    pub name: String,
    /// (loop variable, element stride) pairs; variables absent from the
    /// array's declaration do not appear.
    pub terms: Vec<(IndexVar, usize)>,
    /// Total elements of the array.
    pub len: usize,
    pub kind: ArrayKind,
}

impl ArrayAccess {
    /// Stride of a loop variable in this access (0 when the reference is
    /// invariant to it).
    pub fn stride_of(&self, v: &IndexVar) -> usize {
        self.terms
            .iter()
            .find(|(t, _)| t == v)
            .map(|(_, s)| *s)
            .unwrap_or(0)
    }

    /// True when the reference does not depend on any of `vars`.
    pub fn invariant_to_all(&self, vars: &[IndexVar]) -> bool {
        vars.iter().all(|v| self.stride_of(v) == 0)
    }
}

/// A kernel-interior loop.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InteriorLoop {
    pub var: IndexVar,
    pub extent: usize,
    /// True when the loop is parallel (an unmapped output index).
    pub parallel: bool,
}

/// A statement mapped onto the GPU: the output of the CUDA-CHiLL analog.
#[derive(Clone, Debug, PartialEq)]
pub struct MappedKernel {
    /// Kernel symbol, `<program>_GPU_<op>` like the paper's `ex_GPU_2`.
    pub name: String,
    pub op_index: usize,
    /// (variable, extent) of the ThreadX dimension.
    pub tx: (IndexVar, usize),
    pub ty: Option<(IndexVar, usize)>,
    pub bx: Option<(IndexVar, usize)>,
    pub by: Option<(IndexVar, usize)>,
    /// Interior loops, outermost first.
    pub interior: Vec<InteriorLoop>,
    /// Unroll factor of the innermost interior loop (1 = none).
    pub unroll: usize,
    pub output: ArrayAccess,
    pub inputs: Vec<ArrayAccess>,
    /// True when the statement accumulates into pre-existing output values
    /// (the kernel must read-modify-write global memory).
    pub accumulate: bool,
    /// True when the output is copied to a register for the duration of the
    /// interior loops (the paper always applies this; the naive OpenACC
    /// baseline does not).
    pub scalar_replacement: bool,
    /// Input positions whose whole array is staged in shared memory per
    /// block (cooperative load + `__syncthreads()`).
    pub staged: Vec<usize>,
    /// Scalar multiplier applied to each accumulated product (from the
    /// statement's coefficient; -1 for `-=`).
    pub coefficient: f64,
}

impl MappedKernel {
    /// Thread-block dimensions `(x, y)`.
    pub fn block(&self) -> (usize, usize) {
        (self.tx.1, self.ty.as_ref().map(|t| t.1).unwrap_or(1))
    }

    /// Grid dimensions `(x, y)`.
    pub fn grid(&self) -> (usize, usize) {
        (
            self.bx.as_ref().map(|b| b.1).unwrap_or(1),
            self.by.as_ref().map(|b| b.1).unwrap_or(1),
        )
    }

    pub fn threads_per_block(&self) -> usize {
        let (x, y) = self.block();
        x * y
    }

    pub fn num_blocks(&self) -> usize {
        let (x, y) = self.grid();
        x * y
    }

    /// Iterations of the interior loop nest executed by each thread.
    pub fn interior_trip_count(&self) -> u64 {
        self.interior.iter().map(|l| l.extent as u64).product()
    }

    /// Total floating-point operations of the kernel (2 per innermost point
    /// for a 2-input statement, 1 for a unary reduction).
    pub fn flops(&self) -> u64 {
        let per_point = self.inputs.len() as u64;
        per_point.max(1)
            * self.num_blocks() as u64
            * self.threads_per_block() as u64
            * self.interior_trip_count()
    }

    /// True when scalar replacement fully registers the output: the output
    /// address is invariant across all interior loops, so each thread reads
    /// it at most once and writes it exactly once (Figure 2(d)'s `nv2`).
    /// Always false when scalar replacement is disabled.
    pub fn output_fully_registered(&self) -> bool {
        if !self.scalar_replacement {
            return false;
        }
        let vars: Vec<IndexVar> = self.interior.iter().map(|l| l.var.clone()).collect();
        self.output.invariant_to_all(&vars)
    }

    /// Per-thread global-memory *store* instructions to the output: one per
    /// distinct address touched when scalar replacement holds the value in
    /// a register, one per interior iteration when it does not.
    pub fn output_stores_per_thread(&self) -> u64 {
        if self.scalar_replacement {
            // The scalar can only be held across the innermost run of loops
            // that do not vary the output address; everything at or above
            // the deepest output-varying loop forces a store per iteration.
            match self
                .interior
                .iter()
                .rposition(|l| self.output.stride_of(&l.var) != 0)
            {
                None => 1,
                Some(d) => self.interior[..=d]
                    .iter()
                    .map(|l| l.extent as u64)
                    .product(),
            }
        } else {
            self.interior_trip_count()
        }
    }

    /// Per-thread global-memory *load* instructions for input `k`,
    /// assuming the compiler hoists loop-invariant loads out of the
    /// innermost loops they do not depend on.
    pub fn input_loads_per_thread(&self, k: usize) -> u64 {
        let acc = &self.inputs[k];
        // The load must re-execute for every interior loop at or outside
        // the outermost loop the address depends on. (A loop the address is
        // invariant to can only be hoisted if no *enclosing* varying loop
        // re-enters it; conservatively, multiply extents of all loops from
        // the outermost varying one inward.)
        let mut varying_seen = false;
        let mut loads = 1u64;
        for l in &self.interior {
            if acc.stride_of(&l.var) != 0 {
                varying_seen = true;
            }
            if varying_seen {
                loads *= l.extent as u64;
            }
        }
        // Loads that vary only with unrolled iterations still execute once
        // per iteration; `loads` already counts them.
        loads
    }

    /// Shared memory consumed per block by the staged inputs, bytes.
    pub fn smem_bytes_per_block(&self) -> usize {
        self.staged.iter().map(|&k| self.inputs[k].len * 8).sum()
    }

    /// True when input `k` is staged in shared memory.
    pub fn is_staged(&self, k: usize) -> bool {
        self.staged.contains(&k)
    }

    /// All loop variables of the kernel in deterministic order: mapped
    /// (tx, ty, bx, by) then interior.
    pub fn all_vars(&self) -> Vec<IndexVar> {
        let mut v = vec![self.tx.0.clone()];
        if let Some((ref t, _)) = self.ty {
            v.push(t.clone());
        }
        if let Some((ref b, _)) = self.bx {
            v.push(b.clone());
        }
        if let Some((ref b, _)) = self.by {
            v.push(b.clone());
        }
        v.extend(self.interior.iter().map(|l| l.var.clone()));
        v
    }
}

fn access_for(program: &TcrProgram, array_id: usize) -> ArrayAccess {
    let decl = &program.arrays[array_id];
    let shape = decl.shape(&program.dims);
    let strides = shape.strides();
    ArrayAccess {
        array: array_id,
        name: decl.name.clone(),
        terms: decl
            .indices
            .iter()
            .cloned()
            .zip(strides.iter().copied())
            .collect(),
        len: shape.len(),
        kind: decl.kind,
    }
}

/// Applies `cfg` to statement `op_index` of `program`.
///
/// Returns a [`MapError`] when the configuration is inconsistent with the
/// statement (loops not covered exactly once, a mapped loop that is not
/// parallel, a loop variable with no extent, or an unroll factor exceeding
/// the innermost extent) — configurations produced by
/// [`crate::space::ProgramSpace::build`] always satisfy these, so this
/// surfaces only for hand-built or corrupted configurations.
pub fn map_kernel(
    program: &TcrProgram,
    op_index: usize,
    cfg: &OpConfig,
    accumulate: bool,
) -> Result<MappedKernel, MapError> {
    let op = program
        .ops
        .get(op_index)
        .ok_or_else(|| MapError::new(op_index, "statement index out of range"))?;
    let loop_vars = program.loop_vars(op);
    let out_indices = &program.arrays[op.output].indices;
    let ext = |v: &IndexVar| -> Result<usize, MapError> {
        program
            .dims
            .get(v)
            .copied()
            .ok_or_else(|| MapError::new(op_index, format!("loop variable {v} has no extent")))
    };

    // Coverage and parallelism checks.
    for v in cfg.mapped_vars_iter() {
        if !out_indices.contains(v) {
            return Err(MapError::new(
                op_index,
                format!("mapped loop {v} is not parallel in statement {op_index}"),
            ));
        }
    }
    // Set equality between (mapped ∪ interior) and the statement's loop
    // variables, checked by membership over the tiny loop nests instead of
    // building sorted scratch vectors on every call; the diagnostic lists
    // are materialized only on the failure path.
    let covers = |v: &IndexVar| cfg.mapped_vars_iter().any(|m| m == v) || cfg.interior.contains(v);
    let in_loops = |v: &IndexVar| loop_vars.contains(v);
    if !(loop_vars.iter().all(covers)
        && cfg.mapped_vars_iter().all(in_loops)
        && cfg.interior.iter().all(in_loops))
    {
        let mut covered_names: Vec<&str> = cfg
            .mapped_vars_iter()
            .chain(cfg.interior.iter())
            .map(|v| v.name())
            .collect();
        covered_names.sort_unstable();
        covered_names.dedup();
        let mut want: Vec<&str> = loop_vars.iter().map(|v| v.name()).collect();
        want.sort_unstable();
        return Err(MapError::new(
            op_index,
            format!(
                "configuration does not cover the loops of statement {op_index} exactly once \
                 (covered {covered_names:?}, want {want:?})"
            ),
        ));
    }

    let mut interior: Vec<InteriorLoop> = Vec::with_capacity(cfg.interior.len());
    for v in &cfg.interior {
        interior.push(InteriorLoop {
            var: v.clone(),
            extent: ext(v)?,
            parallel: out_indices.contains(v),
        });
    }
    if let Some(inner) = interior.last() {
        if cfg.unroll < 1 || cfg.unroll > inner.extent {
            return Err(MapError::new(
                op_index,
                format!(
                    "unroll factor {} out of range for extent {}",
                    cfg.unroll, inner.extent
                ),
            ));
        }
    } else if cfg.unroll != 1 {
        return Err(MapError::new(op_index, "unroll without interior loop"));
    }

    let sel = |s: &LoopSel| -> Result<Option<(IndexVar, usize)>, MapError> {
        match s.var() {
            Some(v) => Ok(Some((v.clone(), ext(v)?))),
            None => Ok(None),
        }
    };

    Ok(MappedKernel {
        name: format!("{}_GPU_{}", program.name, op_index),
        op_index,
        tx: (cfg.tx.clone(), ext(&cfg.tx)?),
        ty: sel(&cfg.ty)?,
        bx: sel(&cfg.bx)?,
        by: sel(&cfg.by)?,
        interior,
        unroll: cfg.unroll,
        output: access_for(program, op.output),
        inputs: op
            .inputs
            .iter()
            .map(|&id| access_for(program, id))
            .collect(),
        accumulate,
        scalar_replacement: true,
        staged: cfg.staged.clone(),
        coefficient: op.coefficient,
    })
}

/// Maps every statement of a program under one [`crate::space::Configuration`].
/// Fails on the first statement whose configuration cannot be applied.
pub fn map_program(
    program: &TcrProgram,
    space: &crate::space::ProgramSpace,
    config: &crate::space::Configuration,
    accumulate_output: bool,
) -> Result<Vec<MappedKernel>, MapError> {
    program
        .ops
        .iter()
        .enumerate()
        .map(|(i, op)| {
            // Only the statement writing the program output may accumulate
            // into pre-existing data; temporaries always start from zero.
            let acc = accumulate_output && program.arrays[op.output].kind == ArrayKind::Output;
            map_kernel(program, i, space.op_config(config, i), acc)
        })
        .collect()
}

/// One program-mapping job for [`map_programs`].
pub struct MapJob<'a> {
    pub program: &'a TcrProgram,
    pub space: &'a crate::space::ProgramSpace,
    pub config: crate::space::Configuration,
    pub accumulate_output: bool,
}

/// Maps a batch of programs in parallel on the rayon pool. Results are
/// positionally identical to mapping each job serially — mapping is a pure
/// function of its job, so scheduling never shows in the output. Each job
/// fails independently; one bad configuration does not poison the batch.
pub fn map_programs(jobs: &[MapJob<'_>]) -> Vec<Result<Vec<MappedKernel>, MapError>> {
    rayon::par_map_slice(jobs, |j| {
        map_program(j.program, j.space, &j.config, j.accumulate_output)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::tests_support::{eqn1_program, matmul_program};
    use crate::space::ProgramSpace;

    #[test]
    fn matmul_mapping_dimensions() {
        let p = matmul_program(8);
        let space = ProgramSpace::build(&p);
        let cfg = &space.per_op[0].configs[0];
        let k = map_kernel(&p, 0, cfg, false).unwrap();
        assert_eq!(k.tx.1, 8);
        let (bx, by) = k.grid();
        let (tx, ty) = k.block();
        assert!(tx * ty <= 1024);
        assert!(bx >= 1 && by >= 1);
        // j (summation) must be interior.
        assert!(k.interior.iter().any(|l| l.var == IndexVar::new("j")));
    }

    #[test]
    fn flops_invariant_across_all_configs() {
        let p = eqn1_program(6);
        let space = ProgramSpace::build(&p);
        for (i, s) in space.per_op.iter().enumerate() {
            let expect = map_kernel(&p, i, &s.configs[0], false).unwrap().flops();
            for cfg in &s.configs {
                assert_eq!(map_kernel(&p, i, cfg, false).unwrap().flops(), expect);
            }
        }
    }

    #[test]
    fn program_flops_match_mapped_total() {
        let p = eqn1_program(6);
        let space = ProgramSpace::build(&p);
        let cfgid = space.config(0);
        let kernels = map_program(&p, &space, &cfgid, false).unwrap();
        let total: u64 = kernels.iter().map(|k| k.flops()).sum();
        assert_eq!(total, p.flops());
    }

    #[test]
    fn scalar_replacement_detection() {
        let p = matmul_program(8);
        let space = ProgramSpace::build(&p);
        // Find a config whose interior is exactly the summation loop j: the
        // output C[i,k] is invariant to it, so fully registered.
        let s = &space.per_op[0];
        let cfg = s
            .configs
            .iter()
            .find(|c| c.interior.len() == 1)
            .expect("some config maps both parallel loops");
        let k = map_kernel(&p, 0, cfg, false).unwrap();
        assert!(k.output_fully_registered());
        assert_eq!(k.output_stores_per_thread(), 1);
    }

    #[test]
    fn input_loads_count_inner_reuse() {
        let p = matmul_program(8);
        let space = ProgramSpace::build(&p);
        let s = &space.per_op[0];
        let cfg = s.configs.iter().find(|c| c.interior.len() == 1).unwrap();
        let k = map_kernel(&p, 0, cfg, false).unwrap();
        // Both A[i,j] and B[j,k] vary with the interior loop j: 8 loads each.
        assert_eq!(k.input_loads_per_thread(0), 8);
        assert_eq!(k.input_loads_per_thread(1), 8);
    }

    #[test]
    fn accumulate_flag_only_on_output_statement() {
        let p = eqn1_program(4);
        let space = ProgramSpace::build(&p);
        let kernels = map_program(&p, &space, &space.config(0), true).unwrap();
        for k in &kernels[..kernels.len() - 1] {
            assert!(!k.accumulate, "temporary kernels never accumulate");
        }
        assert!(kernels.last().unwrap().accumulate);
    }

    #[test]
    fn bad_interior_rejected() {
        let p = matmul_program(8);
        let space = ProgramSpace::build(&p);
        let mut cfg = space.per_op[0].configs[0].clone();
        cfg.interior.clear();
        let err = map_kernel(&p, 0, &cfg, false).unwrap_err();
        assert_eq!(err.op_index, 0);
        assert!(err.detail.contains("does not cover"), "{err}");
    }

    #[test]
    fn bad_unroll_rejected() {
        let p = matmul_program(8);
        let space = ProgramSpace::build(&p);
        let base = space.per_op[0].configs[0].clone();
        let mut cfg = base.clone();
        cfg.unroll = 10_000;
        if cfg.interior.is_empty() {
            cfg.interior.push(tensor::IndexVar::new("j"));
        }
        let err = map_kernel(&p, 0, &cfg, false).unwrap_err();
        assert!(err.detail.contains("unroll"), "{err}");
    }

    #[test]
    fn kernel_names_match_paper_style() {
        let p = eqn1_program(4);
        let space = ProgramSpace::build(&p);
        let kernels = map_program(&p, &space, &space.config(0), false).unwrap();
        assert_eq!(kernels[2].name, "ex_GPU_2");
    }
}
