//! Golden pin for the default (time-only) objective: introducing the
//! pluggable objective layer must not move a single byte of the default
//! `tune` output, nor a single winning configuration id. These strings were
//! captured before the objective refactor; if this test fails, the default
//! search path changed behavior — that is a regression, not a test to
//! update casually.
//!
//! The non-default paths are covered too: a memory budget annotates the
//! pick and never reports an over-budget winner, and a saved plan refuses
//! to replay under a foreign objective (typed exit 10).

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_barracuda"))
}

fn tune_stdout(workload: &str, extra: &[&str]) -> String {
    let mut args = vec!["tune", workload, "--quick", "--evals", "30"];
    args.extend_from_slice(extra);
    let out = bin().args(&args).output().unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).unwrap()
}

/// Pre-refactor capture of `tune builtin:tce --arch all --quick --evals 30`.
const GOLDEN_TCE: &str = "\
GTX 980             138 us device     43.60 GF device     30.93 GF w/transfers  (30 evals, space 2914447608000)
Tesla K20           178 us device     33.75 GF device     21.54 GF w/transfers  (30 evals, space 2914447608000)
Tesla C2050         225 us device     26.72 GF device     18.22 GF w/transfers  (30 evals, space 2914447608000)
";

/// Pre-refactor capture of `tune builtin:eqn1 --arch all --quick --evals 30`.
const GOLDEN_EQN1: &str = "\
GTX 980           16.19 us device      3.71 GF device      1.58 GF w/transfers  (30 evals, space 55867328000)
Tesla K20         27.81 us device      2.16 GF device      1.01 GF w/transfers  (30 evals, space 55867328000)
Tesla C2050       29.03 us device      2.07 GF device     0.932 GF w/transfers  (30 evals, space 55867328000)
";

/// Pre-refactor winning configuration ids per (workload, arch).
const GOLDEN_IDS: &[(&str, &str, &str)] = &[
    ("builtin:tce", "gtx980", "529082465"),
    ("builtin:tce", "k20", "1330588893"),
    ("builtin:tce", "c2050", "1330588893"),
    ("builtin:eqn1", "gtx980", "133253379"),
    ("builtin:eqn1", "k20", "126325579"),
    ("builtin:eqn1", "c2050", "103895661"),
];

#[test]
fn default_objective_tune_output_is_byte_identical_to_the_golden_capture() {
    assert_eq!(tune_stdout("builtin:tce", &["--arch", "all"]), GOLDEN_TCE);
    assert_eq!(tune_stdout("builtin:eqn1", &["--arch", "all"]), GOLDEN_EQN1);
}

#[test]
fn explicit_time_objective_is_the_default() {
    // `--objective time` spells out the default; output must not change.
    assert_eq!(
        tune_stdout("builtin:eqn1", &["--arch", "all", "--objective", "time"]),
        GOLDEN_EQN1
    );
}

#[test]
fn default_objective_picks_are_the_golden_configurations() {
    let dir = std::env::temp_dir().join(format!("barracuda_golden_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for (workload, arch, id) in GOLDEN_IDS {
        let path = dir.join(format!("{arch}.json"));
        let out = bin()
            .args([
                "tune",
                workload,
                "--arch",
                arch,
                "--quick",
                "--evals",
                "30",
                "--save-plan",
                path.to_str().unwrap(),
            ])
            .output()
            .unwrap();
        assert!(out.status.success());
        let plan = std::fs::read_to_string(&path).unwrap();
        assert!(
            plan.contains(&format!("\"id\": \"{id}\"")),
            "{workload} on {arch} no longer picks id {id}"
        );
        // The default objective is recorded in the plan as pure time.
        assert!(plan.contains("\"time_weight\""), "{plan}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn memory_budget_annotates_and_respects_the_budget() {
    let text = tune_stdout(
        "builtin:tce",
        &["--arch", "gtx980", "--mem-budget", "2000000"],
    );
    assert!(text.contains("objective: "), "{text}");
    assert!(text.contains("over-budget versions"), "{text}");
    assert!(text.contains("budget respected: peak "), "{text}");
    // The annotated peak must actually be within the budget.
    let peak: u64 = text
        .split("budget respected: peak ")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .unwrap()
        .parse()
        .unwrap();
    assert!(peak <= 2_000_000, "{text}");
}

#[test]
fn impossible_budget_is_a_typed_search_error() {
    let out = bin()
        .args([
            "tune",
            "builtin:eqn1",
            "--quick",
            "--evals",
            "10",
            "--mem-budget",
            "1",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(8));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("memory budget"), "{err}");
}

#[test]
fn foreign_objective_replay_of_a_saved_plan_exits_10() {
    let dir = std::env::temp_dir().join(format!("barracuda_foreign_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("plan.json");
    let out = bin()
        .args([
            "tune",
            "builtin:eqn1",
            "--quick",
            "--evals",
            "10",
            "--objective",
            "memory",
            "--save-plan",
            path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    // Replaying under the default (time-only) objective must be refused...
    let replay = bin()
        .args(["replay", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(replay.status.code(), Some(10));
    let err = String::from_utf8_lossy(&replay.stderr);
    assert!(err.contains("objective"), "{err}");
    // ...while the matching objective replays fine and reports itself.
    let ok = bin()
        .args(["replay", path.to_str().unwrap(), "--objective", "memory"])
        .output()
        .unwrap();
    assert!(
        ok.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&ok.stderr)
    );
    let text = String::from_utf8_lossy(&ok.stdout);
    assert!(text.contains("objective: time*1+mem*8+rw*1"), "{text}");
    std::fs::remove_dir_all(&dir).unwrap();
}
