//! Property tests for the per-op timing memo layer: evaluation through
//! [`WorkloadTuner::try_gpu_seconds_memo`] must be bit-identical to the
//! unmemoized whole-program path — successful times and fault strings
//! alike — on cold and warm caches, and injected faults must quarantine
//! identically between serial and parallel searches without ever
//! contaminating the per-op cache.

use barracuda::prelude::*;
use barracuda::EvalCache;
use surf::FaultPlan;

fn workload(name: &str) -> Workload {
    kernels::table2_benchmarks()
        .into_iter()
        .find(|w| w.name == name)
        .unwrap_or_else(|| panic!("no table-2 workload named {name}"))
}

/// Deterministic id sample striding the whole joint space with a prime.
fn sample_ids(total: u128, n: usize) -> Vec<u128> {
    (0..n as u128).map(|k| (k * 104_729) % total).collect()
}

fn assert_memo_matches_unmemoized(
    tuner: &WorkloadTuner,
    arch: &gpusim::GpuArch,
    cache: &EvalCache,
    ids: &[u128],
    label: &str,
) {
    for &id in ids {
        let plain = tuner.try_gpu_seconds(id, arch);
        let memo = tuner.try_gpu_seconds_memo(id, arch, cache);
        match (plain, memo) {
            (Ok(a), Ok(b)) => assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{label}: id {id} time diverged ({a} vs {b})"
            ),
            (Err(a), Err(b)) => assert_eq!(
                a.to_string(),
                b.to_string(),
                "{label}: id {id} fault string diverged"
            ),
            (a, b) => panic!("{label}: id {id} outcome kind diverged: {a:?} vs {b:?}"),
        }
    }
}

#[test]
fn memoized_eval_is_bit_identical_to_unmemoized() {
    let arch = gpusim::k20();
    for name in ["ex", "tce"] {
        let w = workload(name);
        let tuner = WorkloadTuner::build(&w);
        let ids = sample_ids(tuner.total_space(), 150);
        let cache = EvalCache::new();
        // Cold pass populates the per-op layer; warm pass answers from it.
        assert_memo_matches_unmemoized(&tuner, &arch, &cache, &ids, name);
        let (hits0, _) = cache.op_stats();
        assert_memo_matches_unmemoized(&tuner, &arch, &cache, &ids, name);
        let (hits1, misses1) = cache.op_stats();
        assert!(
            hits1 > hits0,
            "{name}: warm pass produced no per-op hits ({hits0} -> {hits1})"
        );
        assert!(misses1 > 0, "{name}: per-op layer saw no compute at all");
    }
}

#[test]
fn faulty_parallel_tuning_quarantines_identically_to_serial() {
    let w = workload("ex");
    let tuner = WorkloadTuner::build(&w);
    let arch = gpusim::k20();
    let plan = FaultPlan::mixed(0.3, 42);
    let mut serial_params = TuneParams::quick();
    serial_params.threads = 1;
    serial_params.fault_injection = Some(plan);
    let mut parallel_params = TuneParams::quick();
    parallel_params.threads = 0;
    parallel_params.fault_injection = Some(plan);
    let serial = tuner.autotune(&arch, serial_params).unwrap();
    let parallel = tuner.autotune(&arch, parallel_params).unwrap();
    assert_eq!(serial.id, parallel.id);
    assert_eq!(serial.gpu_seconds.to_bits(), parallel.gpu_seconds.to_bits());
    let bits = |v: &[f64]| v.iter().map(|t| t.to_bits()).collect::<Vec<_>>();
    assert_eq!(
        bits(&serial.search.evaluated_times),
        bits(&parallel.search.evaluated_times)
    );
    // Quarantine is part of the contract: same entries, same reason
    // strings, same order.
    assert_eq!(serial.quarantine.entries, parallel.quarantine.entries);
    assert!(
        !serial.quarantine.entries.is_empty(),
        "a 30% fault plan must quarantine something"
    );
}

#[test]
fn injected_faults_never_poison_the_per_op_cache() {
    let w = workload("ex");
    let tuner = WorkloadTuner::build(&w);
    let arch = gpusim::k20();
    let cache = EvalCache::new();
    let mut params = TuneParams::quick();
    params.fault_injection = Some(FaultPlan::mixed(0.4, 7));
    let tuned = tuner.autotune_with_cache(&arch, params, &cache).unwrap();
    assert!(
        !tuned.quarantine.entries.is_empty(),
        "a 40% fault plan must quarantine something"
    );
    // Injected faults short-circuit above the real evaluator, so every
    // per-op entry the search left behind is a genuine outcome: replaying
    // ids through the same (now warm) cache must still agree bitwise with
    // the unmemoized path.
    let ids = sample_ids(tuner.total_space(), 150);
    assert_memo_matches_unmemoized(&tuner, &arch, &cache, &ids, "ex-faulty");
}
