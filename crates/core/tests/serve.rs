//! Integration tests for the serving daemon: coalescing, store warmth,
//! deadlines, and protocol errors — all in-process through
//! [`Daemon::handle_line`], the same entry the transports call.

use std::sync::{Arc, Barrier};

use barracuda::json::Json;
use barracuda::kernels;
use barracuda::{Daemon, ServeOptions};

fn quick_daemon(store: Option<std::path::PathBuf>) -> Daemon {
    Daemon::new(ServeOptions {
        store,
        backend: "gtx980".to_string(),
        quick: true,
        evals: Some(30),
        ..ServeOptions::default()
    })
    .unwrap()
}

fn temp_store(tag: &str) -> std::path::PathBuf {
    let root = std::env::temp_dir().join(format!("barracuda_serve_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

const TUNE_EQN1: &str = r#"{"op":"tune","workload":"builtin:eqn1","backend":"gtx980"}"#;

/// N identical cold requests fired concurrently run exactly ONE search:
/// the evaluation cache records one search's worth of misses, the other
/// N-1 requests coalesce, and all N responses are bit-identical.
#[test]
fn concurrent_identical_cold_requests_coalesce_into_one_search() {
    // Reference: one lone request on a fresh daemon — its miss count is
    // what "exactly one search" costs.
    let lone = quick_daemon(None);
    let out = lone.handle_line(TUNE_EQN1);
    assert!(out.response.contains("\"ok\":true"), "{}", out.response);
    let w = kernels::builtin("eqn1").unwrap();
    let (_, lone_misses) = lone.session().cache_for(&w).time_stats();
    assert!(lone_misses > 0, "a cold search must miss the time cache");

    const N: usize = 4;
    // Hold the leader's search open (injected stall — it does not touch
    // the search itself or the cache counters) so every follower joins
    // the coalition even under heavy test-runner load.
    let daemon = Arc::new(
        Daemon::new(ServeOptions {
            backend: "gtx980".to_string(),
            quick: true,
            evals: Some(30),
            chaos: barracuda::serve::ChaosPlan {
                slow_rate: 1.0,
                slow_ms: 500,
                ..barracuda::serve::ChaosPlan::none()
            },
            ..ServeOptions::default()
        })
        .unwrap(),
    );
    let barrier = Arc::new(Barrier::new(N));
    let responses: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..N)
            .map(|_| {
                let daemon = Arc::clone(&daemon);
                let barrier = Arc::clone(&barrier);
                s.spawn(move || {
                    barrier.wait();
                    daemon.handle_line(TUNE_EQN1).response
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for r in &responses {
        assert_eq!(
            r, &responses[0],
            "coalesced responses must be bit-identical"
        );
        assert!(r.contains("\"ok\":true"), "{r}");
    }
    let (_, misses) = daemon.session().cache_for(&w).time_stats();
    assert_eq!(
        misses, lone_misses,
        "N concurrent identical requests must cost exactly one search's misses"
    );
    let m = daemon.metrics().snapshot();
    assert_eq!(m.coalesced, N - 1, "all but the leader coalesce");
    assert_eq!(m.store_misses, 1, "only the leader tunes");
    assert_eq!(m.tunes, N, "every request is answered");
}

/// A store-backed daemon serves the second identical request by replay:
/// zero search evaluations, `source:"hit"`, and a timing line byte-equal
/// to the cold response's.
#[test]
fn warm_requests_replay_from_the_store() {
    let daemon = quick_daemon(Some(temp_store("warm")));
    let line = r#"{"op":"tune","workload":"tce","backend":"k20","evals":25}"#;
    let cold = Json::parse(&daemon.handle_line(line).response).unwrap();
    let warm = Json::parse(&daemon.handle_line(line).response).unwrap();
    assert_eq!(cold.get("source").and_then(Json::as_str), Some("searched"));
    assert_eq!(warm.get("source").and_then(Json::as_str), Some("hit"));
    assert_eq!(warm.get("evals_performed").and_then(Json::as_u64), Some(0));
    assert!(cold.get("evals_performed").and_then(Json::as_u64) > Some(0));
    assert_eq!(
        cold.get("timing").and_then(Json::as_str),
        warm.get("timing").and_then(Json::as_str),
        "hit must reproduce the search's timing line byte-for-byte"
    );
    let m = daemon.metrics().snapshot();
    assert_eq!((m.store_hits, m.store_misses), (1, 1));
}

/// A request whose deadline expires mid-search answers promptly with the
/// typed degraded status and best-so-far — it never hangs and never
/// errors.
#[test]
fn deadline_overrun_degrades_instead_of_hanging() {
    let daemon = quick_daemon(None);
    let line = r#"{"op":"tune","workload":"builtin:tce","backend":"k20","deadline_s":0.0}"#;
    let start = std::time::Instant::now();
    let out = daemon.handle_line(line);
    assert!(
        start.elapsed().as_secs() < 60,
        "deadline overrun must not hang"
    );
    let v = Json::parse(&out.response).unwrap();
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
    let reason = v.get("degraded").and_then(Json::as_str).unwrap();
    assert!(reason.contains("deadline"), "reason: {reason}");
    assert!(v.get("gpu_us").and_then(Json::as_f64).unwrap() > 0.0);
    assert_eq!(daemon.metrics().snapshot().degraded, 1);
}

/// Malformed lines and unknown workloads answer `ok:false` with the
/// serve stage and exit code 12 — and the daemon keeps serving.
#[test]
fn bad_requests_fail_typed_without_killing_the_daemon() {
    let daemon = quick_daemon(None);
    for line in [
        "not json at all",
        r#"{"op":"fly"}"#,
        r#"{"op":"tune","workload":"builtin:nope"}"#,
        r#"{"op":"tune","workload":"builtin:eqn1","backend":"warp9"}"#,
    ] {
        let v = Json::parse(&daemon.handle_line(line).response).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false), "{line}");
        assert!(v.get("exit_code").and_then(Json::as_u64).unwrap() > 2);
    }
    let v = Json::parse(&daemon.handle_line(r#"{"op":"ping"}"#).response).unwrap();
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
    let m = daemon.metrics().snapshot();
    assert_eq!(m.errors, 4);
    assert!(!daemon.is_shutdown());
}

/// `stats` reports live counters; `shutdown` flips the daemon's flag and
/// tells the transport to stop.
#[test]
fn stats_and_shutdown_round_trip() {
    let daemon = quick_daemon(None);
    daemon.handle_line(r#"{"op":"ping"}"#);
    let v = Json::parse(&daemon.handle_line(r#"{"op":"stats"}"#).response).unwrap();
    assert_eq!(v.get("requests").and_then(Json::as_u64), Some(2));
    let out = daemon.handle_line(r#"{"op":"shutdown"}"#);
    assert!(out.shutdown);
    assert!(daemon.is_shutdown());
}
