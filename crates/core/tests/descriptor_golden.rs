//! Golden equivalence for the descriptor-driven backend refactor.
//!
//! The built-in backends are now parsed from embedded TOML descriptors
//! and resolved through a [`BackendSet`] instead of hard-coded structs
//! and a registry — these tests pin that the observable behavior did not
//! move: tuning through the set picks the same configuration with the
//! same times (bit-identical) as tuning the architecture directly, the
//! whole 7-key sweep holds together, and a *custom* descriptor round
//! trips tune → store → serve with a warm hit that spends zero search
//! evaluations.

use std::sync::Arc;

use barracuda::pipeline::{TuneParams, WorkloadTuner};
use barracuda::{builtin_backends, BackendSet, Daemon, ServeOptions, TuningSession};
use gpusim::ArchDescriptor;

fn params() -> TuneParams {
    let mut p = TuneParams::quick();
    p.surf.max_evals = 25;
    p
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let root = std::env::temp_dir().join(format!(
        "barracuda_descriptor_golden_{tag}_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&root);
    root
}

/// The built-in set still carries exactly the seven pre-refactor keys,
/// in order.
#[test]
fn builtin_set_has_the_seven_keys_in_order() {
    assert_eq!(
        builtin_backends().keys(),
        vec![
            "gtx980",
            "k20",
            "c2050",
            "cpu1",
            "cpu4",
            "acc-naive",
            "acc-opt"
        ]
    );
}

/// Tuning a GPU backend through the session/BackendSet path is
/// bit-identical to tuning the architecture directly: same winning
/// configuration id, same device seconds, same search telemetry — which
/// is exactly what makes the CLI timing line byte-identical.
#[test]
fn session_tuning_matches_direct_arch_tuning_bitwise() {
    let w = barracuda::kernels::builtin("eqn1").unwrap();
    let tuner = WorkloadTuner::build(&w);
    for key in ["gtx980", "k20", "c2050"] {
        let arch = gpusim::arch_by_key(key).unwrap();
        let direct = tuner.autotune(&arch, params()).unwrap();
        let session = TuningSession::new();
        let via_set = session.tune_built(&tuner, key, params()).unwrap().tuned;
        assert_eq!(via_set.id, direct.id, "{key}: picked configuration");
        assert_eq!(
            via_set.gpu_seconds.to_bits(),
            direct.gpu_seconds.to_bits(),
            "{key}: device seconds must be bit-identical"
        );
        assert_eq!(via_set.arch_name, direct.arch_name, "{key}");
        assert_eq!(via_set.search.n_evals, direct.search.n_evals, "{key}");
        assert_eq!(via_set.search.space_size, direct.search.space_size, "{key}");
    }
}

/// The GPU backends' plan-store salts are the descriptor digests — and
/// differ from the eval-cache salts (which stay keyed by display name so
/// the shared feature memo layout is unchanged).
#[test]
fn gpu_store_salts_are_descriptor_digests() {
    for key in ["gtx980", "k20", "c2050"] {
        let arch = gpusim::arch_by_key(key).unwrap();
        let digest = ArchDescriptor::from_arch(arch).digest();
        let b = barracuda::backend_by_key(key).unwrap();
        assert_eq!(b.cache_salt(), digest, "{key}");
        assert_ne!(digest, 0, "{key}: digest 0 is reserved");
    }
}

/// A custom descriptor round trips through the whole stack: load it into
/// a set, tune with a store (miss → searched + persisted), then serve
/// from the same store with the descriptor loaded — the daemon answers
/// with a warm hit, zero search evaluations, and the same result bits.
#[test]
fn custom_descriptor_round_trips_tune_store_serve() {
    // A K20 variant: different key/name and slightly different memory
    // bandwidth, so it is a genuinely distinct backend with its own salt.
    let mut arch = gpusim::k20();
    arch.key = "k20x".to_string();
    arch.name = "Tesla K20X (golden)".to_string();
    arch.mem_bw_gbs = 180.0;
    let toml = ArchDescriptor::from_arch(arch).canonical_toml();

    let dir = temp_dir("roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    let desc_path = dir.join("k20x.toml");
    std::fs::write(&desc_path, &toml).unwrap();
    let store = dir.join("store");

    // Tune side: CLI-equivalent session with the descriptor loaded.
    let mut set = BackendSet::builtin();
    let loaded = set.load_arch_file(&desc_path).unwrap();
    assert_eq!(loaded, "k20x");
    let session = TuningSession::with_store(&store)
        .unwrap()
        .with_backends(Arc::new(set));
    let w = barracuda::kernels::builtin("eqn1").unwrap();
    let tuner = WorkloadTuner::build(&w);
    let out = session.tune_built(&tuner, "k20x", params()).unwrap();
    assert!(
        matches!(
            out.source,
            barracuda::PlanSource::Searched { stored: Some(_) }
        ),
        "first tune must search and persist"
    );

    // Serve side: a fresh daemon loads the same descriptor and store.
    let daemon = Daemon::new(ServeOptions {
        store: Some(store),
        backend: "k20x".to_string(),
        quick: true,
        evals: Some(25),
        arch_files: vec![desc_path],
        ..ServeOptions::default()
    })
    .unwrap();
    let served = daemon
        .serve_tune(&barracuda::serve::TuneRequest {
            id: None,
            workload: "builtin:eqn1".to_string(),
            backend: Some("k20x".to_string()),
            evals: Some(25),
            quick: Some(true),
            deadline_s: None,
            objective: None,
        })
        .unwrap();
    assert_eq!(served.source, barracuda::serve::ServedSource::Hit);
    assert_eq!(served.evals_performed, 0, "warm hit must not search");
    assert_eq!(served.arch, "Tesla K20X (golden)");
    assert_eq!(
        served.gpu_seconds.to_bits(),
        out.tuned.gpu_seconds.to_bits(),
        "replayed result must be bit-identical to the searched one"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// An unknown default backend or a missing descriptor file fails daemon
/// construction with a typed error instead of a daemon that rejects
/// every request.
#[test]
fn daemon_rejects_bad_descriptor_configuration() {
    let Err(err) = Daemon::new(ServeOptions {
        backend: "nope".to_string(),
        ..ServeOptions::default()
    }) else {
        panic!("unknown default backend must fail daemon construction");
    };
    assert_eq!(err.stage(), "serve");

    let Err(err) = Daemon::new(ServeOptions {
        backend: "gtx980".to_string(),
        arch_files: vec![std::path::PathBuf::from("/nonexistent/arch.toml")],
        ..ServeOptions::default()
    }) else {
        panic!("missing descriptor file must fail daemon construction");
    };
    assert_eq!(err.stage(), "descriptor");
    assert_eq!(err.exit_code(), 14);
}
