//! Crash-safety and corruption properties of the plan store: arbitrary
//! on-disk damage (zero-length, truncated, bit-flipped entries) never
//! panics or fails a lookup — damaged entries are quarantined to
//! `*.corrupt` sidecars and re-tuning re-inserts a clean artifact; a
//! writer that dies before its rename leaves only an invisible `.partial`
//! temporary; and concurrent same-key inserters resolve to exactly one
//! un-torn winner.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, OnceLock};

use barracuda::pipeline::{TuneParams, WorkloadTuner};
use barracuda::workload::Workload;
use barracuda::{PlanStore, StoreFaultPlan, StoreKey, StoreOptions, TunedPlan};
use proptest::prelude::*;
use tensor::index::uniform_dims;

/// One small tuned plan, shared by every test/case: tuning is the
/// expensive part, corruption is cheap.
fn base_plan() -> &'static TunedPlan {
    static PLAN: OnceLock<TunedPlan> = OnceLock::new();
    PLAN.get_or_init(|| {
        let w = Workload::parse(
            "mm",
            "C[i k] = Sum([j], A[i j] * B[j k])",
            &uniform_dims(&["i", "j", "k"], 8),
        )
        .unwrap();
        let tuner = WorkloadTuner::build(&w);
        let mut params = TuneParams::quick();
        params.surf.max_evals = 6;
        let tuned = tuner.autotune(&gpusim::k20(), params).unwrap();
        TunedPlan::from_tuned(&tuner, "k20", &tuned)
    })
}

fn fresh_root(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let root = std::env::temp_dir().join(format!(
        "barracuda_store_crash_{tag}_{}_{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&root);
    root
}

fn visible_plans(root: &std::path::Path) -> Vec<std::path::PathBuf> {
    let mut found = Vec::new();
    if let Ok(dir) = std::fs::read_dir(root) {
        for item in dir.flatten() {
            let name = item.file_name().to_string_lossy().into_owned();
            if name.ends_with(".plan.json") {
                found.push(item.path());
            }
        }
    }
    found.sort();
    found
}

fn files_with_suffix(root: &std::path::Path, suffix: &str) -> usize {
    std::fs::read_dir(root)
        .map(|dir| {
            dir.flatten()
                .filter(|i| i.file_name().to_string_lossy().ends_with(suffix))
                .count()
        })
        .unwrap_or(0)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Any single corruption of a stored entry — emptied, truncated at an
    /// arbitrary offset, or one flipped bit anywhere (including flips
    /// that break UTF-8) — leaves `lookup` returning `Ok`: either the
    /// damage was benign and a plan decodes, or the entry is quarantined
    /// to a `*.corrupt` sidecar, counted, and treated as a miss that a
    /// clean re-insert then fills.
    #[test]
    fn corrupted_entries_quarantine_instead_of_failing(
        mode in 0usize..3,
        frac_ppm in 0u32..1_000_000,
        bit in 0u32..8,
    ) {
        let frac = f64::from(frac_ppm) / 1_000_000.0;
        let plan = base_plan();
        let key = StoreKey::of_plan(plan);
        let root = fresh_root("corrupt");
        let store = PlanStore::open(&root).unwrap();
        let path = store.insert(plan).unwrap();

        let mut bytes = std::fs::read(&path).unwrap();
        prop_assert!(bytes.len() > 2);
        let offset = ((bytes.len() - 1) as f64 * frac) as usize;
        match mode {
            0 => bytes.clear(),
            1 => bytes.truncate(offset),
            _ => bytes[offset] ^= 1 << bit,
        }
        std::fs::write(&path, &bytes).unwrap();

        let looked = store.lookup(&key);
        prop_assert!(looked.is_ok(), "lookup must never fail on corruption: {looked:?}");
        match looked.unwrap() {
            // Benign flip: the entry still decodes to a plan at this
            // address (e.g. a digit of a timing float changed).
            Some(_) => prop_assert_eq!(store.corrupt_quarantined(), 0),
            None => {
                prop_assert_eq!(store.corrupt_quarantined(), 1, "miss must mean quarantine");
                prop_assert_eq!(files_with_suffix(&root, ".corrupt"), 1);
                prop_assert!(visible_plans(&root).is_empty(), "damaged entry must leave the address space");
                // Re-tune (here: re-insert the known-good artifact) and
                // the address serves cleanly again.
                store.insert(plan).unwrap();
                let back = store.lookup(&key).unwrap();
                prop_assert_eq!(back.as_ref(), Some(plan));
            }
        }
        let _ = std::fs::remove_dir_all(&root);
    }
}

/// A writer that "crashes" after writing its temporary but before the
/// rename publishes nothing: lookups miss, no `*.plan.json` is visible,
/// only a `.partial` temporary remains — and a healthy writer on the
/// same directory then publishes normally, with `gc_corrupt` sweeping
/// the dead writer's leavings.
#[test]
fn crashed_writer_leaves_no_visible_entry() {
    let plan = base_plan();
    let key = StoreKey::of_plan(plan);
    let root = fresh_root("crash");
    let crashing = PlanStore::open_with(
        &root,
        StoreOptions {
            faults: StoreFaultPlan {
                crash_before_rename_rate: 1.0,
                ..StoreFaultPlan::none()
            },
            ..StoreOptions::default()
        },
    )
    .unwrap();
    let err = crashing.insert(plan).unwrap_err();
    assert_eq!(err.stage(), "store");
    assert!(
        visible_plans(&root).is_empty(),
        "a crashed insert must publish nothing"
    );
    assert!(
        files_with_suffix(&root, ".partial") >= 1,
        "the temporary must be left behind"
    );
    assert_eq!(crashing.lookup(&key).unwrap(), None);

    // A healthy store over the same directory recovers completely.
    let healthy = PlanStore::open(&root).unwrap();
    healthy.insert(plan).unwrap();
    assert_eq!(healthy.lookup(&key).unwrap().as_ref(), Some(plan));
    let swept = healthy.gc_corrupt().unwrap();
    assert!(
        !swept.is_empty(),
        "gc must sweep the dead writer's temporary"
    );
    assert_eq!(files_with_suffix(&root, ".partial"), 0);
    assert_eq!(
        healthy.lookup(&key).unwrap().as_ref(),
        Some(plan),
        "gc must not touch live entries"
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// Concurrent inserters racing on the same address resolve by atomic
/// rename: the surviving entry is byte-identical to ONE of the competing
/// artifacts — last writer wins, torn mixes are impossible — and exactly
/// one visible entry remains.
#[test]
fn concurrent_same_key_inserts_never_tear() {
    let plan_a = base_plan().clone();
    let mut plan_b = plan_a.clone();
    // Same store key (params are not part of the address), different
    // bytes: provenance wall time differs between the two artifacts.
    plan_b.provenance.wall_s += 1.0;
    let (text_a, text_b) = (plan_a.to_json_text(), plan_b.to_json_text());
    assert_ne!(text_a, text_b);
    assert_eq!(StoreKey::of_plan(&plan_a), StoreKey::of_plan(&plan_b));

    let root = fresh_root("race");
    let store = Arc::new(PlanStore::open(&root).unwrap());
    const WRITERS: usize = 8;
    const ROUNDS: usize = 12;
    let barrier = Arc::new(Barrier::new(WRITERS));
    std::thread::scope(|s| {
        for i in 0..WRITERS {
            let store = Arc::clone(&store);
            let barrier = Arc::clone(&barrier);
            let mine = if i % 2 == 0 {
                plan_a.clone()
            } else {
                plan_b.clone()
            };
            s.spawn(move || {
                barrier.wait();
                for _ in 0..ROUNDS {
                    store.insert(&mine).unwrap();
                }
            });
        }
    });

    let visible = visible_plans(&root);
    assert_eq!(visible.len(), 1, "one address, one entry: {visible:?}");
    let survivor = std::fs::read_to_string(&visible[0]).unwrap();
    assert!(
        survivor == text_a || survivor == text_b,
        "survivor must be bit-equal to one competing artifact, never a torn mix"
    );
    let back = store.lookup(&StoreKey::of_plan(&plan_a)).unwrap().unwrap();
    assert!(back == plan_a || back == plan_b);
    let _ = std::fs::remove_dir_all(&root);
}
