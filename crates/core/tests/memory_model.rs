//! Property tests for the memory cost model behind [`barracuda::Objective`]:
//! the incremental liveness walk in `stages::lower` must agree with a
//! brute-force formulation on every factorization the enumerator produces,
//! and a budget-constrained search must never pick a configuration whose
//! modeled peak exceeds the budget.

use barracuda::pipeline::{TuneParams, WorkloadTuner};
use barracuda::stages::lower;
use barracuda::workload::Workload;
use barracuda::{BarracudaError, EvalCache, Objective};
use proptest::prelude::*;
use tcr::{ArrayKind, TcrProgram};
use tensor::index::uniform_dims;

/// Structurally distinct contraction programs: chains of different arity,
/// repeated tensors, multiple statements, rectangular index sets. Each
/// enumerates to many factorizations, so one case exercises dozens of
/// distinct temporary-lifetime patterns.
const SOURCES: &[(&str, &str, &[&str])] = &[
    ("mm", "C[i k] = Sum([j], A[i j] * B[j k])", &["i", "j", "k"]),
    (
        "chain3",
        "D[i l] = Sum([j k], A[i j] * B[j k] * C[k l])",
        &["i", "j", "k", "l"],
    ),
    (
        "chain4",
        "E[i m] = Sum([j k l], A[i j] * B[j k] * C[k l] * D[l m])",
        &["i", "j", "k", "l", "m"],
    ),
    (
        "square",
        "B[i k] = Sum([j], A[i j] * A[j k])",
        &["i", "j", "k"],
    ),
    (
        "two_stmt",
        "T[i k] = Sum([j], A[i j] * B[j k])\nC[i m] = Sum([k], T[i k] * D[k m])",
        &["i", "j", "k", "m"],
    ),
    (
        "tce_like",
        "X[a b i j] = Sum([c k], A[a c i k] * B[b c j k])",
        &["a", "b", "c", "i", "j", "k"],
    ),
];

/// Brute-force peak: instead of accumulating byte intervals per temporary,
/// ask at every op position which temporaries are live there — a temporary
/// is live at `t` when some op at or before `t` writes it and it is read at
/// or after `t` (or `t` is exactly its producing op) — and take the largest
/// total. Same definition, independent mechanics.
fn brute_force_peak(program: &TcrProgram) -> u64 {
    (0..program.ops.len())
        .map(|t| {
            program
                .arrays
                .iter()
                .enumerate()
                .filter(|(a_id, a)| {
                    if a.kind != ArrayKind::Temp {
                        return false;
                    }
                    let written_before = program.ops[..=t].iter().any(|op| op.output == *a_id);
                    let read_after = program.ops[t..].iter().any(|op| op.inputs.contains(a_id));
                    let born_here = program.ops[t].output == *a_id;
                    written_before && (read_after || born_here)
                })
                .map(|(_, a)| 8 * a.len(&program.dims) as u64)
                .sum::<u64>()
        })
        .max()
        .unwrap_or(0)
}

/// Brute-force traffic: one write per op output, one read per op input.
fn brute_force_rw(program: &TcrProgram) -> u64 {
    let mut total = 0u64;
    for op in &program.ops {
        total += 8 * program.arrays[op.output].len(&program.dims) as u64;
        for &i in &op.inputs {
            total += 8 * program.arrays[i].len(&program.dims) as u64;
        }
    }
    total
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The incremental liveness walk agrees with the brute-force walk on
    /// every factorization of every workload shape, at arbitrary extents.
    #[test]
    fn peak_model_matches_brute_force_liveness(src in 0..SOURCES.len(), n in 2usize..9) {
        let (name, text, indices) = SOURCES[src];
        let w = Workload::parse(name, text, &uniform_dims(indices, n)).unwrap();
        let tuner = WorkloadTuner::build(&w);
        for st in &tuner.statements {
            for v in &st.variants {
                prop_assert_eq!(
                    lower::program_peak_temp_bytes(&v.program),
                    brute_force_peak(&v.program),
                    "peak mismatch on {} n={}", name, n
                );
                prop_assert_eq!(
                    lower::program_rw_bytes(&v.program),
                    brute_force_rw(&v.program),
                    "rw mismatch on {} n={}", name, n
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// A budget-constrained search either returns a pick whose modeled
    /// peak respects the budget, or fails with the typed search error —
    /// never a silently over-budget winner. The budget is swept across the
    /// range of version peaks so both outcomes are exercised.
    #[test]
    fn budget_satisfying_pick_never_exceeds_budget(
        src in 0..SOURCES.len(),
        n in 4usize..9,
        frac_milli in 0u64..1200,
    ) {
        let frac = frac_milli as f64 / 1000.0;
        let (name, text, indices) = SOURCES[src];
        let w = Workload::parse(name, text, &uniform_dims(indices, n)).unwrap();
        let tuner = WorkloadTuner::build(&w);
        let table = lower::version_memory_table(&tuner.statements);
        let peaks: Vec<u64> = table.iter().flatten().map(|&(p, _)| p).collect();
        let (lo, hi) = (
            peaks.iter().copied().min().unwrap_or(0),
            peaks.iter().copied().max().unwrap_or(0),
        );
        let budget = lo.saturating_add(((hi - lo) as f64 * frac) as u64);
        let mut params = TuneParams::quick();
        params.surf.max_evals = 12;
        params.objective = Objective {
            mem_budget: Some(budget),
            ..Objective::time_only()
        };
        match tuner.autotune_with_cache(&gpusim::k20(), params, &EvalCache::new()) {
            Ok(tuned) => {
                prop_assert!(
                    tuned.search.peak_temp_bytes <= budget,
                    "picked peak {} exceeds budget {budget}",
                    tuned.search.peak_temp_bytes
                );
                // The reported peak is the model's own verdict on the pick.
                let (peak, _) = lower::joint_memory(&tuner.statements, tuned.id);
                prop_assert_eq!(peak, tuned.search.peak_temp_bytes);
            }
            Err(BarracudaError::Search { detail, .. }) => {
                prop_assert!(
                    detail.contains("memory budget") || detail.contains("exceeds the memory budget"),
                    "unexpected search failure: {detail}"
                );
            }
            Err(e) => return Err(TestCaseError::fail(format!("unexpected error: {e}"))),
        }
    }
}
