//! Chaos-harness tests: deterministic injected failures (panicking and
//! stalling leader searches, store I/O faults, dropped responses) must
//! leave the daemon serving, release every admission permit, and surface
//! each failure as a typed error — never a hang, never a crash.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Barrier};

use barracuda::json::Json;
use barracuda::serve::transport::serve_tcp_on;
use barracuda::serve::ChaosPlan;
use barracuda::{Daemon, ServeOptions, StoreFaultPlan};

fn temp_store(tag: &str) -> std::path::PathBuf {
    let root = std::env::temp_dir().join(format!("barracuda_chaos_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

const TUNE_EQN1: &str = r#"{"op":"tune","workload":"builtin:eqn1","backend":"gtx980"}"#;

fn parse(response: &str) -> Json {
    Json::parse(response).unwrap_or_else(|e| panic!("bad response {response}: {e}"))
}

fn chaos_daemon(store: Option<std::path::PathBuf>, options: ServeOptions) -> Daemon {
    Daemon::new(ServeOptions {
        store,
        backend: "gtx980".to_string(),
        quick: true,
        evals: Some(30),
        ..options
    })
    .unwrap()
}

/// Every leader search panics: the panic is caught, surfaced as a typed
/// serve error to the leader AND its coalesced followers, the admission
/// permit is released by RAII, and the daemon keeps answering.
#[test]
fn panicking_searches_surface_typed_and_release_their_permits() {
    let daemon = Arc::new(chaos_daemon(
        None,
        ServeOptions {
            max_searches: Some(1),
            queue: Some(0),
            chaos: ChaosPlan {
                panic_rate: 1.0,
                ..ChaosPlan::none()
            },
            ..ServeOptions::default()
        },
    ));
    // Leader + follower on the same request: both must see the panic as
    // a typed error (the leader publishes its failure to the coalition).
    let barrier = Arc::new(Barrier::new(2));
    let responses: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let daemon = Arc::clone(&daemon);
                let barrier = Arc::clone(&barrier);
                s.spawn(move || {
                    barrier.wait();
                    daemon.handle_line(TUNE_EQN1).response
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for r in &responses {
        let v = parse(r);
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false), "{r}");
        assert_eq!(v.get("stage").and_then(Json::as_str), Some("serve"), "{r}");
        assert!(
            v.get("error")
                .and_then(Json::as_str)
                .unwrap()
                .contains("panicked"),
            "{r}"
        );
    }
    // The panicking leader's permit came back: a fresh request would be
    // admitted (and panic again), and the gate is idle.
    assert_eq!(
        daemon.gate().depth(),
        (0, 0),
        "RAII must release the permit"
    );
    let ping = parse(&daemon.handle_line(r#"{"op":"ping"}"#).response);
    assert_eq!(ping.get("ok").and_then(Json::as_bool), Some(true));
    assert!(
        !daemon.is_shutdown(),
        "a panicking search must not kill the daemon"
    );
    assert_eq!(daemon.snapshot().errors, 2);
}

/// Stalled searches slow responses down but never wedge the daemon:
/// sequential tunes all complete and the gate drains back to idle.
#[test]
fn slow_searches_complete_without_wedging() {
    let daemon = chaos_daemon(
        None,
        ServeOptions {
            chaos: ChaosPlan {
                slow_rate: 1.0,
                slow_ms: 50,
                ..ChaosPlan::none()
            },
            ..ServeOptions::default()
        },
    );
    for line in [
        TUNE_EQN1,
        r#"{"op":"tune","workload":"builtin:s1_1","backend":"gtx980"}"#,
    ] {
        let v = parse(&daemon.handle_line(line).response);
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{line}");
    }
    assert_eq!(daemon.gate().depth(), (0, 0));
    assert_eq!(daemon.snapshot().errors, 0);
}

/// Every store write fails: the search itself succeeds but persisting
/// the plan surfaces as a typed store error (exit 11) — and the daemon
/// keeps serving afterwards.
#[test]
fn store_write_faults_surface_typed_store_errors() {
    let daemon = chaos_daemon(
        Some(temp_store("wfault")),
        ServeOptions {
            store_faults: StoreFaultPlan {
                write_fail_rate: 1.0,
                ..StoreFaultPlan::none()
            },
            ..ServeOptions::default()
        },
    );
    let v = parse(&daemon.handle_line(TUNE_EQN1).response);
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(v.get("stage").and_then(Json::as_str), Some("store"));
    assert_eq!(v.get("exit_code").and_then(Json::as_u64), Some(11));
    let ping = parse(&daemon.handle_line(r#"{"op":"ping"}"#).response);
    assert_eq!(ping.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(daemon.snapshot().errors, 1);
}

/// Every store read fails: the warm-path probe surfaces a typed store
/// error instead of silently searching (the operator must see a broken
/// store, not pay for silent cold searches) — and the daemon survives.
#[test]
fn store_read_faults_surface_typed_store_errors() {
    let daemon = chaos_daemon(
        Some(temp_store("rfault")),
        ServeOptions {
            store_faults: StoreFaultPlan {
                read_fail_rate: 1.0,
                ..StoreFaultPlan::none()
            },
            ..ServeOptions::default()
        },
    );
    let v = parse(&daemon.handle_line(TUNE_EQN1).response);
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(v.get("stage").and_then(Json::as_str), Some("store"));
    assert_eq!(v.get("exit_code").and_then(Json::as_u64), Some(11));
    let ping = parse(&daemon.handle_line(r#"{"op":"ping"}"#).response);
    assert_eq!(ping.get("ok").and_then(Json::as_bool), Some(true));
}

/// Connections dropped mid-request over real TCP: the chaos plan is a
/// pure function of the request sequence number, so the test precomputes
/// exactly which sequential one-request connections get severed (EOF)
/// and which get their response — and the daemon drains cleanly after.
#[test]
fn dropped_connections_follow_the_seeded_plan_and_daemon_drains_clean() {
    let chaos = ChaosPlan {
        drop_response_rate: 0.4,
        seed: 9,
        ..ChaosPlan::none()
    };
    const PINGS: u64 = 12;
    let expected_drops: Vec<bool> = (0..PINGS).map(|seq| chaos.decide_drop(seq)).collect();
    assert!(
        expected_drops.iter().any(|&d| d) && expected_drops.iter().any(|&d| !d),
        "seed must exercise both outcomes: {expected_drops:?}"
    );

    let daemon = Arc::new(chaos_daemon(
        None,
        ServeOptions {
            chaos,
            ..ServeOptions::default()
        },
    ));
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = {
        let daemon = Arc::clone(&daemon);
        std::thread::spawn(move || serve_tcp_on(daemon, listener))
    };

    // One request per connection, strictly sequential, so the daemon's
    // request sequence number equals the arrival order.
    let request = |line: &str| -> Option<String> {
        let mut stream = TcpStream::connect(addr).unwrap();
        writeln!(stream, "{line}").unwrap();
        stream.flush().unwrap();
        let mut reader = BufReader::new(stream);
        let mut response = String::new();
        match reader.read_line(&mut response).unwrap() {
            0 => None, // severed before the response: the injected drop
            _ => Some(response),
        }
    };

    for (seq, &dropped) in expected_drops.iter().enumerate() {
        let got = request(r#"{"op":"ping"}"#);
        if dropped {
            assert!(got.is_none(), "seq {seq}: plan says drop, got {got:?}");
        } else {
            let v = parse(
                got.as_deref()
                    .unwrap_or_else(|| panic!("seq {seq}: plan says deliver")),
            );
            assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        }
    }

    // Shutdown lands at seq PINGS; whether or not its response is
    // dropped, the daemon must flip its flag and the server must drain.
    let _ = request(r#"{"op":"shutdown"}"#);
    server.join().unwrap().unwrap();
    assert!(daemon.is_shutdown());
    // Every ping was processed and none was mis-counted as an error.
    let m = daemon.snapshot();
    assert_eq!(m.requests, PINGS as usize + 1);
    assert_eq!(m.errors, 0);
}
