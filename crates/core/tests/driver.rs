//! End-to-end driver tests: the facade API over the staged pipeline.
//!
//! These exercise the whole chain (frontend → lower → space → evaluate →
//! search) through `WorkloadTuner`, pinning correctness, determinism,
//! serial/parallel bit-identity and cache behavior.

use barracuda::cache::EvalCache;
use barracuda::pipeline::{TuneParams, WorkloadTuner};
use barracuda::workload::Workload;
use tensor::index::uniform_dims;

fn matmul_workload(n: usize) -> Workload {
    Workload::parse(
        "mm",
        "C[i k] = Sum([j], A[i j] * B[j k])",
        &uniform_dims(&["i", "j", "k"], n),
    )
    .unwrap()
}

fn eqn1_workload(n: usize) -> Workload {
    Workload::parse(
        "ex",
        "V[i j k] = Sum([l m n], A[l k] * B[m j] * C[n i] * U[l m n])",
        &uniform_dims(&["i", "j", "k", "l", "m", "n"], n),
    )
    .unwrap()
}

#[test]
fn tuned_matmul_is_correct() {
    let w = matmul_workload(8);
    let tuner = WorkloadTuner::build(&w);
    let arch = gpusim::gtx980();
    let tuned = tuner.autotune(&arch, TuneParams::quick()).unwrap();
    let inputs = w.random_inputs(3);
    let expect = w.evaluate_reference(&inputs).unwrap();
    let got = tuned.execute(&w, &inputs).unwrap();
    assert_eq!(expect.len(), got.len());
    for ((n1, t1), (n2, t2)) in expect.iter().zip(&got) {
        assert_eq!(n1, n2);
        assert!(t1.approx_eq(t2, 1e-10));
    }
}

#[test]
fn tuned_eqn1_is_correct_and_strength_reduced() {
    // N must be large enough for strength reduction to pay (at N=5 the
    // O(N^4) reorganizations cost about as much as the naive O(N^6)).
    let w = eqn1_workload(6);
    let tuner = WorkloadTuner::build(&w);
    let arch = gpusim::k20();
    let mut params = TuneParams::quick();
    params.surf.batch_size = 10;
    params.surf.max_evals = 150;
    let tuned = tuner.autotune(&arch, params).unwrap();
    // Correctness across the whole chain of temporaries.
    let inputs = w.random_inputs(11);
    let expect = w.evaluate_reference(&inputs).unwrap();
    let got = tuned.execute(&w, &inputs).unwrap();
    assert!(expect[0].1.approx_eq(&got[0].1, 1e-10));
    // The tuner must not pick the naive O(N^6) version.
    assert!(
        tuned.flops < w.naive_flops(),
        "strength reduction must win: {} vs naive {}",
        tuned.flops,
        w.naive_flops()
    );
}

#[test]
fn autotuning_beats_the_median_configuration() {
    let w = matmul_workload(32);
    let tuner = WorkloadTuner::build(&w);
    let arch = gpusim::c2050();
    let tuned = tuner.autotune(&arch, TuneParams::quick()).unwrap();
    // Compare against the average of a random sample.
    let pool = tuner.pool(64, 9);
    let avg: f64 = pool
        .iter()
        .map(|&id| tuner.gpu_seconds(id, &arch))
        .sum::<f64>()
        / pool.len() as f64;
    assert!(
        tuned.gpu_seconds <= avg,
        "tuned {} should beat average {avg}",
        tuned.gpu_seconds
    );
}

#[test]
fn deterministic_tuning() {
    let w = matmul_workload(16);
    let tuner = WorkloadTuner::build(&w);
    let arch = gpusim::gtx980();
    let a = tuner.autotune(&arch, TuneParams::quick()).unwrap();
    let b = tuner.autotune(&arch, TuneParams::quick()).unwrap();
    assert_eq!(a.id, b.id);
    assert_eq!(a.gpu_seconds, b.gpu_seconds);
}

#[test]
fn cuda_source_contains_all_kernels() {
    let w = eqn1_workload(6);
    let tuner = WorkloadTuner::build(&w);
    let tuned = tuner
        .autotune(&gpusim::gtx980(), TuneParams::quick())
        .unwrap();
    let src = tuned.cuda_source();
    let n_kernels: usize = tuned.kernels.iter().map(|k| k.len()).sum();
    assert_eq!(src.matches("__global__").count(), n_kernels);
    assert_eq!(src.matches("<<<").count(), n_kernels);
}

#[test]
fn search_stats_account_time() {
    let w = matmul_workload(16);
    let tuner = WorkloadTuner::build(&w);
    let arch = gpusim::gtx980();
    let tuned = tuner.autotune(&arch, TuneParams::quick()).unwrap();
    let s = tuned.search.search_seconds(&arch, 100);
    assert!(s > tuned.search.n_evals as f64 * arch.compile_seconds);
    // When the space is fully enumerated the two estimates coincide up
    // to averaging; otherwise exhaustive is (much) larger.
    assert!(tuned.search.exhaustive_seconds(&arch, 100) >= s * 0.999);
}

#[test]
fn decomposed_tuning_matches_joint_quality() {
    // The objective is separable, so per-statement search must find a
    // configuration at least as good as joint search at a similar
    // total budget (usually better: no cross-statement credit
    // assignment for the model to learn).
    let w = Workload::parse(
        "pair",
        "T[i l] = Sum([j], A[i j] * B[j l])\nC[i k] = Sum([l], T[i l] * D[l k])",
        &uniform_dims(&["i", "j", "k", "l"], 12),
    )
    .unwrap();
    let tuner = WorkloadTuner::build(&w);
    let arch = gpusim::k20();
    let mut params = TuneParams::quick();
    params.surf.max_evals = 60;
    let joint = tuner.autotune(&arch, params).unwrap();
    params.surf.max_evals = 30; // per statement -> same total budget
    let decomposed = tuner.autotune_decomposed(&arch, params).unwrap();
    assert!(
        decomposed.gpu_seconds <= joint.gpu_seconds * 1.05,
        "decomposed {} vs joint {}",
        decomposed.gpu_seconds,
        joint.gpu_seconds
    );
    // The result must execute correctly too.
    let inputs = w.random_inputs(3);
    let expect = w.evaluate_reference(&inputs).unwrap();
    let got = decomposed.execute(&w, &inputs).unwrap();
    assert!(expect[0].1.approx_eq(&got[0].1, 1e-10));
}

#[test]
fn parallel_tuning_is_bit_identical_to_serial() {
    let w = eqn1_workload(6);
    let tuner = WorkloadTuner::build(&w);
    let arch = gpusim::k20();
    let mut serial_params = TuneParams::quick();
    serial_params.threads = 1;
    let mut parallel_params = TuneParams::quick();
    parallel_params.threads = 0;
    let serial = tuner.autotune(&arch, serial_params).unwrap();
    let parallel = tuner.autotune(&arch, parallel_params).unwrap();
    assert_eq!(serial.id, parallel.id);
    assert_eq!(serial.gpu_seconds.to_bits(), parallel.gpu_seconds.to_bits());
    assert_eq!(serial.search.n_evals, parallel.search.n_evals);
    let bits = |v: &[f64]| v.iter().map(|t| t.to_bits()).collect::<Vec<_>>();
    assert_eq!(
        bits(&serial.search.evaluated_times),
        bits(&parallel.search.evaluated_times)
    );
}

#[test]
fn one_search_never_duplicates_a_simulation() {
    // Every time-cache miss is one simulator call; SURF never
    // re-evaluates a configuration and the final noiseless pick only
    // re-reads evaluated ids, so misses = distinct evaluated ids and
    // the final pass is pure hits.
    let w = matmul_workload(16);
    let tuner = WorkloadTuner::build(&w);
    let arch = gpusim::gtx980();
    let cache = EvalCache::new();
    let tuned = tuner
        .autotune_with_cache(&arch, TuneParams::quick(), &cache)
        .unwrap();
    let total_lookups = tuned.search.cache_hits + tuned.search.cache_misses;
    assert!(total_lookups > 0);
    // Distinct simulations recorded in the shared cache must equal the
    // evaluation count — zero duplicate simulator calls.
    assert_eq!(cache.times_len(), tuned.search.n_evals);
}

#[test]
fn shared_cache_skips_resimulation_on_reruns() {
    let w = matmul_workload(16);
    let tuner = WorkloadTuner::build(&w);
    let arch = gpusim::gtx980();
    let cache = EvalCache::new();
    let first = tuner
        .autotune_with_cache(&arch, TuneParams::quick(), &cache)
        .unwrap();
    let second = tuner
        .autotune_with_cache(&arch, TuneParams::quick(), &cache)
        .unwrap();
    assert_eq!(first.id, second.id);
    // The second run re-simulates nothing: every time lookup hits.
    assert_eq!(second.search.cache_misses, 0);
    assert!(second.search.cache_hit_rate() == 1.0);
}

#[test]
fn pool_sampling_is_deterministic_and_distinct() {
    let w = eqn1_workload(10);
    let tuner = WorkloadTuner::build(&w);
    let a = tuner.pool(500, 1);
    let b = tuner.pool(500, 1);
    assert_eq!(a, b);
    assert_eq!(a.len(), 500);
    let mut c = a.clone();
    c.dedup();
    assert_eq!(c.len(), 500);
}

#[test]
fn facade_matches_staged_driver_bit_for_bit() {
    // Driving the stages by hand must reproduce the facade exactly.
    use barracuda::stages::{self, CompiledWorkload, LoweredVersions, SearchSpace};
    let w = eqn1_workload(6);
    let compiled = CompiledWorkload::from_workload(w.clone());
    let lowered = LoweredVersions::from_compiled(&compiled);
    let params = TuneParams::quick();
    let space = SearchSpace::from_lowered(&lowered, params.pool_cap, params.seed);
    assert_eq!(space.space_size, lowered.total_space());
    let arch = gpusim::k20();
    let cache = EvalCache::new();
    let staged = stages::search::autotune_joint(
        &compiled.workload,
        &lowered.statements,
        &arch,
        params,
        &cache,
    )
    .unwrap();
    let facade = WorkloadTuner::build(&w).autotune(&arch, params).unwrap();
    assert_eq!(staged.id, facade.id);
    assert_eq!(staged.gpu_seconds.to_bits(), facade.gpu_seconds.to_bits());
    assert_eq!(staged.search.n_evals, facade.search.n_evals);
}
