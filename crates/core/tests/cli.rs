//! Integration tests for the `barracuda` command-line tool.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_barracuda"))
}

#[test]
fn benchmarks_lists_builtins() {
    let out = bin().arg("benchmarks").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("builtin:eqn1"));
    assert!(text.contains("builtin:d1_1 .. builtin:d1_9"));
}

#[test]
fn info_on_a_dsl_file() {
    let dir = std::env::temp_dir();
    let path = dir.join("barracuda_cli_test.dsl");
    std::fs::write(&path, "W[a c] = Sum([b], X[a b] * Y[b c])").unwrap();
    let out = bin()
        .args(["info", path.to_str().unwrap(), "--dims", "8"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("1 OCTOPI version(s)"));
    assert!(text.contains("external inputs : [\"X\", \"Y\"]"));
}

#[test]
fn tune_builtin_quick_with_validation() {
    let out = bin()
        .args([
            "tune",
            "builtin:eqn1",
            "--quick",
            "--evals",
            "30",
            "--validate",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("GTX 980"));
    assert!(text.contains("validation: OK"));
}

#[test]
fn tune_emits_cuda() {
    let out = bin()
        .args([
            "tune",
            "builtin:eqn1",
            "--quick",
            "--evals",
            "20",
            "--emit",
            "cuda",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("__global__ void"));
}

#[test]
fn unknown_arch_exits_2_usage() {
    let out = bin()
        .args(["tune", "builtin:eqn1", "--arch", "h100"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown architecture"));
}

#[test]
fn unknown_option_exits_2_usage() {
    let out = bin()
        .args(["tune", "builtin:eqn1", "--frobnicate"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn missing_file_exits_1() {
    let out = bin()
        .args(["tune", "/nonexistent/path.dsl"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn no_arguments_exits_2_with_usage() {
    let out = bin().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn syntax_error_exits_3_parse() {
    let dir = std::env::temp_dir();
    let path = dir.join("barracuda_cli_parse_error.dsl");
    std::fs::write(&path, "W[a c] = Sum([b], X[a b] *").unwrap();
    let out = bin()
        .args(["info", path.to_str().unwrap(), "--dims", "8"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3));
    assert!(String::from_utf8_lossy(&out.stderr).contains("error[parse]"));
}

#[test]
fn missing_extent_exits_4_validation() {
    let dir = std::env::temp_dir();
    let path = dir.join("barracuda_cli_missing_extent.dsl");
    std::fs::write(&path, "W[a c] = Sum([b], X[a b] * Y[b c])").unwrap();
    // Only 'a' gets an extent; 'b' and 'c' are undeclared.
    let out = bin()
        .args(["info", path.to_str().unwrap(), "--dim", "a=8"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(4));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error[validation]"), "stderr: {err}");
    assert!(err.contains("statement"), "stderr: {err}");
}

#[test]
fn saturated_fault_injection_exits_8_search() {
    let out = bin()
        .args([
            "tune",
            "builtin:eqn1",
            "--quick",
            "--evals",
            "20",
            "--inject-faults",
            "1.0",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(8));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error[search]"), "stderr: {err}");
}

#[test]
fn degraded_run_exits_0_without_strict_and_9_with() {
    let args = [
        "tune",
        "builtin:eqn1",
        "--quick",
        "--evals",
        "20",
        "--deadline",
        "0",
    ];
    let lenient = bin().args(args).output().unwrap();
    assert_eq!(
        lenient.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&lenient.stderr)
    );
    assert!(String::from_utf8_lossy(&lenient.stdout).contains("status: degraded"));

    let strict = bin().args(args).arg("--strict").output().unwrap();
    assert_eq!(strict.status.code(), Some(9));
    assert!(String::from_utf8_lossy(&strict.stderr).contains("degraded under --strict"));
}

#[test]
fn backends_lists_the_registry() {
    let out = bin().arg("backends").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for key in [
        "gtx980",
        "k20",
        "c2050",
        "cpu1",
        "cpu4",
        "acc-naive",
        "acc-opt",
    ] {
        assert!(text.contains(key), "missing backend {key}: {text}");
    }
}

#[test]
fn unknown_backend_exits_2_usage() {
    let out = bin()
        .args(["tune", "builtin:eqn1", "--backend", "tpu"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown backend"), "stderr: {err}");
}

#[test]
fn save_plan_then_replay_reproduces_the_time_without_searching() {
    let dir = std::env::temp_dir();
    let plan = dir.join("barracuda_cli_roundtrip.plan.json");
    let tune = bin()
        .args([
            "tune",
            "builtin:eqn1",
            "--quick",
            "--evals",
            "20",
            "--arch",
            "k20",
            "--save-plan",
            plan.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        tune.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&tune.stderr)
    );
    let tune_text = String::from_utf8_lossy(&tune.stdout);
    assert!(tune_text.contains("plan saved to"), "stdout: {tune_text}");

    let replay = bin()
        .args(["replay", plan.to_str().unwrap(), "--validate"])
        .output()
        .unwrap();
    assert!(
        replay.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&replay.stderr)
    );
    let replay_text = String::from_utf8_lossy(&replay.stdout);
    assert!(replay_text.contains("replayed"), "stdout: {replay_text}");
    assert!(
        replay_text.contains("validation: OK"),
        "stdout: {replay_text}"
    );

    // The timing columns ("<name> <us> us device ... GF w/transfers") must
    // be identical: replay reproduces the tuned result bit-for-bit. Only
    // the trailing parenthetical (eval counts) differs by design.
    let timing = |text: &str| -> String {
        text.lines()
            .find(|l| l.contains(" us device "))
            .unwrap_or_default()
            .split(" (")
            .next()
            .unwrap_or_default()
            .to_string()
    };
    assert_eq!(
        timing(&tune_text),
        timing(&replay_text),
        "tune: {tune_text}\nreplay: {replay_text}"
    );
}

#[test]
fn stale_plan_fingerprint_exits_10() {
    let dir = std::env::temp_dir();
    let plan = dir.join("barracuda_cli_stale.plan.json");
    let tune = bin()
        .args([
            "tune",
            "builtin:eqn1",
            "--quick",
            "--evals",
            "20",
            "--arch",
            "k20",
            "--save-plan",
            plan.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(tune.status.success());
    // Change the embedded workload source: the fingerprint no longer
    // matches and replay must refuse with the typed plan error.
    let text = std::fs::read_to_string(&plan).unwrap();
    let tampered = text.replace("V[i j k]", "W[i j k]");
    assert_ne!(text, tampered, "plan text should embed the DSL source");
    std::fs::write(&plan, tampered).unwrap();
    let replay = bin()
        .args(["replay", plan.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(replay.status.code(), Some(10));
    let err = String::from_utf8_lossy(&replay.stderr);
    assert!(err.contains("error[plan]"), "stderr: {err}");
    assert!(err.contains("fingerprint"), "stderr: {err}");
}

#[test]
fn injected_faults_are_reported_in_quarantine() {
    let out = bin()
        .args([
            "tune",
            "builtin:eqn1",
            "--quick",
            "--evals",
            "30",
            "--inject-faults",
            "0.2",
        ])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("quarantine:"), "stdout: {text}");
    assert!(text.contains("injected"), "stdout: {text}");
}
