//! Integration tests for the `barracuda` command-line tool.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_barracuda"))
}

#[test]
fn benchmarks_lists_builtins() {
    let out = bin().arg("benchmarks").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("builtin:eqn1"));
    assert!(text.contains("builtin:d1_1 .. builtin:d1_9"));
}

#[test]
fn info_on_a_dsl_file() {
    let dir = std::env::temp_dir();
    let path = dir.join("barracuda_cli_test.dsl");
    std::fs::write(&path, "W[a c] = Sum([b], X[a b] * Y[b c])").unwrap();
    let out = bin()
        .args(["info", path.to_str().unwrap(), "--dims", "8"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("1 OCTOPI version(s)"));
    assert!(text.contains("external inputs : [\"X\", \"Y\"]"));
}

#[test]
fn tune_builtin_quick_with_validation() {
    let out = bin()
        .args([
            "tune",
            "builtin:eqn1",
            "--quick",
            "--evals",
            "30",
            "--validate",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("GTX 980"));
    assert!(text.contains("validation: OK"));
}

#[test]
fn tune_emits_cuda() {
    let out = bin()
        .args([
            "tune",
            "builtin:eqn1",
            "--quick",
            "--evals",
            "20",
            "--emit",
            "cuda",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("__global__ void"));
}

#[test]
fn unknown_arch_exits_2_usage() {
    let out = bin()
        .args(["tune", "builtin:eqn1", "--arch", "h100"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown architecture"));
}

#[test]
fn unknown_option_exits_2_usage() {
    let out = bin()
        .args(["tune", "builtin:eqn1", "--frobnicate"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn missing_file_exits_1() {
    let out = bin()
        .args(["tune", "/nonexistent/path.dsl"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn no_arguments_exits_2_with_usage() {
    let out = bin().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn syntax_error_exits_3_parse() {
    let dir = std::env::temp_dir();
    let path = dir.join("barracuda_cli_parse_error.dsl");
    std::fs::write(&path, "W[a c] = Sum([b], X[a b] *").unwrap();
    let out = bin()
        .args(["info", path.to_str().unwrap(), "--dims", "8"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3));
    assert!(String::from_utf8_lossy(&out.stderr).contains("error[parse]"));
}

#[test]
fn missing_extent_exits_4_validation() {
    let dir = std::env::temp_dir();
    let path = dir.join("barracuda_cli_missing_extent.dsl");
    std::fs::write(&path, "W[a c] = Sum([b], X[a b] * Y[b c])").unwrap();
    // Only 'a' gets an extent; 'b' and 'c' are undeclared.
    let out = bin()
        .args(["info", path.to_str().unwrap(), "--dim", "a=8"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(4));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error[validation]"), "stderr: {err}");
    assert!(err.contains("statement"), "stderr: {err}");
}

#[test]
fn saturated_fault_injection_exits_8_search() {
    let out = bin()
        .args([
            "tune",
            "builtin:eqn1",
            "--quick",
            "--evals",
            "20",
            "--inject-faults",
            "1.0",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(8));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error[search]"), "stderr: {err}");
}

#[test]
fn degraded_run_exits_0_without_strict_and_9_with() {
    let args = [
        "tune",
        "builtin:eqn1",
        "--quick",
        "--evals",
        "20",
        "--deadline",
        "0",
    ];
    let lenient = bin().args(args).output().unwrap();
    assert_eq!(
        lenient.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&lenient.stderr)
    );
    assert!(String::from_utf8_lossy(&lenient.stdout).contains("status: degraded"));

    let strict = bin().args(args).arg("--strict").output().unwrap();
    assert_eq!(strict.status.code(), Some(9));
    assert!(String::from_utf8_lossy(&strict.stderr).contains("degraded under --strict"));
}

#[test]
fn backends_lists_the_registry() {
    let out = bin().arg("backends").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for key in [
        "gtx980",
        "k20",
        "c2050",
        "cpu1",
        "cpu4",
        "acc-naive",
        "acc-opt",
    ] {
        assert!(text.contains(key), "missing backend {key}: {text}");
    }
}

/// End-to-end descriptor flow through the CLI: `--arch-file` adds a
/// backend, the store misses then hits, `plans list` reports descriptor
/// provenance, and editing the descriptor invalidates the stored plan
/// (replay exits 10) until a fresh search repopulates the store.
#[test]
fn descriptor_file_drives_tune_store_and_invalidation() {
    let dir = std::env::temp_dir().join(format!("barracuda_cli_descriptor_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let desc = dir.join("k20x.toml");
    let store = dir.join("store");
    // A K20 variant with its own key — tweaked bandwidth so the digest
    // (and the tuned result) are genuinely its own.
    let toml = "\
name = \"Tesla K20X (cli)\"\n\
key = \"k20x\"\n\
generation = \"Kepler\"\n\
sm_count = 14\n\
clock_ghz = 0.732\n\
dp_flops_per_cycle_per_sm = 128.0\n\
issue_lanes_per_cycle_per_sm = 160.0\n\
mem_bw_gbs = 180.0\n\
l2_bytes = 1572864\n\
l2_bw_gbs = 350.0\n\
smem_per_sm = 49152\n\
max_threads_per_sm = 2048\n\
max_blocks_per_sm = 16\n\
max_warps_per_sm = 64\n\
regs_per_sm = 65536\n\
warp_size = 32\n\
transaction_bytes = 128\n\
kernel_launch_us = 7.0\n\
pcie_bw_gbs = 5.5\n\
pcie_latency_us = 14.0\n\
dp_latency_cycles = 24.0\n\
l2_latency_cycles = 220.0\n\
compile_seconds = 7.6\n";
    std::fs::write(&desc, toml).unwrap();
    let desc_arg = desc.to_str().unwrap();
    let store_arg = store.to_str().unwrap();

    // The loaded descriptor shows up in `backends`.
    let out = bin()
        .args(["backends", "--arch-file", desc_arg])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("k20x"), "{text}");
    assert!(text.contains("Tesla K20X (cli)"), "{text}");

    // First tune: store miss, searched and persisted. No --arch needed —
    // the loaded descriptor is the default target.
    let tune = |args: &[&str]| {
        bin()
            .args([
                "tune",
                "builtin:eqn1",
                "--quick",
                "--evals",
                "20",
                "--arch-file",
                desc_arg,
                "--store",
                store_arg,
            ])
            .args(args)
            .output()
            .unwrap()
    };
    let first = tune(&[]);
    assert!(first.status.success());
    let first_text = String::from_utf8_lossy(&first.stdout);
    assert!(first_text.contains("Tesla K20X (cli)"), "{first_text}");
    assert!(first_text.contains("plan store: miss"), "{first_text}");

    // Second tune: warm hit, zero search evaluations, identical timing.
    let second = tune(&[]);
    assert!(second.status.success());
    let second_text = String::from_utf8_lossy(&second.stdout);
    assert!(
        second_text.contains("plan store: hit (0 search evaluations"),
        "{second_text}"
    );
    assert_eq!(
        first_text.lines().next(),
        second_text.lines().next(),
        "hit must replay the searched timing byte-identically"
    );

    // `plans list` ties the entry to the loaded descriptor digest.
    let list = bin()
        .args([
            "plans",
            "list",
            "--store",
            store_arg,
            "--arch-file",
            desc_arg,
        ])
        .output()
        .unwrap();
    assert!(list.status.success());
    let list_text = String::from_utf8_lossy(&list.stdout);
    assert!(list_text.contains("k20x"), "{list_text}");
    assert!(list_text.contains("descriptor "), "{list_text}");

    // Edit one field: the digest moves, so the stored plan no longer
    // answers — replay rejects it with the plan exit code.
    std::fs::write(&desc, toml.replace("180.0", "200.0")).unwrap();
    let replay = bin()
        .args([
            "replay",
            "builtin:eqn1",
            "--store",
            store_arg,
            "--arch-file",
            desc_arg,
        ])
        .output()
        .unwrap();
    assert_eq!(replay.status.code(), Some(10), "stale plan must exit 10");

    // The old entry is now reported as superseded...
    let list = bin()
        .args([
            "plans",
            "list",
            "--store",
            store_arg,
            "--arch-file",
            desc_arg,
        ])
        .output()
        .unwrap();
    let list_text = String::from_utf8_lossy(&list.stdout);
    assert!(list_text.contains("[superseded"), "{list_text}");
    // ...and without the descriptor loaded it degrades to a note.
    let list = bin()
        .args(["plans", "list", "--store", store_arg])
        .output()
        .unwrap();
    let list_text = String::from_utf8_lossy(&list.stdout);
    assert!(list_text.contains("[backend not loaded]"), "{list_text}");

    // A fresh tune under the edited descriptor searches again and files
    // a second entry under the new digest.
    let third = tune(&[]);
    assert!(third.status.success());
    let third_text = String::from_utf8_lossy(&third.stdout);
    assert!(third_text.contains("plan store: miss"), "{third_text}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A malformed descriptor file is a typed descriptor error: exit 14.
#[test]
fn bad_descriptor_file_exits_14() {
    let dir = std::env::temp_dir();
    let desc = dir.join(format!(
        "barracuda_cli_bad_descriptor_{}.toml",
        std::process::id()
    ));
    std::fs::write(&desc, "name = \"half a descriptor\"\n").unwrap();
    let out = bin()
        .args(["backends", "--arch-file", desc.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(14));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error[descriptor]"), "stderr: {err}");
    let _ = std::fs::remove_file(&desc);
}

#[test]
fn unknown_backend_exits_2_usage() {
    let out = bin()
        .args(["tune", "builtin:eqn1", "--backend", "tpu"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown backend"), "stderr: {err}");
}

#[test]
fn save_plan_then_replay_reproduces_the_time_without_searching() {
    let dir = std::env::temp_dir();
    let plan = dir.join("barracuda_cli_roundtrip.plan.json");
    let tune = bin()
        .args([
            "tune",
            "builtin:eqn1",
            "--quick",
            "--evals",
            "20",
            "--arch",
            "k20",
            "--save-plan",
            plan.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        tune.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&tune.stderr)
    );
    let tune_text = String::from_utf8_lossy(&tune.stdout);
    assert!(tune_text.contains("plan saved to"), "stdout: {tune_text}");

    let replay = bin()
        .args(["replay", plan.to_str().unwrap(), "--validate"])
        .output()
        .unwrap();
    assert!(
        replay.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&replay.stderr)
    );
    let replay_text = String::from_utf8_lossy(&replay.stdout);
    assert!(replay_text.contains("replayed"), "stdout: {replay_text}");
    assert!(
        replay_text.contains("validation: OK"),
        "stdout: {replay_text}"
    );

    // The timing columns ("<name> <us> us device ... GF w/transfers") must
    // be identical: replay reproduces the tuned result bit-for-bit. Only
    // the trailing parenthetical (eval counts) differs by design.
    let timing = |text: &str| -> String {
        text.lines()
            .find(|l| l.contains(" us device "))
            .unwrap_or_default()
            .split(" (")
            .next()
            .unwrap_or_default()
            .to_string()
    };
    assert_eq!(
        timing(&tune_text),
        timing(&replay_text),
        "tune: {tune_text}\nreplay: {replay_text}"
    );
}

#[test]
fn stale_plan_fingerprint_exits_10() {
    let dir = std::env::temp_dir();
    let plan = dir.join("barracuda_cli_stale.plan.json");
    let tune = bin()
        .args([
            "tune",
            "builtin:eqn1",
            "--quick",
            "--evals",
            "20",
            "--arch",
            "k20",
            "--save-plan",
            plan.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(tune.status.success());
    // Change the embedded workload source: the fingerprint no longer
    // matches and replay must refuse with the typed plan error.
    let text = std::fs::read_to_string(&plan).unwrap();
    let tampered = text.replace("V[i j k]", "W[i j k]");
    assert_ne!(text, tampered, "plan text should embed the DSL source");
    std::fs::write(&plan, tampered).unwrap();
    let replay = bin()
        .args(["replay", plan.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(replay.status.code(), Some(10));
    let err = String::from_utf8_lossy(&replay.stderr);
    assert!(err.contains("error[plan]"), "stderr: {err}");
    assert!(err.contains("fingerprint"), "stderr: {err}");
}

#[test]
fn store_hit_tune_replays_bit_identically_with_zero_evals() {
    let store =
        std::env::temp_dir().join(format!("barracuda_cli_store_hit_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store);
    let args = [
        "tune",
        "builtin:eqn1",
        "--quick",
        "--evals",
        "20",
        "--arch",
        "k20",
        "--store",
        store.to_str().unwrap(),
    ];
    let cold = bin().args(args).output().unwrap();
    assert!(
        cold.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&cold.stderr)
    );
    let cold_text = String::from_utf8_lossy(&cold.stdout);
    assert!(
        cold_text.contains("plan store: miss (searched, stored"),
        "stdout: {cold_text}"
    );

    let warm = bin().args(args).output().unwrap();
    assert!(warm.status.success());
    let warm_text = String::from_utf8_lossy(&warm.stdout);
    assert!(
        warm_text.contains("plan store: hit (0 search evaluations"),
        "stdout: {warm_text}"
    );
    // The whole timing line — including the "(N evals, space S)" tail
    // reconstructed from provenance — must be bit-identical to the
    // original tuned run.
    let timing = |text: &str| -> String {
        text.lines()
            .find(|l| l.contains(" us device "))
            .unwrap_or_default()
            .to_string()
    };
    assert_eq!(
        timing(&cold_text),
        timing(&warm_text),
        "cold: {cold_text}\nwarm: {warm_text}"
    );

    // `replay` with a store takes a workload spec, not a path, and
    // validates against the reference evaluator.
    let replay = bin()
        .args([
            "replay",
            "builtin:eqn1",
            "--store",
            store.to_str().unwrap(),
            "--backend",
            "k20",
            "--validate",
        ])
        .output()
        .unwrap();
    assert!(
        replay.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&replay.stderr)
    );
    let replay_text = String::from_utf8_lossy(&replay.stdout);
    assert!(replay_text.contains("validation: OK"), "{replay_text}");
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn plans_gc_evicts_a_planted_v1_plan() {
    let store = std::env::temp_dir().join(format!("barracuda_cli_store_gc_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store);
    let tune = bin()
        .args([
            "tune",
            "builtin:eqn1",
            "--quick",
            "--evals",
            "20",
            "--arch",
            "k20",
            "--store",
            store.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(tune.status.success());

    // Plant a v1 copy at its schema-1 address (what a pre-v2 build would
    // have left behind).
    let path = bin()
        .args([
            "plans",
            "path",
            "builtin:eqn1",
            "--store",
            store.to_str().unwrap(),
            "--backend",
            "k20",
            "--schema",
            "1",
        ])
        .output()
        .unwrap();
    assert!(path.status.success());
    let v1_path = String::from_utf8_lossy(&path.stdout).trim().to_string();
    let v3_path = std::fs::read_dir(&store)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.to_string_lossy().contains("-v3-"))
        .unwrap();
    let v1_text = std::fs::read_to_string(&v3_path)
        .unwrap()
        .replace("\"schema_version\": 3", "\"schema_version\": 1");
    std::fs::write(&v1_path, v1_text).unwrap();

    let list = bin()
        .args(["plans", "list", "--store", store.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(list.status.success());
    let list_text = String::from_utf8_lossy(&list.stdout);
    assert!(list_text.contains("[stale schema]"), "{list_text}");

    let gc = bin()
        .args([
            "plans",
            "gc",
            "--store",
            store.to_str().unwrap(),
            "--schema-older-than",
            "2",
        ])
        .output()
        .unwrap();
    assert!(gc.status.success());
    let gc_text = String::from_utf8_lossy(&gc.stdout);
    assert!(gc_text.contains("evicted 1 stale plan(s)"), "{gc_text}");
    assert!(!std::path::Path::new(&v1_path).exists());

    let relist = bin()
        .args(["plans", "list", "--store", store.to_str().unwrap()])
        .output()
        .unwrap();
    let relist_text = String::from_utf8_lossy(&relist.stdout);
    assert!(!relist_text.contains("[stale schema]"), "{relist_text}");
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn foreign_cache_salt_exits_10() {
    let dir = std::env::temp_dir();
    let plan = dir.join("barracuda_cli_foreign_salt.plan.json");
    let tune = bin()
        .args([
            "tune",
            "builtin:eqn1",
            "--quick",
            "--evals",
            "20",
            "--arch",
            "k20",
            "--save-plan",
            plan.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(tune.status.success());
    // Flip one digit of the embedded salt: the plan now claims a
    // different model/architecture revision.
    let text = std::fs::read_to_string(&plan).unwrap();
    let salt = text
        .lines()
        .find(|l| l.contains("\"cache_salt\""))
        .unwrap()
        .split('"')
        .nth(3)
        .unwrap()
        .to_string();
    // Increment every hex digit (mod 16) so the tampered salt differs
    // from the original no matter which digits it contains.
    let flipped: String = salt
        .chars()
        .map(|c| {
            let d = c.to_digit(16).unwrap();
            char::from_digit((d + 1) % 16, 16).unwrap()
        })
        .collect();
    std::fs::write(&plan, text.replace(&salt, &flipped)).unwrap();
    let replay = bin()
        .args(["replay", plan.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(replay.status.code(), Some(10));
    let err = String::from_utf8_lossy(&replay.stderr);
    assert!(err.contains("error[plan]"), "stderr: {err}");
    assert!(err.contains("salt"), "stderr: {err}");
}

#[test]
fn stale_schema_version_exits_10() {
    let dir = std::env::temp_dir();
    let plan = dir.join("barracuda_cli_stale_schema.plan.json");
    let tune = bin()
        .args([
            "tune",
            "builtin:eqn1",
            "--quick",
            "--evals",
            "20",
            "--arch",
            "k20",
            "--save-plan",
            plan.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(tune.status.success());
    let text = std::fs::read_to_string(&plan).unwrap();
    std::fs::write(
        &plan,
        text.replace("\"schema_version\": 3", "\"schema_version\": 999"),
    )
    .unwrap();
    let replay = bin()
        .args(["replay", plan.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(replay.status.code(), Some(10));
    let err = String::from_utf8_lossy(&replay.stderr);
    assert!(err.contains("schema version"), "stderr: {err}");
}

#[test]
fn plans_without_store_exits_2_and_tolerates_undecodable_entries() {
    let no_store = bin().args(["plans", "list"]).output().unwrap();
    assert_eq!(no_store.status.code(), Some(2));

    // An undecodable file name degrades to a per-file report: `plans
    // list` succeeds (exit 0), names the bad file, and still lists the
    // good entries around it.
    let store =
        std::env::temp_dir().join(format!("barracuda_cli_store_bad_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store);
    std::fs::create_dir_all(&store).unwrap();
    std::fs::write(store.join("NOT-A-KEY.plan.json"), "{}").unwrap();
    let tune = bin()
        .args([
            "tune",
            "builtin:eqn1",
            "--quick",
            "--evals",
            "20",
            "--arch",
            "k20",
            "--store",
            store.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(tune.status.success());
    let list = bin()
        .args(["plans", "list", "--store", store.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(
        list.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&list.stderr)
    );
    let text = String::from_utf8_lossy(&list.stdout);
    assert!(text.contains("[unreadable]"), "stdout: {text}");
    assert!(text.contains("NOT-A-KEY"), "stdout: {text}");
    assert!(
        text.contains("k20"),
        "the good entry must still list: {text}"
    );
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn plans_gc_corrupt_removes_quarantine_sidecars() {
    let store =
        std::env::temp_dir().join(format!("barracuda_cli_gc_corrupt_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store);
    std::fs::create_dir_all(&store).unwrap();
    std::fs::write(store.join("0-0-v2-k20.plan.json.corrupt"), "junk").unwrap();
    std::fs::write(store.join(".x.plan.json.123-4.partial"), "half").unwrap();
    let gc = bin()
        .args([
            "plans",
            "gc",
            "--store",
            store.to_str().unwrap(),
            "--corrupt",
        ])
        .output()
        .unwrap();
    assert_eq!(
        gc.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&gc.stderr)
    );
    let text = String::from_utf8_lossy(&gc.stdout);
    assert!(
        text.contains("removed 2 corrupt/partial file(s)"),
        "stdout: {text}"
    );
    let left: Vec<_> = std::fs::read_dir(&store).unwrap().collect();
    assert!(left.is_empty(), "sidecars must be gone: {left:?}");
    let _ = std::fs::remove_dir_all(&store);
}

/// Kill a tuning process mid-write (SIGKILL, no destructors): the store
/// must contain only decodable plans or invisible temp files, never a
/// half-written visible entry.
#[test]
fn sigkilled_writer_never_leaves_a_visible_partial_plan() {
    let store =
        std::env::temp_dir().join(format!("barracuda_cli_kill_writer_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store);
    // Repeat a few times: the kill lands at a different point each run.
    for round in 0..3u32 {
        let mut child = bin()
            .args([
                "tune",
                "builtin:tce",
                "--quick",
                "--evals",
                "40",
                "--arch",
                "k20",
                "--store",
                store.to_str().unwrap(),
            ])
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn()
            .unwrap();
        std::thread::sleep(std::time::Duration::from_millis(15 * round as u64));
        let _ = child.kill();
        let _ = child.wait();
        let Ok(dir) = std::fs::read_dir(&store) else {
            continue; // killed before the store directory was created
        };
        for f in dir {
            let path = f.unwrap().path();
            let name = path.file_name().unwrap().to_string_lossy().to_string();
            if name.ends_with(".partial") {
                continue; // invisible to lookup; `plans gc --corrupt` reaps it
            }
            assert!(name.ends_with(".plan.json"), "unexpected file {name}");
            let text = std::fs::read_to_string(&path).unwrap();
            barracuda::TunedPlan::from_json_text(&text)
                .unwrap_or_else(|e| panic!("visible entry {name} must decode: {e}"));
        }
    }
    // Whatever survived, the store must still answer `plans list`.
    let list = bin()
        .args(["plans", "list", "--store", store.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(
        list.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&list.stderr)
    );
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn injected_faults_are_reported_in_quarantine() {
    let out = bin()
        .args([
            "tune",
            "builtin:eqn1",
            "--quick",
            "--evals",
            "30",
            "--inject-faults",
            "0.2",
        ])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("quarantine:"), "stdout: {text}");
    assert!(text.contains("injected"), "stdout: {text}");
}

#[test]
fn serve_over_stdio_cold_then_warm() {
    use std::io::Write;
    let store = std::env::temp_dir().join(format!("barracuda_cli_serve_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store);
    let mut child = bin()
        .args([
            "serve",
            "--store",
            store.to_str().unwrap(),
            "--quick",
            "--evals",
            "25",
        ])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(
            concat!(
                r#"{"op":"tune","id":"cold","workload":"builtin:eqn1"}"#,
                "\n",
                r#"{"op":"tune","id":"warm","workload":"builtin:eqn1"}"#,
                "\n",
                r#"{"op":"stats"}"#,
                "\n",
                r#"{"op":"shutdown"}"#,
                "\n"
            )
            .as_bytes(),
        )
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 4, "stdout: {stdout}");
    assert!(lines[0].contains(r#""source":"searched""#), "{}", lines[0]);
    assert!(lines[1].contains(r#""source":"hit""#), "{}", lines[1]);
    assert!(lines[1].contains(r#""evals_performed":0"#), "{}", lines[1]);
    assert!(lines[2].contains(r#""store_hits":1"#), "{}", lines[2]);
    assert!(lines[3].contains(r#""op":"shutdown""#), "{}", lines[3]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("1 store hits"), "stderr: {stderr}");
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn serve_rejects_a_bad_listen_spec_with_exit_12() {
    let out = bin()
        .args(["serve", "--listen", "carrier-pigeon:coop"])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(12),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("error[serve]"));
}
