//! Integration tests for the `barracuda` command-line tool.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_barracuda"))
}

#[test]
fn benchmarks_lists_builtins() {
    let out = bin().arg("benchmarks").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("builtin:eqn1"));
    assert!(text.contains("builtin:d1_1 .. builtin:d1_9"));
}

#[test]
fn info_on_a_dsl_file() {
    let dir = std::env::temp_dir();
    let path = dir.join("barracuda_cli_test.dsl");
    std::fs::write(&path, "W[a c] = Sum([b], X[a b] * Y[b c])").unwrap();
    let out = bin()
        .args(["info", path.to_str().unwrap(), "--dims", "8"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("1 OCTOPI version(s)"));
    assert!(text.contains("external inputs : [\"X\", \"Y\"]"));
}

#[test]
fn tune_builtin_quick_with_validation() {
    let out = bin()
        .args([
            "tune",
            "builtin:eqn1",
            "--quick",
            "--evals",
            "30",
            "--validate",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("GTX 980"));
    assert!(text.contains("validation: OK"));
}

#[test]
fn tune_emits_cuda() {
    let out = bin()
        .args([
            "tune",
            "builtin:eqn1",
            "--quick",
            "--evals",
            "20",
            "--emit",
            "cuda",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("__global__ void"));
}

#[test]
fn unknown_arch_fails_cleanly() {
    let out = bin()
        .args(["tune", "builtin:eqn1", "--arch", "h100"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown architecture"));
}

#[test]
fn missing_file_fails_cleanly() {
    let out = bin()
        .args(["tune", "/nonexistent/path.dsl"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn no_arguments_prints_usage() {
    let out = bin().output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}
