//! Admission-control tests for the serving daemon: a bounded cold-search
//! permit pool, typed Busy shedding with `retry_after_ms`, warm-traffic
//! bypass, follower piggybacking, bounded waits, and shutdown drain —
//! all in-process through [`Daemon::handle_line`].

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};

use barracuda::json::Json;
use barracuda::serve::ChaosPlan;
use barracuda::{Daemon, ServeOptions};

fn temp_store(tag: &str) -> std::path::PathBuf {
    let root =
        std::env::temp_dir().join(format!("barracuda_admission_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

fn tune_line(workload: &str) -> String {
    format!(r#"{{"op":"tune","workload":"builtin:{workload}","backend":"gtx980"}}"#)
}

fn parse(response: &str) -> Json {
    Json::parse(response).unwrap_or_else(|e| panic!("bad response {response}: {e}"))
}

/// A barrier-released storm of distinct cold tunes against one permit
/// and an empty queue: exactly the overflow is shed with typed Busy
/// (exit 13, positive `retry_after_ms`), while warm requests for an
/// already-stored workload keep replaying from the store the whole time.
#[test]
fn cold_storm_is_shed_typed_while_warm_hits_keep_flowing() {
    let daemon = Arc::new(
        Daemon::new(ServeOptions {
            store: Some(temp_store("storm")),
            backend: "gtx980".to_string(),
            quick: true,
            evals: Some(30),
            max_searches: Some(1),
            queue: Some(0),
            // Slow every admitted search so the storm reliably overlaps.
            chaos: ChaosPlan {
                slow_rate: 1.0,
                slow_ms: 150,
                ..ChaosPlan::none()
            },
            ..ServeOptions::default()
        })
        .unwrap(),
    );

    // Prewarm one workload so warm probes have something to hit.
    let warm = parse(&daemon.handle_line(&tune_line("eqn1")).response);
    assert_eq!(warm.get("source").and_then(Json::as_str), Some("searched"));

    const STORM: &[&str] = &["s1_1", "s1_2", "d1_1", "d1_2"];
    let barrier = Arc::new(Barrier::new(STORM.len()));
    let done = Arc::new(AtomicBool::new(false));
    let (responses, warm_hits) = std::thread::scope(|s| {
        let handles: Vec<_> = STORM
            .iter()
            .map(|w| {
                let daemon = Arc::clone(&daemon);
                let barrier = Arc::clone(&barrier);
                let line = tune_line(w);
                s.spawn(move || {
                    barrier.wait();
                    daemon.handle_line(&line).response
                })
            })
            .collect();
        // Warm probes while the storm is in flight: store hits bypass
        // the permit pool, so every one must succeed.
        let prober = {
            let daemon = Arc::clone(&daemon);
            let done = Arc::clone(&done);
            s.spawn(move || {
                let mut hits = 0usize;
                while !done.load(Ordering::SeqCst) {
                    let v = parse(&daemon.handle_line(&tune_line("eqn1")).response);
                    assert_eq!(
                        v.get("ok").and_then(Json::as_bool),
                        Some(true),
                        "warm probe failed under storm: {v:?}"
                    );
                    assert_eq!(v.get("source").and_then(Json::as_str), Some("hit"));
                    assert_eq!(v.get("evals_performed").and_then(Json::as_u64), Some(0));
                    hits += 1;
                }
                hits
            })
        };
        let responses: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        done.store(true, Ordering::SeqCst);
        (responses, prober.join().unwrap())
    });
    assert!(warm_hits > 0, "warm probes must run during the storm");

    let mut served = 0usize;
    let mut busy = 0usize;
    for r in &responses {
        let v = parse(r);
        if v.get("ok").and_then(Json::as_bool) == Some(true) {
            served += 1;
            continue;
        }
        assert_eq!(v.get("stage").and_then(Json::as_str), Some("busy"), "{r}");
        assert_eq!(v.get("exit_code").and_then(Json::as_u64), Some(13), "{r}");
        assert!(
            v.get("retry_after_ms").and_then(Json::as_u64) > Some(0),
            "busy must carry a positive retry_after_ms: {r}"
        );
        busy += 1;
    }
    assert!(served >= 1, "one storm tune must win the permit");
    assert!(busy >= 1, "overflow must be shed with typed busy");

    let m = daemon.snapshot();
    assert_eq!(m.busy, busy, "daemon and clients must agree on busy count");
    assert_eq!(m.errors, 0, "admission sheds busy, not errors");
    assert_eq!(daemon.gate().depth(), (0, 0), "all permits released");
}

/// Identical concurrent requests need only the leader's permit: with a
/// single permit and an empty queue, a burst of N identical cold tunes
/// all succeed — followers coalesce instead of competing for admission.
#[test]
fn coalesced_followers_ride_the_leaders_permit() {
    const N: usize = 4;
    let daemon = Arc::new(
        Daemon::new(ServeOptions {
            backend: "gtx980".to_string(),
            quick: true,
            evals: Some(30),
            max_searches: Some(1),
            queue: Some(0),
            // Hold the leader's search open long enough for every
            // follower to join the coalition before it publishes.
            chaos: ChaosPlan {
                slow_rate: 1.0,
                slow_ms: 500,
                ..ChaosPlan::none()
            },
            ..ServeOptions::default()
        })
        .unwrap(),
    );
    let barrier = Arc::new(Barrier::new(N));
    let responses: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..N)
            .map(|_| {
                let daemon = Arc::clone(&daemon);
                let barrier = Arc::clone(&barrier);
                s.spawn(move || {
                    barrier.wait();
                    daemon.handle_line(&tune_line("eqn1")).response
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for r in &responses {
        let v = parse(r);
        assert_eq!(
            v.get("ok").and_then(Json::as_bool),
            Some(true),
            "identical requests must all succeed, not compete for permits: {r}"
        );
    }
    let m = daemon.snapshot();
    assert_eq!(m.busy, 0, "no follower may be shed");
    assert_eq!(m.coalesced, N - 1, "all but the leader coalesce");
}

/// With one permit and one queue slot, three distinct cold tunes split
/// exactly: one runs, one waits in the queue and then runs, one is
/// rejected `Full` immediately.
#[test]
fn queue_admits_exactly_its_depth() {
    let daemon = Arc::new(
        Daemon::new(ServeOptions {
            backend: "gtx980".to_string(),
            quick: true,
            evals: Some(30),
            max_searches: Some(1),
            queue: Some(1),
            // Hold each admitted search open long enough that all three
            // arrivals overlap: one runs, one queues, one overflows.
            chaos: ChaosPlan {
                slow_rate: 1.0,
                slow_ms: 2000,
                ..ChaosPlan::none()
            },
            ..ServeOptions::default()
        })
        .unwrap(),
    );
    // Three sibling excitations: near-identical setup cost, so all
    // three reach the admission gate while the first search is running.
    const WORKLOADS: &[&str] = &["s1_1", "s1_2", "s1_3"];
    let barrier = Arc::new(Barrier::new(WORKLOADS.len()));
    let responses: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = WORKLOADS
            .iter()
            .map(|w| {
                let daemon = Arc::clone(&daemon);
                let barrier = Arc::clone(&barrier);
                let line = tune_line(w);
                s.spawn(move || {
                    barrier.wait();
                    daemon.handle_line(&line).response
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let ok = responses
        .iter()
        .filter(|r| parse(r).get("ok").and_then(Json::as_bool) == Some(true))
        .count();
    let busy = responses
        .iter()
        .filter(|r| parse(r).get("stage").and_then(Json::as_str) == Some("busy"))
        .count();
    assert_eq!(
        (ok, busy),
        (2, 1),
        "1 permit + 1 queue slot serves exactly 2"
    );
    assert_eq!(daemon.gate().depth(), (0, 0));
}

/// A coalesced follower whose request set no deadline is still bounded:
/// the server-side `follower_wait_s` cap converts a wedged leader into a
/// typed serve error instead of an unbounded hang.
#[test]
fn follower_wait_is_capped_even_without_a_deadline() {
    let daemon = Arc::new(
        Daemon::new(ServeOptions {
            backend: "gtx980".to_string(),
            quick: true,
            evals: Some(30),
            follower_wait_s: 0.2,
            // Every leader stalls well past the follower cap.
            chaos: ChaosPlan {
                slow_rate: 1.0,
                slow_ms: 1500,
                ..ChaosPlan::none()
            },
            ..ServeOptions::default()
        })
        .unwrap(),
    );
    let barrier = Arc::new(Barrier::new(2));
    let start = std::time::Instant::now();
    let responses: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let daemon = Arc::clone(&daemon);
                let barrier = Arc::clone(&barrier);
                s.spawn(move || {
                    barrier.wait();
                    daemon.handle_line(&tune_line("eqn1")).response
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let oks: Vec<bool> = responses
        .iter()
        .map(|r| parse(r).get("ok").and_then(Json::as_bool) == Some(true))
        .collect();
    assert_eq!(
        oks.iter().filter(|&&b| b).count(),
        1,
        "the slow leader succeeds: {responses:?}"
    );
    let follower = responses
        .iter()
        .find(|r| parse(r).get("ok").and_then(Json::as_bool) == Some(false))
        .expect("the follower must time out");
    let v = parse(follower);
    assert_eq!(v.get("stage").and_then(Json::as_str), Some("serve"));
    assert!(
        v.get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("server-side wait cap"),
        "{follower}"
    );
    assert!(
        start.elapsed().as_secs() < 30,
        "the follower must give up at the cap, not hang"
    );
}

/// After a shutdown request the daemon drains: pings still answer, but
/// new tunes are shed with typed Busy so clients fail over promptly.
#[test]
fn shutdown_sheds_new_tunes_with_typed_busy() {
    let daemon = Daemon::new(ServeOptions {
        backend: "gtx980".to_string(),
        quick: true,
        evals: Some(30),
        ..ServeOptions::default()
    })
    .unwrap();
    let out = daemon.handle_line(r#"{"op":"shutdown"}"#);
    assert!(out.shutdown);
    let v = parse(&daemon.handle_line(&tune_line("eqn1")).response);
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(v.get("stage").and_then(Json::as_str), Some("busy"));
    assert_eq!(v.get("exit_code").and_then(Json::as_u64), Some(13));
    assert!(
        v.get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("draining"),
        "{v:?}"
    );
    let ping = parse(&daemon.handle_line(r#"{"op":"ping"}"#).response);
    assert_eq!(ping.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(daemon.snapshot().busy, 1);
}
