//! Property tests for the content-addressed plan store keying: the
//! on-disk path encoding must be injective — hostile backend names and
//! distinct `(fingerprint, salt, schema)` tuples may never collide — and
//! a plan must survive an insert → lookup round trip bit-losslessly, the
//! same contract `plan_props.rs` holds the raw JSON layer to.

use barracuda::pipeline::{TuneParams, WorkloadTuner};
use barracuda::workload::Workload;
use barracuda::{EvalCache, PlanStore, StoreKey, TunedPlan};
use proptest::prelude::*;
use tensor::index::uniform_dims;

/// Backend-name alphabet chosen to attack the encoder: path separators,
/// traversal dots, percent signs (the escape character itself), case
/// pairs that collide on case-insensitive filesystems, NUL-adjacent
/// controls, multi-byte unicode.
const CHARS: &[char] = &[
    'a', 'b', 'z', 'A', 'B', 'Z', '0', '9', '_', '-', '.', '/', '\\', '%', ' ', ':', '\n', '\u{1}',
    'é', '∑', '𝄞',
];

fn hostile_name() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..CHARS.len(), 0..16)
        .prop_map(|ixs| ixs.into_iter().map(|i| CHARS[i]).collect())
}

fn any_key() -> impl Strategy<Value = StoreKey> {
    (
        (0u64..=u64::MAX),
        (0u64..=u64::MAX),
        (0u64..=u64::MAX),
        hostile_name(),
    )
        .prop_map(|(fingerprint, cache_salt, schema, backend)| StoreKey {
            fingerprint,
            cache_salt,
            schema,
            backend,
        })
}

proptest! {
    /// `file_name` → `parse_file_name` is the identity for any key, and
    /// the emitted name is always a single safe path component.
    #[test]
    fn file_name_roundtrips_any_key(key in any_key()) {
        let name = key.file_name();
        prop_assert!(
            !name.contains('/') && !name.contains('\\') && !name.contains("..")
                && name.is_ascii(),
            "unsafe file name {name:?}"
        );
        prop_assert_eq!(StoreKey::parse_file_name(&name), Some(key));
    }

    /// Injective: two distinct keys never map to the same file name. This
    /// is what stops a salt or schema change from ever serving a stale
    /// plan, and hostile backend names from aliasing each other.
    #[test]
    fn distinct_keys_never_collide(a in any_key(), b in any_key()) {
        if a != b {
            prop_assert!(
                a.file_name() != b.file_name(),
                "collision between {a} and {b}: {}",
                a.file_name()
            );
        }
    }

    /// Case pairs must stay distinct *after* encoding, because the store
    /// may live on a case-insensitive filesystem: uppercase bytes are
    /// escaped, so `K20` and `k20` land in different entries by byte
    /// content, not just by case.
    #[test]
    fn case_variants_do_not_alias(base in proptest::collection::vec(0usize..26, 1..8)) {
        let lower: String = base.iter().map(|&i| (b'a' + i as u8) as char).collect();
        let upper = lower.to_uppercase();
        let key = |backend: String| StoreKey {
            fingerprint: 1,
            cache_salt: 2,
            schema: 2,
            backend,
        };
        let a = key(lower).file_name();
        let b = key(upper).file_name();
        prop_assert_ne!(a.to_lowercase(), b.to_lowercase());
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    /// Tune → insert → lookup → replay through the store is bit-lossless
    /// for any budget, exactly like the raw JSON round trip.
    #[test]
    fn store_roundtrip_is_bit_lossless(max_evals in 1usize..16, n in 6usize..12) {
        let root = std::env::temp_dir().join(format!(
            "barracuda_store_props_{}_{max_evals}_{n}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        let store = PlanStore::open(&root).unwrap();
        let w = Workload::parse(
            "mm",
            "C[i k] = Sum([j], A[i j] * B[j k])",
            &uniform_dims(&["i", "j", "k"], n),
        )
        .unwrap();
        let tuner = WorkloadTuner::build(&w);
        let mut params = TuneParams::quick();
        params.surf.max_evals = max_evals;
        let tuned = tuner.autotune(&gpusim::k20(), params).unwrap();
        let plan = TunedPlan::from_tuned(&tuner, "k20", &tuned);
        store.insert(&plan).unwrap();
        let back = store.lookup(&StoreKey::of_plan(&plan)).unwrap().unwrap();
        prop_assert_eq!(&plan, &back);
        prop_assert_eq!(plan.gpu_seconds.to_bits(), back.gpu_seconds.to_bits());
        let replayed = back.replay(&EvalCache::new()).unwrap();
        prop_assert_eq!(replayed.gpu_seconds.to_bits(), tuned.gpu_seconds.to_bits());
        let _ = std::fs::remove_dir_all(&root);
    }
}
