//! Property tests for [`barracuda::TunedPlan`]: the hand-rolled JSON
//! serialization must be lossless for *arbitrary* field values (bit-exact
//! f64s, full-range u128 ids, hostile strings), and replaying a saved plan
//! through a shared [`EvalCache`] must reproduce the tuned time
//! bit-identically without spending any search evaluations.

use barracuda::pipeline::{TuneParams, WorkloadTuner};
use barracuda::workload::Workload;
use barracuda::{
    BudgetMode, EvalCache, Objective, PlanChoice, PlanProvenance, QuarantineEntry, QuarantineStage,
    TunedPlan, PLAN_SCHEMA_VERSION,
};
use proptest::prelude::*;
use tensor::index::uniform_dims;

/// Counter-like fields serialize through `Json::Num` (a double), so the
/// representable domain is exact integers up to 2^53.
const MAX_EXACT: usize = 9_007_199_254_740_992;

fn counter() -> impl Strategy<Value = usize> {
    0usize..=MAX_EXACT
}

/// Any finite double, including -0.0, subnormals and extreme exponents.
/// Non-finite values are excluded: JSON has no literal for them and the
/// planner never produces them (times and rates are finite by
/// construction).
fn finite_f64() -> impl Strategy<Value = f64> {
    (0u64..=u64::MAX)
        .prop_map(f64::from_bits)
        .prop_filter("finite", |f| f.is_finite())
}

fn any_u128() -> impl Strategy<Value = u128> {
    ((0u64..=u64::MAX), (0u64..=u64::MAX)).prop_map(|(hi, lo)| ((hi as u128) << 64) | lo as u128)
}

fn any_bool() -> impl Strategy<Value = bool> {
    (0u8..2).prop_map(|b| b == 1)
}

/// Strings drawn from a pool that exercises every escape path of the JSON
/// writer: quotes, backslashes, control characters, multi-byte unicode.
const CHARS: &[char] = &[
    'a', 'Z', '0', '9', ' ', '_', '-', '.', '"', '\\', '\n', '\r', '\t', '\u{1}', '\u{1f}', '=',
    '[', ']', '{', '}', ':', ',', '/', 'é', '∑', '𝄞',
];

fn any_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..CHARS.len(), 0..24)
        .prop_map(|ixs| ixs.into_iter().map(|i| CHARS[i]).collect())
}

fn provenance() -> impl Strategy<Value = PlanProvenance> {
    (
        (counter(), counter(), any_u128(), counter()),
        (finite_f64(), counter(), counter(), counter()),
        (
            finite_f64(),
            finite_f64(),
            finite_f64(),
            any_bool(),
            any_string(),
        ),
        // Schema-v2 memo counters + hot-path nanoseconds (strings on
        // disk, so the full u64 range must survive).
        (
            counter(),
            counter(),
            counter(),
            counter(),
            counter(),
            counter(),
        ),
        (
            (0u64..=u64::MAX),
            (0u64..=u64::MAX),
            (0u64..=u64::MAX),
            (0u64..=u64::MAX),
        ),
        // Schema-v3 objective/memory provenance (byte totals are strings
        // on disk, so the full u64 range must survive).
        (counter(), counter(), (0u64..=u64::MAX), (0u64..=u64::MAX)),
    )
        .prop_map(
            |(
                (n_evals, batches, space_size, pool_size),
                (wall_s, threads, quarantined_versions, quarantined_configs),
                (cache_hit_rate, per_op_hit_rate, time_hit_rate, degraded, status),
                (cache_hits, cache_misses, per_op_hits, per_op_misses, time_hits, time_misses),
                (hot_decode_ns, hot_map_ns, hot_sim_ns, hot_predict_ns),
                (pruned_by_memory, versions_over_budget, peak_temp_bytes, rw_bytes),
            )| PlanProvenance {
                n_evals,
                batches,
                space_size,
                pool_size,
                wall_s,
                threads,
                quarantined_versions,
                quarantined_configs,
                cache_hit_rate,
                per_op_hit_rate,
                time_hit_rate,
                cache_hits,
                cache_misses,
                per_op_hits,
                per_op_misses,
                time_hits,
                time_misses,
                hot_decode_ns,
                hot_map_ns,
                hot_sim_ns,
                hot_predict_ns,
                pruned_by_memory,
                versions_over_budget,
                peak_temp_bytes,
                rw_bytes,
                degraded,
                status,
            },
        )
}

/// Any objective: arbitrary finite non-negative weights (bit patterns must
/// survive the round trip), an optional budget, either budget mode.
fn objective() -> impl Strategy<Value = Objective> {
    (
        finite_f64(),
        finite_f64(),
        finite_f64(),
        (any_bool(), (0u64..=u64::MAX)),
        any_bool(),
    )
        .prop_map(
            |(time_weight, mem_weight, rw_weight, budget, penalize)| Objective {
                time_weight: time_weight.abs(),
                mem_weight: mem_weight.abs(),
                rw_weight: rw_weight.abs(),
                mem_budget: budget.0.then_some(budget.1),
                budget_mode: if penalize {
                    BudgetMode::Penalize
                } else {
                    BudgetMode::Prune
                },
            },
        )
}

fn quarantine_entry() -> impl Strategy<Value = QuarantineEntry> {
    const STAGES: [QuarantineStage; 4] = [
        QuarantineStage::Factorization,
        QuarantineStage::Mapping,
        QuarantineStage::Simulation,
        QuarantineStage::Injected,
    ];
    (
        0usize..STAGES.len(),
        (any_bool(), counter()),
        (any_bool(), counter()),
        (any_bool(), any_u128()),
        any_string(),
    )
        .prop_map(
            |(stage, statement, version, config, reason)| QuarantineEntry {
                stage: STAGES[stage],
                statement: statement.0.then_some(statement.1),
                version: version.0.then_some(version.1),
                config: config.0.then_some(config.1),
                reason,
            },
        )
}

fn plan() -> impl Strategy<Value = TunedPlan> {
    (
        (
            any_string(),
            any_string(),
            proptest::collection::vec((any_string(), counter()), 0..4),
        ),
        (
            (0u64..=u64::MAX),
            any_string(),
            (0u64..=u64::MAX),
            any_string(),
            any_u128(),
        ),
        proptest::collection::vec(
            (counter(), any_u128()).prop_map(|(version, local)| PlanChoice { version, local }),
            0..4,
        ),
        (finite_f64(), finite_f64(), (0u64..=u64::MAX)),
        proptest::collection::vec(quarantine_entry(), 0..4),
        (provenance(), objective()),
    )
        .prop_map(
            |(
                (workload_name, source, dims),
                (fingerprint, backend, cache_salt, arch_name, id),
                choices,
                (gpu_seconds, transfer_seconds, flops),
                quarantine,
                (provenance, objective),
            )| TunedPlan {
                schema_version: PLAN_SCHEMA_VERSION,
                workload_name,
                source,
                dims,
                fingerprint,
                backend,
                cache_salt,
                arch_name,
                id,
                choices,
                gpu_seconds,
                transfer_seconds,
                flops,
                quarantine,
                provenance,
                objective,
            },
        )
}

proptest! {
    /// Serialize → parse is the identity on every field, including f64
    /// bit patterns and u128 values JSON numbers could not carry.
    #[test]
    fn json_roundtrip_is_lossless_for_arbitrary_plans(plan in plan()) {
        let text = plan.to_json_text();
        let back = match TunedPlan::from_json_text(&text) {
            Ok(p) => p,
            Err(e) => return Err(proptest::test_runner::TestCaseError::fail(format!(
                "reparse failed: {e}\n{text}"
            ))),
        };
        prop_assert_eq!(&plan, &back);
        prop_assert_eq!(plan.gpu_seconds.to_bits(), back.gpu_seconds.to_bits());
        prop_assert_eq!(plan.transfer_seconds.to_bits(), back.transfer_seconds.to_bits());
        prop_assert_eq!(plan.provenance.wall_s.to_bits(), back.provenance.wall_s.to_bits());
    }

    /// The legacy v1 layout still round-trips: a plan downgraded to
    /// schema 1 (v2-only fields zeroed, as the v1 writer emits) parses
    /// back identically and reports itself stale.
    #[test]
    fn v1_layout_roundtrip_is_lossless(plan in plan()) {
        let mut v1 = plan;
        v1.schema_version = 1;
        v1.cache_salt = 0;
        v1.quarantine.clear();
        v1.provenance.cache_hits = 0;
        v1.provenance.cache_misses = 0;
        v1.provenance.per_op_hits = 0;
        v1.provenance.per_op_misses = 0;
        v1.provenance.time_hits = 0;
        v1.provenance.time_misses = 0;
        v1.provenance.hot_decode_ns = 0;
        v1.provenance.hot_map_ns = 0;
        v1.provenance.hot_sim_ns = 0;
        v1.provenance.hot_predict_ns = 0;
        // v3-only fields: the v1 writer omits them, the reader defaults them.
        v1.provenance.pruned_by_memory = 0;
        v1.provenance.versions_over_budget = 0;
        v1.provenance.peak_temp_bytes = 0;
        v1.provenance.rw_bytes = 0;
        v1.objective = Objective::time_only();
        let text = v1.to_json_text();
        prop_assert!(!text.contains("cache_salt"));
        let back = match TunedPlan::from_json_text(&text) {
            Ok(p) => p,
            Err(e) => return Err(proptest::test_runner::TestCaseError::fail(format!(
                "v1 reparse failed: {e}\n{text}"
            ))),
        };
        prop_assert!(back.is_stale());
        prop_assert_eq!(&v1, &back);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Tune → save → load → replay reproduces the tuned time bit-for-bit
    /// through a shared cache, regardless of the search budget, and spends
    /// zero fresh evaluations doing so.
    #[test]
    fn replay_reproduces_tuned_time_for_any_budget(max_evals in 1usize..24, n in 6usize..14) {
        let w = Workload::parse(
            "mm",
            "C[i k] = Sum([j], A[i j] * B[j k])",
            &uniform_dims(&["i", "j", "k"], n),
        )
        .unwrap();
        let tuner = WorkloadTuner::build(&w);
        let mut params = TuneParams::quick();
        params.surf.max_evals = max_evals;
        let cache = EvalCache::new();
        let tuned = tuner
            .autotune_with_cache(&gpusim::k20(), params, &cache)
            .unwrap();
        let plan = TunedPlan::from_tuned(&tuner, "k20", &tuned);
        let loaded = match TunedPlan::from_json_text(&plan.to_json_text()) {
            Ok(p) => p,
            Err(e) => return Err(proptest::test_runner::TestCaseError::fail(format!(
                "reparse failed: {e}"
            ))),
        };
        let (_, misses_before) = cache.time_stats();
        let replayed = loaded.replay(&cache).unwrap();
        let (_, misses_after) = cache.time_stats();
        prop_assert_eq!(replayed.id, tuned.id);
        prop_assert_eq!(replayed.gpu_seconds.to_bits(), tuned.gpu_seconds.to_bits());
        prop_assert_eq!(
            misses_after, misses_before,
            "replay through the shared cache must not recompute any timing"
        );
        prop_assert_eq!(
            replayed.search.n_evals, tuned.search.n_evals,
            "replay carries the original search provenance"
        );
    }
}
