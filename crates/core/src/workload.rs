//! A workload: parsed OCTOPI statements plus concrete extents, with
//! host↔device data-movement analysis.

use crate::error::BarracudaError;
use octopi::{parse_program, Contraction, ParseError};
use tensor::{IndexMap, Tensor};

/// One benchmark computation: a sequence of summation statements evaluated
/// under a single extent map (e.g. the three statements of `local_grad3`).
#[derive(Clone, Debug)]
pub struct Workload {
    pub name: String,
    pub dims: IndexMap,
    pub statements: Vec<Contraction>,
}

impl Workload {
    /// Parses DSL source. `dims` provides (or overrides) extents for any
    /// index not declared in a `dims { ... }` block of the source.
    pub fn parse(
        name: impl Into<String>,
        src: &str,
        dims: &IndexMap,
    ) -> Result<Workload, BarracudaError> {
        let name = name.into();
        let prog = parse_program(src).map_err(|e: ParseError| BarracudaError::Parse {
            workload: name.clone(),
            offset: e.offset,
            message: e.message,
        })?;
        let mut merged = prog.dims.clone();
        for (k, v) in dims {
            merged.insert(k.clone(), *v);
        }
        let w = Workload {
            name,
            dims: merged,
            statements: prog.statements,
        };
        w.validate()?;
        Ok(w)
    }

    /// Builds a workload from pre-constructed statements.
    pub fn from_statements(
        name: impl Into<String>,
        statements: Vec<Contraction>,
        dims: IndexMap,
    ) -> Result<Workload, BarracudaError> {
        let w = Workload {
            name: name.into(),
            dims,
            statements,
        };
        w.validate()?;
        Ok(w)
    }

    fn validate(&self) -> Result<(), BarracudaError> {
        if self.statements.is_empty() {
            return Err(BarracudaError::Validation {
                workload: self.name.clone(),
                statement: None,
                detail: "workload has no statements".to_string(),
            });
        }
        for (i, st) in self.statements.iter().enumerate() {
            st.validate(&self.dims)
                .map_err(|detail| BarracudaError::Validation {
                    workload: self.name.clone(),
                    statement: Some(i),
                    detail,
                })?;
        }
        Ok(())
    }

    /// Names of tensors that must be uploaded: referenced as a term (or as
    /// an accumulated output) before any statement produces them.
    pub fn external_inputs(&self) -> Vec<String> {
        let mut produced: Vec<&str> = Vec::new();
        let mut inputs: Vec<String> = Vec::new();
        for st in &self.statements {
            for t in &st.terms {
                if !produced.contains(&t.name.as_str()) && !inputs.contains(&t.name) {
                    inputs.push(t.name.clone());
                }
            }
            if st.accumulate
                && !produced.contains(&st.output.name.as_str())
                && !inputs.contains(&st.output.name)
            {
                // `+=` into a tensor nothing here produced: its initial
                // contents come from the host.
                inputs.push(st.output.name.clone());
            }
            if !produced.contains(&st.output.name.as_str()) {
                produced.push(&st.output.name);
            }
        }
        inputs
    }

    /// Names of tensors that must be downloaded: produced by a statement and
    /// not consumed as an input term by any *later* statement (deduped).
    pub fn external_outputs(&self) -> Vec<String> {
        let mut outputs: Vec<String> = Vec::new();
        for (i, st) in self.statements.iter().enumerate() {
            let consumed_later = self.statements[i + 1..]
                .iter()
                .any(|s| s.terms.iter().any(|t| t.name == st.output.name));
            if !consumed_later && !outputs.contains(&st.output.name) {
                outputs.push(st.output.name.clone());
            }
        }
        outputs
    }

    /// Elements of a named tensor, resolved from any statement mentioning it.
    pub fn tensor_len(&self, name: &str) -> Option<usize> {
        for st in &self.statements {
            if let Some(hit) = std::iter::once(&st.output)
                .chain(st.terms.iter())
                .find(|r| r.name == name)
            {
                return Some(hit.indices.iter().map(|ix| self.dims[ix]).product());
            }
        }
        None
    }

    /// Bytes crossing PCIe for one evaluation of the workload (f64 data,
    /// inputs down + outputs up; temporaries stay device-resident).
    pub fn transfer_bytes(&self) -> u64 {
        let mut bytes = 0u64;
        for name in self
            .external_inputs()
            .iter()
            .chain(self.external_outputs().iter())
        {
            bytes += 8 * self.tensor_len(name).unwrap_or(0) as u64;
        }
        bytes
    }

    /// Deterministic random input tensors for every external input, keyed by
    /// name, suitable for executor validation. External inputs are by
    /// construction referenced by some statement, so every one gets a
    /// tensor.
    pub fn random_inputs(&self, seed: u64) -> Vec<(String, Tensor)> {
        self.external_inputs()
            .iter()
            .enumerate()
            .filter_map(|(k, name)| {
                // Find a reference to recover the shape (declaration order).
                let r = self
                    .statements
                    .iter()
                    .flat_map(|st| std::iter::once(&st.output).chain(st.terms.iter()))
                    .find(|r| &r.name == name)?;
                let shape = tensor::Shape::new(
                    r.indices.iter().map(|ix| self.dims[ix]).collect::<Vec<_>>(),
                );
                Some((name.clone(), Tensor::random(shape, seed + k as u64)))
            })
            .collect()
    }

    /// Reference (oracle) evaluation of the whole workload. Returns the
    /// final values of every external output, by name; fails when `inputs`
    /// is missing a tensor some statement consumes.
    pub fn evaluate_reference(
        &self,
        inputs: &[(String, Tensor)],
    ) -> Result<Vec<(String, Tensor)>, BarracudaError> {
        let mut env: std::collections::BTreeMap<String, Tensor> = inputs.iter().cloned().collect();
        for (i, st) in self.statements.iter().enumerate() {
            let spec = st.to_einsum(&self.dims);
            let operands: Vec<&Tensor> = st
                .terms
                .iter()
                .map(|t| {
                    env.get(&t.name).ok_or_else(|| BarracudaError::Validation {
                        workload: self.name.clone(),
                        statement: Some(i),
                        detail: format!("missing input tensor {}", t.name),
                    })
                })
                .collect::<Result<_, _>>()?;
            let mut fresh = spec.evaluate(&operands);
            if st.coefficient != 1.0 {
                for v in fresh.data_mut() {
                    *v *= st.coefficient;
                }
            }
            let entry = env.entry(st.output.name.clone());
            match entry {
                std::collections::btree_map::Entry::Occupied(mut o) if st.accumulate => {
                    let cur = o.get_mut();
                    for (a, b) in cur.data_mut().iter_mut().zip(fresh.data()) {
                        *a += b;
                    }
                }
                std::collections::btree_map::Entry::Occupied(mut o) => {
                    *o.get_mut() = fresh;
                }
                std::collections::btree_map::Entry::Vacant(v) => {
                    v.insert(fresh);
                }
            }
        }
        self.external_outputs()
            .into_iter()
            .map(|name| {
                let t = env
                    .remove(&name)
                    .ok_or_else(|| BarracudaError::Validation {
                        workload: self.name.clone(),
                        statement: None,
                        detail: format!("external output {name} was never computed"),
                    })?;
                Ok((name, t))
            })
            .collect()
    }

    /// Total floating-point operations of the *naive* (unfactorized)
    /// evaluation — the strength-reduction baseline.
    pub fn naive_flops(&self) -> u64 {
        self.statements
            .iter()
            .map(|st| octopi::cost::naive_flops(st, &self.dims))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::index::uniform_dims;

    #[test]
    fn single_statement_io() {
        let w = Workload::parse(
            "mm",
            "C[i k] = Sum([j], A[i j] * B[j k])",
            &uniform_dims(&["i", "j", "k"], 8),
        )
        .unwrap();
        assert_eq!(w.external_inputs(), vec!["A", "B"]);
        assert_eq!(w.external_outputs(), vec!["C"]);
        assert_eq!(w.transfer_bytes(), 8 * 3 * 64);
    }

    #[test]
    fn chained_statements_keep_temps_on_device() {
        let src = "T[i l] = Sum([j], A[i j] * B[j l])\nC[i k] = Sum([l], T[i l] * D[l k])";
        let w = Workload::parse("chain", src, &uniform_dims(&["i", "j", "k", "l"], 4)).unwrap();
        assert_eq!(w.external_inputs(), vec!["A", "B", "D"]);
        assert_eq!(w.external_outputs(), vec!["C"]);
    }

    #[test]
    fn accumulated_external_output_is_also_input() {
        let src = "t3[h1 p4] += Sum([h7], t2[h7 p4] * v2[h1 h7])";
        let w = Workload::parse("acc", src, &uniform_dims(&["h1", "p4", "h7"], 4)).unwrap();
        assert!(w.external_inputs().contains(&"t3".to_string()));
        assert_eq!(w.external_outputs(), vec!["t3"]);
    }

    #[test]
    fn multi_output_workload() {
        let src = "\
ur[e i j k] = Sum([l], D[i l] * u[e l j k])
us[e i j k] = Sum([l], D[j l] * u[e i l k])
ut[e i j k] = Sum([l], D[k l] * u[e i j l])";
        let mut dims = uniform_dims(&["i", "j", "k", "l"], 4);
        dims.insert("e".into(), 3);
        let w = Workload::parse("lg3", src, &dims).unwrap();
        assert_eq!(w.external_inputs(), vec!["D", "u"]);
        assert_eq!(w.external_outputs(), vec!["ur", "us", "ut"]);
    }

    #[test]
    fn reference_evaluation_accumulates() {
        let src = "y[i] += Sum([j], A[i j] * x[j])\ny[i] += Sum([j], A[i j] * x[j])";
        let dims = uniform_dims(&["i", "j"], 4);
        let w = Workload::parse("twice", src, &dims).unwrap();
        let inputs = w.random_inputs(5);
        let out = w.evaluate_reference(&inputs).unwrap();
        assert_eq!(out.len(), 1);
        // Must equal 2 * (A x) + initial y.
        let once = w.statements[0]
            .to_einsum(&dims)
            .evaluate(&[&inputs[0].1, &inputs[1].1]);
        let y0 = inputs
            .iter()
            .find(|(n, _)| n == "y")
            .map(|(_, t)| t.clone())
            .expect("y is an external input (accumulated)");
        for ((a, b), c) in out[0].1.data().iter().zip(once.data()).zip(y0.data()) {
            assert!((a - (2.0 * b + c)).abs() < 1e-10);
        }
    }

    #[test]
    fn parse_error_surfaces() {
        let err = Workload::parse("bad", "C[i] =", &IndexMap::new()).unwrap_err();
        assert!(matches!(err, BarracudaError::Parse { .. }), "{err}");
        assert_eq!(err.workload(), "bad");
    }

    #[test]
    fn missing_extent_is_typed_validation_naming_the_statement() {
        let err = Workload::parse("bad", "C[i] = A[i]", &IndexMap::new()).unwrap_err();
        match &err {
            BarracudaError::Validation {
                workload,
                statement,
                detail,
            } => {
                assert_eq!(workload, "bad");
                assert_eq!(*statement, Some(0));
                assert!(detail.contains("no extent"), "{detail}");
                assert!(detail.contains('i'), "names the index: {detail}");
            }
            other => panic!("expected Validation, got {other:?}"),
        }
        assert_eq!(err.exit_code(), 4);
    }

    #[test]
    fn evaluate_reference_missing_input_is_typed() {
        let w = Workload::parse(
            "mm",
            "C[i k] = Sum([j], A[i j] * B[j k])",
            &uniform_dims(&["i", "j", "k"], 4),
        )
        .unwrap();
        let mut inputs = w.random_inputs(1);
        inputs.retain(|(n, _)| n != "B");
        let err = w.evaluate_reference(&inputs).unwrap_err();
        match err {
            BarracudaError::Validation {
                statement, detail, ..
            } => {
                assert_eq!(statement, Some(0));
                assert!(detail.contains("missing input tensor B"), "{detail}");
            }
            other => panic!("expected Validation, got {other:?}"),
        }
    }

    #[test]
    fn naive_flops_matches_cost_module() {
        let w = Workload::parse(
            "mm",
            "C[i k] = Sum([j], A[i j] * B[j k])",
            &uniform_dims(&["i", "j", "k"], 10),
        )
        .unwrap();
        assert_eq!(w.naive_flops(), 2 * 1000);
    }
}
