//! Per-statement tuning state: OCTOPI versions × TCR configurations.
//!
//! A [`StatementTuner`] owns every factorization (OCTOPI "version") of one
//! summation statement, each lowered to a TCR program with its GPU search
//! space. Configurations of the statement are addressed by a flat `u128`
//! id that selects a version and a configuration within it;
//! [`StatementTuner::features`]
//! binarizes an id for the SURF surrogate (version one-hot, loop-choice
//! one-hots over the statement's index vocabulary, numeric unroll).

use octopi::{enumerate_factorizations, Contraction, Factorization};
use surf::FeatureSpace;
use tcr::space::{Configuration, LoopSel, OpConfig, ProgramSpace};
use tcr::TcrProgram;
use tensor::{IndexMap, IndexVar};

/// Feature layout of a statement: version one-hot, then per op-slot six
/// loop-choice one-hots over the index vocabulary plus two integers.
fn build_feature_space(n_variants: usize, vocab_len: usize, max_ops: usize) -> FeatureSpace {
    let card = vocab_len + 1;
    let mut fs = FeatureSpace::default().categorical("version", n_variants);
    for op in 0..max_ops {
        for name in ["tx", "ty", "bx", "by", "inner", "second"] {
            fs = fs.categorical(format!("op{op}_{name}"), card);
        }
        fs = fs.integer(format!("op{op}_unroll"), 0.0, 10.0);
        fs = fs.integer(format!("op{op}_staged"), 0.0, 2.0);
    }
    fs
}

/// One OCTOPI version of a statement, lowered and with its search space.
#[derive(Clone, Debug)]
pub struct Variant {
    pub factorization: Factorization,
    pub program: TcrProgram,
    pub space: ProgramSpace,
}

/// Tuning state for one statement.
#[derive(Clone, Debug)]
pub struct StatementTuner {
    pub contraction: Contraction,
    pub dims: IndexMap,
    pub variants: Vec<Variant>,
    /// Versions whose lowering failed, as `(version index, reason)` —
    /// quarantined at build time and excluded from the id space.
    pub quarantined_versions: Vec<(usize, String)>,
    /// Prefix sums of per-variant space sizes (offsets[v] = first id of v).
    offsets: Vec<u128>,
    /// Sorted index vocabulary of the statement (for feature encoding).
    vocab: Vec<IndexVar>,
    /// Max statement count across variants (feature slots).
    max_ops: usize,
    /// Feature layout, built once — rebuilding it per `features` call
    /// allocates a few hundred `String`s per candidate and used to dominate
    /// featurization time.
    feature_space: FeatureSpace,
}

impl StatementTuner {
    /// Enumerates factorizations of `contraction`, lowers each to TCR and
    /// builds its search space. Versions whose lowering fails are
    /// quarantined (recorded in `quarantined_versions`) rather than
    /// aborting the build; the id space covers survivors only.
    pub fn build(name: &str, contraction: &Contraction, dims: &IndexMap) -> Self {
        let factorizations = enumerate_factorizations(contraction, dims);
        // Lowering + space construction per version is independent work;
        // fan it out over the rayon pool (order-preserving, so version
        // indices and id offsets match the serial construction).
        let lowered: Vec<Result<Variant, String>> = rayon::par_map_slice(&factorizations, |f| {
            let program = TcrProgram::try_from_factorization(name, contraction, f, dims)?;
            let space = ProgramSpace::build(&program);
            Ok(Variant {
                factorization: f.clone(),
                program,
                space,
            })
        });
        let mut variants = Vec::with_capacity(lowered.len());
        let mut quarantined_versions = Vec::new();
        for (v, r) in lowered.into_iter().enumerate() {
            match r {
                Ok(variant) => variants.push(variant),
                Err(reason) => quarantined_versions.push((v, reason)),
            }
        }
        let mut offsets = Vec::with_capacity(variants.len() + 1);
        let mut acc = 0u128;
        for v in &variants {
            offsets.push(acc);
            acc += v.space.len();
        }
        offsets.push(acc);
        let vocab: Vec<IndexVar> = contraction.all_indices().into_iter().collect();
        let max_ops = variants
            .iter()
            .map(|v| v.program.ops.len())
            .max()
            .unwrap_or(0);
        let feature_space = build_feature_space(variants.len(), vocab.len(), max_ops);
        StatementTuner {
            contraction: contraction.clone(),
            dims: dims.clone(),
            variants,
            quarantined_versions,
            offsets,
            vocab,
            max_ops,
            feature_space,
        }
    }

    /// Total configurations across all (surviving) versions.
    pub fn total(&self) -> u128 {
        self.offsets.last().copied().unwrap_or(0)
    }

    /// First flat id of a version — its configuration 0. Version-level
    /// searches (e.g. contraction-order annealing, which explores versions
    /// at a canonical configuration) address versions without materializing
    /// a [`Configuration`].
    pub fn version_start(&self, variant: usize) -> u128 {
        self.offsets[variant]
    }

    /// Decodes a flat id into (version index, configuration id local to
    /// that version) without materializing the configuration — the memoized
    /// hot path extracts per-op digits from the local id directly.
    pub fn decode_raw(&self, id: u128) -> (usize, u128) {
        assert!(id < self.total(), "statement config id out of range");
        // offsets is sorted; find the variant whose range contains id.
        let v = match self.offsets.binary_search(&id) {
            Ok(exact) => exact.min(self.variants.len() - 1),
            Err(ins) => ins - 1,
        };
        (v, id - self.offsets[v])
    }

    /// Decodes a flat id into (version index, configuration).
    pub fn decode(&self, id: u128) -> (usize, Configuration) {
        let (v, local) = self.decode_raw(id);
        (v, self.variants[v].space.config(local))
    }

    /// Inverse of [`StatementTuner::decode`].
    pub fn encode(&self, variant: usize, config: &Configuration) -> u128 {
        self.offsets[variant] + self.variants[variant].space.config_id(config)
    }

    fn vocab_slot(&self, sel: Option<&IndexVar>) -> f64 {
        match sel {
            None => 0.0,
            // Slot 0 doubles as "absent": a variable outside the vocabulary
            // (impossible for well-formed spaces) encodes as absent rather
            // than aborting feature extraction.
            Some(v) => self
                .vocab
                .iter()
                .position(|x| x == v)
                .map(|p| 1.0 + p as f64)
                .unwrap_or(0.0),
        }
    }

    /// Raw (pre-binarization) feature values of one per-op configuration:
    /// `[tx, ty, bx, by, innermost, second-innermost]` as vocabulary slots
    /// plus the unroll factor, appended to `raw`.
    fn op_raw_into(&self, cfg: &OpConfig, raw: &mut Vec<f64>) {
        let sel = |s: &LoopSel| self.vocab_slot(s.var());
        let inner = cfg.interior.last();
        let second = cfg.interior.len().checked_sub(2).map(|k| &cfg.interior[k]);
        raw.extend([
            self.vocab_slot(Some(&cfg.tx)),
            sel(&cfg.ty),
            sel(&cfg.bx),
            sel(&cfg.by),
            self.vocab_slot(inner),
            self.vocab_slot(second),
            cfg.unroll as f64,
            cfg.staged.len() as f64,
        ]);
    }

    /// Feature layout for this statement (shared by every id).
    pub fn feature_space(&self) -> &FeatureSpace {
        &self.feature_space
    }

    /// Prunes every variant's space in place and rebuilds the offsets.
    pub fn prune(&mut self, rules: &tcr::PruneRules) {
        for v in &mut self.variants {
            v.space = tcr::prune_space(&v.program, &v.space, rules);
        }
        let mut offsets = Vec::with_capacity(self.variants.len() + 1);
        let mut acc = 0u128;
        for v in &self.variants {
            offsets.push(acc);
            acc += v.space.len();
        }
        offsets.push(acc);
        self.offsets = offsets;
    }

    /// Human-readable name of every *binarized* feature column, aligned
    /// with [`StatementTuner::features`] (one-hot categories expand to
    /// `name=K` columns).
    pub fn binarized_feature_names(&self) -> Vec<String> {
        let fs = self.feature_space();
        let mut out = Vec::with_capacity(fs.width());
        for f in &fs.features {
            match f {
                surf::Feature::Categorical { name, cardinality } => {
                    for k in 0..*cardinality {
                        // Category slot 0 is "absent"; others map to the
                        // statement's index vocabulary (for loop params) or
                        // the version number.
                        let label = if name == "version" {
                            format!("{name}={k}")
                        } else if k == 0 {
                            format!("{name}=none")
                        } else {
                            format!("{name}={}", self.vocab[k - 1])
                        };
                        out.push(label);
                    }
                }
                surf::Feature::Integer { name, .. } => out.push(name.clone()),
            }
        }
        out
    }

    /// Binarized feature vector of a flat id.
    pub fn features(&self, id: u128) -> Vec<f64> {
        let (v, config) = self.decode(id);
        let variant = &self.variants[v];
        let mut raw = Vec::with_capacity(1 + 8 * self.max_ops);
        raw.push(v as f64);
        for op in 0..self.max_ops {
            if op < variant.program.ops.len() {
                self.op_raw_into(variant.space.op_config(&config, op), &mut raw);
            } else {
                raw.extend([0.0; 8]);
            }
        }
        let mut out = Vec::with_capacity(self.feature_space.width());
        self.feature_space.binarize_into(&raw, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopi::ast::TensorRef;
    use tensor::index::uniform_dims;

    fn eqn1() -> Contraction {
        Contraction {
            output: TensorRef::new("V", &["i", "j", "k"]),
            sum_indices: vec!["l".into(), "m".into(), "n".into()],
            terms: vec![
                TensorRef::new("A", &["l", "k"]),
                TensorRef::new("B", &["m", "j"]),
                TensorRef::new("C", &["n", "i"]),
                TensorRef::new("U", &["l", "m", "n"]),
            ],
            accumulate: false,
            coefficient: 1.0,
        }
    }

    #[test]
    fn fifteen_variants_with_offsets() {
        let dims = uniform_dims(&["i", "j", "k", "l", "m", "n"], 10);
        let t = StatementTuner::build("ex", &eqn1(), &dims);
        assert_eq!(t.variants.len(), 15);
        assert!(t.quarantined_versions.is_empty());
        assert_eq!(
            t.total(),
            t.variants.iter().map(|v| v.space.len()).sum::<u128>()
        );
    }

    #[test]
    fn decode_encode_roundtrip() {
        let dims = uniform_dims(&["i", "j", "k", "l", "m", "n"], 6);
        let t = StatementTuner::build("ex", &eqn1(), &dims);
        let total = t.total();
        for frac in [0u128, 1, 7, 100] {
            let id = total * frac % total;
            let (v, c) = t.decode(id);
            assert_eq!(t.encode(v, &c), id);
        }
        // Boundary ids decode into the right variant.
        let (v0, _) = t.decode(0);
        assert_eq!(v0, 0);
        let (vl, _) = t.decode(total - 1);
        assert_eq!(vl, t.variants.len() - 1);
    }

    #[test]
    fn features_fixed_width_across_ids() {
        let dims = uniform_dims(&["i", "j", "k", "l", "m", "n"], 6);
        let t = StatementTuner::build("ex", &eqn1(), &dims);
        let w = t.feature_space().width();
        let total = t.total();
        for frac in [0u128, 3, 11] {
            let id = total * frac % total;
            assert_eq!(t.features(id).len(), w);
        }
    }

    #[test]
    fn distinct_ids_distinct_features() {
        let dims = uniform_dims(&["i", "j", "k", "l", "m", "n"], 6);
        let t = StatementTuner::build("ex", &eqn1(), &dims);
        let a = t.features(0);
        let b = t.features(1);
        assert_ne!(a, b, "adjacent configs differ at least in unroll");
    }

    #[test]
    fn single_variant_statement() {
        let dims = uniform_dims(&["i", "j", "k"], 8);
        let c = Contraction {
            output: TensorRef::new("C", &["i", "k"]),
            sum_indices: vec!["j".into()],
            terms: vec![
                TensorRef::new("A", &["i", "j"]),
                TensorRef::new("B", &["j", "k"]),
            ],
            accumulate: false,
            coefficient: 1.0,
        };
        let t = StatementTuner::build("mm", &c, &dims);
        assert_eq!(t.variants.len(), 1);
        assert!(t.total() > 0);
    }
}
