//! Sequential and OpenMP CPU baselines for whole workloads.
//!
//! Wraps the `cpusim` crate: the *timing* comes from the deterministic
//! Haswell model (so tables reproduce bit-identically), while the *values*
//! can be computed with the real executors for validation.

use crate::error::BarracudaError;
use crate::workload::Workload;
use cpusim::model::{time_cpu, CpuModel, CpuTiming};
use octopi::enumerate_factorizations;
use tcr::TcrProgram;
use tensor::Tensor;

/// Best-flop (strength-reduced) per-statement programs: what a reasonable
/// hand-written sequential implementation computes.
pub fn cpu_programs(workload: &Workload) -> Vec<TcrProgram> {
    workload
        .statements
        .iter()
        .enumerate()
        .map(|(i, st)| {
            let fs = enumerate_factorizations(st, &workload.dims);
            TcrProgram::from_factorization(
                format!("{}_{}", workload.name, i),
                st,
                &fs[0],
                &workload.dims,
            )
        })
        .collect()
}

/// Fallible [`cpu_programs`]: a lowering failure becomes a typed
/// [`BarracudaError::Factorization`] instead of a panic (the `Backend`
/// registry validates workloads through this).
pub fn try_cpu_programs(workload: &Workload) -> Result<Vec<TcrProgram>, BarracudaError> {
    workload
        .statements
        .iter()
        .enumerate()
        .map(|(i, st)| {
            let fs = enumerate_factorizations(st, &workload.dims);
            TcrProgram::try_from_factorization(
                format!("{}_{}", workload.name, i),
                st,
                &fs[0],
                &workload.dims,
            )
            .map_err(|detail| BarracudaError::Factorization {
                workload: workload.name.clone(),
                statement: i,
                version: 0,
                detail,
            })
        })
        .collect()
}

/// Modeled CPU timing of a whole workload on `threads` cores.
pub fn workload_cpu_time(workload: &Workload, model: &CpuModel, threads: usize) -> CpuTiming {
    let mut time_s = 0.0;
    let mut compute_s = 0.0;
    let mut memory_s = 0.0;
    let mut flops = 0u64;
    for p in cpu_programs(workload) {
        let t = time_cpu(&p, model, threads);
        time_s += t.time_s;
        compute_s += t.compute_s;
        memory_s += t.memory_s;
        flops += t.flops;
    }
    CpuTiming {
        time_s,
        compute_s,
        memory_s,
        flops,
    }
}

/// Modeled sustained GFlop/s on the CPU.
pub fn cpu_gflops(workload: &Workload, model: &CpuModel, threads: usize) -> f64 {
    let t = workload_cpu_time(workload, model, threads);
    t.flops as f64 / t.time_s / 1e9
}

/// Really executes the workload on the CPU (sequential or threaded),
/// chaining statements through a name environment. Used for validation and
/// Criterion benchmarks of the real executors.
pub fn execute_workload_cpu(
    workload: &Workload,
    inputs: &[(String, Tensor)],
    threads: usize,
) -> Vec<(String, Tensor)> {
    let programs = cpu_programs(workload);
    let mut env: std::collections::BTreeMap<String, Tensor> = inputs.iter().cloned().collect();
    for (program, st) in programs.iter().zip(&workload.statements) {
        let operands: Vec<&Tensor> = program
            .input_ids()
            .iter()
            .map(|&id| {
                let name = &program.arrays[id].name;
                env.get(name)
                    .unwrap_or_else(|| panic!("missing input tensor {name}"))
            })
            .collect();
        let fresh = if threads <= 1 {
            cpusim::execute_sequential(program, &operands)
        } else {
            cpusim::execute_parallel(program, &operands, threads)
        };
        match env.entry(st.output.name.clone()) {
            std::collections::btree_map::Entry::Occupied(mut o) if st.accumulate => {
                for (a, b) in o.get_mut().data_mut().iter_mut().zip(fresh.data()) {
                    *a += b;
                }
            }
            std::collections::btree_map::Entry::Occupied(mut o) => {
                *o.get_mut() = fresh;
            }
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(fresh);
            }
        }
    }
    workload
        .external_outputs()
        .into_iter()
        .map(|name| {
            let t = env
                .remove(&name)
                .unwrap_or_else(|| panic!("external output {name} was never computed"));
            (name, t)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::index::uniform_dims;

    fn eqn1_workload(n: usize) -> Workload {
        Workload::parse(
            "ex",
            "V[i j k] = Sum([l m n], A[l k] * B[m j] * C[n i] * U[l m n])",
            &uniform_dims(&["i", "j", "k", "l", "m", "n"], n),
        )
        .unwrap()
    }

    #[test]
    fn real_cpu_execution_matches_oracle() {
        let w = eqn1_workload(4);
        let inputs = w.random_inputs(7);
        let expect = w.evaluate_reference(&inputs).unwrap();
        for threads in [1, 4] {
            let got = execute_workload_cpu(&w, &inputs, threads);
            assert!(
                expect[0].1.approx_eq(&got[0].1, 1e-10),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn openmp_faster_than_sequential_when_compute_bound() {
        let w = eqn1_workload(16);
        let m = CpuModel::haswell();
        let t1 = workload_cpu_time(&w, &m, 1);
        let t4 = workload_cpu_time(&w, &m, 4);
        assert!(t4.time_s < t1.time_s);
    }

    #[test]
    fn gflops_reasonable_magnitude() {
        let w = eqn1_workload(16);
        let gf = cpu_gflops(&w, &CpuModel::haswell(), 1);
        assert!((0.1..30.0).contains(&gf), "1-core {gf} GF");
    }
}
