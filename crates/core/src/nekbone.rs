//! Nekbone proxy application: conjugate gradient over a spectral-element
//! Poisson-like operator built from `local_grad3` / `local_grad3t`.
//!
//! The paper integrates its tuned Lg3/Lg3t kernels into Nekbone's CG loop,
//! where the tensor contractions are ~60 % of sequential execution time
//! (§VI). This module provides:
//!
//! - a *real* CG solver whose operator `A u = lg3t(G ∘ lg3(u)) + m·u`
//!   executes through the same TCR programs the tuner optimizes (the mass
//!   term `m·u` keeps `A` symmetric positive definite),
//! - modeled application-level GFlop/s for the Barracuda / OpenACC / OpenMP
//!   strategies of Tables III and IV.

use crate::cpu::execute_workload_cpu;
use crate::kernels::{lg3, lg3t};
use crate::openacc::{openacc_naive, openacc_optimized};
use crate::pipeline::{TuneParams, TunedWorkload, WorkloadTuner};
use crate::session::TuningSession;
use crate::workload::Workload;
use cpusim::model::CpuModel;
use gpusim::GpuArch;
use tensor::{Shape, Tensor};

/// Problem configuration.
#[derive(Clone, Copy, Debug)]
pub struct NekboneConfig {
    /// Points per element edge (polynomial order + 1); the paper uses 12.
    pub order: usize,
    /// Mesh elements.
    pub elements: usize,
    /// CG iteration budget.
    pub cg_iters: usize,
    /// Relative residual target.
    pub tol: f64,
}

impl Default for NekboneConfig {
    fn default() -> Self {
        NekboneConfig {
            order: crate::kernels::NEK_ORDER,
            elements: crate::kernels::NEK_ELEMENTS,
            cg_iters: 50,
            tol: 1e-8,
        }
    }
}

/// CG run statistics.
#[derive(Clone, Debug)]
pub struct CgStats {
    pub iterations: usize,
    pub residuals: Vec<f64>,
    pub converged: bool,
    /// Flops spent in tensor contractions (lg3 + lg3t).
    pub contraction_flops: u64,
    /// Flops spent in vector operations (dot, axpy, pointwise scale).
    pub vector_flops: u64,
}

/// The spectral-element operator and its data.
pub struct NekboneOperator {
    pub cfg: NekboneConfig,
    lg3: Workload,
    lg3t: Workload,
    d: Tensor,
    /// Diagonal geometric factors, one per direction (all positive).
    g: [Tensor; 3],
    /// Mass-term coefficient (keeps the operator SPD).
    mass: f64,
}

impl NekboneOperator {
    pub fn new(cfg: NekboneConfig, seed: u64) -> Self {
        let field = Shape::new([cfg.elements, cfg.order, cfg.order, cfg.order]);
        let positive = |s: u64| {
            let mut t = Tensor::random(field.clone(), s);
            for v in t.data_mut() {
                *v = 1.0 + 0.1 * v.abs();
            }
            t
        };
        NekboneOperator {
            cfg,
            lg3: lg3(cfg.order, cfg.elements),
            lg3t: lg3t(cfg.order, cfg.elements),
            d: Tensor::random(Shape::new([cfg.order, cfg.order]), seed),
            g: [positive(seed + 1), positive(seed + 2), positive(seed + 3)],
            mass: 0.1,
        }
    }

    /// Applies `A u` through the real CPU executors. Also returns the flop
    /// counts spent in the contraction kernels.
    pub fn apply(&self, u: &Tensor, threads: usize) -> (Tensor, u64) {
        let grads = execute_workload_cpu(
            &self.lg3,
            &[
                ("D".to_string(), self.d.clone()),
                ("u".to_string(), u.clone()),
            ],
            threads,
        );
        // Pointwise metric scaling: ur *= g0, us *= g1, ut *= g2.
        let mut scaled: Vec<(String, Tensor)> = Vec::with_capacity(3);
        for (k, (name, grad)) in grads.into_iter().enumerate() {
            let mut t = grad;
            for (v, g) in t.data_mut().iter_mut().zip(self.g[k].data()) {
                *v *= g;
            }
            scaled.push((name, t));
        }
        scaled.push(("D".to_string(), self.d.clone()));
        let w = execute_workload_cpu(&self.lg3t, &scaled, threads);
        let mut out = w
            .into_iter()
            .next()
            .unwrap_or_else(|| panic!("lg3t produced no output"))
            .1;
        for (o, ui) in out.data_mut().iter_mut().zip(u.data()) {
            *o += self.mass * ui;
        }
        let flops = self.contraction_flops_per_apply();
        (out, flops)
    }

    /// Contraction flops of one operator application.
    pub fn contraction_flops_per_apply(&self) -> u64 {
        self.lg3.naive_flops() + self.lg3t.naive_flops()
    }

    /// Field size in elements.
    pub fn n(&self) -> usize {
        self.cfg.elements * self.cfg.order.pow(3)
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Solves `A x = b` with conjugate gradient using the real executors.
pub fn run_cg(op: &NekboneOperator, threads: usize) -> CgStats {
    let n = op.n();
    let shape = Shape::new([op.cfg.elements, op.cfg.order, op.cfg.order, op.cfg.order]);
    let b = Tensor::random(shape.clone(), 77);
    let mut x = vec![0.0; n];
    let mut r = b.data().to_vec();
    let mut p = r.clone();
    let r0 = dot(&r, &r).sqrt();
    let mut rsq = r0 * r0;

    let mut stats = CgStats {
        iterations: 0,
        residuals: vec![1.0],
        converged: false,
        contraction_flops: 0,
        vector_flops: 0,
    };

    for _ in 0..op.cfg.cg_iters {
        let p_t = Tensor::from_vec(shape.clone(), p.clone());
        let (ap, cf) = op.apply(&p_t, threads);
        stats.contraction_flops += cf;
        let ap = ap.data();
        let alpha = rsq / dot(&p, ap);
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rsq_new = dot(&r, &r);
        stats.vector_flops += 10 * n as u64; // 2 dots + 2 axpy + update
        stats.iterations += 1;
        let rel = rsq_new.sqrt() / r0;
        stats.residuals.push(rel);
        if rel < op.cfg.tol {
            stats.converged = true;
            break;
        }
        let beta = rsq_new / rsq;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rsq = rsq_new;
    }
    stats
}

/// Modeled GFlop/s of the Nekbone contraction core under each strategy.
pub struct NekbonePerf {
    pub barracuda_gflops: f64,
    pub acc_naive_gflops: f64,
    pub acc_opt_gflops: f64,
    pub tuned_lg3: TunedWorkload,
    pub tuned_lg3t: TunedWorkload,
}

/// Tunes lg3+lg3t on `arch` and evaluates the three GPU strategies.
/// Transfer of `u` in and `w` out is charged once per operator application
/// ("our results include the time to transfer data back and forth", §VII).
pub fn model_gpu_perf(
    cfg: NekboneConfig,
    arch: &GpuArch,
    params: TuneParams,
) -> Result<NekbonePerf, crate::error::BarracudaError> {
    model_gpu_perf_with(&TuningSession::new(), cfg, arch, params)
}

/// [`model_gpu_perf`] through a caller-owned [`TuningSession`], so the
/// lg3/lg3t searches share the session's evaluation cache (and plan
/// store, when one is attached) with everything else the caller tunes.
pub fn model_gpu_perf_with(
    session: &TuningSession,
    cfg: NekboneConfig,
    arch: &GpuArch,
    params: TuneParams,
) -> Result<NekbonePerf, crate::error::BarracudaError> {
    let w3 = lg3(cfg.order, cfg.elements);
    let w3t = lg3t(cfg.order, cfg.elements);
    let t3 = session.tune_on_arch(&WorkloadTuner::build(&w3), arch, params)?;
    let t3t = session.tune_on_arch(&WorkloadTuner::build(&w3t), arch, params)?;

    let field_bytes = (cfg.elements * cfg.order.pow(3) * 8) as f64;
    // One application moves u down and w up; intermediate gradients stay
    // device-resident.
    let transfer = 2.0 * field_bytes / (arch.pcie_bw_gbs * 1e9) + 2.0 * arch.pcie_latency_us * 1e-6;
    let flops = (t3.flops + t3t.flops) as f64;

    let bar_t = t3.gpu_seconds + t3t.gpu_seconds + transfer;
    let naive_t =
        openacc_naive(&w3).gpu_seconds(arch) + openacc_naive(&w3t).gpu_seconds(arch) + transfer;
    let opt_t = openacc_optimized(&w3, &t3).gpu_seconds(arch)
        + openacc_optimized(&w3t, &t3t).gpu_seconds(arch)
        + transfer;

    Ok(NekbonePerf {
        barracuda_gflops: flops / bar_t / 1e9,
        acc_naive_gflops: flops / naive_t / 1e9,
        acc_opt_gflops: flops / opt_t / 1e9,
        tuned_lg3: t3,
        tuned_lg3t: t3t,
    })
}

/// Modeled CPU GFlop/s of the Nekbone contraction core.
pub fn model_cpu_gflops(cfg: NekboneConfig, threads: usize) -> f64 {
    let w3 = lg3(cfg.order, cfg.elements);
    let w3t = lg3t(cfg.order, cfg.elements);
    let m = CpuModel::haswell();
    let t = crate::cpu::workload_cpu_time(&w3, &m, threads).time_s
        + crate::cpu::workload_cpu_time(&w3t, &m, threads).time_s;
    (w3.naive_flops() + w3t.naive_flops()) as f64 / t / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> NekboneConfig {
        NekboneConfig {
            order: 4,
            elements: 6,
            cg_iters: 200,
            tol: 1e-7,
        }
    }

    #[test]
    fn operator_is_symmetric() {
        let op = NekboneOperator::new(tiny(), 5);
        let shape = Shape::new([6, 4, 4, 4]);
        let u = Tensor::random(shape.clone(), 1);
        let v = Tensor::random(shape, 2);
        let (au, _) = op.apply(&u, 1);
        let (av, _) = op.apply(&v, 1);
        let lhs = dot(au.data(), v.data());
        let rhs = dot(av.data(), u.data());
        assert!(
            (lhs - rhs).abs() < 1e-8 * lhs.abs().max(1.0),
            "A must be symmetric: {lhs} vs {rhs}"
        );
    }

    #[test]
    fn operator_is_positive_definite() {
        let op = NekboneOperator::new(tiny(), 5);
        let shape = Shape::new([6, 4, 4, 4]);
        for seed in [3, 4, 5] {
            let u = Tensor::random(shape.clone(), seed);
            let (au, _) = op.apply(&u, 1);
            let q = dot(au.data(), u.data());
            assert!(q > 0.0, "u^T A u = {q} must be positive");
        }
    }

    #[test]
    fn cg_converges() {
        let op = NekboneOperator::new(tiny(), 5);
        let stats = run_cg(&op, 1);
        assert!(
            stats.converged,
            "CG must converge: residuals {:?}",
            &stats.residuals[stats.residuals.len().saturating_sub(3)..]
        );
        assert!(stats.residuals.last().unwrap() < &1e-7);
        assert!(stats.contraction_flops > 0);
    }

    #[test]
    fn cg_parallel_matches_sequential_trajectory() {
        let op = NekboneOperator::new(tiny(), 5);
        let s1 = run_cg(&op, 1);
        let s4 = run_cg(&op, 4);
        assert_eq!(s1.iterations, s4.iterations);
        for (a, b) in s1.residuals.iter().zip(&s4.residuals) {
            assert!((a - b).abs() < 1e-9, "residual trajectories diverge");
        }
    }

    #[test]
    fn residuals_decrease_overall() {
        let op = NekboneOperator::new(tiny(), 5);
        let stats = run_cg(&op, 1);
        let first = stats.residuals[1];
        let last = *stats.residuals.last().unwrap();
        assert!(last < first * 1e-3, "CG must reduce the residual");
    }
}
