//! Serializable tuning plans: persist a search result, replay it later.
//!
//! Autotuning is the expensive step — the paper models multi-hour searches
//! (Table II) for a configuration that is then reused for every production
//! run. A [`TunedPlan`] captures everything needed to skip the search next
//! time: the workload (canonical DSL source + extents + a fingerprint),
//! the backend it was tuned for, the winning joint configuration id with
//! its per-statement `(version, local)` decomposition, the modeled times,
//! and provenance describing how the search ran (evaluations, batches,
//! quarantine counts, cache hit rates, degradation status).
//!
//! Plans are versioned hand-rolled JSON (see [`crate::json`] — no serde in
//! this repo): `f64` values round-trip bit-exactly via Rust's shortest
//! `Display`, and `u128`/`u64` quantities that exceed double precision
//! travel as strings. [`TunedPlan::replay`] rejects a plan whose schema
//! version or workload fingerprint no longer matches with a typed
//! [`BarracudaError::Plan`] (CLI exit code 10), then re-maps and re-times
//! the configuration — bit-identical to the saved numbers, since the
//! simulator is deterministic — without searching anything.

use crate::backend::backend_by_key;
use crate::cache::EvalCache;
use crate::error::BarracudaError;
use crate::json::Json;
use crate::pipeline::{TunedWorkload, WorkloadTuner};
use crate::quarantine::QuarantineReport;
use crate::stages::frontend::{canonical_source, workload_fingerprint};
use crate::stages::SearchStats;
use crate::workload::Workload;
use surf::SearchStatus;

/// Version of the on-disk plan schema. Bump on any incompatible change;
/// readers reject other versions rather than misinterpreting fields.
pub const PLAN_SCHEMA_VERSION: u64 = 1;

/// How the saved configuration was found: the search's bookkeeping,
/// flattened for serialization.
#[derive(Clone, Debug, PartialEq)]
pub struct PlanProvenance {
    pub n_evals: usize,
    pub batches: usize,
    pub space_size: u128,
    pub pool_size: usize,
    pub wall_s: f64,
    pub threads: usize,
    pub quarantined_versions: usize,
    pub quarantined_configs: usize,
    pub cache_hit_rate: f64,
    pub per_op_hit_rate: f64,
    pub time_hit_rate: f64,
    /// Whether the search stopped early (budget, deadline, survivors).
    pub degraded: bool,
    /// Human-readable status (`complete` or `degraded: <reason>`).
    pub status: String,
}

/// One per-statement choice of the plan's joint configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct PlanChoice {
    /// OCTOPI version index within the statement.
    pub version: usize,
    /// Local configuration id within the statement's own space.
    pub local: u128,
}

/// A persisted tuning result: enough to re-map, validate and emit CUDA for
/// the winning configuration without re-running the search.
#[derive(Clone, Debug, PartialEq)]
pub struct TunedPlan {
    pub schema_version: u64,
    pub workload_name: String,
    /// Canonical DSL source (statement `Display` forms, one per line).
    pub source: String,
    /// Index extents, sorted by index name.
    pub dims: Vec<(String, usize)>,
    /// FNV-1a fingerprint over source + dims (name excluded); replay
    /// refuses a workload whose fingerprint differs.
    pub fingerprint: u64,
    /// Backend registry key the plan was tuned for (`k20`, `gtx980`, …).
    pub backend: String,
    /// Human-readable architecture name at save time.
    pub arch_name: String,
    /// Winning joint configuration id.
    pub id: u128,
    /// Per-statement decomposition of `id`.
    pub choices: Vec<PlanChoice>,
    pub gpu_seconds: f64,
    pub transfer_seconds: f64,
    pub flops: u64,
    pub provenance: PlanProvenance,
}

impl TunedPlan {
    /// Captures a finished tuning run as a plan. The `tuner` must be the
    /// one the result came from (it decomposes the joint id), and
    /// `backend` the registry key of the architecture searched.
    pub fn from_tuned(tuner: &WorkloadTuner, backend: &str, tuned: &TunedWorkload) -> TunedPlan {
        let locals = tuner.decode(tuned.id);
        let choices = tuner
            .statements
            .iter()
            .zip(&locals)
            .map(|(st, &local)| PlanChoice {
                version: st.decode_raw(local).0,
                local,
            })
            .collect();
        let s = &tuned.search;
        TunedPlan {
            schema_version: PLAN_SCHEMA_VERSION,
            workload_name: tuner.workload.name.clone(),
            source: canonical_source(&tuner.workload),
            dims: tuner
                .workload
                .dims
                .iter()
                .map(|(v, &n)| (v.name().to_string(), n))
                .collect(),
            fingerprint: workload_fingerprint(&tuner.workload),
            backend: backend.to_string(),
            arch_name: tuned.arch_name.clone(),
            id: tuned.id,
            choices,
            gpu_seconds: tuned.gpu_seconds,
            transfer_seconds: tuned.transfer_seconds,
            flops: tuned.flops,
            provenance: PlanProvenance {
                n_evals: s.n_evals,
                batches: s.batches,
                space_size: s.space_size,
                pool_size: s.pool_size,
                wall_s: s.wall_s,
                threads: s.threads,
                quarantined_versions: s.quarantined_versions,
                quarantined_configs: s.quarantined_configs,
                cache_hit_rate: s.cache_hit_rate(),
                per_op_hit_rate: s.per_op_hit_rate(),
                time_hit_rate: s.time_hit_rate(),
                degraded: tuned.is_degraded(),
                status: match &tuned.status {
                    SearchStatus::Complete => "complete".to_string(),
                    SearchStatus::Degraded { reason } => format!("degraded: {reason}"),
                },
            },
        }
    }

    /// The plan as pretty-printed JSON text.
    pub fn to_json_text(&self) -> String {
        let p = &self.provenance;
        Json::Obj(vec![
            (
                "schema_version".into(),
                Json::Num(self.schema_version as f64),
            ),
            ("workload".into(), Json::Str(self.workload_name.clone())),
            ("source".into(), Json::Str(self.source.clone())),
            (
                "dims".into(),
                Json::Obj(
                    self.dims
                        .iter()
                        .map(|(name, n)| (name.clone(), Json::Num(*n as f64)))
                        .collect(),
                ),
            ),
            (
                "fingerprint".into(),
                Json::Str(format!("{:016x}", self.fingerprint)),
            ),
            ("backend".into(), Json::Str(self.backend.clone())),
            ("arch_name".into(), Json::Str(self.arch_name.clone())),
            ("id".into(), Json::Str(self.id.to_string())),
            (
                "choices".into(),
                Json::Arr(
                    self.choices
                        .iter()
                        .map(|c| {
                            Json::Obj(vec![
                                ("version".into(), Json::Num(c.version as f64)),
                                ("local".into(), Json::Str(c.local.to_string())),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("gpu_seconds".into(), Json::Num(self.gpu_seconds)),
            ("transfer_seconds".into(), Json::Num(self.transfer_seconds)),
            ("flops".into(), Json::Str(self.flops.to_string())),
            (
                "provenance".into(),
                Json::Obj(vec![
                    ("n_evals".into(), Json::Num(p.n_evals as f64)),
                    ("batches".into(), Json::Num(p.batches as f64)),
                    ("space_size".into(), Json::Str(p.space_size.to_string())),
                    ("pool_size".into(), Json::Num(p.pool_size as f64)),
                    ("wall_s".into(), Json::Num(p.wall_s)),
                    ("threads".into(), Json::Num(p.threads as f64)),
                    (
                        "quarantined_versions".into(),
                        Json::Num(p.quarantined_versions as f64),
                    ),
                    (
                        "quarantined_configs".into(),
                        Json::Num(p.quarantined_configs as f64),
                    ),
                    ("cache_hit_rate".into(), Json::Num(p.cache_hit_rate)),
                    ("per_op_hit_rate".into(), Json::Num(p.per_op_hit_rate)),
                    ("time_hit_rate".into(), Json::Num(p.time_hit_rate)),
                    ("degraded".into(), Json::Bool(p.degraded)),
                    ("status".into(), Json::Str(p.status.clone())),
                ]),
            ),
        ])
        .to_string_pretty()
    }

    /// Parses a plan from JSON text, rejecting unknown schema versions.
    pub fn from_json_text(text: &str) -> Result<TunedPlan, BarracudaError> {
        let err = |detail: String| BarracudaError::Plan {
            workload: "plan".to_string(),
            detail,
        };
        let doc = Json::parse(text).map_err(|e| err(format!("invalid JSON: {e}")))?;
        let field = |key: &str| {
            doc.get(key)
                .ok_or_else(|| err(format!("missing field `{key}`")))
        };
        let str_field = |key: &str| {
            field(key)?
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| err(format!("field `{key}` must be a string")))
        };
        let num_field = |key: &str| {
            field(key)?
                .as_u64()
                .ok_or_else(|| err(format!("field `{key}` must be an integer")))
        };
        let schema_version = num_field("schema_version")?;
        if schema_version != PLAN_SCHEMA_VERSION {
            return Err(err(format!(
                "unsupported schema version {schema_version} (this build reads {PLAN_SCHEMA_VERSION})"
            )));
        }
        let workload_name = str_field("workload")?;
        let perr = |detail: String| BarracudaError::Plan {
            workload: workload_name.clone(),
            detail,
        };
        let u128_field = |parent: &Json, key: &str| -> Result<u128, BarracudaError> {
            parent
                .get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| perr(format!("missing string field `{key}`")))?
                .parse::<u128>()
                .map_err(|_| perr(format!("field `{key}` is not a decimal u128")))
        };
        let f64_field = |parent: &Json, key: &str| -> Result<f64, BarracudaError> {
            parent
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| perr(format!("missing numeric field `{key}`")))
        };
        let usize_field = |parent: &Json, key: &str| -> Result<usize, BarracudaError> {
            parent
                .get(key)
                .and_then(Json::as_u64)
                .map(|n| n as usize)
                .ok_or_else(|| perr(format!("missing integer field `{key}`")))
        };
        let dims = match field("dims")? {
            Json::Obj(members) => members
                .iter()
                .map(|(name, v)| {
                    v.as_u64()
                        .map(|n| (name.clone(), n as usize))
                        .ok_or_else(|| perr(format!("dimension `{name}` must be an integer")))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err(perr("field `dims` must be an object".to_string())),
        };
        let fingerprint = u64::from_str_radix(&str_field("fingerprint")?, 16)
            .map_err(|_| perr("field `fingerprint` is not a hex u64".to_string()))?;
        let choices = field("choices")?
            .as_arr()
            .ok_or_else(|| perr("field `choices` must be an array".to_string()))?
            .iter()
            .map(|c| {
                Ok(PlanChoice {
                    version: usize_field(c, "version")?,
                    local: u128_field(c, "local")?,
                })
            })
            .collect::<Result<Vec<_>, BarracudaError>>()?;
        let prov = field("provenance")?;
        let provenance = PlanProvenance {
            n_evals: usize_field(prov, "n_evals")?,
            batches: usize_field(prov, "batches")?,
            space_size: u128_field(prov, "space_size")?,
            pool_size: usize_field(prov, "pool_size")?,
            wall_s: f64_field(prov, "wall_s")?,
            threads: usize_field(prov, "threads")?,
            quarantined_versions: usize_field(prov, "quarantined_versions")?,
            quarantined_configs: usize_field(prov, "quarantined_configs")?,
            cache_hit_rate: f64_field(prov, "cache_hit_rate")?,
            per_op_hit_rate: f64_field(prov, "per_op_hit_rate")?,
            time_hit_rate: f64_field(prov, "time_hit_rate")?,
            degraded: prov
                .get("degraded")
                .and_then(Json::as_bool)
                .ok_or_else(|| perr("missing boolean field `degraded`".to_string()))?,
            status: prov
                .get("status")
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| perr("missing string field `status`".to_string()))?,
        };
        Ok(TunedPlan {
            schema_version,
            source: str_field("source")?,
            dims,
            fingerprint,
            backend: str_field("backend")?,
            arch_name: str_field("arch_name")?,
            id: u128_field(&doc, "id")?,
            choices,
            gpu_seconds: f64_field(&doc, "gpu_seconds")?,
            transfer_seconds: f64_field(&doc, "transfer_seconds")?,
            flops: str_field("flops")?
                .parse::<u64>()
                .map_err(|_| perr("field `flops` is not a decimal u64".to_string()))?,
            provenance,
            workload_name,
        })
    }

    /// Writes the plan to `path` as JSON.
    pub fn save(&self, path: &std::path::Path) -> Result<(), BarracudaError> {
        std::fs::write(path, self.to_json_text()).map_err(|e| BarracudaError::Plan {
            workload: self.workload_name.clone(),
            detail: format!("cannot write {}: {e}", path.display()),
        })
    }

    /// Reads and parses a plan from `path`.
    pub fn load(path: &std::path::Path) -> Result<TunedPlan, BarracudaError> {
        let text = std::fs::read_to_string(path).map_err(|e| BarracudaError::Plan {
            workload: "plan".to_string(),
            detail: format!("cannot read {}: {e}", path.display()),
        })?;
        Self::from_json_text(&text)
    }

    /// Reconstructs the plan's workload from its embedded source + dims.
    pub fn workload(&self) -> Result<Workload, BarracudaError> {
        let dims = self
            .dims
            .iter()
            .map(|(name, n)| (tensor::IndexVar::new(name.clone()), *n))
            .collect();
        let w = Workload::parse(&self.workload_name, &self.source, &dims)?;
        self.validate_for(&w)?;
        Ok(w)
    }

    /// Checks that `workload` is the one this plan was tuned for: same
    /// schema version and same source/dims fingerprint. A stale plan (the
    /// DSL or the extents changed since tuning) is a typed error, never a
    /// silently wrong kernel.
    pub fn validate_for(&self, workload: &Workload) -> Result<(), BarracudaError> {
        if self.schema_version != PLAN_SCHEMA_VERSION {
            return Err(BarracudaError::Plan {
                workload: workload.name.clone(),
                detail: format!(
                    "unsupported schema version {} (this build reads {PLAN_SCHEMA_VERSION})",
                    self.schema_version
                ),
            });
        }
        let actual = workload_fingerprint(workload);
        if actual != self.fingerprint {
            return Err(BarracudaError::Plan {
                workload: workload.name.clone(),
                detail: format!(
                    "workload fingerprint {actual:016x} does not match plan fingerprint \
                     {:016x}: the statements or extents changed since tuning — re-tune \
                     instead of replaying",
                    self.fingerprint
                ),
            });
        }
        Ok(())
    }

    /// Replays the plan against `workload`: validates the fingerprint,
    /// re-maps the saved configuration and re-times it through `cache` —
    /// no search. The deterministic simulator reproduces the saved
    /// `gpu_seconds` bit-for-bit; a mismatch (an edited plan, a changed
    /// model) is reported as a typed error rather than trusted.
    pub fn replay_for(
        &self,
        workload: &Workload,
        cache: &EvalCache,
    ) -> Result<TunedWorkload, BarracudaError> {
        self.validate_for(workload)?;
        let backend = backend_by_key(&self.backend).ok_or_else(|| BarracudaError::Plan {
            workload: workload.name.clone(),
            detail: format!("unknown backend `{}` in plan", self.backend),
        })?;
        let arch = backend.arch().ok_or_else(|| BarracudaError::Plan {
            workload: workload.name.clone(),
            detail: format!(
                "backend `{}` has no architecture to replay on",
                self.backend
            ),
        })?;
        let tuner = WorkloadTuner::build(workload);
        if self.id >= tuner.total_space() {
            return Err(BarracudaError::Plan {
                workload: workload.name.clone(),
                detail: format!(
                    "plan id {} exceeds the search space ({} configurations)",
                    self.id,
                    tuner.total_space()
                ),
            });
        }
        let locals = tuner.decode(self.id);
        let mut choices = Vec::new();
        let mut programs = Vec::new();
        for (k, (st, &local)) in tuner.statements.iter().zip(&locals).enumerate() {
            if let Some(saved) = self.choices.get(k) {
                if saved.local != local {
                    return Err(BarracudaError::Plan {
                        workload: workload.name.clone(),
                        detail: format!(
                            "statement {k}: plan id decomposes to local {local} but the plan \
                             recorded {} — the plan was edited inconsistently",
                            saved.local
                        ),
                    });
                }
            }
            let (v, config) = st.decode(local);
            programs.push(st.variants[v].program.clone());
            choices.push((v, config));
        }
        let kernels = tuner.kernels(self.id)?;
        let gpu_seconds = tuner.try_gpu_seconds_memo(self.id, arch, cache)?;
        if gpu_seconds.to_bits() != self.gpu_seconds.to_bits() {
            return Err(BarracudaError::Plan {
                workload: workload.name.clone(),
                detail: format!(
                    "replayed time {gpu_seconds} differs from saved {} — the plan no longer \
                     matches this build's performance model",
                    self.gpu_seconds
                ),
            });
        }
        let transfer_seconds = tuner.transfer_seconds(arch);
        let p = &self.provenance;
        Ok(TunedWorkload {
            name: workload.name.clone(),
            arch_name: arch.name.to_string(),
            id: self.id,
            choices,
            programs,
            kernels,
            gpu_seconds,
            transfer_seconds,
            flops: tuner.flops(self.id),
            search: SearchStats {
                n_evals: p.n_evals,
                batches: p.batches,
                evaluated_times: Vec::new(),
                space_size: p.space_size,
                pool_size: p.pool_size,
                cache_hits: 0,
                cache_misses: 0,
                wall_s: p.wall_s,
                threads: p.threads,
                quarantined_versions: p.quarantined_versions,
                quarantined_configs: p.quarantined_configs,
                per_op_hits: 0,
                per_op_misses: 0,
                time_hits: 0,
                time_misses: 0,
                hot: Default::default(),
            },
            status: if p.degraded {
                SearchStatus::Degraded {
                    reason: p.status.clone(),
                }
            } else {
                SearchStatus::Complete
            },
            quarantine: QuarantineReport::new(),
        })
    }

    /// [`TunedPlan::replay_for`] against the workload embedded in the plan.
    pub fn replay(&self, cache: &EvalCache) -> Result<TunedWorkload, BarracudaError> {
        let w = self.workload()?;
        self.replay_for(&w, cache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::TuneParams;
    use tensor::index::uniform_dims;

    fn matmul(n: usize) -> Workload {
        Workload::parse(
            "mm",
            "C[i k] = Sum([j], A[i j] * B[j k])",
            &uniform_dims(&["i", "j", "k"], n),
        )
        .unwrap()
    }

    fn tuned_plan(n: usize) -> (WorkloadTuner, TunedPlan) {
        let w = matmul(n);
        let tuner = WorkloadTuner::build(&w);
        let tuned = tuner.autotune(&gpusim::k20(), TuneParams::quick()).unwrap();
        let plan = TunedPlan::from_tuned(&tuner, "k20", &tuned);
        (tuner, plan)
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let (_, plan) = tuned_plan(16);
        let text = plan.to_json_text();
        let back = TunedPlan::from_json_text(&text).unwrap();
        assert_eq!(plan, back);
        assert_eq!(
            plan.gpu_seconds.to_bits(),
            back.gpu_seconds.to_bits(),
            "f64 fields must survive serialization bit-for-bit"
        );
    }

    #[test]
    fn replay_reproduces_the_tuned_time_without_searching() {
        let (_, plan) = tuned_plan(16);
        let cache = EvalCache::new();
        let replayed = plan.replay(&cache).unwrap();
        assert_eq!(replayed.id, plan.id);
        assert_eq!(replayed.gpu_seconds.to_bits(), plan.gpu_seconds.to_bits());
        assert!(replayed.cuda_source().contains("__global__"));
    }

    #[test]
    fn stale_fingerprint_is_a_typed_plan_error() {
        let (_, plan) = tuned_plan(16);
        // Same statements, different extents: a stale plan.
        let other = matmul(32);
        let err = plan.replay_for(&other, &EvalCache::new()).unwrap_err();
        assert_eq!(err.stage(), "plan");
        assert_eq!(err.exit_code(), 10);
        assert!(err.to_string().contains("fingerprint"));
    }

    #[test]
    fn wrong_schema_version_is_rejected() {
        let (_, plan) = tuned_plan(16);
        let text = plan
            .to_json_text()
            .replace("\"schema_version\": 1", "\"schema_version\": 999");
        let err = TunedPlan::from_json_text(&text).unwrap_err();
        assert_eq!(err.stage(), "plan");
        assert!(err.to_string().contains("schema version"));
    }

    #[test]
    fn corrupt_json_is_a_typed_plan_error() {
        let err = TunedPlan::from_json_text("{not json").unwrap_err();
        assert_eq!(err.stage(), "plan");
        let err = TunedPlan::from_json_text("{\"schema_version\": 1}").unwrap_err();
        assert!(err.to_string().contains("missing"));
    }
}
