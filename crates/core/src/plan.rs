//! Serializable tuning plans: persist a search result, replay it later.
//!
//! Autotuning is the expensive step — the paper models multi-hour searches
//! (Table II) for a configuration that is then reused for every production
//! run. A [`TunedPlan`] captures everything needed to skip the search next
//! time: the workload (canonical DSL source + extents + a fingerprint),
//! the backend it was tuned for (registry key plus its cache salt), the
//! winning joint configuration id with its per-statement `(version, local)`
//! decomposition, the modeled times, the full quarantine report, and
//! provenance describing how the search ran (evaluations, batches, memo
//! counters, hot-path stage times, degradation status).
//!
//! Plans are versioned hand-rolled JSON (see [`crate::json`] — no serde in
//! this repo): `f64` values round-trip bit-exactly via Rust's shortest
//! `Display`, and `u128`/`u64` quantities that exceed double precision
//! travel as strings. Schema v3 (current) embeds the search objective
//! (weights, memory budget, budget mode) plus the pick's modeled memory
//! statistics; v2 added the quarantine entries, per-op memo statistics and
//! the backend cache salt. Older plans still parse read-only (missing
//! fields default to empty/zero, the objective to time-only) so old
//! artifacts replay or are reported as stale by `barracuda plans gc`
//! rather than erroring. [`TunedPlan::replay`] rejects a plan whose schema
//! version, workload fingerprint or backend cache salt no longer matches
//! with a typed [`BarracudaError::Plan`] (CLI exit code 10), then re-maps
//! and re-times the configuration — bit-identical to the saved numbers,
//! since the simulator is deterministic — without searching anything.
//! Replaying under a different objective than the plan was tuned for is
//! the same class of error: use [`TunedPlan::validate_objective`].

use crate::backend::backend_by_key;
use crate::cache::{EvalCache, HotPathSnapshot};
use crate::error::BarracudaError;
use crate::json::Json;
use crate::objective::Objective;
use crate::pipeline::{TunedWorkload, WorkloadTuner};
use crate::quarantine::{QuarantineEntry, QuarantineReport, QuarantineStage};
use crate::stages::frontend::{canonical_source, workload_fingerprint};
use crate::stages::SearchStats;
use crate::workload::Workload;
use surf::SearchStatus;

/// Version of the on-disk plan schema. Bump on any incompatible change;
/// readers accept the current version plus the legacy versions listed in
/// [`PLAN_SCHEMA_READABLE`] and reject everything else rather than
/// misinterpreting fields.
pub const PLAN_SCHEMA_VERSION: u64 = 3;

/// Schema versions this build can still read. v1 plans (PR 4) lack the
/// quarantine entries, memo counters and cache salt; v2 plans lack the
/// search objective and memory statistics. Both parse with those fields
/// empty/zero (objective: time-only) and are flagged stale by the plan
/// store.
pub const PLAN_SCHEMA_READABLE: [u64; 3] = [1, 2, PLAN_SCHEMA_VERSION];

/// How the saved configuration was found: the search's bookkeeping,
/// flattened for serialization.
#[derive(Clone, Debug, PartialEq)]
pub struct PlanProvenance {
    pub n_evals: usize,
    pub batches: usize,
    pub space_size: u128,
    pub pool_size: usize,
    pub wall_s: f64,
    pub threads: usize,
    pub quarantined_versions: usize,
    pub quarantined_configs: usize,
    pub cache_hit_rate: f64,
    pub per_op_hit_rate: f64,
    pub time_hit_rate: f64,
    /// Feature-memo hits/misses (schema v2; zero in v1 plans).
    pub cache_hits: usize,
    pub cache_misses: usize,
    /// Per-op decomposed-memo hits/misses (schema v2; zero in v1 plans).
    pub per_op_hits: usize,
    pub per_op_misses: usize,
    /// Whole-config time-memo hits/misses (schema v2; zero in v1 plans).
    pub time_hits: usize,
    pub time_misses: usize,
    /// Hot-path stage times at the end of the search (schema v2; zero in
    /// v1 plans). Serialized as decimal strings — nanosecond totals can
    /// exceed the 2^53 doubles carry exactly.
    pub hot_decode_ns: u64,
    pub hot_map_ns: u64,
    pub hot_sim_ns: u64,
    pub hot_predict_ns: u64,
    /// Pool candidates pruned before the search because their modeled peak
    /// exceeded the objective's memory budget (schema v3; zero in older
    /// plans or without a budget).
    pub pruned_by_memory: usize,
    /// Distinct `(statement, version)` pairs over the memory budget
    /// (schema v3; zero in older plans or without a budget).
    pub versions_over_budget: usize,
    /// Modeled peak live temporary bytes of the chosen configuration
    /// (schema v3; zero in older plans).
    pub peak_temp_bytes: u64,
    /// Modeled global read+write volume of the chosen configuration
    /// (schema v3; zero in older plans).
    pub rw_bytes: u64,
    /// Whether the search stopped early (budget, deadline, survivors).
    pub degraded: bool,
    /// Human-readable status (`complete` or `degraded: <reason>`).
    pub status: String,
}

/// One per-statement choice of the plan's joint configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct PlanChoice {
    /// OCTOPI version index within the statement.
    pub version: usize,
    /// Local configuration id within the statement's own space.
    pub local: u128,
}

/// A persisted tuning result: enough to re-map, validate and emit CUDA for
/// the winning configuration without re-running the search.
#[derive(Clone, Debug, PartialEq)]
pub struct TunedPlan {
    pub schema_version: u64,
    pub workload_name: String,
    /// Canonical DSL source (statement `Display` forms, one per line).
    pub source: String,
    /// Index extents, sorted by index name.
    pub dims: Vec<(String, usize)>,
    /// FNV-1a fingerprint over source + dims (name excluded); replay
    /// refuses a workload whose fingerprint differs.
    pub fingerprint: u64,
    /// Backend registry key the plan was tuned for (`k20`, `gtx980`, …).
    pub backend: String,
    /// The backend's [`crate::backend::Backend::cache_salt`] at save time
    /// (schema v2). Replay refuses a plan whose salt differs from the live
    /// backend's — a changed model or architecture must re-tune, never
    /// serve a stale mapping. Zero means unknown (legacy v1 plan).
    pub cache_salt: u64,
    /// Human-readable architecture name at save time.
    pub arch_name: String,
    /// Winning joint configuration id.
    pub id: u128,
    /// Per-statement decomposition of `id`.
    pub choices: Vec<PlanChoice>,
    pub gpu_seconds: f64,
    pub transfer_seconds: f64,
    pub flops: u64,
    /// Full quarantine report of the search (schema v2; empty in v1
    /// plans), so replay reconstructs exactly what the tuning run showed.
    pub quarantine: Vec<QuarantineEntry>,
    /// The objective the search minimized (schema v3; time-only in older
    /// plans). Replay under a different objective is refused — a plan
    /// tuned for a memory budget is not the time-optimal answer and vice
    /// versa. See [`TunedPlan::validate_objective`].
    pub objective: Objective,
    pub provenance: PlanProvenance,
}

impl TunedPlan {
    /// Captures a finished tuning run as a plan. The `tuner` must be the
    /// one the result came from (it decomposes the joint id), and
    /// `backend` the built-in registry key of the architecture searched.
    /// Runtime-loaded backends go through [`TunedPlan::from_tuned_for`].
    pub fn from_tuned(tuner: &WorkloadTuner, backend: &str, tuned: &TunedWorkload) -> TunedPlan {
        let salt = backend_by_key(backend).map_or(0, |b| b.cache_salt());
        Self::from_parts(tuner, backend, salt, tuned)
    }

    /// [`TunedPlan::from_tuned`] with the backend already resolved — the
    /// salt provenance records the backend's descriptor digest, whichever
    /// set it was loaded from.
    pub fn from_tuned_for(
        tuner: &WorkloadTuner,
        backend: &dyn crate::backend::Backend,
        tuned: &TunedWorkload,
    ) -> TunedPlan {
        Self::from_parts(tuner, backend.key(), backend.cache_salt(), tuned)
    }

    fn from_parts(
        tuner: &WorkloadTuner,
        backend: &str,
        cache_salt: u64,
        tuned: &TunedWorkload,
    ) -> TunedPlan {
        let locals = tuner.decode(tuned.id);
        let choices = tuner
            .statements
            .iter()
            .zip(&locals)
            .map(|(st, &local)| PlanChoice {
                version: st.decode_raw(local).0,
                local,
            })
            .collect();
        let s = &tuned.search;
        TunedPlan {
            schema_version: PLAN_SCHEMA_VERSION,
            workload_name: tuner.workload.name.clone(),
            source: canonical_source(&tuner.workload),
            dims: tuner
                .workload
                .dims
                .iter()
                .map(|(v, &n)| (v.name().to_string(), n))
                .collect(),
            fingerprint: workload_fingerprint(&tuner.workload),
            backend: backend.to_string(),
            cache_salt,
            arch_name: tuned.arch_name.clone(),
            id: tuned.id,
            choices,
            gpu_seconds: tuned.gpu_seconds,
            transfer_seconds: tuned.transfer_seconds,
            flops: tuned.flops,
            quarantine: tuned.quarantine.entries.clone(),
            objective: tuned.objective,
            provenance: PlanProvenance {
                n_evals: s.n_evals,
                batches: s.batches,
                space_size: s.space_size,
                pool_size: s.pool_size,
                wall_s: s.wall_s,
                threads: s.threads,
                quarantined_versions: s.quarantined_versions,
                quarantined_configs: s.quarantined_configs,
                cache_hit_rate: s.cache_hit_rate(),
                per_op_hit_rate: s.per_op_hit_rate(),
                time_hit_rate: s.time_hit_rate(),
                cache_hits: s.cache_hits,
                cache_misses: s.cache_misses,
                per_op_hits: s.per_op_hits,
                per_op_misses: s.per_op_misses,
                time_hits: s.time_hits,
                time_misses: s.time_misses,
                hot_decode_ns: s.hot.decode_ns,
                hot_map_ns: s.hot.map_ns,
                hot_sim_ns: s.hot.sim_ns,
                hot_predict_ns: s.hot.predict_ns,
                pruned_by_memory: s.pruned_by_memory,
                versions_over_budget: s.versions_over_budget,
                peak_temp_bytes: s.peak_temp_bytes,
                rw_bytes: s.rw_bytes,
                degraded: tuned.is_degraded(),
                status: match &tuned.status {
                    SearchStatus::Complete => "complete".to_string(),
                    SearchStatus::Degraded { reason } => format!("degraded: {reason}"),
                },
            },
        }
    }

    /// Whether the plan predates the current schema — readable, but the
    /// plan store treats it as evictable (`plans gc --schema-older-than`).
    pub fn is_stale(&self) -> bool {
        self.schema_version < PLAN_SCHEMA_VERSION
    }

    /// The plan as pretty-printed JSON text. A plan whose
    /// `schema_version` is 1 or 2 is written in that legacy layout (v1: no
    /// salt, quarantine or memo counters; v2: no objective or memory
    /// statistics), so tests and migration tooling can produce
    /// byte-faithful legacy artifacts.
    pub fn to_json_text(&self) -> String {
        let v2 = self.schema_version >= 2;
        let v3 = self.schema_version >= 3;
        let p = &self.provenance;
        let mut top = vec![
            (
                "schema_version".into(),
                Json::Num(self.schema_version as f64),
            ),
            ("workload".into(), Json::Str(self.workload_name.clone())),
            ("source".into(), Json::Str(self.source.clone())),
            (
                "dims".into(),
                Json::Obj(
                    self.dims
                        .iter()
                        .map(|(name, n)| (name.clone(), Json::Num(*n as f64)))
                        .collect(),
                ),
            ),
            (
                "fingerprint".into(),
                Json::Str(format!("{:016x}", self.fingerprint)),
            ),
            ("backend".into(), Json::Str(self.backend.clone())),
        ];
        if v2 {
            top.push((
                "cache_salt".into(),
                Json::Str(format!("{:016x}", self.cache_salt)),
            ));
        }
        top.push(("arch_name".into(), Json::Str(self.arch_name.clone())));
        top.push(("id".into(), Json::Str(self.id.to_string())));
        top.push((
            "choices".into(),
            Json::Arr(
                self.choices
                    .iter()
                    .map(|c| {
                        Json::Obj(vec![
                            ("version".into(), Json::Num(c.version as f64)),
                            ("local".into(), Json::Str(c.local.to_string())),
                        ])
                    })
                    .collect(),
            ),
        ));
        top.push(("gpu_seconds".into(), Json::Num(self.gpu_seconds)));
        top.push(("transfer_seconds".into(), Json::Num(self.transfer_seconds)));
        top.push(("flops".into(), Json::Str(self.flops.to_string())));
        if v2 {
            top.push((
                "quarantine".into(),
                Json::Arr(
                    self.quarantine
                        .iter()
                        .map(|e| {
                            Json::Obj(vec![
                                ("stage".into(), Json::Str(e.stage.as_str().to_string())),
                                (
                                    "statement".into(),
                                    e.statement.map_or(Json::Null, |s| Json::Num(s as f64)),
                                ),
                                (
                                    "version".into(),
                                    e.version.map_or(Json::Null, |v| Json::Num(v as f64)),
                                ),
                                (
                                    "config".into(),
                                    e.config.map_or(Json::Null, |c| Json::Str(c.to_string())),
                                ),
                                ("reason".into(), Json::Str(e.reason.clone())),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        if v3 {
            top.push(("objective".into(), self.objective.to_json()));
        }
        let mut prov = vec![
            ("n_evals".into(), Json::Num(p.n_evals as f64)),
            ("batches".into(), Json::Num(p.batches as f64)),
            ("space_size".into(), Json::Str(p.space_size.to_string())),
            ("pool_size".into(), Json::Num(p.pool_size as f64)),
            ("wall_s".into(), Json::Num(p.wall_s)),
            ("threads".into(), Json::Num(p.threads as f64)),
            (
                "quarantined_versions".into(),
                Json::Num(p.quarantined_versions as f64),
            ),
            (
                "quarantined_configs".into(),
                Json::Num(p.quarantined_configs as f64),
            ),
            ("cache_hit_rate".into(), Json::Num(p.cache_hit_rate)),
            ("per_op_hit_rate".into(), Json::Num(p.per_op_hit_rate)),
            ("time_hit_rate".into(), Json::Num(p.time_hit_rate)),
        ];
        if v2 {
            prov.push(("cache_hits".into(), Json::Num(p.cache_hits as f64)));
            prov.push(("cache_misses".into(), Json::Num(p.cache_misses as f64)));
            prov.push(("per_op_hits".into(), Json::Num(p.per_op_hits as f64)));
            prov.push(("per_op_misses".into(), Json::Num(p.per_op_misses as f64)));
            prov.push(("time_hits".into(), Json::Num(p.time_hits as f64)));
            prov.push(("time_misses".into(), Json::Num(p.time_misses as f64)));
            prov.push((
                "hot".into(),
                Json::Obj(vec![
                    ("decode_ns".into(), Json::Str(p.hot_decode_ns.to_string())),
                    ("map_ns".into(), Json::Str(p.hot_map_ns.to_string())),
                    ("sim_ns".into(), Json::Str(p.hot_sim_ns.to_string())),
                    ("predict_ns".into(), Json::Str(p.hot_predict_ns.to_string())),
                ]),
            ));
        }
        if v3 {
            prov.push((
                "pruned_by_memory".into(),
                Json::Num(p.pruned_by_memory as f64),
            ));
            prov.push((
                "versions_over_budget".into(),
                Json::Num(p.versions_over_budget as f64),
            ));
            prov.push((
                "peak_temp_bytes".into(),
                Json::Str(p.peak_temp_bytes.to_string()),
            ));
            prov.push(("rw_bytes".into(), Json::Str(p.rw_bytes.to_string())));
        }
        prov.push(("degraded".into(), Json::Bool(p.degraded)));
        prov.push(("status".into(), Json::Str(p.status.clone())));
        top.push(("provenance".into(), Json::Obj(prov)));
        Json::Obj(top).to_string_pretty()
    }

    /// Parses a plan from JSON text, rejecting unknown schema versions.
    /// Older schemas parse read-only: v2-only fields (cache salt,
    /// quarantine entries, memo counters, hot-path times) default to
    /// empty/zero in v1 plans, and v3-only fields (objective, memory
    /// statistics) default to time-only/zero in v1 and v2 plans.
    pub fn from_json_text(text: &str) -> Result<TunedPlan, BarracudaError> {
        let err = |detail: String| BarracudaError::Plan {
            workload: "plan".to_string(),
            detail,
        };
        let doc = Json::parse(text).map_err(|e| err(format!("invalid JSON: {e}")))?;
        let field = |key: &str| {
            doc.get(key)
                .ok_or_else(|| err(format!("missing field `{key}`")))
        };
        let str_field = |key: &str| {
            field(key)?
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| err(format!("field `{key}` must be a string")))
        };
        let num_field = |key: &str| {
            field(key)?
                .as_u64()
                .ok_or_else(|| err(format!("field `{key}` must be an integer")))
        };
        let schema_version = num_field("schema_version")?;
        if !PLAN_SCHEMA_READABLE.contains(&schema_version) {
            return Err(err(format!(
                "unsupported schema version {schema_version} (this build writes \
                 {PLAN_SCHEMA_VERSION} and reads {PLAN_SCHEMA_READABLE:?})"
            )));
        }
        let v2 = schema_version >= 2;
        let v3 = schema_version >= 3;
        let workload_name = str_field("workload")?;
        let perr = |detail: String| BarracudaError::Plan {
            workload: workload_name.clone(),
            detail,
        };
        let u128_field = |parent: &Json, key: &str| -> Result<u128, BarracudaError> {
            parent
                .get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| perr(format!("missing string field `{key}`")))?
                .parse::<u128>()
                .map_err(|_| perr(format!("field `{key}` is not a decimal u128")))
        };
        let f64_field = |parent: &Json, key: &str| -> Result<f64, BarracudaError> {
            parent
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| perr(format!("missing numeric field `{key}`")))
        };
        let usize_field = |parent: &Json, key: &str| -> Result<usize, BarracudaError> {
            parent
                .get(key)
                .and_then(Json::as_u64)
                .map(|n| n as usize)
                .ok_or_else(|| perr(format!("missing integer field `{key}`")))
        };
        // v2-only: required at schema 2, defaulted at schema 1.
        let usize_v2 = |parent: &Json, key: &str| -> Result<usize, BarracudaError> {
            if v2 {
                usize_field(parent, key)
            } else {
                Ok(0)
            }
        };
        let ns_v2 = |parent: &Json, key: &str| -> Result<u64, BarracudaError> {
            if !v2 {
                return Ok(0);
            }
            parent
                .get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| perr(format!("missing string field `{key}`")))?
                .parse::<u64>()
                .map_err(|_| perr(format!("field `{key}` is not a decimal u64")))
        };
        // v3-only: required at schema 3, defaulted at older schemas.
        let usize_v3 = |parent: &Json, key: &str| -> Result<usize, BarracudaError> {
            if v3 {
                usize_field(parent, key)
            } else {
                Ok(0)
            }
        };
        let bytes_v3 = |parent: &Json, key: &str| -> Result<u64, BarracudaError> {
            if !v3 {
                return Ok(0);
            }
            parent
                .get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| perr(format!("missing string field `{key}`")))?
                .parse::<u64>()
                .map_err(|_| perr(format!("field `{key}` is not a decimal u64")))
        };
        let dims = match field("dims")? {
            Json::Obj(members) => members
                .iter()
                .map(|(name, v)| {
                    v.as_u64()
                        .map(|n| (name.clone(), n as usize))
                        .ok_or_else(|| perr(format!("dimension `{name}` must be an integer")))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err(perr("field `dims` must be an object".to_string())),
        };
        let fingerprint = u64::from_str_radix(&str_field("fingerprint")?, 16)
            .map_err(|_| perr("field `fingerprint` is not a hex u64".to_string()))?;
        let cache_salt = if v2 {
            u64::from_str_radix(&str_field("cache_salt")?, 16)
                .map_err(|_| perr("field `cache_salt` is not a hex u64".to_string()))?
        } else {
            0
        };
        let choices = field("choices")?
            .as_arr()
            .ok_or_else(|| perr("field `choices` must be an array".to_string()))?
            .iter()
            .map(|c| {
                Ok(PlanChoice {
                    version: usize_field(c, "version")?,
                    local: u128_field(c, "local")?,
                })
            })
            .collect::<Result<Vec<_>, BarracudaError>>()?;
        let quarantine = if v2 {
            field("quarantine")?
                .as_arr()
                .ok_or_else(|| perr("field `quarantine` must be an array".to_string()))?
                .iter()
                .enumerate()
                .map(|(i, e)| {
                    let tag = e
                        .get("stage")
                        .and_then(Json::as_str)
                        .ok_or_else(|| perr(format!("quarantine entry {i}: missing `stage`")))?;
                    let stage = QuarantineStage::from_tag(tag).ok_or_else(|| {
                        perr(format!("quarantine entry {i}: unknown stage `{tag}`"))
                    })?;
                    let opt_usize = |key: &str| match e.get(key) {
                        None | Some(Json::Null) => Ok(None),
                        Some(v) => v.as_u64().map(|n| Some(n as usize)).ok_or_else(|| {
                            perr(format!("quarantine entry {i}: `{key}` must be an integer"))
                        }),
                    };
                    let config = match e.get("config") {
                        None | Some(Json::Null) => None,
                        Some(v) => {
                            Some(v.as_str().and_then(|s| s.parse::<u128>().ok()).ok_or_else(
                                || {
                                    perr(format!(
                                        "quarantine entry {i}: `config` must be a decimal u128 \
                                         string"
                                    ))
                                },
                            )?)
                        }
                    };
                    Ok(QuarantineEntry {
                        stage,
                        statement: opt_usize("statement")?,
                        version: opt_usize("version")?,
                        config,
                        reason: e
                            .get("reason")
                            .and_then(Json::as_str)
                            .map(str::to_string)
                            .ok_or_else(|| {
                                perr(format!("quarantine entry {i}: missing `reason`"))
                            })?,
                    })
                })
                .collect::<Result<Vec<_>, BarracudaError>>()?
        } else {
            Vec::new()
        };
        let objective = if v3 {
            let o = field("objective")?;
            Objective::from_json(o).map_err(&perr)?
        } else {
            Objective::time_only()
        };
        let prov = field("provenance")?;
        let hot = if v2 {
            prov.get("hot")
                .ok_or_else(|| perr("missing object field `hot`".to_string()))?
        } else {
            &Json::Null
        };
        let provenance = PlanProvenance {
            n_evals: usize_field(prov, "n_evals")?,
            batches: usize_field(prov, "batches")?,
            space_size: u128_field(prov, "space_size")?,
            pool_size: usize_field(prov, "pool_size")?,
            wall_s: f64_field(prov, "wall_s")?,
            threads: usize_field(prov, "threads")?,
            quarantined_versions: usize_field(prov, "quarantined_versions")?,
            quarantined_configs: usize_field(prov, "quarantined_configs")?,
            cache_hit_rate: f64_field(prov, "cache_hit_rate")?,
            per_op_hit_rate: f64_field(prov, "per_op_hit_rate")?,
            time_hit_rate: f64_field(prov, "time_hit_rate")?,
            cache_hits: usize_v2(prov, "cache_hits")?,
            cache_misses: usize_v2(prov, "cache_misses")?,
            per_op_hits: usize_v2(prov, "per_op_hits")?,
            per_op_misses: usize_v2(prov, "per_op_misses")?,
            time_hits: usize_v2(prov, "time_hits")?,
            time_misses: usize_v2(prov, "time_misses")?,
            hot_decode_ns: ns_v2(hot, "decode_ns")?,
            hot_map_ns: ns_v2(hot, "map_ns")?,
            hot_sim_ns: ns_v2(hot, "sim_ns")?,
            hot_predict_ns: ns_v2(hot, "predict_ns")?,
            pruned_by_memory: usize_v3(prov, "pruned_by_memory")?,
            versions_over_budget: usize_v3(prov, "versions_over_budget")?,
            peak_temp_bytes: bytes_v3(prov, "peak_temp_bytes")?,
            rw_bytes: bytes_v3(prov, "rw_bytes")?,
            degraded: prov
                .get("degraded")
                .and_then(Json::as_bool)
                .ok_or_else(|| perr("missing boolean field `degraded`".to_string()))?,
            status: prov
                .get("status")
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| perr("missing string field `status`".to_string()))?,
        };
        Ok(TunedPlan {
            schema_version,
            source: str_field("source")?,
            dims,
            fingerprint,
            backend: str_field("backend")?,
            cache_salt,
            arch_name: str_field("arch_name")?,
            id: u128_field(&doc, "id")?,
            choices,
            gpu_seconds: f64_field(&doc, "gpu_seconds")?,
            transfer_seconds: f64_field(&doc, "transfer_seconds")?,
            flops: str_field("flops")?
                .parse::<u64>()
                .map_err(|_| perr("field `flops` is not a decimal u64".to_string()))?,
            quarantine,
            objective,
            provenance,
            workload_name,
        })
    }

    /// Writes the plan to `path` as JSON.
    pub fn save(&self, path: &std::path::Path) -> Result<(), BarracudaError> {
        std::fs::write(path, self.to_json_text()).map_err(|e| BarracudaError::Plan {
            workload: self.workload_name.clone(),
            detail: format!("cannot write {}: {e}", path.display()),
        })
    }

    /// Reads and parses a plan from `path`.
    pub fn load(path: &std::path::Path) -> Result<TunedPlan, BarracudaError> {
        let text = std::fs::read_to_string(path).map_err(|e| BarracudaError::Plan {
            workload: "plan".to_string(),
            detail: format!("cannot read {}: {e}", path.display()),
        })?;
        Self::from_json_text(&text)
    }

    /// Reconstructs the plan's workload from its embedded source + dims.
    pub fn workload(&self) -> Result<Workload, BarracudaError> {
        let dims = self
            .dims
            .iter()
            .map(|(name, n)| (tensor::IndexVar::new(name.clone()), *n))
            .collect();
        let w = Workload::parse(&self.workload_name, &self.source, &dims)?;
        self.validate_for(&w)?;
        Ok(w)
    }

    /// Checks that `workload` is the one this plan was tuned for: a
    /// readable schema version and the same source/dims fingerprint. A
    /// stale plan (the DSL or the extents changed since tuning) is a typed
    /// error, never a silently wrong kernel.
    pub fn validate_for(&self, workload: &Workload) -> Result<(), BarracudaError> {
        if !PLAN_SCHEMA_READABLE.contains(&self.schema_version) {
            return Err(BarracudaError::Plan {
                workload: workload.name.clone(),
                detail: format!(
                    "unsupported schema version {} (this build writes {PLAN_SCHEMA_VERSION} and \
                     reads {PLAN_SCHEMA_READABLE:?})",
                    self.schema_version
                ),
            });
        }
        let actual = workload_fingerprint(workload);
        if actual != self.fingerprint {
            return Err(BarracudaError::Plan {
                workload: workload.name.clone(),
                detail: format!(
                    "workload fingerprint {actual:016x} does not match plan fingerprint \
                     {:016x}: the statements or extents changed since tuning — re-tune \
                     instead of replaying",
                    self.fingerprint
                ),
            });
        }
        Ok(())
    }

    /// Checks that the plan was tuned under `expected`: a plan's winning
    /// configuration is only meaningful for the objective the search
    /// minimized, so replaying a memory-budgeted plan as if it were the
    /// time-optimal pick (or vice versa) is a typed [`BarracudaError::Plan`]
    /// — re-tune under the objective you want instead. Weights compare by
    /// f64 bits; older plans (schema < 3) carry the time-only objective.
    pub fn validate_objective(&self, expected: &Objective) -> Result<(), BarracudaError> {
        if self.objective.same_as(expected) {
            return Ok(());
        }
        Err(BarracudaError::Plan {
            workload: self.workload_name.clone(),
            detail: format!(
                "plan was tuned under objective `{}` but replay requested `{}` — a plan \
                 only answers the objective it was searched for; re-tune instead of \
                 replaying",
                self.objective.describe(),
                expected.describe()
            ),
        })
    }

    /// Replays the plan against `workload`: validates the fingerprint and
    /// (for v2 plans) the backend cache salt, re-maps the saved
    /// configuration and re-times it through `cache` — no search. The
    /// deterministic simulator reproduces the saved `gpu_seconds`
    /// bit-for-bit; a mismatch (an edited plan, a changed model) is
    /// reported as a typed error rather than trusted.
    pub fn replay_for(
        &self,
        workload: &Workload,
        cache: &EvalCache,
    ) -> Result<TunedWorkload, BarracudaError> {
        self.replay_for_in(crate::backend::builtin_backends(), workload, cache)
    }

    /// [`TunedPlan::replay_for`] resolving the plan's backend against an
    /// explicit [`BackendSet`] (runtime-loaded descriptors included).
    ///
    /// [`BackendSet`]: crate::backend::BackendSet
    pub fn replay_for_in(
        &self,
        set: &crate::backend::BackendSet,
        workload: &Workload,
        cache: &EvalCache,
    ) -> Result<TunedWorkload, BarracudaError> {
        self.validate_for(workload)?;
        let tuner = WorkloadTuner::build(workload);
        self.replay_built_in(set, workload, &tuner, cache)
    }

    /// [`TunedPlan::replay_for`] with a pre-built tuner: skips the lowering
    /// pass when the caller already holds the workload's
    /// [`WorkloadTuner`] — the serving daemon replays thousands of warm
    /// requests against one cached tuner. The caller must have built
    /// `tuner` from `workload` and validated the fingerprint (or accept
    /// the id-range check below as the only guard).
    pub fn replay_built(
        &self,
        workload: &Workload,
        tuner: &WorkloadTuner,
        cache: &EvalCache,
    ) -> Result<TunedWorkload, BarracudaError> {
        self.replay_built_in(crate::backend::builtin_backends(), workload, tuner, cache)
    }

    /// [`TunedPlan::replay_built`] resolving the plan's backend against an
    /// explicit [`BackendSet`].
    ///
    /// [`BackendSet`]: crate::backend::BackendSet
    pub fn replay_built_in(
        &self,
        set: &crate::backend::BackendSet,
        workload: &Workload,
        tuner: &WorkloadTuner,
        cache: &EvalCache,
    ) -> Result<TunedWorkload, BarracudaError> {
        self.validate_for(workload)?;
        let backend = set.get(&self.backend).ok_or_else(|| BarracudaError::Plan {
            workload: workload.name.clone(),
            detail: format!("unknown backend `{}` in plan", self.backend),
        })?;
        if self.cache_salt != 0 && self.cache_salt != backend.cache_salt() {
            return Err(BarracudaError::Plan {
                workload: workload.name.clone(),
                detail: format!(
                    "plan cache salt {:016x} does not match backend `{}` salt {:016x}: the \
                     plan was tuned against a different model or architecture revision — \
                     re-tune instead of replaying",
                    self.cache_salt,
                    self.backend,
                    backend.cache_salt()
                ),
            });
        }
        let arch = backend.arch().ok_or_else(|| BarracudaError::Plan {
            workload: workload.name.clone(),
            detail: format!(
                "backend `{}` has no architecture to replay on",
                self.backend
            ),
        })?;
        if self.id >= tuner.total_space() {
            return Err(BarracudaError::Plan {
                workload: workload.name.clone(),
                detail: format!(
                    "plan id {} exceeds the search space ({} configurations)",
                    self.id,
                    tuner.total_space()
                ),
            });
        }
        let locals = tuner.decode(self.id);
        let mut choices = Vec::new();
        let mut programs = Vec::new();
        for (k, (st, &local)) in tuner.statements.iter().zip(&locals).enumerate() {
            if let Some(saved) = self.choices.get(k) {
                if saved.local != local {
                    return Err(BarracudaError::Plan {
                        workload: workload.name.clone(),
                        detail: format!(
                            "statement {k}: plan id decomposes to local {local} but the plan \
                             recorded {} — the plan was edited inconsistently",
                            saved.local
                        ),
                    });
                }
            }
            let (v, config) = st.decode(local);
            programs.push(st.variants[v].program.clone());
            choices.push((v, config));
        }
        let kernels = tuner.kernels(self.id)?;
        let gpu_seconds = tuner.try_gpu_seconds_memo(self.id, arch, cache)?;
        if gpu_seconds.to_bits() != self.gpu_seconds.to_bits() {
            return Err(BarracudaError::Plan {
                workload: workload.name.clone(),
                detail: format!(
                    "replayed time {gpu_seconds} differs from saved {} — the plan no longer \
                     matches this build's performance model",
                    self.gpu_seconds
                ),
            });
        }
        let transfer_seconds = tuner.transfer_seconds(arch);
        let p = &self.provenance;
        Ok(TunedWorkload {
            name: workload.name.clone(),
            arch_name: arch.name.to_string(),
            id: self.id,
            choices,
            programs,
            kernels,
            gpu_seconds,
            transfer_seconds,
            flops: tuner.flops(self.id),
            search: SearchStats {
                n_evals: p.n_evals,
                batches: p.batches,
                evaluated_times: Vec::new(),
                space_size: p.space_size,
                pool_size: p.pool_size,
                cache_hits: p.cache_hits,
                cache_misses: p.cache_misses,
                wall_s: p.wall_s,
                threads: p.threads,
                quarantined_versions: p.quarantined_versions,
                quarantined_configs: p.quarantined_configs,
                per_op_hits: p.per_op_hits,
                per_op_misses: p.per_op_misses,
                time_hits: p.time_hits,
                time_misses: p.time_misses,
                // The replay never searches, so nothing was pruned here;
                // the original run's pools are unique by construction.
                duplicate_candidates: 0,
                pruned_by_memory: p.pruned_by_memory,
                versions_over_budget: p.versions_over_budget,
                peak_temp_bytes: p.peak_temp_bytes,
                rw_bytes: p.rw_bytes,
                hot: HotPathSnapshot {
                    decode_ns: p.hot_decode_ns,
                    map_ns: p.hot_map_ns,
                    sim_ns: p.hot_sim_ns,
                    predict_ns: p.hot_predict_ns,
                },
            },
            objective: self.objective,
            status: if p.degraded {
                // `status` carries the display form `degraded: <reason>`;
                // feed back the bare reason so replayed output is not
                // double-prefixed.
                SearchStatus::Degraded {
                    reason: p
                        .status
                        .strip_prefix("degraded: ")
                        .unwrap_or(&p.status)
                        .to_string(),
                }
            } else {
                SearchStatus::Complete
            },
            quarantine: QuarantineReport {
                entries: self.quarantine.clone(),
            },
        })
    }

    /// [`TunedPlan::replay_for`] against the workload embedded in the plan.
    pub fn replay(&self, cache: &EvalCache) -> Result<TunedWorkload, BarracudaError> {
        let w = self.workload()?;
        self.replay_for(&w, cache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::TuneParams;
    use tensor::index::uniform_dims;

    fn matmul(n: usize) -> Workload {
        Workload::parse(
            "mm",
            "C[i k] = Sum([j], A[i j] * B[j k])",
            &uniform_dims(&["i", "j", "k"], n),
        )
        .unwrap()
    }

    fn tuned_plan(n: usize) -> (WorkloadTuner, TunedPlan) {
        let w = matmul(n);
        let tuner = WorkloadTuner::build(&w);
        let tuned = tuner.autotune(&gpusim::k20(), TuneParams::quick()).unwrap();
        let plan = TunedPlan::from_tuned(&tuner, "k20", &tuned);
        (tuner, plan)
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let (_, mut plan) = tuned_plan(16);
        // Exercise every v2 field, including the ones a clean quick tune
        // leaves empty.
        plan.quarantine.push(QuarantineEntry {
            stage: QuarantineStage::Mapping,
            statement: Some(0),
            version: None,
            config: Some(u128::MAX),
            reason: "hostile \"reason\"\nwith newline".into(),
        });
        plan.provenance.hot_decode_ns = u64::MAX;
        let text = plan.to_json_text();
        let back = TunedPlan::from_json_text(&text).unwrap();
        assert_eq!(plan, back);
        assert_eq!(
            plan.gpu_seconds.to_bits(),
            back.gpu_seconds.to_bits(),
            "f64 fields must survive serialization bit-for-bit"
        );
    }

    #[test]
    fn v3_plans_carry_backend_salt_memo_counters_and_objective() {
        let (_, plan) = tuned_plan(16);
        assert_eq!(plan.schema_version, 3);
        assert!(!plan.is_stale());
        let expected = backend_by_key("k20").unwrap().cache_salt();
        assert_eq!(plan.cache_salt, expected);
        assert_ne!(plan.cache_salt, 0);
        let p = &plan.provenance;
        assert!(
            p.time_hits + p.time_misses > 0,
            "a real search must record time-memo traffic"
        );
        assert!(plan.objective.is_time_only(), "default tune is time-only");
        assert!(
            p.rw_bytes > 0,
            "every real configuration moves some global memory"
        );
    }

    #[test]
    fn v2_layout_parses_read_only_with_time_only_objective() {
        let (_, plan) = tuned_plan(16);
        let mut v2 = plan.clone();
        v2.schema_version = 2;
        let text = v2.to_json_text();
        assert!(
            !text.contains("\"objective\""),
            "v2 layout has no objective"
        );
        assert!(!text.contains("peak_temp_bytes"));
        let back = TunedPlan::from_json_text(&text).unwrap();
        assert!(back.is_stale());
        assert!(back.objective.is_time_only());
        assert_eq!(back.provenance.peak_temp_bytes, 0);
        assert_eq!(back.provenance.rw_bytes, 0);
        assert_eq!(back.id, plan.id);
        assert_eq!(back.cache_salt, plan.cache_salt);
        // v2 plans still replay (read path preserved).
        let replayed = back.replay(&EvalCache::new()).unwrap();
        assert_eq!(replayed.gpu_seconds.to_bits(), plan.gpu_seconds.to_bits());
    }

    #[test]
    fn objective_round_trips_through_json() {
        let (_, mut plan) = tuned_plan(16);
        plan.objective = Objective {
            mem_budget: Some(123_456_789),
            budget_mode: crate::objective::BudgetMode::Penalize,
            ..Objective::balanced()
        };
        let back = TunedPlan::from_json_text(&plan.to_json_text()).unwrap();
        assert!(back.objective.same_as(&plan.objective));
        assert_eq!(back, plan);
    }

    #[test]
    fn foreign_objective_replay_is_a_typed_plan_error() {
        let (_, plan) = tuned_plan(16);
        plan.validate_objective(&Objective::time_only()).unwrap();
        let err = plan.validate_objective(&Objective::balanced()).unwrap_err();
        assert_eq!(err.stage(), "plan");
        assert_eq!(err.exit_code(), 10);
        assert!(err.to_string().contains("objective"), "{err}");
    }

    #[test]
    fn v1_layout_parses_read_only_and_is_stale() {
        let (_, plan) = tuned_plan(16);
        let mut v1 = plan.clone();
        v1.schema_version = 1;
        let text = v1.to_json_text();
        assert!(!text.contains("cache_salt"), "v1 layout has no salt");
        assert!(!text.contains("\"quarantine\""));
        let back = TunedPlan::from_json_text(&text).unwrap();
        assert!(back.is_stale());
        assert_eq!(back.cache_salt, 0);
        assert!(back.quarantine.is_empty());
        assert_eq!(back.id, plan.id);
        assert_eq!(back.gpu_seconds.to_bits(), plan.gpu_seconds.to_bits());
        // v1 plans still replay (read path preserved).
        let replayed = back.replay(&EvalCache::new()).unwrap();
        assert_eq!(replayed.gpu_seconds.to_bits(), plan.gpu_seconds.to_bits());
    }

    #[test]
    fn replay_reproduces_the_tuned_time_without_searching() {
        let (_, plan) = tuned_plan(16);
        let cache = EvalCache::new();
        let replayed = plan.replay(&cache).unwrap();
        assert_eq!(replayed.id, plan.id);
        assert_eq!(replayed.gpu_seconds.to_bits(), plan.gpu_seconds.to_bits());
        assert!(replayed.cuda_source().contains("__global__"));
        // v2 reconstructs the memo counters, not zeros.
        assert_eq!(replayed.search.time_hits, plan.provenance.time_hits);
        assert_eq!(replayed.search.time_misses, plan.provenance.time_misses);
    }

    #[test]
    fn replayed_degraded_status_is_not_double_prefixed() {
        let (_, mut plan) = tuned_plan(16);
        plan.provenance.degraded = true;
        plan.provenance.status = "degraded: eval budget exhausted".into();
        let replayed = plan.replay(&EvalCache::new()).unwrap();
        match replayed.status {
            SearchStatus::Degraded { reason } => {
                assert_eq!(reason, "eval budget exhausted");
            }
            SearchStatus::Complete => panic!("expected degraded status"),
        }
    }

    #[test]
    fn stale_fingerprint_is_a_typed_plan_error() {
        let (_, plan) = tuned_plan(16);
        // Same statements, different extents: a stale plan.
        let other = matmul(32);
        let err = plan.replay_for(&other, &EvalCache::new()).unwrap_err();
        assert_eq!(err.stage(), "plan");
        assert_eq!(err.exit_code(), 10);
        assert!(err.to_string().contains("fingerprint"));
    }

    #[test]
    fn foreign_cache_salt_is_a_typed_plan_error() {
        let (_, mut plan) = tuned_plan(16);
        plan.cache_salt ^= 1;
        let err = plan.replay(&EvalCache::new()).unwrap_err();
        assert_eq!(err.stage(), "plan");
        assert_eq!(err.exit_code(), 10);
        assert!(err.to_string().contains("salt"), "{err}");
    }

    #[test]
    fn wrong_schema_version_is_rejected() {
        let (_, plan) = tuned_plan(16);
        let text = plan
            .to_json_text()
            .replace("\"schema_version\": 3", "\"schema_version\": 999");
        let err = TunedPlan::from_json_text(&text).unwrap_err();
        assert_eq!(err.stage(), "plan");
        assert!(err.to_string().contains("schema version"));
    }

    #[test]
    fn corrupt_json_is_a_typed_plan_error() {
        let err = TunedPlan::from_json_text("{not json").unwrap_err();
        assert_eq!(err.stage(), "plan");
        let err = TunedPlan::from_json_text("{\"schema_version\": 1}").unwrap_err();
        assert!(err.to_string().contains("missing"));
    }
}
