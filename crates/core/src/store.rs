//! Content-addressed plan store: a directory of [`TunedPlan`] artifacts
//! keyed by what they are, not where the user put them.
//!
//! The paper's economics are compile-once/run-many: a search that takes
//! hours produces a mapping that is reused forever (§5, Table II). The
//! store makes that reuse automatic. Every plan lives at a path derived
//! from its [`StoreKey`] — `(workload fingerprint, backend key, backend
//! cache salt, plan schema version)` — so a `tune` can ask "has this
//! exact workload already been tuned for this exact backend under this
//! exact model revision?" and replay the answer with zero search
//! evaluations. The salt in the key means a model or architecture change
//! silently *misses* (and re-tunes) rather than serving a stale mapping;
//! the schema version in the key means old-format plans are flagged as
//! evictable by `gc`, never misread.
//!
//! File names are injective in the key: fixed-width lowercase hex for the
//! two u64s, a decimal schema tag, and a percent-encoded backend key
//! (every byte outside `[a-z0-9_-]` becomes `%XX`, so hostile or
//! case-colliding backend names cannot alias on case-insensitive
//! filesystems). Store-layer failures (unreadable directory, an entry the
//! filesystem refuses to read) are [`BarracudaError::Store`] (exit code
//! 11); a *standalone* plan file whose content is wrong stays
//! [`BarracudaError::Plan`] (exit code 10), so scripts can tell a broken
//! store from a broken artifact.
//!
//! **Crash safety.** `insert` never exposes a partial artifact: the plan
//! is written to a pid+sequence-suffixed temporary in the same directory
//! and atomically renamed into place, so a writer killed mid-write leaves
//! at worst an invisible `*.partial` file (swept by `gc`), and concurrent
//! inserters of the same key resolve last-writer-wins with every reader
//! seeing one complete artifact or the other, never a splice. With
//! [`StoreOptions::durable`], the temporary is fsync'd before the rename
//! (and the directory after), surviving power loss, not just process
//! death.
//!
//! **Corruption containment.** `lookup` treats an entry that *exists* but
//! cannot be trusted — truncated or bit-flipped JSON, content that
//! contradicts its own file name — as damage, not as caller error: the
//! file is renamed to a `*.corrupt` sidecar (logged, counted), and the
//! lookup reports a miss so the caller simply re-tunes and re-inserts a
//! clean artifact. `gc --corrupt` sweeps the sidecars.
//!
//! **Fault seam.** [`StoreFaultPlan`] deterministically injects read
//! failures, write failures, and crash-before-rename on a seeded per-op
//! schedule — the chaos harness drives the daemon through a misbehaving
//! store without touching the filesystem layer itself.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crate::error::BarracudaError;
use crate::plan::{TunedPlan, PLAN_SCHEMA_VERSION};

/// File-name suffix of every store entry.
const PLAN_SUFFIX: &str = ".plan.json";

/// Suffix appended (after the full entry name) to quarantined entries.
const CORRUPT_SUFFIX: &str = ".corrupt";

/// Suffix of in-flight temporary files (never visible to lookups: the
/// name does not end in `.plan.json`).
const PARTIAL_SUFFIX: &str = ".partial";

/// What a [`StoreFaultPlan`] decided to do to one store operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreFault {
    /// The read fails with an injected I/O error.
    ReadFail,
    /// The write fails before anything touches the filesystem.
    WriteFail,
    /// The temporary is written, then the writer "crashes": the insert
    /// errors out with the rename never issued, leaving the same
    /// `*.partial` debris a SIGKILL'd process would.
    CrashBeforeRename,
}

/// Deterministic store-level fault plan — the injectable seam the serve
/// chaos harness drives. Decisions are a pure function of
/// `(seed, operation sequence number)` via the same SplitMix64 draw as
/// [`surf::FaultPlan`], so a seeded run always injects the same faults at
/// the same operations.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StoreFaultPlan {
    /// Fraction of lookups that fail with an injected read error.
    pub read_fail_rate: f64,
    /// Fraction of inserts that fail before writing anything.
    pub write_fail_rate: f64,
    /// Fraction of inserts that write the temporary then "crash".
    pub crash_before_rename_rate: f64,
    /// Seed mixed into every per-operation decision.
    pub seed: u64,
}

impl StoreFaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        StoreFaultPlan {
            read_fail_rate: 0.0,
            write_fail_rate: 0.0,
            crash_before_rename_rate: 0.0,
            seed: 0,
        }
    }

    pub fn is_none(&self) -> bool {
        self.read_fail_rate <= 0.0
            && self.write_fail_rate <= 0.0
            && self.crash_before_rename_rate <= 0.0
    }

    /// The fate of read operation `seq` under this plan.
    pub fn decide_read(&self, seq: u64) -> Option<StoreFault> {
        if self.read_fail_rate > 0.0
            && surf::fault_unit(self.seed ^ 0x5EED_0EAD, seq as u128) < self.read_fail_rate
        {
            return Some(StoreFault::ReadFail);
        }
        None
    }

    /// The fate of write operation `seq` under this plan.
    pub fn decide_write(&self, seq: u64) -> Option<StoreFault> {
        let u = surf::fault_unit(self.seed ^ 0x5EED_3317, seq as u128);
        if u < self.write_fail_rate {
            Some(StoreFault::WriteFail)
        } else if u < self.write_fail_rate + self.crash_before_rename_rate {
            Some(StoreFault::CrashBeforeRename)
        } else {
            None
        }
    }
}

/// How a [`PlanStore`] is opened.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StoreOptions {
    /// fsync the temporary before the rename (and the directory after),
    /// making inserts durable across power loss, not just process death.
    pub durable: bool,
    /// Injected fault schedule (tests and the chaos harness).
    pub faults: StoreFaultPlan,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            durable: false,
            faults: StoreFaultPlan::none(),
        }
    }
}

/// The identity of one stored plan.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StoreKey {
    /// Workload fingerprint (FNV-1a over canonical source + dims).
    pub fingerprint: u64,
    /// Backend cache salt at tuning time (0 for legacy v1 plans).
    pub cache_salt: u64,
    /// Plan schema version the artifact was written with.
    pub schema: u64,
    /// Backend registry key (`k20`, `gtx980`, …).
    pub backend: String,
}

impl StoreKey {
    /// The key a plan files under.
    pub fn of_plan(plan: &TunedPlan) -> StoreKey {
        StoreKey {
            fingerprint: plan.fingerprint,
            cache_salt: plan.cache_salt,
            schema: plan.schema_version,
            backend: plan.backend.clone(),
        }
    }

    /// The store file name for this key:
    /// `{fingerprint:016x}-{salt:016x}-v{schema}-{enc(backend)}.plan.json`.
    /// Injective: the hex fields are fixed width, the schema tag is a
    /// digit run terminated by `-`, and the backend encoding never emits
    /// a byte it also passes through raw.
    pub fn file_name(&self) -> String {
        format!(
            "{:016x}-{:016x}-v{}-{}{PLAN_SUFFIX}",
            self.fingerprint,
            self.cache_salt,
            self.schema,
            encode_component(&self.backend)
        )
    }

    /// Inverse of [`StoreKey::file_name`]. `None` if the name is not a
    /// well-formed store entry.
    pub fn parse_file_name(name: &str) -> Option<StoreKey> {
        let stem = name.strip_suffix(PLAN_SUFFIX)?;
        let (fp_hex, rest) = (stem.get(..16)?, stem.get(16..)?);
        let rest = rest.strip_prefix('-')?;
        let (salt_hex, rest) = (rest.get(..16)?, rest.get(16..)?);
        let rest = rest.strip_prefix("-v")?;
        let digits = rest.bytes().take_while(u8::is_ascii_digit).count();
        if digits == 0 {
            return None;
        }
        let (schema_str, rest) = rest.split_at(digits);
        let backend = decode_component(rest.strip_prefix('-')?)?;
        Some(StoreKey {
            fingerprint: u64::from_str_radix(fp_hex, 16).ok()?,
            cache_salt: u64::from_str_radix(salt_hex, 16).ok()?,
            schema: schema_str.parse().ok()?,
            backend,
        })
    }

    /// Whether the entry predates the current plan schema (evictable via
    /// `gc`).
    pub fn is_stale(&self) -> bool {
        self.schema < PLAN_SCHEMA_VERSION
    }
}

impl std::fmt::Display for StoreKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:016x} {} (salt {:016x}, schema v{})",
            self.fingerprint, self.backend, self.cache_salt, self.schema
        )
    }
}

/// Percent-encodes a key component so distinct strings map to distinct
/// file names on any filesystem: lowercase ASCII letters, digits, `_`
/// and `-` pass through; every other byte (including `%` itself and
/// uppercase letters, which could alias on case-insensitive filesystems)
/// becomes `%XX` with uppercase hex.
fn encode_component(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'a'..=b'z' | b'0'..=b'9' | b'_' | b'-' => out.push(b as char),
            _ => {
                out.push('%');
                out.push_str(&format!("{b:02X}"));
            }
        }
    }
    out
}

/// Inverse of [`encode_component`]. `None` on a malformed escape.
fn decode_component(s: &str) -> Option<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = std::str::from_utf8(bytes.get(i + 1..i + 3)?).ok()?;
                out.push(u8::from_str_radix(hex, 16).ok()?);
                i += 3;
            }
            b @ (b'a'..=b'z' | b'0'..=b'9' | b'_' | b'-') => {
                out.push(b);
                i += 1;
            }
            _ => return None,
        }
    }
    String::from_utf8(out).ok()
}

/// One entry found by a store scan.
#[derive(Clone, Debug, PartialEq)]
pub struct StoreEntry {
    pub key: StoreKey,
    pub path: PathBuf,
}

/// A tolerant scan of the store: the decodable entries plus, per file
/// that could not be used, what is wrong with it. Listing a store with a
/// hand-renamed or unreadable file in it should degrade that one file,
/// not abort the whole listing.
#[derive(Clone, Debug, Default)]
pub struct StoreScan {
    /// Well-formed entries, sorted by file name.
    pub entries: Vec<StoreEntry>,
    /// `(path, reason)` for every `.plan.json` file that does not decode
    /// to a store key (or could not be stat'd), sorted by path.
    pub problems: Vec<(PathBuf, String)>,
    /// Quarantined `*.corrupt` sidecars present in the store.
    pub corrupt: Vec<PathBuf>,
}

/// A directory of content-addressed plans.
pub struct PlanStore {
    root: PathBuf,
    options: StoreOptions,
    /// Operation sequence for the fault plan's per-op decisions.
    fault_seq: AtomicU64,
    /// Entries this store handle quarantined to `*.corrupt` sidecars.
    corrupt_quarantined: AtomicUsize,
}

impl PlanStore {
    /// Opens (creating if needed) the store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<PlanStore, BarracudaError> {
        Self::open_with(root, StoreOptions::default())
    }

    /// Opens the store with explicit [`StoreOptions`] (durability,
    /// injected faults).
    pub fn open_with(
        root: impl Into<PathBuf>,
        options: StoreOptions,
    ) -> Result<PlanStore, BarracudaError> {
        let root = root.into();
        std::fs::create_dir_all(&root).map_err(|e| BarracudaError::Store {
            detail: format!("cannot create store directory {}: {e}", root.display()),
        })?;
        Ok(PlanStore {
            root,
            options,
            fault_seq: AtomicU64::new(0),
            corrupt_quarantined: AtomicUsize::new(0),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// How many entries this handle has quarantined to `*.corrupt`.
    pub fn corrupt_quarantined(&self) -> usize {
        self.corrupt_quarantined.load(Ordering::Relaxed)
    }

    /// Absolute path a plan with `key` lives at.
    pub fn path_of(&self, key: &StoreKey) -> PathBuf {
        self.root.join(key.file_name())
    }

    fn next_fault_seq(&self) -> u64 {
        self.fault_seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Persists `plan` under its content address, replacing any previous
    /// plan with the same key. Crash-safe and multi-process-safe: the
    /// bytes land in a same-directory temporary (unique per pid and
    /// insert) and an atomic rename publishes them, so a concurrent
    /// reader sees the old complete artifact or the new complete
    /// artifact, never a torn write, and concurrent inserters resolve
    /// last-writer-wins. Returns the path written.
    pub fn insert(&self, plan: &TunedPlan) -> Result<PathBuf, BarracudaError> {
        let path = self.path_of(&StoreKey::of_plan(plan));
        let fault = self.options.faults.decide_write(self.next_fault_seq());
        if fault == Some(StoreFault::WriteFail) {
            return Err(BarracudaError::Store {
                detail: format!(
                    "cannot write store entry {}: injected write fault",
                    path.display()
                ),
            });
        }
        // The counter is process-wide, not per-handle: two handles over
        // the same directory (or a reopened store after a crash) must
        // never reuse a temp path — reusing one would silently rename a
        // dead writer's leftover partial into the address space.
        static INSERT_SEQ: AtomicU64 = AtomicU64::new(0);
        let tmp = self.root.join(format!(
            ".{}.{}-{}{PARTIAL_SUFFIX}",
            StoreKey::of_plan(plan).file_name(),
            std::process::id(),
            INSERT_SEQ.fetch_add(1, Ordering::Relaxed),
        ));
        let write_err = |e: std::io::Error| BarracudaError::Store {
            detail: format!("cannot write store entry {}: {e}", tmp.display()),
        };
        std::fs::write(&tmp, plan.to_json_text()).map_err(write_err)?;
        if self.options.durable {
            std::fs::File::open(&tmp)
                .and_then(|f| f.sync_all())
                .map_err(write_err)?;
        }
        if fault == Some(StoreFault::CrashBeforeRename) {
            // Leave the temporary behind, exactly like a writer killed
            // between the write and the rename would.
            return Err(BarracudaError::Store {
                detail: format!(
                    "cannot publish store entry {}: injected crash before rename",
                    path.display()
                ),
            });
        }
        std::fs::rename(&tmp, &path).map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            BarracudaError::Store {
                detail: format!("cannot publish store entry {}: {e}", path.display()),
            }
        })?;
        if self.options.durable {
            // Make the rename itself durable: fsync the directory.
            let _ = std::fs::File::open(&self.root).and_then(|d| d.sync_all());
        }
        Ok(path)
    }

    /// Loads the plan stored under `key`, if any. A present-but-corrupt
    /// entry — truncated or bit-flipped JSON, an unsupported embedded
    /// schema, or content that contradicts its own file name (a tampered
    /// fingerprint, a misfiled backend) — is **quarantined**: renamed to
    /// a `*.corrupt` sidecar (logged and counted) and reported as a miss,
    /// so the caller re-tunes and re-inserts a clean artifact instead of
    /// failing the request. Only a filesystem-level read failure on an
    /// entry that exists is a typed [`BarracudaError::Store`].
    pub fn lookup(&self, key: &StoreKey) -> Result<Option<TunedPlan>, BarracudaError> {
        let path = self.path_of(key);
        if self.options.faults.decide_read(self.next_fault_seq()) == Some(StoreFault::ReadFail) {
            return Err(BarracudaError::Store {
                detail: format!(
                    "cannot read store entry {}: injected read fault",
                    path.display()
                ),
            });
        }
        let bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => {
                return Err(BarracudaError::Store {
                    detail: format!("cannot read store entry {}: {e}", path.display()),
                })
            }
        };
        let text = match String::from_utf8(bytes) {
            Ok(text) => text,
            Err(e) => {
                self.quarantine_corrupt(&path, &format!("not valid UTF-8: {e}"));
                return Ok(None);
            }
        };
        let plan = match TunedPlan::from_json_text(&text) {
            Ok(plan) => plan,
            Err(e) => {
                self.quarantine_corrupt(&path, &format!("undecodable content: {e}"));
                return Ok(None);
            }
        };
        let actual = StoreKey::of_plan(&plan);
        if actual != *key {
            self.quarantine_corrupt(
                &path,
                &format!(
                    "content does not match its own address: file name says {key} but the \
                     content says {actual} — tampered with or misfiled"
                ),
            );
            return Ok(None);
        }
        Ok(Some(plan))
    }

    /// Moves a damaged entry out of the address space so it can never be
    /// served, preserving the bytes for post-mortem. Best-effort: if even
    /// the rename fails the entry is left in place (the next lookup will
    /// retry) — never panics, never aborts the request.
    fn quarantine_corrupt(&self, path: &Path, reason: &str) {
        let mut name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        name.push_str(CORRUPT_SUFFIX);
        let sidecar = self.root.join(name);
        match std::fs::rename(path, &sidecar) {
            Ok(()) => {
                self.corrupt_quarantined.fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "store: quarantined corrupt entry {} -> {} ({reason})",
                    path.display(),
                    sidecar.display()
                );
            }
            Err(e) => eprintln!(
                "store: could not quarantine corrupt entry {} ({reason}): {e}",
                path.display()
            ),
        }
    }

    /// Tolerant full scan: every `.plan.json` file that decodes becomes
    /// an entry, every one that does not becomes a per-file problem, and
    /// `*.corrupt` sidecars are listed separately. Only the directory
    /// read itself can fail.
    pub fn scan(&self) -> Result<StoreScan, BarracudaError> {
        let dir = std::fs::read_dir(&self.root).map_err(|e| BarracudaError::Store {
            detail: format!("cannot scan store directory {}: {e}", self.root.display()),
        })?;
        let mut out = StoreScan::default();
        for item in dir {
            let name = match item {
                Ok(item) => item.file_name().to_string_lossy().into_owned(),
                Err(e) => {
                    out.problems.push((
                        self.root.clone(),
                        format!("unreadable directory entry: {e}"),
                    ));
                    continue;
                }
            };
            if name.ends_with(CORRUPT_SUFFIX) {
                out.corrupt.push(self.root.join(&name));
            } else if name.ends_with(PLAN_SUFFIX) {
                match StoreKey::parse_file_name(&name) {
                    Some(key) => out.entries.push(StoreEntry {
                        path: self.root.join(&name),
                        key,
                    }),
                    None => out.problems.push((
                        self.root.join(&name),
                        "file name does not decode to a store key — not a barracuda artifact, \
                         or renamed by hand"
                            .to_string(),
                    )),
                }
            }
        }
        out.entries.sort_by(|a, b| a.path.cmp(&b.path));
        out.problems.sort_by(|a, b| a.0.cmp(&b.0));
        out.corrupt.sort();
        Ok(out)
    }

    /// All well-formed entries, sorted by file name (deterministic
    /// listing order). Strict: a `.plan.json` file whose name does not
    /// decode to a [`StoreKey`] is a typed [`BarracudaError::Store`].
    /// Callers that should degrade per-file instead (the `plans` CLI) use
    /// [`PlanStore::scan`].
    pub fn entries(&self) -> Result<Vec<StoreEntry>, BarracudaError> {
        let scan = self.scan()?;
        if let Some((path, reason)) = scan.problems.first() {
            return Err(BarracudaError::Store {
                detail: format!("store entry {}: {reason}", path.display()),
            });
        }
        Ok(scan.entries)
    }

    /// Removes the entry under `key`. Returns whether one existed.
    pub fn evict(&self, key: &StoreKey) -> Result<bool, BarracudaError> {
        let path = self.path_of(key);
        match std::fs::remove_file(&path) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(BarracudaError::Store {
                detail: format!("cannot remove store entry {}: {e}", path.display()),
            }),
        }
    }

    /// Evicts every entry whose schema version is below `schema`,
    /// returning the removed entries. `gc(PLAN_SCHEMA_VERSION)` clears
    /// all stale (pre-current-schema) artifacts. Undecodable file names
    /// are skipped, not fatal (report them via [`PlanStore::scan`]).
    pub fn gc(&self, schema: u64) -> Result<Vec<StoreEntry>, BarracudaError> {
        let mut evicted = Vec::new();
        for entry in self.scan()?.entries {
            if entry.key.schema < schema {
                self.evict(&entry.key)?;
                evicted.push(entry);
            }
        }
        Ok(evicted)
    }

    /// Removes every `*.corrupt` sidecar (and stale `*.partial`
    /// temporaries from dead writers), returning the paths removed.
    pub fn gc_corrupt(&self) -> Result<Vec<PathBuf>, BarracudaError> {
        let mut removed = Vec::new();
        for path in self.scan()?.corrupt {
            std::fs::remove_file(&path).map_err(|e| BarracudaError::Store {
                detail: format!("cannot remove corrupt sidecar {}: {e}", path.display()),
            })?;
            removed.push(path);
        }
        // Partial temporaries from writers that died before their rename:
        // invisible to lookups, but worth sweeping with the sidecars.
        if let Ok(dir) = std::fs::read_dir(&self.root) {
            for item in dir.flatten() {
                let name = item.file_name().to_string_lossy().into_owned();
                if name.ends_with(PARTIAL_SUFFIX) && std::fs::remove_file(item.path()).is_ok() {
                    removed.push(item.path());
                }
            }
        }
        removed.sort();
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::EvalCache;
    use crate::pipeline::{TuneParams, WorkloadTuner};
    use crate::workload::Workload;
    use tensor::index::uniform_dims;

    fn temp_store(tag: &str) -> PlanStore {
        let root =
            std::env::temp_dir().join(format!("barracuda_store_unit_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        PlanStore::open(root).unwrap()
    }

    fn tuned_plan() -> TunedPlan {
        let w = Workload::parse(
            "mm",
            "C[i k] = Sum([j], A[i j] * B[j k])",
            &uniform_dims(&["i", "j", "k"], 16),
        )
        .unwrap();
        let tuner = WorkloadTuner::build(&w);
        let tuned = tuner.autotune(&gpusim::k20(), TuneParams::quick()).unwrap();
        TunedPlan::from_tuned(&tuner, "k20", &tuned)
    }

    #[test]
    fn file_name_roundtrips_hostile_backends() {
        for backend in [
            "k20",
            "acc-opt",
            "UPPER case/../%41%",
            "snowman ☃ backend",
            "",
            "a-b_c9",
        ] {
            let key = StoreKey {
                fingerprint: 0xdead_beef_0123_4567,
                cache_salt: u64::MAX,
                schema: 12,
                backend: backend.to_string(),
            };
            let name = key.file_name();
            assert!(
                !name.contains('/') && !name.contains("..") && !name.contains(' '),
                "unsafe file name {name}"
            );
            assert_eq!(StoreKey::parse_file_name(&name), Some(key), "{name}");
        }
    }

    #[test]
    fn insert_lookup_is_bit_lossless() {
        let store = temp_store("roundtrip");
        let plan = tuned_plan();
        let path = store.insert(&plan).unwrap();
        assert!(path.exists());
        let key = StoreKey::of_plan(&plan);
        let back = store.lookup(&key).unwrap().unwrap();
        assert_eq!(plan, back);
        assert_eq!(plan.gpu_seconds.to_bits(), back.gpu_seconds.to_bits());
        // Replays straight out of the store.
        let replayed = back.replay(&EvalCache::new()).unwrap();
        assert_eq!(replayed.gpu_seconds.to_bits(), plan.gpu_seconds.to_bits());
    }

    #[test]
    fn lookup_misses_on_foreign_salt_and_schema() {
        let store = temp_store("miss");
        let plan = tuned_plan();
        store.insert(&plan).unwrap();
        let key = StoreKey::of_plan(&plan);
        let mut foreign = key.clone();
        foreign.cache_salt ^= 1;
        assert_eq!(store.lookup(&foreign).unwrap(), None);
        let mut old = key.clone();
        old.schema = 1;
        assert_eq!(store.lookup(&old).unwrap(), None);
        assert!(store.lookup(&key).unwrap().is_some());
    }

    #[test]
    fn tampered_content_is_quarantined_and_reinserted_clean() {
        let store = temp_store("tamper");
        let plan = tuned_plan();
        let path = store.insert(&plan).unwrap();
        let key = StoreKey::of_plan(&plan);
        // Rewrite the embedded fingerprint: the file name no longer
        // matches the content.
        let text = std::fs::read_to_string(&path).unwrap();
        let want = format!("{:016x}", plan.fingerprint);
        let tampered = text.replace(&want, &format!("{:016x}", plan.fingerprint ^ 1));
        assert_ne!(text, tampered);
        std::fs::write(&path, tampered).unwrap();
        // The tampered entry is quarantined, not served and not fatal.
        assert_eq!(store.lookup(&key).unwrap(), None);
        assert!(!path.exists(), "quarantine must move the entry aside");
        assert_eq!(store.corrupt_quarantined(), 1);
        let scan = store.scan().unwrap();
        assert_eq!(scan.corrupt.len(), 1);
        assert!(scan.corrupt[0].to_string_lossy().ends_with(".corrupt"));
        // Re-inserting files a clean artifact at the same address.
        store.insert(&plan).unwrap();
        assert_eq!(store.lookup(&key).unwrap(), Some(plan));
        // `gc_corrupt` sweeps the sidecar and nothing else.
        let removed = store.gc_corrupt().unwrap();
        assert_eq!(removed, scan.corrupt);
        assert_eq!(store.scan().unwrap().corrupt.len(), 0);
        assert_eq!(store.entries().unwrap().len(), 1);
    }

    #[test]
    fn undecodable_name_degrades_scan_and_fails_strict_entries() {
        let store = temp_store("undecodable");
        std::fs::write(store.root().join("NOT-A-KEY.plan.json"), "{}").unwrap();
        // Tolerant scan: the bad file is a per-file problem, not fatal.
        let scan = store.scan().unwrap();
        assert!(scan.entries.is_empty());
        assert_eq!(scan.problems.len(), 1);
        assert!(scan.problems[0].1.contains("does not decode"));
        // Strict entries() keeps the typed store error for callers that
        // need an all-or-nothing view.
        let err = store.entries().unwrap_err();
        assert_eq!(err.stage(), "store");
        assert_eq!(err.exit_code(), 11);
        // Non-plan files are simply ignored.
        let store2 = temp_store("ignored");
        std::fs::write(store2.root().join("README.txt"), "hi").unwrap();
        assert!(store2.entries().unwrap().is_empty());
    }

    #[test]
    fn insert_is_atomic_and_leaves_no_visible_partial() {
        let store = temp_store("atomic");
        let plan = tuned_plan();
        let key = StoreKey::of_plan(&plan);
        // A simulated crash between write and rename: the insert errors,
        // the temporary stays invisible, and lookup still misses.
        let crashing = PlanStore::open_with(
            store.root(),
            StoreOptions {
                durable: false,
                faults: StoreFaultPlan {
                    crash_before_rename_rate: 1.0,
                    ..StoreFaultPlan::none()
                },
            },
        )
        .unwrap();
        let err = crashing.insert(&plan).unwrap_err();
        assert_eq!(err.stage(), "store");
        assert!(err.to_string().contains("injected crash before rename"));
        assert_eq!(
            store.lookup(&key).unwrap(),
            None,
            "partial must stay invisible"
        );
        assert!(store.entries().unwrap().is_empty());
        // The debris exists but only as a .partial temp; gc_corrupt sweeps it.
        let debris: Vec<_> = std::fs::read_dir(store.root())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".partial"))
            .collect();
        assert_eq!(debris.len(), 1);
        assert!(!store.gc_corrupt().unwrap().is_empty());
        // A durable insert through the normal path publishes atomically.
        let durable = PlanStore::open_with(
            store.root(),
            StoreOptions {
                durable: true,
                faults: StoreFaultPlan::none(),
            },
        )
        .unwrap();
        durable.insert(&plan).unwrap();
        assert_eq!(store.lookup(&key).unwrap(), Some(plan));
    }

    #[test]
    fn injected_read_and_write_faults_are_typed_store_errors() {
        let store = temp_store("faulty");
        let plan = tuned_plan();
        store.insert(&plan).unwrap();
        let key = StoreKey::of_plan(&plan);
        let faulty = PlanStore::open_with(
            store.root(),
            StoreOptions {
                durable: false,
                faults: StoreFaultPlan {
                    read_fail_rate: 1.0,
                    write_fail_rate: 1.0,
                    ..StoreFaultPlan::none()
                },
            },
        )
        .unwrap();
        let err = faulty.lookup(&key).unwrap_err();
        assert_eq!(err.exit_code(), 11);
        assert!(err.to_string().contains("injected read fault"));
        let err = faulty.insert(&plan).unwrap_err();
        assert_eq!(err.exit_code(), 11);
        assert!(err.to_string().contains("injected write fault"));
        // The entry itself is untouched by the injected faults.
        assert_eq!(store.lookup(&key).unwrap(), Some(plan));
    }

    #[test]
    fn gc_evicts_only_older_schemas() {
        let store = temp_store("gc");
        let plan = tuned_plan();
        store.insert(&plan).unwrap();
        let mut v1 = plan.clone();
        v1.schema_version = 1;
        v1.cache_salt = 0;
        store.insert(&v1).unwrap();
        assert_eq!(store.entries().unwrap().len(), 2);
        let evicted = store.gc(PLAN_SCHEMA_VERSION).unwrap();
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].key.schema, 1);
        assert!(evicted[0].key.is_stale());
        let left = store.entries().unwrap();
        assert_eq!(left.len(), 1);
        assert_eq!(left[0].key.schema, PLAN_SCHEMA_VERSION);
    }
}
