//! Content-addressed plan store: a directory of [`TunedPlan`] artifacts
//! keyed by what they are, not where the user put them.
//!
//! The paper's economics are compile-once/run-many: a search that takes
//! hours produces a mapping that is reused forever (§5, Table II). The
//! store makes that reuse automatic. Every plan lives at a path derived
//! from its [`StoreKey`] — `(workload fingerprint, backend key, backend
//! cache salt, plan schema version)` — so a `tune` can ask "has this
//! exact workload already been tuned for this exact backend under this
//! exact model revision?" and replay the answer with zero search
//! evaluations. The salt in the key means a model or architecture change
//! silently *misses* (and re-tunes) rather than serving a stale mapping;
//! the schema version in the key means old-format plans are flagged as
//! evictable by `gc`, never misread.
//!
//! File names are injective in the key: fixed-width lowercase hex for the
//! two u64s, a decimal schema tag, and a percent-encoded backend key
//! (every byte outside `[a-z0-9_-]` becomes `%XX`, so hostile or
//! case-colliding backend names cannot alias on case-insensitive
//! filesystems). Store-layer failures (unreadable directory, undecodable
//! file name) are [`BarracudaError::Store`] (exit code 11); a plan whose
//! *content* is wrong — tampered fingerprint, foreign salt, unsupported
//! schema — stays [`BarracudaError::Plan`] (exit code 10), so scripts can
//! tell a broken store from a broken artifact.

use std::path::{Path, PathBuf};

use crate::error::BarracudaError;
use crate::plan::{TunedPlan, PLAN_SCHEMA_VERSION};

/// File-name suffix of every store entry.
const PLAN_SUFFIX: &str = ".plan.json";

/// The identity of one stored plan.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StoreKey {
    /// Workload fingerprint (FNV-1a over canonical source + dims).
    pub fingerprint: u64,
    /// Backend cache salt at tuning time (0 for legacy v1 plans).
    pub cache_salt: u64,
    /// Plan schema version the artifact was written with.
    pub schema: u64,
    /// Backend registry key (`k20`, `gtx980`, …).
    pub backend: String,
}

impl StoreKey {
    /// The key a plan files under.
    pub fn of_plan(plan: &TunedPlan) -> StoreKey {
        StoreKey {
            fingerprint: plan.fingerprint,
            cache_salt: plan.cache_salt,
            schema: plan.schema_version,
            backend: plan.backend.clone(),
        }
    }

    /// The store file name for this key:
    /// `{fingerprint:016x}-{salt:016x}-v{schema}-{enc(backend)}.plan.json`.
    /// Injective: the hex fields are fixed width, the schema tag is a
    /// digit run terminated by `-`, and the backend encoding never emits
    /// a byte it also passes through raw.
    pub fn file_name(&self) -> String {
        format!(
            "{:016x}-{:016x}-v{}-{}{PLAN_SUFFIX}",
            self.fingerprint,
            self.cache_salt,
            self.schema,
            encode_component(&self.backend)
        )
    }

    /// Inverse of [`StoreKey::file_name`]. `None` if the name is not a
    /// well-formed store entry.
    pub fn parse_file_name(name: &str) -> Option<StoreKey> {
        let stem = name.strip_suffix(PLAN_SUFFIX)?;
        let (fp_hex, rest) = (stem.get(..16)?, stem.get(16..)?);
        let rest = rest.strip_prefix('-')?;
        let (salt_hex, rest) = (rest.get(..16)?, rest.get(16..)?);
        let rest = rest.strip_prefix("-v")?;
        let digits = rest.bytes().take_while(u8::is_ascii_digit).count();
        if digits == 0 {
            return None;
        }
        let (schema_str, rest) = rest.split_at(digits);
        let backend = decode_component(rest.strip_prefix('-')?)?;
        Some(StoreKey {
            fingerprint: u64::from_str_radix(fp_hex, 16).ok()?,
            cache_salt: u64::from_str_radix(salt_hex, 16).ok()?,
            schema: schema_str.parse().ok()?,
            backend,
        })
    }

    /// Whether the entry predates the current plan schema (evictable via
    /// `gc`).
    pub fn is_stale(&self) -> bool {
        self.schema < PLAN_SCHEMA_VERSION
    }
}

impl std::fmt::Display for StoreKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:016x} {} (salt {:016x}, schema v{})",
            self.fingerprint, self.backend, self.cache_salt, self.schema
        )
    }
}

/// Percent-encodes a key component so distinct strings map to distinct
/// file names on any filesystem: lowercase ASCII letters, digits, `_`
/// and `-` pass through; every other byte (including `%` itself and
/// uppercase letters, which could alias on case-insensitive filesystems)
/// becomes `%XX` with uppercase hex.
fn encode_component(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'a'..=b'z' | b'0'..=b'9' | b'_' | b'-' => out.push(b as char),
            _ => {
                out.push('%');
                out.push_str(&format!("{b:02X}"));
            }
        }
    }
    out
}

/// Inverse of [`encode_component`]. `None` on a malformed escape.
fn decode_component(s: &str) -> Option<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = std::str::from_utf8(bytes.get(i + 1..i + 3)?).ok()?;
                out.push(u8::from_str_radix(hex, 16).ok()?);
                i += 3;
            }
            b @ (b'a'..=b'z' | b'0'..=b'9' | b'_' | b'-') => {
                out.push(b);
                i += 1;
            }
            _ => return None,
        }
    }
    String::from_utf8(out).ok()
}

/// One entry found by a store scan.
#[derive(Clone, Debug, PartialEq)]
pub struct StoreEntry {
    pub key: StoreKey,
    pub path: PathBuf,
}

/// A directory of content-addressed plans.
pub struct PlanStore {
    root: PathBuf,
}

impl PlanStore {
    /// Opens (creating if needed) the store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<PlanStore, BarracudaError> {
        let root = root.into();
        std::fs::create_dir_all(&root).map_err(|e| BarracudaError::Store {
            detail: format!("cannot create store directory {}: {e}", root.display()),
        })?;
        Ok(PlanStore { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Absolute path a plan with `key` lives at.
    pub fn path_of(&self, key: &StoreKey) -> PathBuf {
        self.root.join(key.file_name())
    }

    /// Persists `plan` under its content address, replacing any previous
    /// plan with the same key. Returns the path written.
    pub fn insert(&self, plan: &TunedPlan) -> Result<PathBuf, BarracudaError> {
        let path = self.path_of(&StoreKey::of_plan(plan));
        std::fs::write(&path, plan.to_json_text()).map_err(|e| BarracudaError::Store {
            detail: format!("cannot write store entry {}: {e}", path.display()),
        })?;
        Ok(path)
    }

    /// Loads the plan stored under `key`, if any. A present-but-corrupt
    /// entry — unparseable JSON, or content that contradicts its own file
    /// name (a tampered fingerprint, a foreign salt) — is a typed
    /// [`BarracudaError::Plan`], never silently treated as a miss.
    pub fn lookup(&self, key: &StoreKey) -> Result<Option<TunedPlan>, BarracudaError> {
        let path = self.path_of(key);
        if !path.exists() {
            return Ok(None);
        }
        let plan = TunedPlan::load(&path)?;
        let actual = StoreKey::of_plan(&plan);
        if actual != *key {
            return Err(BarracudaError::Plan {
                workload: plan.workload_name.clone(),
                detail: format!(
                    "store entry {} does not match its own address: file name says {key} but \
                     the content says {actual} — the artifact was tampered with or misfiled",
                    path.display()
                ),
            });
        }
        Ok(Some(plan))
    }

    /// All entries in the store, sorted by file name (deterministic
    /// listing order). A file ending in `.plan.json` whose name does not
    /// decode to a [`StoreKey`] is a typed [`BarracudaError::Store`];
    /// other files are ignored.
    pub fn entries(&self) -> Result<Vec<StoreEntry>, BarracudaError> {
        let dir = std::fs::read_dir(&self.root).map_err(|e| BarracudaError::Store {
            detail: format!("cannot scan store directory {}: {e}", self.root.display()),
        })?;
        let mut names = Vec::new();
        for item in dir {
            let item = item.map_err(|e| BarracudaError::Store {
                detail: format!("cannot scan store directory {}: {e}", self.root.display()),
            })?;
            if let Some(name) = item.file_name().to_str() {
                if name.ends_with(PLAN_SUFFIX) {
                    names.push(name.to_string());
                }
            }
        }
        names.sort();
        names
            .into_iter()
            .map(|name| {
                let key =
                    StoreKey::parse_file_name(&name).ok_or_else(|| BarracudaError::Store {
                        detail: format!(
                            "store entry `{name}` in {} does not decode to a store key — not a \
                         barracuda artifact, or renamed by hand",
                            self.root.display()
                        ),
                    })?;
                Ok(StoreEntry {
                    path: self.root.join(&name),
                    key,
                })
            })
            .collect()
    }

    /// Removes the entry under `key`. Returns whether one existed.
    pub fn evict(&self, key: &StoreKey) -> Result<bool, BarracudaError> {
        let path = self.path_of(key);
        if !path.exists() {
            return Ok(false);
        }
        std::fs::remove_file(&path).map_err(|e| BarracudaError::Store {
            detail: format!("cannot remove store entry {}: {e}", path.display()),
        })?;
        Ok(true)
    }

    /// Evicts every entry whose schema version is below `schema`,
    /// returning the removed entries. `gc(PLAN_SCHEMA_VERSION)` clears
    /// all stale (pre-current-schema) artifacts.
    pub fn gc(&self, schema: u64) -> Result<Vec<StoreEntry>, BarracudaError> {
        let mut evicted = Vec::new();
        for entry in self.entries()? {
            if entry.key.schema < schema {
                self.evict(&entry.key)?;
                evicted.push(entry);
            }
        }
        Ok(evicted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::EvalCache;
    use crate::pipeline::{TuneParams, WorkloadTuner};
    use crate::workload::Workload;
    use tensor::index::uniform_dims;

    fn temp_store(tag: &str) -> PlanStore {
        let root =
            std::env::temp_dir().join(format!("barracuda_store_unit_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        PlanStore::open(root).unwrap()
    }

    fn tuned_plan() -> TunedPlan {
        let w = Workload::parse(
            "mm",
            "C[i k] = Sum([j], A[i j] * B[j k])",
            &uniform_dims(&["i", "j", "k"], 16),
        )
        .unwrap();
        let tuner = WorkloadTuner::build(&w);
        let tuned = tuner.autotune(&gpusim::k20(), TuneParams::quick()).unwrap();
        TunedPlan::from_tuned(&tuner, "k20", &tuned)
    }

    #[test]
    fn file_name_roundtrips_hostile_backends() {
        for backend in [
            "k20",
            "acc-opt",
            "UPPER case/../%41%",
            "snowman ☃ backend",
            "",
            "a-b_c9",
        ] {
            let key = StoreKey {
                fingerprint: 0xdead_beef_0123_4567,
                cache_salt: u64::MAX,
                schema: 12,
                backend: backend.to_string(),
            };
            let name = key.file_name();
            assert!(
                !name.contains('/') && !name.contains("..") && !name.contains(' '),
                "unsafe file name {name}"
            );
            assert_eq!(StoreKey::parse_file_name(&name), Some(key), "{name}");
        }
    }

    #[test]
    fn insert_lookup_is_bit_lossless() {
        let store = temp_store("roundtrip");
        let plan = tuned_plan();
        let path = store.insert(&plan).unwrap();
        assert!(path.exists());
        let key = StoreKey::of_plan(&plan);
        let back = store.lookup(&key).unwrap().unwrap();
        assert_eq!(plan, back);
        assert_eq!(plan.gpu_seconds.to_bits(), back.gpu_seconds.to_bits());
        // Replays straight out of the store.
        let replayed = back.replay(&EvalCache::new()).unwrap();
        assert_eq!(replayed.gpu_seconds.to_bits(), plan.gpu_seconds.to_bits());
    }

    #[test]
    fn lookup_misses_on_foreign_salt_and_schema() {
        let store = temp_store("miss");
        let plan = tuned_plan();
        store.insert(&plan).unwrap();
        let key = StoreKey::of_plan(&plan);
        let mut foreign = key.clone();
        foreign.cache_salt ^= 1;
        assert_eq!(store.lookup(&foreign).unwrap(), None);
        let mut old = key.clone();
        old.schema = 1;
        assert_eq!(store.lookup(&old).unwrap(), None);
        assert!(store.lookup(&key).unwrap().is_some());
    }

    #[test]
    fn tampered_content_is_a_typed_plan_error() {
        let store = temp_store("tamper");
        let plan = tuned_plan();
        let path = store.insert(&plan).unwrap();
        let key = StoreKey::of_plan(&plan);
        // Rewrite the embedded fingerprint: the file name no longer
        // matches the content.
        let text = std::fs::read_to_string(&path).unwrap();
        let want = format!("{:016x}", plan.fingerprint);
        let tampered = text.replace(&want, &format!("{:016x}", plan.fingerprint ^ 1));
        assert_ne!(text, tampered);
        std::fs::write(&path, tampered).unwrap();
        let err = store.lookup(&key).unwrap_err();
        assert_eq!(err.stage(), "plan");
        assert_eq!(err.exit_code(), 10);
        assert!(err.to_string().contains("does not match its own address"));
    }

    #[test]
    fn undecodable_entry_is_a_typed_store_error() {
        let store = temp_store("undecodable");
        std::fs::write(store.root().join("NOT-A-KEY.plan.json"), "{}").unwrap();
        let err = store.entries().unwrap_err();
        assert_eq!(err.stage(), "store");
        assert_eq!(err.exit_code(), 11);
        // Non-plan files are simply ignored.
        let store2 = temp_store("ignored");
        std::fs::write(store2.root().join("README.txt"), "hi").unwrap();
        assert!(store2.entries().unwrap().is_empty());
    }

    #[test]
    fn gc_evicts_only_older_schemas() {
        let store = temp_store("gc");
        let plan = tuned_plan();
        store.insert(&plan).unwrap();
        let mut v1 = plan.clone();
        v1.schema_version = 1;
        v1.cache_salt = 0;
        store.insert(&v1).unwrap();
        assert_eq!(store.entries().unwrap().len(), 2);
        let evicted = store.gc(PLAN_SCHEMA_VERSION).unwrap();
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].key.schema, 1);
        assert!(evicted[0].key.is_stale());
        let left = store.entries().unwrap();
        assert_eq!(left.len(), 1);
        assert_eq!(left[0].key.schema, PLAN_SCHEMA_VERSION);
    }
}
