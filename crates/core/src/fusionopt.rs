//! Fusion as a pipeline-level alternative (§III).
//!
//! After SURF picks a version and configuration for each statement, this
//! module builds the *fused* form of each statement's chain (one kernel,
//! shared-memory temporary slices — see `tcr::fusion`) and compares
//! simulated times, reporting whichever wins. For launch-bound chains like
//! Eqn. (1), fusion is the difference between three kernel launches and
//! one.

use crate::pipeline::TunedWorkload;
use crate::workload::Workload;
use gpusim::GpuArch;
use tcr::fusion::{build_fused, validate_fused, FusedKernel};
use tensor::Tensor;

/// A fused alternative for one statement's chain.
#[derive(Clone, Debug)]
pub struct FusedAlternative {
    pub statement: usize,
    pub kernel: FusedKernel,
    /// Simulated device time of the fused kernel.
    pub fused_seconds: f64,
    /// Simulated device time of the tuned unfused chain.
    pub unfused_seconds: f64,
}

impl FusedAlternative {
    /// Speedup of fusing (>1 means fusion wins).
    pub fn speedup(&self) -> f64 {
        self.unfused_seconds / self.fused_seconds
    }
}

/// Attempts to fuse each statement of a tuned workload. Statements whose
/// chains cannot fuse (single kernel, no shared output index, slices too
/// large) yield `None`.
pub fn fuse_alternatives(tuned: &TunedWorkload, arch: &GpuArch) -> Vec<Option<FusedAlternative>> {
    tuned
        .programs
        .iter()
        .zip(&tuned.kernels)
        .enumerate()
        .map(|(i, (program, kernels))| {
            let mut fused = build_fused(program)?;
            fused.accumulate = kernels.last().map(|k| k.accumulate).unwrap_or(false);
            validate_fused(&fused, program).ok()?;
            let fused_seconds = gpusim::time_fused(&fused, program, arch).time_s;
            let unfused_seconds = gpusim::time_program(program, kernels, arch, false).gpu_s;
            Some(FusedAlternative {
                statement: i,
                kernel: fused,
                fused_seconds,
                unfused_seconds,
            })
        })
        .collect()
}

/// Device time of the workload when every fusable statement uses its fused
/// kernel and the rest keep their tuned chains.
pub fn best_of_both_seconds(tuned: &TunedWorkload, arch: &GpuArch) -> f64 {
    let alts = fuse_alternatives(tuned, arch);
    tuned
        .programs
        .iter()
        .zip(&tuned.kernels)
        .zip(alts)
        .map(|((program, kernels), alt)| {
            let unfused = gpusim::time_program(program, kernels, arch, false).gpu_s;
            match alt {
                Some(a) => unfused.min(a.fused_seconds),
                None => unfused,
            }
        })
        .sum()
}

/// Executes a tuned workload with fused kernels where available, for
/// correctness validation (mirrors `TunedWorkload::execute`).
pub fn execute_with_fusion(
    tuned: &TunedWorkload,
    workload: &Workload,
    arch: &GpuArch,
    inputs: &[(String, Tensor)],
) -> Vec<(String, Tensor)> {
    let alts = fuse_alternatives(tuned, arch);
    let mut env: std::collections::BTreeMap<String, Tensor> = inputs.iter().cloned().collect();
    for (sidx, st) in workload.statements.iter().enumerate() {
        let program = &tuned.programs[sidx];
        let operands: Vec<&Tensor> = program
            .input_ids()
            .iter()
            .map(|&id| &env[&program.arrays[id].name])
            .collect();
        let fresh = match &alts[sidx] {
            Some(alt) => gpusim::execute_fused_program(&alt.kernel, program, &operands),
            None => gpusim::execute_program(program, &tuned.kernels[sidx], &operands),
        };
        match env.entry(st.output.name.clone()) {
            std::collections::btree_map::Entry::Occupied(mut o) if st.accumulate => {
                for (a, b) in o.get_mut().data_mut().iter_mut().zip(fresh.data()) {
                    *a += b;
                }
            }
            std::collections::btree_map::Entry::Occupied(mut o) => *o.get_mut() = fresh,
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(fresh);
            }
        }
    }
    workload
        .external_outputs()
        .into_iter()
        .map(|name| {
            let t = env
                .remove(&name)
                .unwrap_or_else(|| panic!("external output {name} was never computed"));
            (name, t)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{TuneParams, WorkloadTuner};

    #[test]
    fn eqn1_fuses_and_wins_when_launch_bound() {
        let w = crate::kernels::eqn1(10);
        let tuner = WorkloadTuner::build(&w);
        let arch = gpusim::gtx980();
        let tuned = tuner.autotune(&arch, TuneParams::quick()).unwrap();
        let alts = fuse_alternatives(&tuned, &arch);
        let alt = alts[0].as_ref().expect("eqn1 chain fuses");
        assert!(
            alt.speedup() > 1.0,
            "fusion must win on the launch-bound Eqn.(1): {}x",
            alt.speedup()
        );
        assert!(best_of_both_seconds(&tuned, &arch) <= tuned.gpu_seconds);
    }

    #[test]
    fn fused_execution_matches_reference_through_pipeline() {
        let w = crate::kernels::eqn1(5);
        let tuner = WorkloadTuner::build(&w);
        let arch = gpusim::k20();
        let tuned = tuner.autotune(&arch, TuneParams::quick()).unwrap();
        let inputs = w.random_inputs(13);
        let expect = w.evaluate_reference(&inputs).unwrap();
        let got = execute_with_fusion(&tuned, &w, &arch, &inputs);
        assert!(expect[0].1.approx_eq(&got[0].1, 1e-10));
    }

    #[test]
    fn single_kernel_statements_do_not_fuse() {
        let w = crate::kernels::nwchem_d1(1, 6);
        let tuner = WorkloadTuner::build(&w);
        let arch = gpusim::k20();
        let tuned = tuner.autotune(&arch, TuneParams::quick()).unwrap();
        let alts = fuse_alternatives(&tuned, &arch);
        assert!(alts[0].is_none());
        // best-of-both degenerates to the tuned time.
        let t = best_of_both_seconds(&tuned, &arch);
        assert!((t - tuned.gpu_seconds).abs() < 1e-12);
    }

    #[test]
    fn fused_cuda_codegen_has_phases() {
        let w = crate::kernels::eqn1(10);
        let tuner = WorkloadTuner::build(&w);
        let arch = gpusim::gtx980();
        let tuned = tuner.autotune(&arch, TuneParams::quick()).unwrap();
        let alts = fuse_alternatives(&tuned, &arch);
        let alt = alts[0].as_ref().unwrap();
        let src = tcr::codegen::cuda_fused(&alt.kernel, &tuned.programs[0]);
        assert!(src.contains("__shared__ double s_"), "{src}");
        assert_eq!(src.matches("__syncthreads()").count(), 2, "{src}");
        assert!(src.contains("__global__ void"), "{src}");
    }
}
