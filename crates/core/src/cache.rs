//! Shared memoization for autotuning evaluations.
//!
//! The autotuning loop asks the same questions many times: SURF re-queries
//! every configuration's features on each model refit, the final noiseless
//! pick re-reads the simulated time of everything the search evaluated, and
//! decomposed tuning shares sub-searches across statements. [`EvalCache`]
//! memoizes both simulated times and feature vectors behind sharded
//! `RwLock` maps so concurrent evaluator threads stay off each other's
//! locks, and counts hits/misses for the search statistics.
//!
//! Keys carry a caller-chosen `salt` alongside the configuration id, so one
//! cache can serve several distinct keyspaces at once (e.g. per-statement
//! local ids in decomposed tuning, or per-architecture times).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::RwLock;

const SHARDS: usize = 16;

/// FNV-1a over the (salt, id) key, used for shard selection.
fn shard_of(salt: u64, id: u128) -> usize {
    let mut h: u64 = 0xCBF29CE484222325;
    for b in salt.to_le_bytes().into_iter().chain(id.to_le_bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001B3);
    }
    (h % SHARDS as u64) as usize
}

/// Sharded concurrent memo map from `(salt, id)` to `V`.
struct ShardedMap<V> {
    shards: Vec<RwLock<HashMap<(u64, u128), V>>>,
}

impl<V: Clone> ShardedMap<V> {
    fn new() -> Self {
        ShardedMap {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
        }
    }

    // Lock poisoning only means another thread panicked mid-access; the
    // memo data itself is always consistent (whole-value inserts), so
    // recover the guard instead of propagating the panic.
    fn get(&self, salt: u64, id: u128) -> Option<V> {
        self.shards[shard_of(salt, id)]
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .get(&(salt, id))
            .cloned()
    }

    fn insert(&self, salt: u64, id: u128, v: V) {
        self.shards[shard_of(salt, id)]
            .write()
            .unwrap_or_else(|p| p.into_inner())
            .insert((salt, id), v);
    }

    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().unwrap_or_else(|p| p.into_inner()).len())
            .sum()
    }
}

/// Outcome of mapping + validating + timing one statement op under one
/// per-op configuration choice. The strings are the exact detail messages
/// the unmemoized pipeline produces; they carry no configuration id, so one
/// entry serves every joint configuration that selects the same choice.
#[derive(Clone, Debug, PartialEq)]
pub enum OpOutcome {
    /// Simulated kernel time in seconds.
    Time(f64),
    /// The op's kernel failed to map (`MapError` display string).
    MapFault(String),
    /// The mapped kernel failed architecture validation (detail string).
    SimFault(String),
}

/// Wall-time spent in each stage of the evaluation hot path, accumulated
/// across threads. Nanosecond sums, monotone; report deltas via
/// [`HotPathSnapshot::delta`].
#[derive(Default)]
pub struct HotPathStats {
    decode_ns: AtomicU64,
    map_ns: AtomicU64,
    sim_ns: AtomicU64,
}

impl HotPathStats {
    pub fn add_decode(&self, ns: u64) {
        self.decode_ns.fetch_add(ns, Ordering::Relaxed);
    }

    pub fn add_map(&self, ns: u64) {
        self.map_ns.fetch_add(ns, Ordering::Relaxed);
    }

    pub fn add_sim(&self, ns: u64) {
        self.sim_ns.fetch_add(ns, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> HotPathSnapshot {
        HotPathSnapshot {
            decode_ns: self.decode_ns.load(Ordering::Relaxed),
            map_ns: self.map_ns.load(Ordering::Relaxed),
            sim_ns: self.sim_ns.load(Ordering::Relaxed),
            predict_ns: 0,
        }
    }
}

/// Point-in-time view of [`HotPathStats`] plus the surrogate's scoring time
/// (tracked by the search backend rather than the cache).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HotPathSnapshot {
    /// Time decoding flat ids into per-op configuration digits.
    pub decode_ns: u64,
    /// Time in `map_kernel` (index mapping + coverage checks).
    pub map_ns: u64,
    /// Time validating + timing mapped kernels in the GPU model.
    pub sim_ns: u64,
    /// Time scoring pool candidates with the fitted forest.
    pub predict_ns: u64,
}

impl HotPathSnapshot {
    /// Stage times elapsed since `earlier` (saturating).
    pub fn delta(&self, earlier: &HotPathSnapshot) -> HotPathSnapshot {
        HotPathSnapshot {
            decode_ns: self.decode_ns.saturating_sub(earlier.decode_ns),
            map_ns: self.map_ns.saturating_sub(earlier.map_ns),
            sim_ns: self.sim_ns.saturating_sub(earlier.sim_ns),
            predict_ns: self.predict_ns.saturating_sub(earlier.predict_ns),
        }
    }
}

/// Memo cache for simulated times and feature vectors, shared across SURF
/// batches, the final selection pass, and per-statement sub-searches.
///
/// A third keyspace memoizes per-op outcomes ([`OpOutcome`]): the joint
/// configuration space is a Cartesian product of per-op choices, so two
/// distinct whole-program configurations usually share most of their per-op
/// sub-configurations. Caching at op granularity turns whole-config misses
/// into sums of per-op hits.
pub struct EvalCache {
    times: ShardedMap<f64>,
    features: ShardedMap<Vec<f64>>,
    ops: ShardedMap<OpOutcome>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    time_hits: AtomicUsize,
    time_misses: AtomicUsize,
    op_hits: AtomicUsize,
    op_misses: AtomicUsize,
    hot: HotPathStats,
}

impl Default for EvalCache {
    fn default() -> Self {
        Self::new()
    }
}

impl EvalCache {
    pub fn new() -> Self {
        EvalCache {
            times: ShardedMap::new(),
            features: ShardedMap::new(),
            ops: ShardedMap::new(),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            time_hits: AtomicUsize::new(0),
            time_misses: AtomicUsize::new(0),
            op_hits: AtomicUsize::new(0),
            op_misses: AtomicUsize::new(0),
            hot: HotPathStats::default(),
        }
    }

    /// Memoized simulated time of `(salt, id)`. The compute runs outside
    /// any lock, so a slow simulation never blocks unrelated lookups.
    pub fn time(&self, salt: u64, id: u128, compute: impl FnOnce() -> f64) -> f64 {
        if let Some(t) = self.times.get(salt, id) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.time_hits.fetch_add(1, Ordering::Relaxed);
            return t;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.time_misses.fetch_add(1, Ordering::Relaxed);
        let t = compute();
        self.times.insert(salt, id, t);
        t
    }

    /// Memoized per-op outcome of `(salt, key)`. Counted separately from
    /// the whole-configuration keyspaces so the two hit rates stay
    /// comparable in the search statistics.
    pub fn op_outcome(
        &self,
        salt: u64,
        key: u128,
        compute: impl FnOnce() -> OpOutcome,
    ) -> OpOutcome {
        if let Some(o) = self.ops.get(salt, key) {
            self.op_hits.fetch_add(1, Ordering::Relaxed);
            return o;
        }
        self.op_misses.fetch_add(1, Ordering::Relaxed);
        let o = compute();
        self.ops.insert(salt, key, o.clone());
        o
    }

    /// Memoized feature vector of `(salt, id)`.
    pub fn features(&self, salt: u64, id: u128, compute: impl FnOnce() -> Vec<f64>) -> Vec<f64> {
        if let Some(x) = self.features.get(salt, id) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return x;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let x = compute();
        self.features.insert(salt, id, x.clone());
        x
    }

    /// `(hits, misses)` so far, over times and features combined.
    pub fn stats(&self) -> (usize, usize) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// `(hits, misses)` over whole-configuration times only.
    pub fn time_stats(&self) -> (usize, usize) {
        (
            self.time_hits.load(Ordering::Relaxed),
            self.time_misses.load(Ordering::Relaxed),
        )
    }

    /// `(hits, misses)` over per-op outcomes only.
    pub fn op_stats(&self) -> (usize, usize) {
        (
            self.op_hits.load(Ordering::Relaxed),
            self.op_misses.load(Ordering::Relaxed),
        )
    }

    /// Hot-path stage timers shared by every evaluator on this cache.
    pub fn hot(&self) -> &HotPathStats {
        &self.hot
    }

    /// Distinct entries currently memoized (times + features).
    pub fn len(&self) -> usize {
        self.times.len() + self.features.len()
    }

    /// Distinct simulated times memoized — one per simulator call made
    /// through this cache.
    pub fn times_len(&self) -> usize {
        self.times.len()
    }

    /// Distinct feature vectors memoized.
    pub fn features_len(&self) -> usize {
        self.features.len()
    }

    /// Distinct per-op outcomes memoized.
    pub fn ops_len(&self) -> usize {
        self.ops.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn second_lookup_hits() {
        let cache = EvalCache::new();
        let computed = AtomicUsize::new(0);
        let f = || {
            computed.fetch_add(1, Ordering::Relaxed);
            1.5
        };
        assert_eq!(cache.time(0, 42, f), 1.5);
        assert_eq!(cache.time(0, 42, f), 1.5);
        assert_eq!(computed.load(Ordering::Relaxed), 1);
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn salts_are_distinct_keyspaces() {
        let cache = EvalCache::new();
        assert_eq!(cache.time(1, 7, || 1.0), 1.0);
        assert_eq!(cache.time(2, 7, || 2.0), 2.0);
        assert_eq!(cache.stats(), (0, 2));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn features_memoized_independently_of_times() {
        let cache = EvalCache::new();
        let x = cache.features(0, 5, || vec![1.0, 0.0]);
        assert_eq!(cache.features(0, 5, || unreachable!()), x);
        cache.time(0, 5, || 3.0);
        assert_eq!(cache.stats(), (1, 2));
    }

    #[test]
    fn op_outcomes_are_a_separate_keyspace_with_separate_counters() {
        let cache = EvalCache::new();
        // Same (salt, key) as a time entry must not collide.
        cache.time(3, 9, || 1.25);
        let o = cache.op_outcome(3, 9, || OpOutcome::SimFault("too wide".into()));
        assert_eq!(o, OpOutcome::SimFault("too wide".into()));
        assert_eq!(cache.op_outcome(3, 9, || unreachable!()), o);
        assert_eq!(cache.op_stats(), (1, 1));
        assert_eq!(cache.time_stats(), (0, 1));
        // Combined whole-config stats are untouched by per-op traffic.
        assert_eq!(cache.stats(), (0, 1));
        assert_eq!(cache.ops_len(), 1);
        assert_eq!(cache.times_len(), 1);
    }

    #[test]
    fn hot_path_snapshot_deltas() {
        let cache = EvalCache::new();
        cache.hot().add_decode(5);
        cache.hot().add_map(7);
        let before = cache.hot().snapshot();
        cache.hot().add_map(10);
        cache.hot().add_sim(3);
        let d = cache.hot().snapshot().delta(&before);
        assert_eq!((d.decode_ns, d.map_ns, d.sim_ns), (0, 10, 3));
    }

    #[test]
    fn concurrent_readers_share_entries() {
        let cache = EvalCache::new();
        let calls = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for id in 0..100u128 {
                        cache.time(0, id, || {
                            calls.fetch_add(1, Ordering::Relaxed);
                            id as f64
                        });
                    }
                });
            }
        });
        // Every entry exists exactly once; racy duplicate computes are
        // possible but the map stays consistent.
        for id in 0..100u128 {
            assert_eq!(cache.time(0, id, || unreachable!()), id as f64);
        }
    }
}
