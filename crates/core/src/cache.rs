//! Shared memoization for autotuning evaluations.
//!
//! The autotuning loop asks the same questions many times: SURF re-queries
//! every configuration's features on each model refit, the final noiseless
//! pick re-reads the simulated time of everything the search evaluated, and
//! decomposed tuning shares sub-searches across statements. [`EvalCache`]
//! memoizes both simulated times and feature vectors behind sharded
//! `RwLock` maps so concurrent evaluator threads stay off each other's
//! locks, and counts hits/misses for the search statistics.
//!
//! Keys carry a caller-chosen `salt` alongside the configuration id, so one
//! cache can serve several distinct keyspaces at once (e.g. per-statement
//! local ids in decomposed tuning, or per-architecture times).

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::RwLock;

const SHARDS: usize = 16;

/// FNV-1a over the (salt, id) key, used for shard selection.
fn shard_of(salt: u64, id: u128) -> usize {
    let mut h: u64 = 0xCBF29CE484222325;
    for b in salt.to_le_bytes().into_iter().chain(id.to_le_bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001B3);
    }
    (h % SHARDS as u64) as usize
}

/// Sharded concurrent memo map from `(salt, id)` to `V`.
struct ShardedMap<V> {
    shards: Vec<RwLock<HashMap<(u64, u128), V>>>,
}

impl<V: Clone> ShardedMap<V> {
    fn new() -> Self {
        ShardedMap {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
        }
    }

    // Lock poisoning only means another thread panicked mid-access; the
    // memo data itself is always consistent (whole-value inserts), so
    // recover the guard instead of propagating the panic.
    fn get(&self, salt: u64, id: u128) -> Option<V> {
        self.shards[shard_of(salt, id)]
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .get(&(salt, id))
            .cloned()
    }

    fn insert(&self, salt: u64, id: u128, v: V) {
        self.shards[shard_of(salt, id)]
            .write()
            .unwrap_or_else(|p| p.into_inner())
            .insert((salt, id), v);
    }

    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().unwrap_or_else(|p| p.into_inner()).len())
            .sum()
    }
}

/// Memo cache for simulated times and feature vectors, shared across SURF
/// batches, the final selection pass, and per-statement sub-searches.
pub struct EvalCache {
    times: ShardedMap<f64>,
    features: ShardedMap<Vec<f64>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl Default for EvalCache {
    fn default() -> Self {
        Self::new()
    }
}

impl EvalCache {
    pub fn new() -> Self {
        EvalCache {
            times: ShardedMap::new(),
            features: ShardedMap::new(),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    /// Memoized simulated time of `(salt, id)`. The compute runs outside
    /// any lock, so a slow simulation never blocks unrelated lookups.
    pub fn time(&self, salt: u64, id: u128, compute: impl FnOnce() -> f64) -> f64 {
        if let Some(t) = self.times.get(salt, id) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return t;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let t = compute();
        self.times.insert(salt, id, t);
        t
    }

    /// Memoized feature vector of `(salt, id)`.
    pub fn features(&self, salt: u64, id: u128, compute: impl FnOnce() -> Vec<f64>) -> Vec<f64> {
        if let Some(x) = self.features.get(salt, id) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return x;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let x = compute();
        self.features.insert(salt, id, x.clone());
        x
    }

    /// `(hits, misses)` so far, over times and features combined.
    pub fn stats(&self) -> (usize, usize) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Distinct entries currently memoized (times + features).
    pub fn len(&self) -> usize {
        self.times.len() + self.features.len()
    }

    /// Distinct simulated times memoized — one per simulator call made
    /// through this cache.
    pub fn times_len(&self) -> usize {
        self.times.len()
    }

    /// Distinct feature vectors memoized.
    pub fn features_len(&self) -> usize {
        self.features.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn second_lookup_hits() {
        let cache = EvalCache::new();
        let computed = AtomicUsize::new(0);
        let f = || {
            computed.fetch_add(1, Ordering::Relaxed);
            1.5
        };
        assert_eq!(cache.time(0, 42, f), 1.5);
        assert_eq!(cache.time(0, 42, f), 1.5);
        assert_eq!(computed.load(Ordering::Relaxed), 1);
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn salts_are_distinct_keyspaces() {
        let cache = EvalCache::new();
        assert_eq!(cache.time(1, 7, || 1.0), 1.0);
        assert_eq!(cache.time(2, 7, || 2.0), 2.0);
        assert_eq!(cache.stats(), (0, 2));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn features_memoized_independently_of_times() {
        let cache = EvalCache::new();
        let x = cache.features(0, 5, || vec![1.0, 0.0]);
        assert_eq!(cache.features(0, 5, || unreachable!()), x);
        cache.time(0, 5, || 3.0);
        assert_eq!(cache.stats(), (1, 2));
    }

    #[test]
    fn concurrent_readers_share_entries() {
        let cache = EvalCache::new();
        let calls = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for id in 0..100u128 {
                        cache.time(0, id, || {
                            calls.fetch_add(1, Ordering::Relaxed);
                            id as f64
                        });
                    }
                });
            }
        });
        // Every entry exists exactly once; racy duplicate computes are
        // possible but the map stays consistent.
        for id in 0..100u128 {
            assert_eq!(cache.time(0, id, || unreachable!()), id as f64);
        }
    }
}
