//! Barracuda — an autotuning pipeline for small tensor contractions on
//! (simulated) GPUs.
//!
//! This is the reproduction of *Nelson et al., "Generating Efficient Tensor
//! Contractions for GPUs", ICPP 2015*. The pipeline mirrors Figure 1 of the
//! paper:
//!
//! ```text
//!  DSL input ──OCTOPI──▶ versions ──TCR──▶ search space ──CUDA-CHiLL──▶ variants
//!                                                 │                        │
//!                                                 └────────── SURF ◀───────┘
//! ```
//!
//! - [`workload::Workload`] holds parsed summation statements plus extents;
//! - [`variant::StatementTuner`] enumerates OCTOPI factorizations of one
//!   statement, lowers each to a TCR program and builds its GPU search
//!   space;
//! - [`pipeline::WorkloadTuner`] joins the statements into one configuration
//!   space and runs SURF against the GPU simulator, producing a
//!   [`pipeline::TunedWorkload`] with kernels, timings, CUDA source and
//!   search statistics;
//! - [`openacc`] builds the paper's OpenACC-naive / OpenACC-optimized
//!   comparison mappings, [`cpu`] the sequential / OpenMP baselines;
//! - [`kernels`] defines every benchmark of Table I (Eqn. (1), Lg3, Lg3t,
//!   TCE ex, the NWChem S1/D1/D2 kernel families) and [`nekbone`] the
//!   conjugate-gradient proxy application.
//!
//! # Quickstart
//!
//! ```
//! use barracuda::prelude::*;
//!
//! let workload = Workload::parse(
//!     "mm",
//!     "C[i k] = Sum([j], A[i j] * B[j k])",
//!     &tensor::index::uniform_dims(&["i", "j", "k"], 16),
//! )
//! .unwrap();
//! let tuner = WorkloadTuner::build(&workload);
//! let arch = gpusim::gtx980();
//! let tuned = tuner.autotune(&arch, TuneParams::quick()).unwrap();
//! assert!(tuned.gflops() > 0.0);
//! println!("{}", tuned.cuda_source());
//! ```
//!
//! Every fallible stage returns a typed [`error::BarracudaError`]; versions
//! and configurations that fail are quarantined (see [`quarantine`]) and the
//! search continues over survivors, degrading gracefully instead of
//! panicking.

pub mod backend;
pub mod cache;
pub mod cpu;
pub mod error;
pub mod fusionopt;
pub mod json;
pub mod kernels;
pub mod nekbone;
pub mod objective;
pub mod openacc;
pub mod pipeline;
pub mod plan;
pub mod quarantine;
pub mod report;
pub mod serve;
pub mod session;
pub mod stages;
pub mod store;
pub mod variant;
pub mod workload;

pub use backend::{
    backend_by_key, backend_keys, builtin_backends, tune_all_backends, tune_all_backends_with,
    Backend, BackendCaps, BackendSet, BackendTuning,
};
pub use cache::EvalCache;
pub use error::{BarracudaError, Result};
pub use fusionopt::{fuse_alternatives, FusedAlternative};
pub use objective::{BudgetMode, Objective};
pub use pipeline::{SearchStats, TuneParams, TunedWorkload, TunerEvaluator, WorkloadTuner};
pub use plan::{PlanChoice, PlanProvenance, TunedPlan, PLAN_SCHEMA_READABLE, PLAN_SCHEMA_VERSION};
pub use quarantine::{QuarantineEntry, QuarantineReport, QuarantineStage};
pub use serve::{
    AdmissionGate, ChaosPlan, Daemon, Listen, MetricsSnapshot, ServeMetrics, ServeOptions,
    ServedTune,
};
pub use session::{PlanSource, SessionOutcome, SweepOutcome, TuningSession};
pub use store::{
    PlanStore, StoreEntry, StoreFault, StoreFaultPlan, StoreKey, StoreOptions, StoreScan,
};
pub use variant::{StatementTuner, Variant};
pub use workload::Workload;

/// Convenient glob-import for examples and applications.
pub mod prelude {
    pub use crate::error::BarracudaError;
    pub use crate::kernels;
    pub use crate::objective::{BudgetMode, Objective};
    pub use crate::openacc::{openacc_naive, openacc_optimized};
    pub use crate::pipeline::{TuneParams, TunedWorkload, WorkloadTuner};
    pub use crate::quarantine::{QuarantineReport, QuarantineStage};
    pub use crate::variant::{StatementTuner, Variant};
    pub use crate::workload::Workload;
}
