//! `barracuda` — command-line front end to the autotuning pipeline.
//!
//! ```text
//! barracuda tune <file.dsl | builtin:NAME> [options]
//! barracuda info <file.dsl | builtin:NAME> [options]
//! barracuda replay <plan.json> [--validate] [--emit cuda]
//! barracuda replay <file.dsl | builtin:NAME> --store DIR [--backend KEY]
//! barracuda plans <list|gc> --store DIR [--schema-older-than V] [--corrupt]
//! barracuda plans <show|path> <file.dsl | builtin:NAME> --store DIR
//! barracuda serve [--store DIR] [--listen stdio|tcp:HOST:PORT|unix:PATH]
//!                 [--max-searches N] [--queue N] [--fsync]
//! barracuda backends
//! barracuda benchmarks
//!
//! options:
//!   --arch gtx980|k20|c2050|all   target architecture (default gtx980,
//!                                 or the first loaded descriptor);
//!                                 `all` sweeps every searchable backend
//!                                 in the loaded set
//!   --arch-file PATH              load one architecture descriptor
//!                                 (TOML; repeatable) into the backend
//!                                 set — its key then works anywhere a
//!                                 built-in key does, and its plans are
//!                                 addressed by the descriptor digest
//!   --arch-dir DIR                load every `*.toml` descriptor in DIR
//!                                 (sorted by file name)
//!   --backend KEY|all             target backend from the registry (see
//!                                 `barracuda backends`); GPU keys behave
//!                                 like --arch, CPU/OpenACC keys report
//!                                 modeled baseline times, `all` sweeps
//!                                 every backend over one shared cache
//!   --store DIR                   content-addressed plan store: `tune`
//!                                 becomes store-first (hit -> replay with
//!                                 0 search evaluations, bit-identical
//!                                 timing; miss -> search then persist),
//!                                 `replay` takes a workload spec instead
//!                                 of a path, `plans` manages the entries
//!   --schema-older-than V         `plans gc`: evict entries whose plan
//!                                 schema is below V (default: the
//!                                 current schema)
//!   --corrupt                     `plans gc`: also remove `*.corrupt`
//!                                 quarantine sidecars and orphaned
//!                                 `*.partial` temp files
//!   --schema V                    `plans path`: address an entry written
//!                                 with schema V instead of the current
//!   --save-plan PATH              persist the winning configuration +
//!                                 provenance as versioned JSON (single
//!                                 GPU target only); `barracuda replay`
//!                                 re-maps and re-times it with no search
//!   --dim IDX=EXT                 extent for one index (repeatable)
//!   --dims N                      extent for every undeclared index
//!   --evals N                     SURF evaluation budget (default 1200)
//!   --objective time|memory|balanced
//!                                 search objective preset (default time:
//!                                 rank candidates by simulated time only,
//!                                 bit-identical to historical output);
//!                                 memory and balanced also weigh peak
//!                                 temporary bytes and global read/write
//!                                 volume into the score
//!   --mem-budget BYTES            hard cap on modeled peak temporary
//!                                 bytes: oversized versions are pruned
//!                                 before lowering/evaluation and the
//!                                 final pick never exceeds the budget
//!                                 (typed search failure, exit 8, when
//!                                 nothing fits); `replay` validates the
//!                                 requested objective against the plan's
//!   --mem-weight W                override the objective's weight on
//!                                 peak temporary MiB
//!   --rw-weight W                 override the objective's weight on
//!                                 global read/write MiB
//!   --mem-penalize                score over-budget candidates with a
//!                                 large penalty instead of pruning them
//!                                 (they still train the surrogate; the
//!                                 final pick still respects the budget)
//!   --quick                       small search budget (tests/demos)
//!   --deadline S                  wall-clock search deadline in seconds
//!   --min-survivors F             stop early when fewer than F of the
//!                                 attempts survive quarantine (0..1)
//!   --inject-faults RATE          deterministically fail RATE of the
//!                                 evaluations (resilience testing)
//!   --fault-seed N                seed for --inject-faults (default 7)
//!   --strict                      exit 9 when the search degrades
//!                                 (budget/deadline/survivor threshold)
//!   --listen SPEC                 `serve` transport: stdio (default,
//!                                 sequential), tcp:HOST:PORT or
//!                                 unix:PATH (thread per connection;
//!                                 identical concurrent requests coalesce
//!                                 into one search)
//!   --max-searches N              `serve`: cold-search permit pool size
//!                                 (default: available parallelism);
//!                                 store hits bypass the pool, coalesced
//!                                 followers ride their leader's permit
//!   --queue N                     `serve`: wait-queue depth for cold
//!                                 searches (default: --max-searches);
//!                                 overflow is shed with typed busy
//!                                 (exit 13, retry_after_ms on the wire)
//!   --fsync                       `serve`: fsync plan-store writes
//!                                 (survive power loss, not just crash)
//!   --emit cuda|tcr|annotation    artifact to print after tuning
//!   --validate                    execute the tuned kernels against the
//!                                 reference evaluator before reporting
//!   --fused                       also evaluate the fused alternative
//!   --explain                     per-kernel timing breakdown + which
//!                                 parameters the surrogate found important
//! ```
//!
//! Exit codes: 0 success, 1 generic failure, 2 usage; typed pipeline
//! failures exit with their stage code (3 parse, 4 validation,
//! 5 factorization, 6 mapping, 7 simulation, 8 search, 10 plan,
//! 11 store, 12 serve, 13 busy, 14 descriptor); 9 means the run
//! completed but degraded under `--strict`.
//! A bad plan *artifact* — unsupported schema version, tampered workload
//! fingerprint, foreign backend cache salt — is the exit-10 case; a bad
//! plan *store* — unreadable directory, an injected I/O fault — is the
//! exit-11 case (a corrupt *entry* is quarantined to a `*.corrupt`
//! sidecar and treated as a miss instead); a daemon that cannot bind its
//! transport is the exit-12 case (in-protocol failures answer `ok:false`
//! on the wire instead of killing the daemon); an overloaded or draining
//! daemon sheds tune requests with the typed busy rejection — exit 13,
//! `retry_after_ms` on the wire — instead of queueing them forever.
//!
//! Built-in workloads (for `builtin:NAME`): eqn1, lg3, lg3t, tce,
//! s1_1..s1_9, d1_1..d1_9, d2_1..d2_9.

use barracuda::prelude::*;
use barracuda::report::fmt_f;
use barracuda::{
    BackendSet, EvalCache, PlanStore, TunedPlan, TunedWorkload, TuningSession, PLAN_SCHEMA_VERSION,
};
use std::process::ExitCode;
use std::sync::Arc;
use surf::{FaultPlan, SearchStatus};
use tensor::IndexMap;

struct Options {
    arch: Option<String>,
    arch_files: Vec<String>,
    arch_dir: Option<String>,
    backend: Option<String>,
    store: Option<String>,
    schema_older_than: Option<u64>,
    schema: Option<u64>,
    save_plan: Option<String>,
    dims: IndexMap,
    default_dim: Option<usize>,
    evals: usize,
    quick: bool,
    deadline: Option<f64>,
    min_survivors: f64,
    inject_faults: Option<f64>,
    fault_seed: u64,
    strict: bool,
    emit: Option<String>,
    validate: bool,
    fused: bool,
    explain: bool,
    listen: Option<String>,
    max_searches: Option<usize>,
    queue: Option<usize>,
    fsync: bool,
    gc_corrupt: bool,
    /// The search objective assembled from `--objective`, `--mem-budget`,
    /// `--mem-weight`, `--rw-weight` and `--mem-penalize`. Defaults to
    /// time-only, which reproduces the historical ranking bit-for-bit.
    objective: Objective,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            arch: None,
            arch_files: Vec::new(),
            arch_dir: None,
            backend: None,
            store: None,
            schema_older_than: None,
            schema: None,
            save_plan: None,
            dims: IndexMap::new(),
            default_dim: None,
            evals: 1200,
            quick: false,
            deadline: None,
            min_survivors: 0.0,
            inject_faults: None,
            fault_seed: 7,
            strict: false,
            emit: None,
            validate: false,
            fused: false,
            explain: false,
            listen: None,
            max_searches: None,
            queue: None,
            fsync: false,
            gc_corrupt: false,
            objective: Objective::time_only(),
        }
    }
}

/// Everything the CLI can fail with, mapped onto the documented exit codes.
enum CliError {
    /// Bad command line: exit 2 (after printing usage).
    Usage(String),
    /// A typed pipeline failure: exits with the stage's own code (3..8).
    Pipeline(BarracudaError),
    /// Anything else (I/O, validation mismatch): exit 1.
    Other(String),
    /// `--strict` and the search degraded: exit 9.
    StrictDegraded(String),
}

impl From<BarracudaError> for CliError {
    fn from(e: BarracudaError) -> Self {
        CliError::Pipeline(e)
    }
}

impl CliError {
    fn report(self) -> ExitCode {
        match self {
            CliError::Usage(msg) => {
                eprintln!("error: {msg}");
                usage()
            }
            CliError::Pipeline(e) => {
                eprintln!("error[{}]: {e}", e.stage());
                ExitCode::from(e.exit_code() as u8)
            }
            CliError::Other(msg) => {
                eprintln!("error: {msg}");
                ExitCode::FAILURE
            }
            CliError::StrictDegraded(reason) => {
                eprintln!("error: search degraded under --strict: {reason}");
                ExitCode::from(9)
            }
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: barracuda <tune|info|replay|plans|serve|backends|benchmarks> \
         [<file.dsl>|builtin:NAME|<plan.json>] \
         [--arch A] [--arch-file PATH]... [--arch-dir DIR] \
         [--backend KEY|all] [--store DIR] [--save-plan PATH] \
         [--dim i=10]... [--dims N] [--evals N] [--quick] \
         [--objective time|memory|balanced] [--mem-budget BYTES] \
         [--mem-weight W] [--rw-weight W] [--mem-penalize] \
         [--deadline S] [--min-survivors F] [--inject-faults RATE] \
         [--fault-seed N] [--strict] \
         [--emit cuda|cufile|tcr|annotation] [--validate] [--fused]\n\
         \x20      barracuda plans <list|gc> --store DIR [--schema-older-than V] [--corrupt]\n\
         \x20      barracuda plans <show|path> <workload> --store DIR [--backend KEY] [--schema V]\n\
         \x20      barracuda serve [--store DIR] [--listen stdio|tcp:HOST:PORT|unix:PATH] \
         [--backend KEY] [--quick] [--evals N] [--deadline S] \
         [--max-searches N] [--queue N] [--fsync]"
    );
    ExitCode::from(2)
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut o = Options::default();
    let mut objective_name: Option<String> = None;
    let mut mem_weight: Option<f64> = None;
    let mut rw_weight: Option<f64> = None;
    let mut mem_budget: Option<u64> = None;
    let mut mem_penalize = false;
    let weight = |flag: &str, raw: &str| -> Result<f64, String> {
        let w: f64 = raw.parse().map_err(|_| format!("bad {flag} weight"))?;
        if !w.is_finite() || w < 0.0 {
            return Err(format!("{flag} must be finite and non-negative"));
        }
        Ok(w)
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--arch" => o.arch = Some(it.next().ok_or("--arch needs a value")?.clone()),
            "--arch-file" => o
                .arch_files
                .push(it.next().ok_or("--arch-file needs a path")?.clone()),
            "--arch-dir" => {
                o.arch_dir = Some(it.next().ok_or("--arch-dir needs a directory")?.clone())
            }
            "--backend" => o.backend = Some(it.next().ok_or("--backend needs a key")?.clone()),
            "--store" => o.store = Some(it.next().ok_or("--store needs a directory")?.clone()),
            "--schema-older-than" => {
                o.schema_older_than = Some(
                    it.next()
                        .ok_or("--schema-older-than needs a version")?
                        .parse()
                        .map_err(|_| "bad schema version")?,
                )
            }
            "--schema" => {
                o.schema = Some(
                    it.next()
                        .ok_or("--schema needs a version")?
                        .parse()
                        .map_err(|_| "bad schema version")?,
                )
            }
            "--save-plan" => {
                o.save_plan = Some(it.next().ok_or("--save-plan needs a path")?.clone())
            }
            "--dim" => {
                let spec = it.next().ok_or("--dim needs IDX=EXT")?;
                let (name, ext) = spec.split_once('=').ok_or("--dim needs IDX=EXT")?;
                let ext: usize = ext.parse().map_err(|_| "bad extent")?;
                o.dims.insert(name.into(), ext);
            }
            "--dims" => {
                o.default_dim = Some(
                    it.next()
                        .ok_or("--dims needs N")?
                        .parse()
                        .map_err(|_| "bad N")?,
                )
            }
            "--evals" => {
                o.evals = it
                    .next()
                    .ok_or("--evals needs N")?
                    .parse()
                    .map_err(|_| "bad N")?
            }
            "--quick" => o.quick = true,
            "--deadline" => {
                o.deadline = Some(
                    it.next()
                        .ok_or("--deadline needs seconds")?
                        .parse()
                        .map_err(|_| "bad deadline")?,
                )
            }
            "--min-survivors" => {
                let f: f64 = it
                    .next()
                    .ok_or("--min-survivors needs a fraction")?
                    .parse()
                    .map_err(|_| "bad fraction")?;
                if !(0.0..=1.0).contains(&f) {
                    return Err("--min-survivors must be in 0..1".to_string());
                }
                o.min_survivors = f;
            }
            "--inject-faults" => {
                let r: f64 = it
                    .next()
                    .ok_or("--inject-faults needs a rate")?
                    .parse()
                    .map_err(|_| "bad rate")?;
                if !(0.0..=1.0).contains(&r) {
                    return Err("--inject-faults rate must be in 0..1".to_string());
                }
                o.inject_faults = Some(r);
            }
            "--fault-seed" => {
                o.fault_seed = it
                    .next()
                    .ok_or("--fault-seed needs N")?
                    .parse()
                    .map_err(|_| "bad seed")?
            }
            "--strict" => o.strict = true,
            "--listen" => o.listen = Some(it.next().ok_or("--listen needs a spec")?.clone()),
            "--max-searches" => {
                let n: usize = it
                    .next()
                    .ok_or("--max-searches needs N")?
                    .parse()
                    .map_err(|_| "bad N")?;
                if n == 0 {
                    return Err("--max-searches must be at least 1".to_string());
                }
                o.max_searches = Some(n);
            }
            "--queue" => {
                o.queue = Some(
                    it.next()
                        .ok_or("--queue needs N")?
                        .parse()
                        .map_err(|_| "bad N")?,
                )
            }
            "--fsync" => o.fsync = true,
            "--corrupt" => o.gc_corrupt = true,
            "--emit" => o.emit = Some(it.next().ok_or("--emit needs a kind")?.clone()),
            "--validate" => o.validate = true,
            "--fused" => o.fused = true,
            "--explain" => o.explain = true,
            "--objective" => {
                objective_name = Some(it.next().ok_or("--objective needs a preset")?.clone())
            }
            "--mem-weight" => {
                mem_weight = Some(weight(
                    "--mem-weight",
                    it.next().ok_or("--mem-weight needs W")?,
                )?)
            }
            "--rw-weight" => {
                rw_weight = Some(weight(
                    "--rw-weight",
                    it.next().ok_or("--rw-weight needs W")?,
                )?)
            }
            "--mem-budget" => {
                mem_budget = Some(
                    it.next()
                        .ok_or("--mem-budget needs BYTES")?
                        .parse()
                        .map_err(|_| "bad --mem-budget byte count")?,
                )
            }
            "--mem-penalize" => mem_penalize = true,
            other => return Err(format!("unknown option {other}")),
        }
    }
    // Assemble the objective from its flags: preset first, then explicit
    // weight/budget overrides on top of it.
    let mut obj = match objective_name.as_deref() {
        None => Objective::time_only(),
        Some(name) => Objective::preset(name)
            .ok_or_else(|| format!("unknown objective preset {name} (time|memory|balanced)"))?,
    };
    if let Some(w) = mem_weight {
        obj.mem_weight = w;
    }
    if let Some(w) = rw_weight {
        obj.rw_weight = w;
    }
    if let Some(b) = mem_budget {
        obj.mem_budget = Some(b);
    }
    if mem_penalize {
        if obj.mem_budget.is_none() {
            return Err("--mem-penalize needs --mem-budget".to_string());
        }
        obj.budget_mode = BudgetMode::Penalize;
    }
    o.objective = obj;
    Ok(o)
}

fn builtin(name: &str) -> Option<Workload> {
    barracuda::kernels::builtin(name)
}

fn load_workload(spec: &str, o: &Options) -> Result<Workload, CliError> {
    if let Some(name) = spec.strip_prefix("builtin:") {
        return builtin(name)
            .ok_or_else(|| CliError::Other(format!("unknown builtin workload {name}")));
    }
    let src = std::fs::read_to_string(spec)
        .map_err(|e| CliError::Other(format!("cannot read {spec}: {e}")))?;
    // Collect indices so --dims can fill the gaps.
    let prog = octopi::parse_program(&src).map_err(|e| {
        CliError::Pipeline(BarracudaError::Parse {
            workload: "cli".to_string(),
            offset: e.offset,
            message: e.message,
        })
    })?;
    let mut dims = o.dims.clone();
    if let Some(n) = o.default_dim {
        for st in &prog.statements {
            for ix in st.all_indices() {
                dims.entry(ix).or_insert(n);
            }
        }
    }
    Ok(Workload::parse("cli", &src, &dims)?)
}

/// The backend set every command resolves against: the built-ins plus
/// every descriptor named by `--arch-file` / `--arch-dir`. Also returns
/// the keys the flags loaded, in load order — the first one is the
/// default target when no `--arch`/`--backend` was given.
fn backend_set_for(o: &Options) -> Result<(Arc<BackendSet>, Vec<String>), CliError> {
    let mut set = BackendSet::builtin();
    let mut loaded = Vec::new();
    for file in &o.arch_files {
        loaded.push(set.load_arch_file(std::path::Path::new(file))?);
    }
    if let Some(dir) = &o.arch_dir {
        loaded.extend(set.load_arch_dir(std::path::Path::new(dir))?);
    }
    Ok((Arc::new(set), loaded))
}

/// The architecture key targeted when `--arch` was not given: the first
/// descriptor `--arch-file`/`--arch-dir` loaded, else gtx980.
fn default_target(o: &Options, loaded: &[String]) -> String {
    o.arch
        .clone()
        .or_else(|| loaded.first().cloned())
        .unwrap_or_else(|| "gtx980".to_string())
}

fn archs_for(set: &BackendSet, name: &str) -> Result<Vec<gpusim::GpuArch>, CliError> {
    if name == "all" {
        return Ok(set
            .iter()
            .filter(|b| b.caps().searchable)
            .filter_map(|b| b.arch().cloned())
            .collect());
    }
    let unknown = || {
        let keys: Vec<&str> = set
            .iter()
            .filter(|b| b.caps().searchable)
            .map(|b| b.key())
            .collect();
        CliError::Usage(format!(
            "unknown architecture {name} ({}|all)",
            keys.join("|")
        ))
    };
    let b = set.get(name).ok_or_else(unknown)?;
    match b.arch() {
        Some(a) if b.caps().searchable => Ok(vec![a.clone()]),
        _ => Err(unknown()),
    }
}

fn params_for(o: &Options) -> TuneParams {
    let mut p = if o.quick {
        TuneParams::quick()
    } else {
        TuneParams::paper()
    };
    p.surf.max_evals = o.evals;
    p.wall_deadline_s = o.deadline;
    p.min_survivor_fraction = o.min_survivors;
    p.objective = o.objective;
    if let Some(rate) = o.inject_faults {
        p.fault_injection = Some(FaultPlan::mixed(rate, o.fault_seed));
    }
    p
}

fn cmd_info(w: &Workload) {
    println!("workload with {} statement(s):", w.statements.len());
    for st in &w.statements {
        println!("  {st}");
    }
    println!("external inputs : {:?}", w.external_inputs());
    println!("external outputs: {:?}", w.external_outputs());
    println!("naive flops     : {}", w.naive_flops());
    let tuner = WorkloadTuner::build(w);
    for (i, st) in tuner.statements.iter().enumerate() {
        println!(
            "statement {i}: {} OCTOPI version(s), {} configurations",
            st.variants.len(),
            st.total()
        );
        for (v, reason) in &st.quarantined_versions {
            println!("  version {v} quarantined: {reason}");
        }
        if let Some(best) = st.variants.first() {
            println!(
                "  best version: {} flops in {} kernel(s), temps {} elements",
                best.factorization.flops,
                best.program.ops.len(),
                best.factorization.temp_elems
            );
        }
    }
    println!("joint space: {} configurations", tuner.total_space());
    // Cross-statement common subexpressions (TCE-style CSE).
    if w.statements.len() > 1 {
        let chosen: Vec<(&octopi::Contraction, &octopi::Factorization)> = tuner
            .statements
            .iter()
            .zip(&w.statements)
            .map(|(st, c)| (c, &st.variants[0].factorization))
            .collect();
        let cse = octopi::analyze_cse(&chosen, &w.dims);
        if cse.matches.is_empty() {
            println!("cross-statement CSE: none");
        } else {
            println!(
                "cross-statement CSE: {} reuse(s), {:.1}% of flops",
                cse.matches.len(),
                cse.savings() * 100.0
            );
        }
    }
}

/// Modeled-baseline path for non-searchable backends (`cpu1`, `cpu4`,
/// `acc-naive`, `acc-opt`): no SURF run of their own — `acc-opt` first
/// tunes on its reference architecture to borrow a configuration.
fn cmd_tune_baseline(
    w: &Workload,
    tuner: &WorkloadTuner,
    backend: &dyn barracuda::Backend,
    o: &Options,
    params: TuneParams,
) -> Result<(), CliError> {
    if o.save_plan.is_some() {
        return Err(CliError::Usage(format!(
            "--save-plan needs a searchable GPU backend, not {}",
            backend.key()
        )));
    }
    if o.emit.is_some() {
        return Err(CliError::Usage(format!(
            "--emit is not available on backend {} (no CUDA mapping of its own)",
            backend.key()
        )));
    }
    let id = if backend.key() == "acc-opt" {
        let arch = backend
            .arch()
            .ok_or_else(|| CliError::Other("acc-opt has no reference architecture".into()))?;
        tuner.autotune(arch, params)?.id
    } else {
        0
    };
    backend.validate(tuner, id)?;
    let total = backend.time_config(tuner, id)?;
    let flops: u64 = barracuda::cpu::try_cpu_programs(w)?
        .iter()
        .map(|p| p.flops())
        .sum();
    println!(
        "{:28} {:>10} us total  {:>8} GF  (modeled baseline, no search)",
        backend.name(),
        fmt_f(total * 1e6),
        fmt_f(flops as f64 / total / 1e9),
    );
    Ok(())
}

/// The session every tuning command runs through: cache-only by default,
/// store-first when `--store` was given, resolving backends against the
/// loaded set (built-ins plus `--arch-file`/`--arch-dir` descriptors).
fn session_for(o: &Options, set: &Arc<BackendSet>) -> Result<TuningSession, CliError> {
    let session = match &o.store {
        Some(root) => TuningSession::with_store(root)?,
        None => TuningSession::new(),
    };
    Ok(session.with_backends(Arc::clone(set)))
}

fn cmd_tune(w: &Workload, o: &Options) -> Result<(), CliError> {
    let tuner = WorkloadTuner::build(w);
    let params = params_for(o);
    let (set, loaded) = backend_set_for(o)?;
    let session = session_for(o, &set)?;
    // --backend: set-driven dispatch. GPU keys join the --arch loop
    // below; baseline keys print modeled times; `all` sweeps everything
    // through the session (store-first per searchable backend).
    let archs = match o.backend.as_deref() {
        Some("all") => {
            if o.save_plan.is_some() || o.emit.is_some() {
                return Err(CliError::Usage(
                    "--backend all cannot combine with --save-plan or --emit".to_string(),
                ));
            }
            let sweep = session.tune_all(&tuner, params)?;
            for row in sweep.rows {
                println!(
                    "{:10} {:28} {:>10} us total  {:>8} GF",
                    row.key,
                    row.name,
                    fmt_f(row.total_seconds * 1e6),
                    fmt_f(row.gflops),
                );
            }
            if session.store().is_some() {
                for (key, source) in sweep.notes {
                    println!("  {:10} {}", key, source.describe());
                }
            }
            return Ok(());
        }
        Some(key) => {
            let backend = set.get(key).cloned().ok_or_else(|| {
                CliError::Usage(format!(
                    "unknown backend {key} (one of: {}, all)",
                    set.keys().join(", ")
                ))
            })?;
            if !backend.caps().searchable {
                return cmd_tune_baseline(w, &tuner, backend.as_ref(), o, params);
            }
            // A searchable backend is a GPU architecture: same path as
            // --arch.
            archs_for(&set, key)?
        }
        None => archs_for(&set, &default_target(o, &loaded))?,
    };
    if o.save_plan.is_some() && archs.len() > 1 {
        return Err(CliError::Usage(
            "--save-plan needs a single architecture, not `all`".to_string(),
        ));
    }
    for arch in archs {
        let out = session.tune_built(&tuner, &arch.key, params)?;
        let tuned = &out.tuned;
        println!(
            "{:12} {:>10} us device  {:>8} GF device  {:>8} GF w/transfers  ({} evals, space {})",
            arch.name,
            fmt_f(tuned.gpu_seconds * 1e6),
            fmt_f(tuned.gflops_device()),
            fmt_f(tuned.gflops()),
            tuned.search.n_evals,
            tuned.search.space_size,
        );
        // Non-default objectives annotate the pick; the default (time-only)
        // prints nothing extra so historical output stays byte-identical.
        if !tuned.objective.is_time_only() {
            println!("  objective: {}", tuned.objective.describe());
            println!(
                "  memory: peak temp {} B, global rw {} B ({} over-budget versions, {} configurations pruned)",
                tuned.search.peak_temp_bytes,
                tuned.search.rw_bytes,
                tuned.search.versions_over_budget,
                tuned.search.pruned_by_memory,
            );
            if let Some(budget) = tuned.objective.mem_budget {
                println!(
                    "  budget respected: peak {} B <= budget {} B",
                    tuned.search.peak_temp_bytes, budget
                );
            }
        }
        if session.store().is_some() {
            println!("  {}", out.source.describe());
        }
        if !tuned.quarantine.is_empty() {
            println!("  {}", tuned.quarantine);
        }
        match &tuned.status {
            SearchStatus::Complete => {}
            SearchStatus::Degraded { reason } => {
                println!("  status: degraded ({reason})");
                if o.strict {
                    return Err(CliError::StrictDegraded(reason.clone()));
                }
            }
        }
        if let Some(path) = &o.save_plan {
            out.plan.save(std::path::Path::new(path))?;
            println!(
                "  plan saved to {path} (schema v{}, fingerprint {:016x})",
                out.plan.schema_version, out.plan.fingerprint
            );
        }
        if o.validate {
            let inputs = w.random_inputs(1);
            let expect = w.evaluate_reference(&inputs)?;
            let got = tuned.execute(w, &inputs)?;
            for ((n1, t1), (_, t2)) in expect.iter().zip(&got) {
                if !t1.approx_eq(t2, 1e-10) {
                    return Err(CliError::Other(format!(
                        "validation FAILED for output {n1}"
                    )));
                }
            }
            println!("  validation: OK (matches the reference evaluator)");
        }
        if o.fused {
            for alt in barracuda::fusionopt::fuse_alternatives(tuned, &arch)
                .into_iter()
                .flatten()
            {
                println!(
                    "  statement {} fused: {:.2} us vs {:.2} us unfused ({:.2}x)",
                    alt.statement,
                    alt.fused_seconds * 1e6,
                    alt.unfused_seconds * 1e6,
                    alt.speedup()
                );
            }
        }
        if o.explain {
            for (program, ks) in tuned.programs.iter().zip(&tuned.kernels) {
                for k in ks {
                    let t = gpusim::time_kernel(k, &arch);
                    println!(
                        "  {}: {:.2} us, grid {:?} block {:?}, unroll {}, staged {:?}",
                        k.name,
                        t.time_s * 1e6,
                        k.grid(),
                        k.block(),
                        k.unroll,
                        k.staged
                    );
                    println!(
                        "    bottleneck {} | occupancy {:.0}% | worst txn/warp {:.1} | regs/thread {}",
                        t.bottleneck(),
                        t.occupancy.fraction * 100.0,
                        t.traffic.worst_txn_per_warp,
                        t.occupancy.regs_per_thread
                    );
                }
                let _ = program;
            }
            // Which knobs mattered: fit a forest over a sample of the space
            // and report the top importance mass. Unmappable samples (NaN
            // time) are dropped rather than poisoning the fit.
            let pool = tuner.pool(512, params.seed);
            let (xs, ys): (Vec<Vec<f64>>, Vec<f64>) = pool
                .iter()
                .filter_map(|&id| {
                    let t = tuner.gpu_seconds(id, &arch);
                    t.is_finite().then(|| (tuner.features(id), t))
                })
                .unzip();
            let model = surf::ExtraTrees::fit(&xs, &ys, params.surf.forest);
            let names = tuner.binarized_feature_names();
            let mut ranked: Vec<(f64, &String)> = model
                .feature_importance()
                .iter()
                .copied()
                .zip(&names)
                .collect();
            ranked.sort_by(|a, b| b.0.total_cmp(&a.0));
            println!("  most important parameters (surrogate attribution):");
            for (imp, name) in ranked.iter().take(6) {
                if *imp > 0.0 {
                    println!("    {:>6.1}%  {}", imp * 100.0, name);
                }
            }
        }
        match o.emit.as_deref() {
            Some("cuda") => println!("{}", tuned.cuda_source()),
            Some("cufile") => {
                for (p, ks) in tuned.programs.iter().zip(&tuned.kernels) {
                    println!("{}", tcr::codegen::cuda_file(p, ks));
                }
            }
            Some("tcr") => {
                for p in &tuned.programs {
                    println!("{}", p.listing());
                }
            }
            Some("annotation") => {
                for ((v, _), st) in tuned.choices.iter().zip(&tuner.statements) {
                    println!("{}", tcr::codegen::orio_annotations(&st.variants[*v].space));
                }
            }
            Some(other) => return Err(CliError::Usage(format!("unknown --emit kind {other}"))),
            None => {}
        }
    }
    Ok(())
}

/// Re-applies a saved plan: fingerprint-checked re-mapping and re-timing,
/// zero search evaluations. With `--store`, the positional argument is a
/// workload spec and the plan comes from the store's content address.
fn cmd_replay(spec: &str, o: &Options) -> Result<(), CliError> {
    let (set, loaded) = backend_set_for(o)?;
    let (plan, w, tuned) = if o.store.is_some() {
        let backend = match o.backend.as_deref() {
            Some("all") => {
                return Err(CliError::Usage(
                    "replay --store needs a single backend, not `all`".to_string(),
                ))
            }
            Some(key) => key.to_string(),
            None => default_target(o, &loaded),
        };
        let session = session_for(o, &set)?;
        let w = load_workload(spec, o)?;
        let (tuned, plan, _path) = session.replay_from_store(&w, &backend, &o.objective)?;
        (plan, w, tuned)
    } else {
        let plan = TunedPlan::load(std::path::Path::new(spec))?;
        // A plan only replays under the objective it was tuned for: replaying
        // a memory-tuned plan as if it were a time-only winner (or vice
        // versa) silently misrepresents the pick, so it is a typed plan
        // error instead.
        plan.validate_objective(&o.objective)?;
        let w = plan.workload()?;
        let tuned = plan.replay_for_in(&set, &w, &EvalCache::new())?;
        (plan, w, tuned)
    };
    report_replay(&plan, &w, &tuned, o)
}

/// Shared reporting tail of both replay modes.
fn report_replay(
    plan: &TunedPlan,
    w: &Workload,
    tuned: &TunedWorkload,
    o: &Options,
) -> Result<(), CliError> {
    println!(
        "{:12} {:>10} us device  {:>8} GF device  {:>8} GF w/transfers  \
         (replayed, 0 evals; search spent {})",
        tuned.arch_name,
        fmt_f(tuned.gpu_seconds * 1e6),
        fmt_f(tuned.gflops_device()),
        fmt_f(tuned.gflops()),
        plan.provenance.n_evals,
    );
    if !plan.objective.is_time_only() {
        println!("  objective: {}", plan.objective.describe());
    }
    if !tuned.quarantine.is_empty() {
        println!("  {}", tuned.quarantine);
    }
    if plan.provenance.degraded {
        println!("  saved search was degraded: {}", plan.provenance.status);
    }
    if o.validate {
        let inputs = w.random_inputs(1);
        let expect = w.evaluate_reference(&inputs)?;
        let got = tuned.execute(w, &inputs)?;
        for ((n1, t1), (_, t2)) in expect.iter().zip(&got) {
            if !t1.approx_eq(t2, 1e-10) {
                return Err(CliError::Other(format!(
                    "validation FAILED for output {n1}"
                )));
            }
        }
        println!("  validation: OK (matches the reference evaluator)");
    }
    match o.emit.as_deref() {
        Some("cuda") => println!("{}", tuned.cuda_source()),
        Some("tcr") => {
            for p in &tuned.programs {
                println!("{}", p.listing());
            }
        }
        Some(other) => {
            return Err(CliError::Usage(format!(
                "replay supports --emit cuda|tcr, not {other}"
            )))
        }
        None => {}
    }
    Ok(())
}

/// `barracuda plans <list|show|gc|path>` — manage a content-addressed
/// plan store.
fn cmd_plans(sub: &str, spec: Option<&str>, o: &Options) -> Result<(), CliError> {
    let root = o
        .store
        .as_deref()
        .ok_or_else(|| CliError::Usage("plans needs --store DIR".to_string()))?;
    let store = PlanStore::open(root)?;
    let (set, loaded) = backend_set_for(o)?;
    // Resolves the store key of `(workload spec, --backend/--arch)`, with
    // `--schema V` overriding the addressed schema version (pre-v2 plans
    // always carry salt 0, and their addresses must agree).
    let key_of = |spec: &str| -> Result<barracuda::StoreKey, CliError> {
        let w = load_workload(spec, o)?;
        let backend = o
            .backend
            .clone()
            .unwrap_or_else(|| default_target(o, &loaded));
        let session = TuningSession::new().with_backends(Arc::clone(&set));
        let mut key = session.key_for(&w, &backend)?;
        if let Some(v) = o.schema {
            key.schema = v;
            if v < 2 {
                key.cache_salt = 0;
            }
        }
        Ok(key)
    };
    match sub {
        "list" => {
            // Tolerant: undecodable names and unreadable files degrade to
            // per-file reports — one bad entry never hides the rest.
            let scan = store.scan()?;
            if scan.entries.is_empty() && scan.problems.is_empty() && scan.corrupt.is_empty() {
                println!("plan store {}: empty", store.root().display());
                return Ok(());
            }
            println!(
                "plan store {} ({} entr{}):",
                store.root().display(),
                scan.entries.len(),
                if scan.entries.len() == 1 { "y" } else { "ies" }
            );
            for e in &scan.entries {
                let stale = if e.key.is_stale() {
                    "  [stale schema]"
                } else {
                    ""
                };
                // Descriptor provenance: resolve the entry's backend in
                // the loaded set. A salt match means the entry was
                // written by the backend as currently described; a
                // mismatch means its descriptor changed since (replay
                // would reject the plan); an absent key degrades to a
                // note instead of an error.
                let provenance = match set.get(&e.key.backend) {
                    Some(b) if b.cache_salt() == e.key.cache_salt => {
                        format!("  descriptor {:016x}", b.cache_salt())
                    }
                    Some(b) => {
                        format!("  [superseded: backend now {:016x}]", b.cache_salt())
                    }
                    None => "  [backend not loaded]".to_string(),
                };
                // Objective provenance: what the stored plan was tuned for.
                // The store key does not carry it, so read the entry itself;
                // an unreadable file already shows up under `problems`.
                let objective = match TunedPlan::load(&e.path) {
                    Ok(p) => format!("  objective {}", p.objective.describe()),
                    Err(_) => String::new(),
                };
                println!(
                    "  {:016x}  {:10} salt {:016x}  v{}{}{}{}",
                    e.key.fingerprint,
                    e.key.backend,
                    e.key.cache_salt,
                    e.key.schema,
                    stale,
                    provenance,
                    objective
                );
            }
            for (path, reason) in &scan.problems {
                println!("  [unreadable] {}: {reason}", path.display());
            }
            for path in &scan.corrupt {
                println!("  [quarantined] {}", path.display());
            }
            if !scan.problems.is_empty() || !scan.corrupt.is_empty() {
                println!(
                    "  ({} unreadable, {} quarantined — `plans gc --corrupt` cleans sidecars)",
                    scan.problems.len(),
                    scan.corrupt.len()
                );
            }
            Ok(())
        }
        "show" => {
            let spec = spec
                .ok_or_else(|| CliError::Usage("plans show needs a workload spec".to_string()))?;
            let key = key_of(spec)?;
            let plan = store.lookup(&key)?.ok_or(BarracudaError::Plan {
                workload: spec.to_string(),
                detail: format!("no stored plan for {key} in {}", store.root().display()),
            })?;
            print!("{}", plan.to_json_text());
            Ok(())
        }
        "gc" => {
            let cutoff = o.schema_older_than.unwrap_or(PLAN_SCHEMA_VERSION);
            let evicted = store.gc(cutoff)?;
            println!(
                "plan store {}: evicted {} stale plan(s) (schema < {cutoff})",
                store.root().display(),
                evicted.len()
            );
            for e in evicted {
                println!("  {}", e.path.display());
            }
            if o.gc_corrupt {
                let removed = store.gc_corrupt()?;
                println!(
                    "plan store {}: removed {} corrupt/partial file(s)",
                    store.root().display(),
                    removed.len()
                );
                for p in removed {
                    println!("  {}", p.display());
                }
            }
            Ok(())
        }
        "path" => {
            let spec = spec
                .ok_or_else(|| CliError::Usage("plans path needs a workload spec".to_string()))?;
            let key = key_of(spec)?;
            println!("{}", store.path_of(&key).display());
            Ok(())
        }
        other => Err(CliError::Usage(format!(
            "unknown plans subcommand {other} (list|show|gc|path)"
        ))),
    }
}

/// `barracuda serve`: run the tuning daemon until a shutdown request
/// (or EOF on stdio). The default backend, parameter profile, eval
/// budget and deadline come from the usual tune flags; individual
/// requests may override each per the protocol.
fn cmd_serve(o: &Options) -> Result<(), CliError> {
    // Load the descriptor set up front so a bad --arch-file or an
    // unknown default backend is a usage-time failure, not a daemon that
    // rejects every request.
    let (set, loaded) = backend_set_for(o)?;
    let backend = o
        .backend
        .clone()
        .unwrap_or_else(|| default_target(o, &loaded));
    let b = set.get(&backend).ok_or_else(|| {
        CliError::Usage(format!(
            "serve needs a loaded backend as its default, not {backend} (one of: {})",
            set.keys().join(", ")
        ))
    })?;
    if !b.caps().searchable {
        return Err(CliError::Usage(format!(
            "serve default backend {backend} is not searchable — pick a GPU backend"
        )));
    }
    let listen = match &o.listen {
        Some(spec) => barracuda::Listen::parse(spec)?,
        None => barracuda::Listen::Stdio,
    };
    let daemon = std::sync::Arc::new(barracuda::Daemon::new(barracuda::ServeOptions {
        store: o.store.as_ref().map(std::path::PathBuf::from),
        backend,
        quick: o.quick,
        evals: Some(o.evals),
        deadline_s: o.deadline,
        max_searches: o.max_searches,
        queue: o.queue,
        durable: o.fsync,
        arch_files: o.arch_files.iter().map(std::path::PathBuf::from).collect(),
        arch_dir: o.arch_dir.as_ref().map(std::path::PathBuf::from),
        ..barracuda::ServeOptions::default()
    })?);
    barracuda::serve::transport::run(daemon, &listen)?;
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    match cmd.as_str() {
        "backends" => {
            let opts = match parse_options(&args[1..]) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("error: {e}");
                    return usage();
                }
            };
            let (set, _loaded) = match backend_set_for(&opts) {
                Ok(x) => x,
                Err(e) => return e.report(),
            };
            println!("backends (for --backend; GPU keys also work with --arch):");
            for b in set.iter() {
                let caps = b.caps();
                let mut flags = Vec::new();
                if caps.searchable {
                    flags.push("searchable");
                }
                if caps.emits_cuda {
                    flags.push("cuda");
                }
                if caps.accelerator {
                    flags.push("accelerator");
                }
                println!(
                    "  {:10} {:34} salt {:016x}  [{}]",
                    b.key(),
                    b.name(),
                    b.cache_salt(),
                    flags.join(", ")
                );
            }
            println!("  {:10} every backend above, one shared cache", "all");
            ExitCode::SUCCESS
        }
        "replay" => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            let opts = match parse_options(&args[2..]) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("error: {e}");
                    return usage();
                }
            };
            match cmd_replay(path, &opts) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => e.report(),
            }
        }
        "plans" => {
            let Some(sub) = args.get(1) else {
                return usage();
            };
            // show/path take a positional workload spec before the options.
            let (spec, rest) = match sub.as_str() {
                "show" | "path" => (
                    args.get(2).map(String::as_str),
                    args.get(3..).unwrap_or(&[]),
                ),
                _ => (None, args.get(2..).unwrap_or(&[])),
            };
            let opts = match parse_options(rest) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("error: {e}");
                    return usage();
                }
            };
            match cmd_plans(sub, spec, &opts) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => e.report(),
            }
        }
        "benchmarks" => {
            println!("builtin workloads:");
            for n in ["eqn1", "lg3", "lg3t", "tce"] {
                println!("  builtin:{n}");
            }
            for fam in ["s1", "d1", "d2"] {
                println!("  builtin:{fam}_1 .. builtin:{fam}_9");
            }
            ExitCode::SUCCESS
        }
        "serve" => {
            let opts = match parse_options(&args[1..]) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("error: {e}");
                    return usage();
                }
            };
            match cmd_serve(&opts) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => e.report(),
            }
        }
        "tune" | "info" => {
            let Some(spec) = args.get(1) else {
                return usage();
            };
            let opts = match parse_options(&args[2..]) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("error: {e}");
                    return usage();
                }
            };
            let w = match load_workload(spec, &opts) {
                Ok(w) => w,
                Err(e) => return e.report(),
            };
            let result = if cmd == "info" {
                cmd_info(&w);
                Ok(())
            } else {
                cmd_tune(&w, &opts)
            };
            match result {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => e.report(),
            }
        }
        _ => usage(),
    }
}
