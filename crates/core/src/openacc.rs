//! OpenACC comparison mappings (paper §VI-B).
//!
//! The paper evaluates two directive-based strategies by replacing its CUDA
//! constructs with OpenACC:
//!
//! - **Naive**: "simply includes parallelization directives but no guidance
//!   on parallelization decomposition". We model the PGI default on a plain
//!   loop nest: gang over the outermost parallel loop, vector over the next
//!   one, everything else sequential inside the kernel — and *no* scalar
//!   replacement ("the `private` designation in OpenACC does not produce
//!   the desired result"). Because the outer loops of a row-major tensor
//!   have the largest strides, the vectorized loop is uncoalesced — which
//!   is exactly why naive OpenACC "is even slower than sequential
//!   execution".
//! - **Optimized**: "adds directives on thread and block decomposition that
//!   were derived by Barracuda and performs scalar replacement on the
//!   output" — but no interior loop permutation and no unrolling (those
//!   require a transformation framework, not directives).

use crate::cpu::try_cpu_programs;
use crate::error::BarracudaError;
use crate::pipeline::TunedWorkload;
use crate::workload::Workload;
use tcr::mapping::{map_kernel, MappedKernel};
use tcr::space::{LoopSel, OpConfig};
use tcr::TcrProgram;

/// Per-statement programs (best-flop version, as a human would write the
/// OpenACC loops after TCE-style strength reduction) and their kernels.
pub struct AccMapping {
    pub programs: Vec<TcrProgram>,
    pub kernels: Vec<Vec<MappedKernel>>,
}

impl AccMapping {
    /// Device time + the workload's transfer time on `arch`.
    pub fn total_seconds(&self, workload: &Workload, arch: &gpusim::GpuArch) -> f64 {
        self.gpu_seconds(arch)
            + workload.transfer_bytes() as f64 / (arch.pcie_bw_gbs * 1e9)
            + 2.0 * arch.pcie_latency_us * 1e-6
    }

    pub fn gpu_seconds(&self, arch: &gpusim::GpuArch) -> f64 {
        self.programs
            .iter()
            .zip(&self.kernels)
            .map(|(p, ks)| gpusim::time_program(p, ks, arch, false).gpu_s)
            .sum()
    }

    pub fn flops(&self) -> u64 {
        self.programs.iter().map(|p| p.flops()).sum()
    }
}

/// The naive OpenACC mapping of one statement.
fn naive_config(program: &TcrProgram, op_index: usize) -> OpConfig {
    let op = &program.ops[op_index];
    let out = &program.arrays[op.output].indices;
    // Gang = outermost output loop, vector = second output loop (PGI picks
    // the outer loops of the nest); with rank-1 outputs everything lands in
    // one block.
    let (bx, tx) = if out.len() >= 2 {
        (LoopSel::Var(out[0].clone()), out[1].clone())
    } else {
        (LoopSel::One, out[0].clone())
    };
    let interior: Vec<tensor::IndexVar> = program
        .loop_vars(op)
        .into_iter()
        .filter(|v| *v != tx && Some(v) != bx.var())
        .collect();
    OpConfig {
        tx,
        ty: LoopSel::One,
        bx,
        by: LoopSel::One,
        interior,
        unroll: 1,
        staged: Vec::new(),
    }
}

/// Builds the naive-OpenACC analog for a workload.
///
/// Panics on a mapping failure (the naive config covers every loop by
/// construction, so a failure is a programmer error);
/// [`try_openacc_naive`] reports it as a typed error instead.
pub fn openacc_naive(workload: &Workload) -> AccMapping {
    try_openacc_naive(workload)
        .unwrap_or_else(|e| panic!("naive OpenACC config failed to map: {e}"))
}

/// Fallible [`openacc_naive`]: lowering and mapping failures become typed
/// [`BarracudaError`]s (the `Backend` registry goes through this).
pub fn try_openacc_naive(workload: &Workload) -> Result<AccMapping, BarracudaError> {
    let programs = try_cpu_programs(workload)?;
    let kernels = programs
        .iter()
        .zip(&workload.statements)
        .enumerate()
        .map(|(sidx, (p, st))| {
            (0..p.ops.len())
                .map(|i| {
                    let cfg = naive_config(p, i);
                    let mut k = map_kernel(p, i, &cfg, st.accumulate).map_err(|detail| {
                        BarracudaError::Mapping {
                            workload: workload.name.clone(),
                            statement: sidx,
                            version: Some(0),
                            config: None,
                            detail: detail.to_string(),
                        }
                    })?;
                    k.scalar_replacement = false;
                    k.name = format!("{}_acc_naive", k.name);
                    Ok(k)
                })
                .collect::<Result<Vec<_>, BarracudaError>>()
        })
        .collect::<Result<Vec<_>, BarracudaError>>()?;
    Ok(AccMapping { programs, kernels })
}

/// Builds the optimized-OpenACC analog: Barracuda's tuned thread/block
/// decomposition + scalar replacement, default interior order, no unroll.
///
/// Panics on a mapping failure (the config is derived from kernels that
/// already mapped); [`try_openacc_optimized`] reports it typed instead.
pub fn openacc_optimized(workload: &Workload, tuned: &TunedWorkload) -> AccMapping {
    try_openacc_optimized(workload, tuned)
        .unwrap_or_else(|e| panic!("optimized OpenACC config failed to map: {e}"))
}

/// Fallible [`openacc_optimized`] over an already-tuned workload.
pub fn try_openacc_optimized(
    workload: &Workload,
    tuned: &TunedWorkload,
) -> Result<AccMapping, BarracudaError> {
    try_openacc_optimized_parts(workload, &tuned.programs, &tuned.kernels)
}

/// Core of the optimized-OpenACC construction, taking the tuned mapping as
/// bare parts (`programs` = chosen version per statement, `kernels` = its
/// mapped kernels) so callers holding only a configuration id — the
/// `Backend` registry derives both from `(tuner, id)` — can build it
/// without a full [`TunedWorkload`].
pub fn try_openacc_optimized_parts(
    workload: &Workload,
    tuned_programs: &[TcrProgram],
    tuned_kernels: &[Vec<MappedKernel>],
) -> Result<AccMapping, BarracudaError> {
    let programs = try_cpu_programs(workload)?;
    let kernels: Vec<Vec<MappedKernel>> = tuned_programs
        .iter()
        .zip(&workload.statements)
        .enumerate()
        .map(|(sidx, (program, st))| {
            // Reuse the tuned kernels' decomposition but reset interior
            // order to default and unroll to 1.
            tuned_kernels
                .iter()
                .flatten()
                .filter(|k| k.name.starts_with(&program.name))
                .map(|k| {
                    let op_index = k.op_index;
                    let op = &program.ops[op_index];
                    let default_interior: Vec<tensor::IndexVar> = program
                        .loop_vars(op)
                        .into_iter()
                        .filter(|v| {
                            *v != k.tx.0
                                && k.ty.as_ref().map(|(t, _)| t) != Some(v)
                                && k.bx.as_ref().map(|(b, _)| b) != Some(v)
                                && k.by.as_ref().map(|(b, _)| b) != Some(v)
                        })
                        .collect();
                    let cfg = OpConfig {
                        tx: k.tx.0.clone(),
                        ty: k
                            .ty
                            .as_ref()
                            .map(|(v, _)| LoopSel::Var(v.clone()))
                            .unwrap_or(LoopSel::One),
                        bx: k
                            .bx
                            .as_ref()
                            .map(|(v, _)| LoopSel::Var(v.clone()))
                            .unwrap_or(LoopSel::One),
                        by: k
                            .by
                            .as_ref()
                            .map(|(v, _)| LoopSel::Var(v.clone()))
                            .unwrap_or(LoopSel::One),
                        interior: default_interior,
                        unroll: 1,
                        staged: Vec::new(),
                    };
                    // Derived from a kernel that already mapped, so this
                    // config covers the same loops.
                    let mut nk =
                        map_kernel(program, op_index, &cfg, st.accumulate).map_err(|detail| {
                            BarracudaError::Mapping {
                                workload: workload.name.clone(),
                                statement: sidx,
                                version: None,
                                config: None,
                                detail: detail.to_string(),
                            }
                        })?;
                    nk.name = format!("{}_acc_opt", nk.name);
                    Ok(nk)
                })
                .collect::<Result<Vec<_>, BarracudaError>>()
        })
        .collect::<Result<Vec<_>, BarracudaError>>()?;
    Ok(AccMapping { programs, kernels })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{TuneParams, WorkloadTuner};
    use tensor::index::uniform_dims;

    fn matmul_workload(n: usize) -> Workload {
        Workload::parse(
            "mm",
            "C[i k] = Sum([j], A[i j] * B[j k])",
            &uniform_dims(&["i", "j", "k"], n),
        )
        .unwrap()
    }

    #[test]
    fn naive_mapping_is_uncoalesced_and_unregistered() {
        let w = matmul_workload(64);
        let acc = openacc_naive(&w);
        let k = &acc.kernels[0][0];
        assert!(!k.scalar_replacement);
        assert!(!k.output_fully_registered());
        // tx = second output loop 'k' for C[i,k]; bx = 'i'.
        assert_eq!(k.tx.0.name(), "k");
        assert_eq!(k.bx.as_ref().unwrap().0.name(), "i");
    }

    #[test]
    fn naive_is_slower_than_tuned() {
        let w = matmul_workload(64);
        let tuner = WorkloadTuner::build(&w);
        let arch = gpusim::k20();
        let tuned = tuner.autotune(&arch, TuneParams::quick()).unwrap();
        let naive = openacc_naive(&w);
        assert!(
            naive.gpu_seconds(&arch) > tuned.gpu_seconds,
            "naive {} must be slower than tuned {}",
            naive.gpu_seconds(&arch),
            tuned.gpu_seconds
        );
    }

    #[test]
    fn optimized_between_naive_and_tuned() {
        let w = matmul_workload(64);
        let tuner = WorkloadTuner::build(&w);
        let arch = gpusim::c2050();
        let tuned = tuner.autotune(&arch, TuneParams::quick()).unwrap();
        let naive = openacc_naive(&w).gpu_seconds(&arch);
        let opt = openacc_optimized(&w, &tuned).gpu_seconds(&arch);
        assert!(
            opt <= naive,
            "optimized {opt} must not exceed naive {naive}"
        );
        assert!(
            tuned.gpu_seconds <= opt * 1.001,
            "tuned {} must not exceed optimized {opt}",
            tuned.gpu_seconds
        );
    }

    #[test]
    fn kernels_execute_correctly_despite_bad_mappings() {
        // Even the worst mapping must compute the right answer.
        let w = matmul_workload(8);
        let acc = openacc_naive(&w);
        let inputs = w.random_inputs(2);
        let expect = w.evaluate_reference(&inputs).unwrap();
        let operands: Vec<&tensor::Tensor> = acc.programs[0]
            .input_ids()
            .iter()
            .map(|&id| {
                let name = &acc.programs[0].arrays[id].name;
                &inputs.iter().find(|(n, _)| n == name).unwrap().1
            })
            .collect();
        let got = gpusim::execute_program(&acc.programs[0], &acc.kernels[0], &operands);
        assert!(expect[0].1.approx_eq(&got, 1e-10));
    }
}
