//! [`TuningSession`]: the cache-first compile service the CLI and bench
//! binaries tune through.
//!
//! A session owns the three pieces every tuning entry point used to wire
//! by hand: the backend registry (implicitly, via keys), one shared
//! [`EvalCache`] **per workload fingerprint** — cache keys are
//! `(salt, configuration id)` and configuration ids are workload-local,
//! so backends tuning the same workload share timings and features while
//! distinct workloads can never alias each other's entries — and an
//! optional content-addressed [`PlanStore`]. With a store attached,
//! `tune` is
//! store-first: a hit replays the persisted plan — zero search
//! evaluations, bit-identical timing, full quarantine report — and a miss
//! runs SURF then persists the result under its content address, so the
//! *next* session hits. This is the paper's compile-once/run-many loop
//! (§5) made a first-class object instead of a pattern each binary
//! reimplements.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use crate::backend::{tune_all_backends_with, BackendSet, BackendTuning};
use crate::cache::EvalCache;
use crate::error::BarracudaError;
use crate::pipeline::{TuneParams, TunedWorkload, WorkloadTuner};
use crate::plan::{TunedPlan, PLAN_SCHEMA_VERSION};
use crate::stages::frontend::workload_fingerprint;
use crate::store::{PlanStore, StoreKey};
use crate::workload::Workload;

/// Where a tuning result came from.
#[derive(Clone, Debug, PartialEq)]
pub enum PlanSource {
    /// Replayed from the plan store: zero search evaluations.
    StoreHit { path: PathBuf },
    /// SURF ran; `stored` is the store path the fresh plan was persisted
    /// to (`None` when the session has no store attached).
    Searched { stored: Option<PathBuf> },
}

impl PlanSource {
    /// One status line for CLI/bench output (`plan store: hit … / miss …`).
    pub fn describe(&self) -> String {
        match self {
            PlanSource::StoreHit { path } => format!(
                "plan store: hit (0 search evaluations, replayed {})",
                path.display()
            ),
            PlanSource::Searched { stored: Some(p) } => {
                format!("plan store: miss (searched, stored {})", p.display())
            }
            PlanSource::Searched { stored: None } => "plan store: detached (searched)".to_string(),
        }
    }
}

/// One `tune` through a session: the result, the plan it is persisted as,
/// and where it came from.
#[derive(Debug)]
pub struct SessionOutcome {
    pub tuned: TunedWorkload,
    pub plan: TunedPlan,
    pub source: PlanSource,
}

/// A whole-registry sweep through a session: the rows every caller of
/// `tune_all_backends` already consumes, plus per-searchable-backend plan
/// sources for reporting.
pub struct SweepOutcome {
    pub rows: Vec<BackendTuning>,
    /// `(backend key, source)` for each searchable backend, in registry
    /// order.
    pub notes: Vec<(String, PlanSource)>,
}

/// The cache-first tuning context.
pub struct TuningSession {
    /// One [`EvalCache`] per workload fingerprint. Cache entries are
    /// keyed by `(salt, configuration id)` and ids are workload-local,
    /// so a single cache must never span workloads.
    caches: Mutex<HashMap<u64, Arc<EvalCache>>>,
    store: Option<PlanStore>,
    /// The backends this session resolves keys against: the built-ins by
    /// default, or a set extended with runtime-loaded descriptors.
    backends: Arc<BackendSet>,
}

impl Default for TuningSession {
    fn default() -> Self {
        TuningSession::new()
    }
}

impl TuningSession {
    /// A session with fresh caches and no plan store: every tune
    /// searches, nothing persists. What the bench binaries use.
    pub fn new() -> TuningSession {
        TuningSession {
            caches: Mutex::new(HashMap::new()),
            store: None,
            backends: Arc::new(BackendSet::builtin()),
        }
    }

    /// A session backed by the store at `root` (created if absent).
    pub fn with_store(root: impl Into<PathBuf>) -> Result<TuningSession, BarracudaError> {
        Ok(Self::with_plan_store(PlanStore::open(root)?))
    }

    /// A session over an explicitly configured [`PlanStore`] — how the
    /// daemon opts into durable (fsync'd) inserts, and how the chaos
    /// harness injects store I/O faults.
    pub fn with_plan_store(store: PlanStore) -> TuningSession {
        TuningSession {
            caches: Mutex::new(HashMap::new()),
            store: Some(store),
            backends: Arc::new(BackendSet::builtin()),
        }
    }

    /// Replaces the session's backend set (builder-style). How the CLI and
    /// the daemon make `--arch-file`/`--arch-dir` descriptors resolvable.
    pub fn with_backends(mut self, backends: Arc<BackendSet>) -> TuningSession {
        self.backends = backends;
        self
    }

    /// The backend set every key in this session resolves against.
    pub fn backends(&self) -> &BackendSet {
        &self.backends
    }

    /// The session's shared evaluation cache for `workload`: every tune
    /// and replay of a workload with this fingerprint goes through the
    /// same cache, and no other workload touches it.
    pub fn cache_for(&self, workload: &Workload) -> Arc<EvalCache> {
        let fp = workload_fingerprint(workload);
        let mut caches = match self.caches.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        Arc::clone(caches.entry(fp).or_default())
    }

    /// The attached plan store, when one is.
    pub fn store(&self) -> Option<&PlanStore> {
        self.store.as_ref()
    }

    /// The current-schema store key for `(workload, backend)`. Typed
    /// [`BarracudaError::Plan`] when the backend key is not in the
    /// session's backend set.
    pub fn key_for(&self, workload: &Workload, backend: &str) -> Result<StoreKey, BarracudaError> {
        let b = self
            .backends
            .get(backend)
            .ok_or_else(|| BarracudaError::Plan {
                workload: workload.name.clone(),
                detail: format!("unknown backend `{backend}`"),
            })?;
        Ok(StoreKey {
            fingerprint: workload_fingerprint(workload),
            cache_salt: b.cache_salt(),
            schema: PLAN_SCHEMA_VERSION,
            backend: backend.to_string(),
        })
    }

    /// Store-first tune of `workload` on a searchable backend: a store
    /// hit replays the persisted plan (zero search evaluations,
    /// bit-identical result); a miss runs SURF and persists the fresh
    /// plan under its content address.
    pub fn tune(
        &self,
        workload: &Workload,
        backend: &str,
        params: TuneParams,
    ) -> Result<SessionOutcome, BarracudaError> {
        let tuner = WorkloadTuner::build(workload);
        self.tune_built(&tuner, backend, params)
    }

    /// [`TuningSession::tune`] over an already-lowered tuner (callers
    /// that reuse the lowering across backends).
    pub fn tune_built(
        &self,
        tuner: &WorkloadTuner,
        backend: &str,
        params: TuneParams,
    ) -> Result<SessionOutcome, BarracudaError> {
        let workload = &tuner.workload;
        let cache = self.cache_for(workload);
        if let Some(hit) = self.replay_hit(tuner, backend, &params.objective)? {
            return Ok(hit);
        }
        let b = self
            .backends
            .get(backend)
            .ok_or_else(|| BarracudaError::Plan {
                workload: workload.name.clone(),
                detail: format!("unknown backend `{backend}`"),
            })?;
        let arch = b.arch().ok_or_else(|| BarracudaError::Search {
            workload: workload.name.clone(),
            detail: format!("backend `{backend}` is not searchable — no architecture to tune on"),
        })?;
        let tuned = tuner.autotune_with_cache(arch, params, &cache)?;
        let plan = TunedPlan::from_tuned_for(tuner, b.as_ref(), &tuned);
        let stored = match &self.store {
            Some(store) => Some(store.insert(&plan)?),
            None => None,
        };
        Ok(SessionOutcome {
            tuned,
            plan,
            source: PlanSource::Searched { stored },
        })
    }

    /// Store probe only: replays the persisted plan for
    /// `(workload, backend)` if one exists, without ever searching.
    /// `Ok(None)` on a miss or when no store is attached. A stored plan
    /// tuned under a different `objective` than the caller wants is also
    /// a miss (never an error here): the caller searches under its own
    /// objective and the fresh plan overwrites the foreign one. This is
    /// the daemon's warm fast path — it costs one lookup and one replay,
    /// so it can run *before* admission control and keep warm traffic
    /// flowing while every cold-search permit is taken.
    pub fn replay_hit(
        &self,
        tuner: &WorkloadTuner,
        backend: &str,
        objective: &crate::objective::Objective,
    ) -> Result<Option<SessionOutcome>, BarracudaError> {
        let workload = &tuner.workload;
        let Some(store) = &self.store else {
            return Ok(None);
        };
        let key = self.key_for(workload, backend)?;
        let Some(plan) = store.lookup(&key)? else {
            return Ok(None);
        };
        if !plan.objective.same_as(objective) {
            return Ok(None);
        }
        let tuned =
            plan.replay_built_in(&self.backends, workload, tuner, &self.cache_for(workload))?;
        Ok(Some(SessionOutcome {
            tuned,
            plan,
            source: PlanSource::StoreHit {
                path: store.path_of(&key),
            },
        }))
    }

    /// Store-first tune on an explicit GPU architecture, the calling
    /// convention of the bench experiments. Registry architectures
    /// (`arch.key` names a backend) flow through
    /// [`TuningSession::tune_built`] and so share the session cache and
    /// hit the store; custom architectures fall back to a cached search,
    /// since they have no stable content address to file plans under.
    pub fn tune_on_arch(
        &self,
        tuner: &WorkloadTuner,
        arch: &gpusim::GpuArch,
        params: TuneParams,
    ) -> Result<TunedWorkload, BarracudaError> {
        if self.backends.get(&arch.key).is_some() {
            return Ok(self.tune_built(tuner, &arch.key, params)?.tuned);
        }
        tuner.autotune_with_cache(arch, params, &self.cache_for(&tuner.workload))
    }

    /// Whole-registry sweep, store-first per searchable backend: against
    /// a warm store the entire sweep is search-free. Derived backends
    /// (CPU baselines, OpenACC analogs) ride along as in
    /// [`crate::backend::tune_all_backends`].
    pub fn tune_all(
        &self,
        tuner: &WorkloadTuner,
        params: TuneParams,
    ) -> Result<SweepOutcome, BarracudaError> {
        let mut notes = Vec::new();
        let rows = tune_all_backends_with(&self.backends, tuner, |backend, _| {
            let out = self.tune_built(tuner, backend.key(), params)?;
            notes.push((backend.key().to_string(), out.source));
            Ok(out.tuned)
        })?;
        Ok(SweepOutcome { rows, notes })
    }

    /// Replays the stored plan for `(workload, backend)` without ever
    /// searching: a missing entry is a typed [`BarracudaError::Plan`],
    /// and so is a stored plan tuned under a different objective than
    /// `expected` — an explicit replay must never silently serve a pick
    /// optimized for something else.
    /// Returns the result, the plan, and the store path it came from.
    pub fn replay_from_store(
        &self,
        workload: &Workload,
        backend: &str,
        expected: &crate::objective::Objective,
    ) -> Result<(TunedWorkload, TunedPlan, PathBuf), BarracudaError> {
        let store = self.store.as_ref().ok_or_else(|| BarracudaError::Store {
            detail: "no plan store attached (pass --store DIR)".to_string(),
        })?;
        let key = self.key_for(workload, backend)?;
        let plan = store.lookup(&key)?.ok_or_else(|| BarracudaError::Plan {
            workload: workload.name.clone(),
            detail: format!(
                "no stored plan for {key} in {} — tune with --store first",
                store.root().display()
            ),
        })?;
        plan.validate_objective(expected)?;
        let tuned = plan.replay_for_in(&self.backends, workload, &self.cache_for(workload))?;
        Ok((tuned, plan, store.path_of(&key)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::index::uniform_dims;

    fn matmul(n: usize) -> Workload {
        Workload::parse(
            "mm",
            "C[i k] = Sum([j], A[i j] * B[j k])",
            &uniform_dims(&["i", "j", "k"], n),
        )
        .unwrap()
    }

    fn temp_root(tag: &str) -> PathBuf {
        let root = std::env::temp_dir().join(format!(
            "barracuda_session_unit_{tag}_{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        root
    }

    #[test]
    fn second_tune_is_a_store_hit_with_identical_bits() {
        let root = temp_root("hit");
        let w = matmul(16);
        let params = TuneParams::quick();

        let s1 = TuningSession::with_store(&root).unwrap();
        let first = s1.tune(&w, "k20", params).unwrap();
        assert!(matches!(
            first.source,
            PlanSource::Searched { stored: Some(_) }
        ));
        assert!(first.tuned.search.n_evals > 0);

        // A brand-new session (cold cache) must still hit the store and
        // reproduce the result bit-for-bit without searching.
        let s2 = TuningSession::with_store(&root).unwrap();
        let second = s2.tune(&w, "k20", params).unwrap();
        assert!(matches!(second.source, PlanSource::StoreHit { .. }));
        assert_eq!(second.tuned.id, first.tuned.id);
        assert_eq!(
            second.tuned.gpu_seconds.to_bits(),
            first.tuned.gpu_seconds.to_bits()
        );
        // Replay reconstructs the original provenance, so callers render
        // the same "(N evals, space S)" line.
        assert_eq!(second.tuned.search.n_evals, first.tuned.search.n_evals);
        assert_eq!(
            second.tuned.search.space_size,
            first.tuned.search.space_size
        );
        // The cache saw no search-driven misses beyond the replay's own
        // re-timing.
        assert_eq!(second.plan, first.plan);
    }

    #[test]
    fn sweep_against_warm_store_is_fully_search_free() {
        let root = temp_root("sweep");
        let w = matmul(16);
        let tuner = WorkloadTuner::build(&w);
        let params = TuneParams::quick();

        let s1 = TuningSession::with_store(&root).unwrap();
        let cold = s1.tune_all(&tuner, params).unwrap();
        assert!(cold
            .notes
            .iter()
            .all(|(_, src)| matches!(src, PlanSource::Searched { stored: Some(_) })));

        let s2 = TuningSession::with_store(&root).unwrap();
        let warm = s2.tune_all(&tuner, params).unwrap();
        assert_eq!(warm.notes.len(), 3, "three searchable backends");
        assert!(
            warm.notes
                .iter()
                .all(|(_, src)| matches!(src, PlanSource::StoreHit { .. })),
            "warm sweep must be search-free"
        );
        // Row-for-row bit-identical totals.
        for (a, b) in cold.rows.iter().zip(&warm.rows) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.total_seconds.to_bits(), b.total_seconds.to_bits());
        }
    }

    #[test]
    fn sessions_without_a_store_always_search() {
        let w = matmul(16);
        let s = TuningSession::new();
        let out = s.tune(&w, "k20", TuneParams::quick()).unwrap();
        assert_eq!(out.source, PlanSource::Searched { stored: None });
    }

    #[test]
    fn replay_from_store_misses_with_typed_plan_error() {
        let root = temp_root("replay_miss");
        let w = matmul(16);
        let s = TuningSession::with_store(&root).unwrap();
        let time_only = crate::objective::Objective::time_only();
        let err = s.replay_from_store(&w, "k20", &time_only).unwrap_err();
        assert_eq!(err.stage(), "plan");
        assert!(err.to_string().contains("no stored plan"));

        s.tune(&w, "k20", TuneParams::quick()).unwrap();
        let (tuned, plan, path) = s.replay_from_store(&w, "k20", &time_only).unwrap();
        assert!(path.exists());
        assert_eq!(tuned.gpu_seconds.to_bits(), plan.gpu_seconds.to_bits());

        // Explicitly replaying under a different objective is refused:
        // the stored pick answers a question nobody asked.
        let err = s
            .replay_from_store(&w, "k20", &crate::objective::Objective::balanced())
            .unwrap_err();
        assert_eq!(err.stage(), "plan");
        assert_eq!(err.exit_code(), 10);
        assert!(err.to_string().contains("objective"), "{err}");
    }

    #[test]
    fn foreign_objective_store_entry_is_a_miss_not_an_error() {
        let root = temp_root("foreign_objective");
        let w = matmul(16);
        let s = TuningSession::with_store(&root).unwrap();
        let time_tuned = s.tune(&w, "k20", TuneParams::quick()).unwrap();
        assert!(matches!(
            time_tuned.source,
            PlanSource::Searched { stored: Some(_) }
        ));

        // Same workload, different objective: the stored time-only plan
        // must not be served; the session searches under the new
        // objective and overwrites the entry.
        let mut params = TuneParams::quick();
        params.objective = crate::objective::Objective::balanced();
        let balanced = s.tune(&w, "k20", params).unwrap();
        assert!(
            matches!(balanced.source, PlanSource::Searched { stored: Some(_) }),
            "a foreign-objective store entry must be a miss"
        );
        assert!(balanced
            .plan
            .objective
            .same_as(&crate::objective::Objective::balanced()));

        // And now the balanced plan is the stored one: a balanced tune
        // hits, a time-only tune misses again.
        let warm = s.tune(&w, "k20", params).unwrap();
        assert!(matches!(warm.source, PlanSource::StoreHit { .. }));
        let cold = s.tune(&w, "k20", TuneParams::quick()).unwrap();
        assert!(matches!(cold.source, PlanSource::Searched { .. }));
    }

    #[test]
    fn distinct_workloads_never_share_cache_entries() {
        // Configuration ids are workload-local, so two workloads tuned
        // through one session must land in separate caches — a shared
        // cache would alias their ids and serve one workload the other's
        // memoized features/timings. Each result must match a
        // fresh-cache tune bit-for-bit.
        let a = matmul(16);
        let b = crate::kernels::lg3(4, 6);
        let params = TuneParams::quick();
        let arch = gpusim::k20();
        let s = TuningSession::new();
        let sa = s
            .tune_on_arch(&WorkloadTuner::build(&a), &arch, params)
            .unwrap();
        let sb = s
            .tune_on_arch(&WorkloadTuner::build(&b), &arch, params)
            .unwrap();
        let fa = WorkloadTuner::build(&a).autotune(&arch, params).unwrap();
        let fb = WorkloadTuner::build(&b).autotune(&arch, params).unwrap();
        assert_eq!(sa.id, fa.id);
        assert_eq!(sa.gpu_seconds.to_bits(), fa.gpu_seconds.to_bits());
        assert_eq!(sb.id, fb.id);
        assert_eq!(sb.gpu_seconds.to_bits(), fb.gpu_seconds.to_bits());
    }

    #[test]
    fn non_searchable_backend_is_a_typed_search_error() {
        let w = matmul(16);
        let s = TuningSession::new();
        let err = s.tune(&w, "cpu1", TuneParams::quick()).unwrap_err();
        assert_eq!(err.stage(), "search");
        assert!(err.to_string().contains("not searchable"));
    }
}
