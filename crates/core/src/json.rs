//! Minimal hand-rolled JSON — just enough for [`crate::plan`] artifacts.
//!
//! The repo deliberately carries no serde dependency; the bench crate
//! already hand-writes its JSON reports. This module adds the read side:
//! a small recursive-descent parser plus a writer whose `f64` formatting
//! uses Rust's shortest-round-trip `Display`, so `parse(write(x)) == x`
//! bit-for-bit for every finite double. Objects preserve insertion order
//! (plans diff cleanly); `u128` values are carried as strings by the plan
//! layer since JSON numbers are doubles.

use std::fmt::Write as _;

/// One JSON value. Object keys keep insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member of an object, by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Number as an exact unsigned integer (rejects fractions and values
    /// beyond 2^53, where doubles stop being exact).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9_007_199_254_740_992.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Pretty-printed JSON text (2-space indent, trailing newline).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Single-line JSON text (no whitespace, no trailing newline) — the
    /// wire form of line-delimited protocols ([`crate::serve`]). Parses
    /// back to the same value as [`Json::to_string_pretty`].
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    // Rust's Display prints the shortest digits that parse
                    // back to the same double — lossless round-trip.
                    let _ = write!(out, "{n}");
                } else {
                    // JSON has no NaN/inf; plans never contain them.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }

    /// Parses one JSON document (rejects trailing garbage).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| "non-ascii \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape {hex}"))?;
                        // Plans only emit BMP escapes (control chars); a
                        // lone surrogate is replaced rather than fatal.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is &str, so boundaries
                // are valid).
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && (bytes[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(
                    std::str::from_utf8(&bytes[start..*pos])
                        .map_err(|_| "invalid utf-8 in string".to_string())?,
                );
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| format!("invalid number at byte {start}"))?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_structures() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::Str("eqn1 \"quoted\"\n".into())),
            ("n".into(), Json::Num(42.0)),
            ("pi".into(), Json::Num(0.1 + 0.2)),
            ("flag".into(), Json::Bool(true)),
            ("none".into(), Json::Null),
            (
                "xs".into(),
                Json::Arr(vec![Json::Num(1.0), Json::Num(-2.5), Json::Str("s".into())]),
            ),
            ("empty".into(), Json::Obj(vec![])),
        ]);
        let text = doc.to_string_pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(doc, back);
    }

    #[test]
    fn f64_display_is_bit_lossless() {
        for v in [
            0.1 + 0.2,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            f64::from_bits(0x000f_ffff_ffff_ffff), // largest subnormal, stress value
            -0.0,
        ] {
            let text = Json::Num(v).to_string_pretty();
            let back = Json::parse(text.trim()).unwrap();
            assert_eq!(back.as_f64().map(f64::to_bits), Some(v.to_bits()), "{v}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("true false").is_err());
        assert!(Json::parse("nope").is_err());
    }

    #[test]
    fn accessors_navigate() {
        let doc = Json::parse(r#"{"a": {"b": [1, "two", true]}}"#).unwrap();
        let arr = doc.get("a").and_then(|a| a.get("b")).unwrap();
        assert_eq!(arr.as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(arr.as_arr().unwrap()[1].as_str(), Some("two"));
        assert_eq!(arr.as_arr().unwrap()[2].as_bool(), Some(true));
        assert!(doc.get("missing").is_none());
        assert_eq!(Json::Num(1.5).as_u64(), None);
    }
}
