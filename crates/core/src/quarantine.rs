//! Per-unit quarantine bookkeeping.
//!
//! The tuner never aborts on a bad unit: a version that fails lowering or a
//! configuration that fails mapping / yields a non-finite time is recorded
//! here — with its stage, location, and reason — and excluded from the
//! search, which continues over survivors. The report travels on
//! [`crate::pipeline::TunedWorkload`] so callers (CLI, benches) can show
//! exactly what was skipped and why.

use std::collections::BTreeMap;
use std::fmt;

/// Pipeline stage a quarantined unit failed in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum QuarantineStage {
    /// A whole version: lowering the factorization failed.
    Factorization,
    /// A configuration could not be applied to its loop nest.
    Mapping,
    /// The simulator rejected the kernel or produced a non-finite/absurd
    /// time.
    Simulation,
    /// A deterministic fault-injection harness failed the evaluation.
    Injected,
}

impl QuarantineStage {
    pub fn as_str(&self) -> &'static str {
        match self {
            QuarantineStage::Factorization => "factorization",
            QuarantineStage::Mapping => "mapping",
            QuarantineStage::Simulation => "simulation",
            QuarantineStage::Injected => "injected",
        }
    }

    /// Inverse of [`QuarantineStage::as_str`], for deserializing plan
    /// artifacts. Unknown tags are `None` rather than a guess: a plan with
    /// an unrecognized stage is from a newer schema and must say so.
    pub fn from_tag(tag: &str) -> Option<QuarantineStage> {
        match tag {
            "factorization" => Some(QuarantineStage::Factorization),
            "mapping" => Some(QuarantineStage::Mapping),
            "simulation" => Some(QuarantineStage::Simulation),
            "injected" => Some(QuarantineStage::Injected),
            _ => None,
        }
    }

    /// Classifies a quarantine reason string produced by the search layer
    /// (`[stage] detail` from `surf::EvalFault`, or the driver's own
    /// `non-finite simulated time …`).
    pub fn classify(reason: &str) -> QuarantineStage {
        if reason.starts_with("[mapping]") {
            QuarantineStage::Mapping
        } else if reason.starts_with("[injected]") {
            QuarantineStage::Injected
        } else {
            QuarantineStage::Simulation
        }
    }
}

impl fmt::Display for QuarantineStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One quarantined unit: a version or a configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct QuarantineEntry {
    pub stage: QuarantineStage,
    /// Statement index, when attributable.
    pub statement: Option<usize>,
    /// Version index within the statement (version-level quarantine).
    pub version: Option<usize>,
    /// Flat configuration id (configuration-level quarantine).
    pub config: Option<u128>,
    pub reason: String,
}

/// The quarantine report of one tuning run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QuarantineReport {
    pub entries: Vec<QuarantineEntry>,
}

impl QuarantineReport {
    pub fn new() -> Self {
        QuarantineReport::default()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn push(&mut self, entry: QuarantineEntry) {
        self.entries.push(entry);
    }

    /// Records a quarantined version.
    pub fn record_version(&mut self, statement: usize, version: usize, reason: impl Into<String>) {
        self.entries.push(QuarantineEntry {
            stage: QuarantineStage::Factorization,
            statement: Some(statement),
            version: Some(version),
            config: None,
            reason: reason.into(),
        });
    }

    /// Records a quarantined configuration, classifying its stage from the
    /// reason string.
    pub fn record_config(&mut self, statement: Option<usize>, config: u128, reason: String) {
        self.entries.push(QuarantineEntry {
            stage: QuarantineStage::classify(&reason),
            statement,
            version: None,
            config: Some(config),
            reason,
        });
    }

    /// Number of quarantined versions (factorization-stage entries).
    pub fn versions(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.stage == QuarantineStage::Factorization)
            .count()
    }

    /// Number of quarantined configurations.
    pub fn configs(&self) -> usize {
        self.entries.iter().filter(|e| e.config.is_some()).count()
    }

    /// Entry counts keyed by stage tag.
    pub fn counts_by_stage(&self) -> BTreeMap<&'static str, usize> {
        let mut out = BTreeMap::new();
        for e in &self.entries {
            *out.entry(e.stage.as_str()).or_insert(0) += 1;
        }
        out
    }

    pub fn merge(&mut self, other: QuarantineReport) {
        self.entries.extend(other.entries);
    }
}

impl fmt::Display for QuarantineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "quarantine: empty");
        }
        write!(f, "quarantine: {} entries (", self.len())?;
        for (i, (stage, n)) in self.counts_by_stage().into_iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{stage}: {n}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_from_reason_prefixes() {
        assert_eq!(
            QuarantineStage::classify("[mapping] statement 0: bad"),
            QuarantineStage::Mapping
        );
        assert_eq!(
            QuarantineStage::classify("[injected] boom"),
            QuarantineStage::Injected
        );
        assert_eq!(
            QuarantineStage::classify("non-finite simulated time NaN"),
            QuarantineStage::Simulation
        );
    }

    #[test]
    fn counts_split_versions_and_configs() {
        let mut q = QuarantineReport::new();
        q.record_version(0, 3, "lowering failed");
        q.record_config(Some(0), 42, "[mapping] nope".into());
        q.record_config(None, 43, "non-finite simulated time inf".into());
        assert_eq!(q.versions(), 1);
        assert_eq!(q.configs(), 2);
        assert_eq!(q.counts_by_stage().get("mapping"), Some(&1));
        let s = q.to_string();
        assert!(s.contains("3 entries"), "{s}");
    }
}
