//! Plain-text table rendering for the benchmark binaries.

use std::fmt;

/// A simple aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }
}

/// Formats a float with sensible precision for tables.
pub fn fmt_f(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.3}")
    }
}

/// Formats seconds the way the paper's search column does (e.g. `324.8s`).
pub fn fmt_secs(v: f64) -> String {
    format!("{v:.1}s")
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        if !self.title.is_empty() {
            writeln!(f, "== {} ==", self.title)?;
        }
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let padded: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            writeln!(f, "| {} |", padded.join(" | "))
        };
        line(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 3 * widths.len() + 1;
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["name", "gflops"]);
        t.row(vec!["lg3".into(), fmt_f(42.74)]);
        t.row(vec!["eqn1".into(), fmt_f(1.99)]);
        let s = t.to_string();
        assert!(s.contains("== demo =="));
        assert!(s.contains("42.74"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt_f(3556.0), "3556");
        assert_eq!(fmt_f(0.63), "0.630");
        assert_eq!(fmt_secs(324.84), "324.8s");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
