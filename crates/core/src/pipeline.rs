//! End-to-end autotuning: OCTOPI versions × TCR configurations × SURF.
//!
//! A [`WorkloadTuner`] joins the per-statement spaces of a workload into a
//! single flat configuration space (the cross product that reaches 512,000
//! variants for Lg3t in the paper), runs SURF against the GPU simulator and
//! returns a [`TunedWorkload`]: chosen version + configuration per
//! statement, mapped kernels, CUDA source, timing breakdown, and search
//! statistics including the modeled wall-clock search time the paper
//! reports in Table II.

use crate::cache::{EvalCache, HotPathSnapshot, OpOutcome};
use crate::error::BarracudaError;
use crate::quarantine::QuarantineReport;
use crate::variant::StatementTuner;
use crate::workload::Workload;
use gpusim::GpuArch;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::time::Instant;
use surf::{
    surf_search_parallel, surf_search_serial, EvalFault, FaultPlan, FaultyEvaluator, ForestParams,
    ParallelEvaluator, SearchStatus, SurfParams, SurfResult,
};
use tcr::mapping::{map_kernel, map_program, map_programs, MapJob, MappedKernel};
use tcr::program::ArrayKind;
use tcr::space::Configuration;
use tcr::TcrProgram;
use tensor::Tensor;

/// Autotuning parameters.
#[derive(Clone, Copy, Debug)]
pub struct TuneParams {
    pub surf: SurfParams,
    /// Maximum pool presented to SURF; larger spaces are sampled.
    pub pool_cap: usize,
    /// Repetitions per empirical measurement (the paper averages 100) —
    /// only affects the modeled search time, not the deterministic result.
    pub reps: usize,
    /// Relative run-to-run measurement noise injected into the times SURF
    /// observes (seeded, deterministic). Real autotuners see a few percent;
    /// it is what makes near-flat landscapes (Eqn.(1)) hard to search —
    /// the mechanism behind the paper's longest search time (§VI-A).
    pub eval_noise: f64,
    /// Absolute timing jitter in microseconds (launch/measurement jitter).
    /// Relative to a 30 µs Eqn.(1) run this dwarfs the differences between
    /// its versions; relative to a millisecond Lg3 run it is invisible.
    pub noise_floor_us: f64,
    pub seed: u64,
    /// Evaluation parallelism: `1` evaluates serially on the calling
    /// thread; any other value fans batches out over the rayon pool (sized
    /// by `RAYON_NUM_THREADS`, default: all cores — `0` means "auto").
    /// Results are bit-identical at every setting: noise is keyed by
    /// configuration id, not by evaluation order.
    pub threads: usize,
    /// Hard cap on evaluation *attempts* (successes + quarantined) across
    /// the whole run, on top of `surf.max_evals`. Decomposed tuning spends
    /// it as one shared budget across statements. `None`: surf budget only.
    pub max_evaluations: Option<usize>,
    /// Wall-clock deadline for the search; when it expires the run stops at
    /// the next batch boundary and returns best-so-far with a
    /// [`SearchStatus::Degraded`] status.
    pub wall_deadline_s: Option<f64>,
    /// Minimum fraction of attempts that must survive quarantine; dipping
    /// below stops the search early with a degraded status. `0.0` disables.
    pub min_survivor_fraction: f64,
    /// Deterministic fault injection (tests, resilience experiments):
    /// failures are keyed by configuration id exactly like the measurement
    /// noise, so injected runs stay bit-identical serial vs parallel.
    pub fault_injection: Option<FaultPlan>,
}

impl TuneParams {
    /// Paper-scale settings: batch 10, generous eval budget with the
    /// model-confidence stop (flat landscapes run long, §VI-A).
    pub fn paper() -> Self {
        TuneParams {
            surf: SurfParams {
                init_evals: 50,
                batch_size: 10,
                max_evals: 1200,
                // Stop after 8 batches without a >1% record: noisy flat
                // landscapes keep producing small records and run long.
                patience: Some(8),
                min_improvement: 0.01,
                unpromising_stop: None,
                seed: 0xBA22,
                wall_deadline_s: None,
                min_survivor_fraction: 0.0,
                forest: ForestParams {
                    n_trees: 30,
                    min_samples_leaf: 2,
                    k_features: Some(48),
                    seed: 0xF0357,
                },
            },
            pool_cap: 20_000,
            reps: 100,
            eval_noise: 0.02,
            noise_floor_us: 6.0,
            seed: 0xBA22,
            threads: 0,
            max_evaluations: None,
            wall_deadline_s: None,
            min_survivor_fraction: 0.0,
            fault_injection: None,
        }
    }

    /// Small settings for tests and doc examples.
    pub fn quick() -> Self {
        TuneParams {
            surf: SurfParams {
                init_evals: 0,
                batch_size: 8,
                max_evals: 40,
                patience: None,
                min_improvement: 0.01,
                unpromising_stop: None,
                seed: 0xBA22,
                wall_deadline_s: None,
                min_survivor_fraction: 0.0,
                forest: ForestParams {
                    n_trees: 10,
                    min_samples_leaf: 2,
                    k_features: Some(24),
                    seed: 0xF0357,
                },
            },
            pool_cap: 2_000,
            reps: 100,
            eval_noise: 0.0,
            noise_floor_us: 0.0,
            seed: 0xBA22,
            threads: 0,
            max_evaluations: None,
            wall_deadline_s: None,
            min_survivor_fraction: 0.0,
            fault_injection: None,
        }
    }

    /// The SURF parameters actually handed to the search: the tuner-level
    /// budget/deadline/threshold knobs folded into `surf`.
    fn effective_surf(&self) -> SurfParams {
        let mut sp = self.surf;
        if let Some(cap) = self.max_evaluations {
            sp.max_evals = sp.max_evals.min(cap.max(1));
        }
        if self.wall_deadline_s.is_some() {
            sp.wall_deadline_s = self.wall_deadline_s;
        }
        sp.min_survivor_fraction = sp.min_survivor_fraction.max(self.min_survivor_fraction);
        sp
    }
}

/// SplitMix64 hash mapped to [-1, 1): deterministic per-configuration noise.
fn noise_unit(mut z: u64) -> f64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^= z >> 31;
    2.0 * ((z >> 11) as f64 / (1u64 << 53) as f64) - 1.0
}

/// Search bookkeeping of one autotuning run.
#[derive(Clone, Debug)]
pub struct SearchStats {
    pub n_evals: usize,
    pub batches: usize,
    /// Simulated execution time of every evaluated variant.
    pub evaluated_times: Vec<f64>,
    /// Size of the full configuration space (before pool sampling).
    pub space_size: u128,
    pub pool_size: usize,
    /// Memo-cache hits during this run (times + features combined).
    pub cache_hits: usize,
    /// Memo-cache misses during this run (= distinct computations).
    pub cache_misses: usize,
    /// Wall-clock seconds spent inside the SURF search.
    pub wall_s: f64,
    /// Threads the evaluation backend used (1 = serial).
    pub threads: usize,
    /// OCTOPI versions quarantined at build time (lowering failures).
    pub quarantined_versions: usize,
    /// Configurations quarantined during the search (mapping/simulation
    /// failures, non-finite times, injected faults).
    pub quarantined_configs: usize,
    /// Per-op outcome cache hits during this run — the memo layer under the
    /// whole-configuration cache, keyed by `(statement, version, op,
    /// choice)` so distinct joint configurations share sub-results.
    pub per_op_hits: usize,
    pub per_op_misses: usize,
    /// Whole-configuration time cache hits/misses during this run.
    pub time_hits: usize,
    pub time_misses: usize,
    /// Wall-time spent per hot-path stage (decode / map / simulate /
    /// predict) during this run.
    pub hot: HotPathSnapshot,
}

impl SearchStats {
    /// Modeled wall-clock search time the way the paper accounts it: per
    /// evaluated variant, one `nvcc` compile plus `reps` timed runs plus
    /// fixed measurement overhead.
    pub fn search_seconds(&self, arch: &GpuArch, reps: usize) -> f64 {
        self.evaluated_times
            .iter()
            .map(|t| arch.compile_seconds + reps as f64 * t + 0.1)
            .sum()
    }

    /// Modeled time to exhaustively enumerate the whole space at the same
    /// per-variant cost (the paper's "23 days" comparison for Lg3t).
    pub fn exhaustive_seconds(&self, arch: &GpuArch, reps: usize) -> f64 {
        let avg = if self.evaluated_times.is_empty() {
            0.0
        } else {
            self.evaluated_times.iter().sum::<f64>() / self.evaluated_times.len() as f64
        };
        self.space_size as f64 * (arch.compile_seconds + reps as f64 * avg + 0.1)
    }

    /// Fraction of cache lookups served without recomputation.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Fraction of per-op outcome lookups served from the memo layer. The
    /// joint space is a Cartesian product of per-op choices, so this runs
    /// far above the whole-configuration rates: a fresh joint id usually
    /// re-combines already-seen sub-configurations.
    pub fn per_op_hit_rate(&self) -> f64 {
        let total = self.per_op_hits + self.per_op_misses;
        if total == 0 {
            0.0
        } else {
            self.per_op_hits as f64 / total as f64
        }
    }

    /// Fraction of whole-configuration time lookups served memoized.
    pub fn time_hit_rate(&self) -> f64 {
        let total = self.time_hits + self.time_misses;
        if total == 0 {
            0.0
        } else {
            self.time_hits as f64 / total as f64
        }
    }
}

/// FNV-1a of a string, used to salt the shared [`EvalCache`] keyspace per
/// architecture (and per statement in decomposed tuning).
fn salt_of(name: &str) -> u64 {
    let mut h: u64 = 0xCBF29CE484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001B3);
    }
    h
}

/// Cache key of one per-op outcome: statement, version, op and the op's
/// configuration digit, packed bit-disjoint. Joint and decomposed tuning
/// use the same keys, so they share each other's sub-results.
fn op_key(stmt: usize, version: usize, op: usize, choice: usize) -> u128 {
    debug_assert!(stmt < 1 << 8 && op < 1 << 8 && version < 1 << 16);
    ((choice as u128) << 32) | ((version as u128) << 16) | ((op as u128) << 8) | stmt as u128
}

/// A statement-level failure reconstructed from memoized per-op outcomes,
/// carrying the exact detail string the unmemoized pipeline produces.
enum StatementFault {
    Mapping { version: usize, detail: String },
    Simulation { detail: String },
}

/// Device time of one statement under `(version, per-op choices)`, with
/// each op's map + validate + time outcome memoized in `cache` under
/// `salt`. Bitwise identical to `map_program` + `validate_kernel` +
/// `time_program(..).gpu_s`: the first op that fails to map fails the
/// statement (mapping runs before any validation), then the first
/// validation failure in op order, else the kernel times are summed
/// left-to-right exactly like `ProgramTiming::gpu_s`.
#[allow(clippy::too_many_arguments)]
fn statement_time_memo(
    st: &StatementTuner,
    stmt: usize,
    version: usize,
    choices: &[usize],
    accumulate: bool,
    arch: &GpuArch,
    cache: &EvalCache,
    salt: u64,
) -> Result<f64, StatementFault> {
    let variant = &st.variants[version];
    let mut sum = 0.0;
    let mut sim_fault: Option<String> = None;
    for (o, &choice) in choices.iter().enumerate() {
        let outcome = cache.op_outcome(salt, op_key(stmt, version, o, choice), || {
            let t0 = Instant::now();
            let cfg = &variant.space.per_op[o].configs[choice];
            // Only the statement writing the program output may accumulate
            // into pre-existing data (same rule as `map_program`).
            let acc = accumulate
                && variant.program.arrays[variant.program.ops[o].output].kind == ArrayKind::Output;
            match map_kernel(&variant.program, o, cfg, acc) {
                Ok(kernel) => {
                    cache.hot().add_map(t0.elapsed().as_nanos() as u64);
                    let t1 = Instant::now();
                    let out = match gpusim::validate_kernel(&kernel, arch) {
                        Ok(()) => OpOutcome::Time(gpusim::kernel_time_s(&kernel, arch)),
                        Err(detail) => OpOutcome::SimFault(detail),
                    };
                    cache.hot().add_sim(t1.elapsed().as_nanos() as u64);
                    out
                }
                Err(e) => {
                    cache.hot().add_map(t0.elapsed().as_nanos() as u64);
                    OpOutcome::MapFault(e.to_string())
                }
            }
        });
        match outcome {
            OpOutcome::Time(t) => sum += t,
            // Validation only runs once the whole statement maps, so a
            // later op's mapping failure still outranks this one.
            OpOutcome::SimFault(detail) => {
                if sim_fault.is_none() {
                    sim_fault = Some(detail);
                }
            }
            OpOutcome::MapFault(detail) => return Err(StatementFault::Mapping { version, detail }),
        }
    }
    match sim_fault {
        Some(detail) => Err(StatementFault::Simulation { detail }),
        None => Ok(sum),
    }
}

/// Thread-safe joint-configuration evaluator: memoized simulated times and
/// features from a shared [`EvalCache`], plus the deterministic measurement
/// noise SURF observes. Implements [`surf::ParallelEvaluator`], so one
/// instance serves both the serial and the parallel search backends —
/// noise is keyed by configuration id, never by evaluation order, which is
/// what keeps parallel runs bit-identical to serial ones.
pub struct TunerEvaluator<'a> {
    tuner: &'a WorkloadTuner,
    arch: &'a GpuArch,
    cache: &'a EvalCache,
    salt: u64,
    eval_noise: f64,
    noise_floor_us: f64,
    noise_seed: u64,
}

impl<'a> TunerEvaluator<'a> {
    pub fn new(
        tuner: &'a WorkloadTuner,
        arch: &'a GpuArch,
        cache: &'a EvalCache,
        params: &TuneParams,
    ) -> Self {
        TunerEvaluator {
            tuner,
            arch,
            cache,
            salt: salt_of(arch.name),
            eval_noise: params.eval_noise,
            noise_floor_us: params.noise_floor_us,
            noise_seed: params.seed,
        }
    }

    /// Noiseless memoized simulated time of a joint configuration; `NaN`
    /// when the configuration fails to map or simulate (the NaN is cached,
    /// so a failing configuration is never re-simulated).
    pub fn time(&self, id: u128) -> f64 {
        self.try_time(id).unwrap_or(f64::NAN)
    }

    /// Noiseless memoized simulated time, with typed failure. Failures are
    /// memoized as a cached `NaN` sentinel: re-asking about a quarantined
    /// configuration costs one cache hit, not a re-simulation.
    pub fn try_time(&self, id: u128) -> Result<f64, EvalFault> {
        let mut fault = None;
        let t = self.cache.time(self.salt, id, || {
            match self.tuner.try_gpu_seconds_memo(id, self.arch, self.cache) {
                Ok(t) => t,
                Err(e) => {
                    fault = Some(EvalFault::new(e.stage(), e.to_string()));
                    f64::NAN
                }
            }
        });
        if let Some(f) = fault {
            return Err(f);
        }
        if !t.is_finite() || t <= 0.0 {
            return Err(EvalFault::new(
                "simulation",
                format!("non-finite or non-positive simulated time {t} for config {id}"),
            ));
        }
        Ok(t)
    }

    /// Applies the deterministic measurement noise the search observes.
    fn noisy(&self, id: u128, t: f64) -> f64 {
        // A relative component plus absolute launch/measurement jitter that
        // dominates for microsecond-scale kernels.
        let rel = self.eval_noise + self.noise_floor_us * 1e-6 / t;
        t * (1.0 + rel * noise_unit(id as u64 ^ self.noise_seed))
    }
}

impl ParallelEvaluator for TunerEvaluator<'_> {
    fn features(&self, id: u128) -> Vec<f64> {
        // Features are arch-independent; salt 0 shares them across archs.
        self.cache.features(0, id, || self.tuner.features(id))
    }

    fn evaluate(&self, id: u128) -> f64 {
        match self.try_time(id) {
            Ok(t) => self.noisy(id, t),
            Err(_) => f64::NAN,
        }
    }

    fn try_evaluate(&self, id: u128) -> Result<f64, EvalFault> {
        self.try_time(id).map(|t| self.noisy(id, t))
    }
}

/// Statement-local analog of [`TunerEvaluator`] for decomposed tuning: ids
/// are local to one statement's space, salted so several statements share
/// one cache without key collisions.
struct StatementEvaluator<'a> {
    st: &'a StatementTuner,
    /// Statement index in the workload — keys the per-op memo layer with
    /// the same `(statement, version, op, choice)` keys joint tuning uses,
    /// so the two paths share sub-results.
    stmt: usize,
    accumulate: bool,
    arch: &'a GpuArch,
    cache: &'a EvalCache,
    salt: u64,
    /// Per-op memo salt (per-architecture, shared with joint tuning).
    op_salt: u64,
    eval_noise: f64,
    noise_floor_us: f64,
    noise_seed: u64,
}

impl StatementEvaluator<'_> {
    fn time(&self, local: u128) -> f64 {
        self.try_time(local).unwrap_or(f64::NAN)
    }

    /// Statement-local analog of [`TunerEvaluator::try_time`], with the
    /// same cached-NaN memoization of failures, built on the shared per-op
    /// memo layer.
    fn try_time(&self, local: u128) -> Result<f64, EvalFault> {
        let mut fault = None;
        let t = self.cache.time(self.salt, local, || {
            let t0 = Instant::now();
            let (v, local_cfg) = self.st.decode_raw(local);
            let mut choices = Vec::new();
            self.st.variants[v]
                .space
                .choices_into(local_cfg, &mut choices);
            self.cache.hot().add_decode(t0.elapsed().as_nanos() as u64);
            match statement_time_memo(
                self.st,
                self.stmt,
                v,
                &choices,
                self.accumulate,
                self.arch,
                self.cache,
                self.op_salt,
            ) {
                Ok(t) => t,
                Err(StatementFault::Mapping { detail, .. }) => {
                    fault = Some(EvalFault::new("mapping", detail));
                    f64::NAN
                }
                Err(StatementFault::Simulation { detail }) => {
                    fault = Some(EvalFault::new("simulation", detail));
                    f64::NAN
                }
            }
        });
        if let Some(f) = fault {
            return Err(f);
        }
        if !t.is_finite() || t <= 0.0 {
            return Err(EvalFault::new(
                "simulation",
                format!("non-finite or non-positive simulated time {t} for config {local}"),
            ));
        }
        Ok(t)
    }

    fn noisy(&self, local: u128, t: f64) -> f64 {
        let rel = self.eval_noise + self.noise_floor_us * 1e-6 / t;
        t * (1.0 + rel * noise_unit(local as u64 ^ self.noise_seed))
    }
}

impl ParallelEvaluator for StatementEvaluator<'_> {
    fn features(&self, local: u128) -> Vec<f64> {
        self.cache
            .features(self.salt, local, || self.st.features(local))
    }

    fn evaluate(&self, local: u128) -> f64 {
        match self.try_time(local) {
            Ok(t) => self.noisy(local, t),
            Err(_) => f64::NAN,
        }
    }

    fn try_evaluate(&self, local: u128) -> Result<f64, EvalFault> {
        self.try_time(local).map(|t| self.noisy(local, t))
    }
}

/// Dispatches to the serial or parallel SURF backend per
/// [`TuneParams::threads`]; both run the same driver over the same
/// evaluator (including its typed-fault path), so the choice never changes
/// the result — including which configurations get quarantined and why.
fn search_with<E: ParallelEvaluator>(
    pool: &[u128],
    evaluator: &E,
    surf_params: SurfParams,
    threads: usize,
) -> Result<SurfResult, surf::SearchError> {
    if threads == 1 {
        surf_search_serial(pool, evaluator, surf_params)
    } else {
        surf_search_parallel(pool, evaluator, surf_params)
    }
}

/// Result of autotuning one workload on one architecture.
#[derive(Clone, Debug)]
pub struct TunedWorkload {
    pub name: String,
    pub arch_name: String,
    /// Flat id of the chosen configuration.
    pub id: u128,
    /// Per statement: chosen version index + configuration.
    pub choices: Vec<(usize, Configuration)>,
    /// Per statement: the chosen version's TCR program.
    pub programs: Vec<TcrProgram>,
    /// Per statement: mapped kernels.
    pub kernels: Vec<Vec<MappedKernel>>,
    pub gpu_seconds: f64,
    pub transfer_seconds: f64,
    pub flops: u64,
    pub search: SearchStats,
    /// Whether the search ran to completion or stopped early (budget,
    /// deadline, survivor-fraction threshold) with best-so-far.
    pub status: SearchStatus,
    /// Every version and configuration excluded from the search, with the
    /// stage and reason it was quarantined.
    pub quarantine: QuarantineReport,
}

impl TunedWorkload {
    pub fn total_seconds(&self) -> f64 {
        self.gpu_seconds + self.transfer_seconds
    }

    /// `true` when the search stopped early instead of running to its
    /// configured budget (the result is still the best configuration seen).
    pub fn is_degraded(&self) -> bool {
        self.status.is_degraded()
    }

    /// Sustained GFlop/s including PCIe transfers.
    pub fn gflops(&self) -> f64 {
        self.flops as f64 / self.total_seconds() / 1e9
    }

    /// Device-side GFlop/s (kernels + launches only).
    pub fn gflops_device(&self) -> f64 {
        self.flops as f64 / self.gpu_seconds / 1e9
    }

    /// Time per run when the measurement loop repeats the kernels `reps`
    /// times over device-resident data (the paper averages 100 repetitions,
    /// so host transfers amortize across them).
    pub fn amortized_seconds(&self, reps: usize) -> f64 {
        self.gpu_seconds + self.transfer_seconds / reps.max(1) as f64
    }

    /// GFlop/s under `reps`-amortized transfers (the Table II metric).
    pub fn gflops_amortized(&self, reps: usize) -> f64 {
        self.flops as f64 / self.amortized_seconds(reps) / 1e9
    }

    /// Full CUDA source: every kernel plus the host launcher.
    pub fn cuda_source(&self) -> String {
        let mut s = String::new();
        for ks in &self.kernels {
            for k in ks {
                s.push_str(&tcr::codegen::cuda_kernel(k));
                s.push('\n');
            }
        }
        for ks in &self.kernels {
            s.push_str(&tcr::codegen::cuda_launcher(ks));
        }
        s
    }

    /// Executes the tuned kernels functionally (simulated GPU) over named
    /// inputs; returns the workload's external outputs. Fails when `inputs`
    /// is missing a tensor some statement consumes.
    pub fn execute(
        &self,
        workload: &Workload,
        inputs: &[(String, Tensor)],
    ) -> Result<Vec<(String, Tensor)>, BarracudaError> {
        let mut env: BTreeMap<String, Tensor> = inputs.iter().cloned().collect();
        for (sidx, st) in workload.statements.iter().enumerate() {
            let program = &self.programs[sidx];
            let input_ids = program.input_ids();
            let operands: Vec<&Tensor> = input_ids
                .iter()
                .map(|&id| {
                    let name = &program.arrays[id].name;
                    env.get(name).ok_or_else(|| BarracudaError::Validation {
                        workload: self.name.clone(),
                        statement: Some(sidx),
                        detail: format!("missing input tensor {name}"),
                    })
                })
                .collect::<Result<_, _>>()?;
            let fresh = gpusim::execute_program(program, &self.kernels[sidx], &operands);
            match env.entry(st.output.name.clone()) {
                std::collections::btree_map::Entry::Occupied(mut o) if st.accumulate => {
                    for (a, b) in o.get_mut().data_mut().iter_mut().zip(fresh.data()) {
                        *a += b;
                    }
                }
                std::collections::btree_map::Entry::Occupied(mut o) => {
                    *o.get_mut() = fresh;
                }
                std::collections::btree_map::Entry::Vacant(v) => {
                    v.insert(fresh);
                }
            }
        }
        workload
            .external_outputs()
            .into_iter()
            .map(|name| {
                let t = env
                    .remove(&name)
                    .ok_or_else(|| BarracudaError::Validation {
                        workload: self.name.clone(),
                        statement: None,
                        detail: format!("external output {name} was never computed"),
                    })?;
                Ok((name, t))
            })
            .collect()
    }
}

/// Joint tuner over every statement of a workload.
#[derive(Clone, Debug)]
pub struct WorkloadTuner {
    pub workload: Workload,
    pub statements: Vec<StatementTuner>,
}

impl WorkloadTuner {
    pub fn build(workload: &Workload) -> Self {
        // Statements are independent; enumerate + lower + space-build each
        // on the rayon pool (order-preserving, so offsets and ids match the
        // serial construction exactly).
        let idx: Vec<usize> = (0..workload.statements.len()).collect();
        let statements = rayon::par_map_slice(&idx, |&i| {
            StatementTuner::build(
                &format!("{}_{}", workload.name, i),
                &workload.statements[i],
                &workload.dims,
            )
        });
        WorkloadTuner {
            workload: workload.clone(),
            statements,
        }
    }

    /// Builds the tuner with every statement's space pruned by `rules`
    /// (§VIII future work; see `tcr::prune`).
    pub fn build_pruned(workload: &Workload, rules: &tcr::PruneRules) -> Self {
        let mut tuner = Self::build(workload);
        for st in &mut tuner.statements {
            st.prune(rules);
        }
        tuner
    }

    /// A random neighbor of `id` for local-search baselines: re-draws one
    /// statement's configuration (keeping its OCTOPI version with
    /// probability ~0.7).
    pub fn neighbor(&self, id: u128, rng: &mut StdRng) -> u128 {
        let locals = self.decode(id);
        let k = rng.gen_range(0..self.statements.len());
        let st = &self.statements[k];
        let (v, _) = st.decode(locals[k]);
        let new_v = if st.variants.len() > 1 && rng.gen_range(0..10) < 3 {
            rng.gen_range(0..st.variants.len())
        } else {
            v
        };
        let space_len = st.variants[new_v].space.len();
        let new_local = st.encode(
            new_v,
            &st.variants[new_v].space.config(rng.gen_range(0..space_len)),
        );
        // Re-encode the joint id.
        let mut out = 0u128;
        for (i, s) in self.statements.iter().enumerate() {
            let l = if i == k { new_local } else { locals[i] };
            out = out * s.total() + l;
        }
        out
    }

    /// Total joint configurations (product of per-statement spaces).
    pub fn total_space(&self) -> u128 {
        self.statements
            .iter()
            .map(|s| s.total())
            .fold(1u128, |a, b| a.saturating_mul(b))
    }

    /// Decodes a joint id into per-statement local ids.
    pub fn decode(&self, mut id: u128) -> Vec<u128> {
        let mut locals = vec![0u128; self.statements.len()];
        for (k, s) in self.statements.iter().enumerate().rev() {
            let radix = s.total();
            locals[k] = id % radix;
            id /= radix;
        }
        locals
    }

    /// Names of every binarized feature column of [`WorkloadTuner::features`].
    pub fn binarized_feature_names(&self) -> Vec<String> {
        let mut out = Vec::new();
        for (k, st) in self.statements.iter().enumerate() {
            out.extend(
                st.binarized_feature_names()
                    .into_iter()
                    .map(|n| format!("s{k}.{n}")),
            );
        }
        out
    }

    /// Binarized features of a joint id: concatenation across statements.
    pub fn features(&self, id: u128) -> Vec<f64> {
        let locals = self.decode(id);
        let mut out = Vec::new();
        for (s, &local) in self.statements.iter().zip(&locals) {
            out.extend(s.features(local));
        }
        out
    }

    /// Maps every statement under the joint id (statements map in parallel
    /// on the rayon pool); fails with full context when any statement's
    /// configuration cannot be applied to its loop nest.
    pub fn kernels(&self, id: u128) -> Result<Vec<Vec<MappedKernel>>, BarracudaError> {
        let locals = self.decode(id);
        let jobs: Vec<MapJob<'_>> = self
            .statements
            .iter()
            .zip(&locals)
            .zip(&self.workload.statements)
            .map(|((s, &local), st)| {
                let (v, config) = s.decode(local);
                let variant = &s.variants[v];
                MapJob {
                    program: &variant.program,
                    space: &variant.space,
                    config,
                    accumulate_output: st.accumulate,
                }
            })
            .collect();
        map_programs(&jobs)
            .into_iter()
            .enumerate()
            .map(|(k, r)| {
                r.map_err(|e| BarracudaError::Mapping {
                    workload: self.workload.name.clone(),
                    statement: k,
                    version: Some(self.statements[k].decode(locals[k]).0),
                    config: Some(id),
                    detail: e.to_string(),
                })
            })
            .collect()
    }

    /// Device-side time of a joint configuration (no transfers — they are
    /// identical across configurations); `NaN` when mapping or simulation
    /// fails. Prefer [`WorkloadTuner::try_gpu_seconds`] for the reason.
    pub fn gpu_seconds(&self, id: u128, arch: &GpuArch) -> f64 {
        self.try_gpu_seconds(id, arch).unwrap_or(f64::NAN)
    }

    /// Device-side time of a joint configuration, with a typed error naming
    /// the statement/version/configuration when mapping fails or the
    /// simulator rejects a kernel.
    pub fn try_gpu_seconds(&self, id: u128, arch: &GpuArch) -> Result<f64, BarracudaError> {
        let locals = self.decode(id);
        let mut total = 0.0;
        for (k, (s, &local)) in self.statements.iter().zip(&locals).enumerate() {
            let (v, config) = s.decode(local);
            let variant = &s.variants[v];
            let st = &self.workload.statements[k];
            let kernels = map_program(&variant.program, &variant.space, &config, st.accumulate)
                .map_err(|e| BarracudaError::Mapping {
                    workload: self.workload.name.clone(),
                    statement: k,
                    version: Some(v),
                    config: Some(id),
                    detail: e.to_string(),
                })?;
            for kernel in &kernels {
                gpusim::validate_kernel(kernel, arch).map_err(|detail| {
                    BarracudaError::Simulation {
                        workload: self.workload.name.clone(),
                        config: Some(id),
                        detail,
                    }
                })?;
            }
            total += gpusim::time_program(&variant.program, &kernels, arch, false).gpu_s;
        }
        Ok(total)
    }

    /// [`WorkloadTuner::try_gpu_seconds`] through the per-op memo layer of
    /// `cache`: every op outcome is keyed by `(statement, version, op,
    /// choice)`, so a fresh joint configuration that re-combines
    /// already-seen per-op choices costs only cache hits instead of a full
    /// map + validate + simulate pass. Bitwise identical to the unmemoized
    /// path, including the error a faulting configuration produces.
    pub fn try_gpu_seconds_memo(
        &self,
        id: u128,
        arch: &GpuArch,
        cache: &EvalCache,
    ) -> Result<f64, BarracudaError> {
        let salt = salt_of(arch.name);
        let t0 = Instant::now();
        let locals = self.decode(id);
        cache.hot().add_decode(t0.elapsed().as_nanos() as u64);
        let mut choices: Vec<usize> = Vec::new();
        let mut total = 0.0;
        for (k, (s, &local)) in self.statements.iter().zip(&locals).enumerate() {
            let t0 = Instant::now();
            let (v, local_cfg) = s.decode_raw(local);
            s.variants[v].space.choices_into(local_cfg, &mut choices);
            cache.hot().add_decode(t0.elapsed().as_nanos() as u64);
            let accumulate = self.workload.statements[k].accumulate;
            match statement_time_memo(s, k, v, &choices, accumulate, arch, cache, salt) {
                Ok(stmt_s) => total += stmt_s,
                Err(StatementFault::Mapping { version, detail }) => {
                    return Err(BarracudaError::Mapping {
                        workload: self.workload.name.clone(),
                        statement: k,
                        version: Some(version),
                        config: Some(id),
                        detail,
                    })
                }
                Err(StatementFault::Simulation { detail }) => {
                    return Err(BarracudaError::Simulation {
                        workload: self.workload.name.clone(),
                        config: Some(id),
                        detail,
                    })
                }
            }
        }
        Ok(total)
    }

    /// PCIe transfer time of the workload on `arch`.
    pub fn transfer_seconds(&self, arch: &GpuArch) -> f64 {
        self.workload.transfer_bytes() as f64 / (arch.pcie_bw_gbs * 1e9)
            + 2.0 * arch.pcie_latency_us * 1e-6
    }

    /// Flops of the versions selected by `id`.
    pub fn flops(&self, id: u128) -> u64 {
        let locals = self.decode(id);
        self.statements
            .iter()
            .zip(&locals)
            .map(|(s, &local)| {
                let (v, _) = s.decode(local);
                s.variants[v].program.flops()
            })
            .sum()
    }

    /// Configuration pool: the full space when it fits under `cap`, else a
    /// deterministic *stratified* sample of `cap` distinct ids — the OCTOPI
    /// version of every statement is drawn uniformly, then a configuration
    /// within it. Plain uniform id sampling would weight versions by their
    /// space size and all but hide the small-space (often minimal-flop)
    /// versions OCTOPI works hardest to expose.
    pub fn pool(&self, cap: usize, seed: u64) -> Vec<u128> {
        let total = self.total_space();
        if total <= cap as u128 {
            return (0..total).collect();
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut set = std::collections::BTreeSet::new();
        let mut guard = 0usize;
        while set.len() < cap && guard < cap * 20 {
            guard += 1;
            // Per statement: uniform version, then uniform config inside it.
            let mut id = 0u128;
            for st in &self.statements {
                let v = rng.gen_range(0..st.variants.len());
                let local = st.encode(
                    v,
                    &st.variants[v]
                        .space
                        .config(rng.gen_range(0..st.variants[v].space.len())),
                );
                id = id * st.total() + local;
            }
            set.insert(id);
        }
        set.into_iter().collect()
    }

    /// Quarantine report of the build stage: every version whose lowering
    /// failed, per statement.
    fn build_quarantine(&self) -> QuarantineReport {
        let mut q = QuarantineReport::new();
        for (k, st) in self.statements.iter().enumerate() {
            for (v, reason) in &st.quarantined_versions {
                q.record_version(k, *v, reason.clone());
            }
        }
        q
    }

    /// Runs SURF and returns the tuned workload. Uses a fresh memo cache;
    /// [`WorkloadTuner::autotune_with_cache`] shares one across runs.
    pub fn autotune(
        &self,
        arch: &GpuArch,
        params: TuneParams,
    ) -> Result<TunedWorkload, BarracudaError> {
        self.autotune_with_cache(arch, params, &EvalCache::new())
    }

    /// Runs SURF against a caller-provided [`EvalCache`], so repeated runs
    /// (per-architecture sweeps, benchmark repetitions, decomposed +
    /// joint comparisons) never re-simulate a configuration they have
    /// already seen.
    ///
    /// Configurations that fail to map/simulate (or are failed by
    /// [`TuneParams::fault_injection`]) are quarantined, not fatal: the
    /// search continues over survivors and the report travels on the
    /// result. The only hard errors are an empty pool and a search with no
    /// survivors at all.
    pub fn autotune_with_cache(
        &self,
        arch: &GpuArch,
        params: TuneParams,
        cache: &EvalCache,
    ) -> Result<TunedWorkload, BarracudaError> {
        let pool = self.pool(params.pool_cap, params.seed);
        let evaluator = TunerEvaluator::new(self, arch, cache, &params);
        let faulty = FaultyEvaluator::new(
            &evaluator,
            params.fault_injection.unwrap_or_else(FaultPlan::none),
        );
        let (hits0, misses0) = cache.stats();
        let (th0, tm0) = cache.time_stats();
        let (oh0, om0) = cache.op_stats();
        let hot0 = cache.hot().snapshot();
        let result =
            search_with(&pool, &faulty, params.effective_surf(), params.threads).map_err(|e| {
                BarracudaError::Search {
                    workload: self.workload.name.clone(),
                    detail: e.to_string(),
                }
            })?;
        let (hits1, misses1) = cache.stats();
        let (th1, tm1) = cache.time_stats();
        let (oh1, om1) = cache.op_stats();
        let mut hot = cache.hot().snapshot().delta(&hot0);
        hot.predict_ns = result.predict_ns;
        // An external attempt cap that actually truncated the search is an
        // explicit degradation, not a silent completion.
        let mut status = result.status.clone();
        if let Some(cap) = params.max_evaluations {
            if !status.is_degraded() && cap < params.surf.max_evals && result.n_attempted() >= cap {
                status = SearchStatus::Degraded {
                    reason: format!(
                        "evaluation budget exhausted after {} attempts (cap {cap})",
                        result.n_attempted()
                    ),
                };
            }
        }

        // The search observed noisy measurements; the final pick re-measures
        // carefully: choose the best *noiseless* time among everything the
        // search evaluated (the paper's final numbers are 100-rep averages).
        // One cache hit per candidate — the search already simulated them
        // all, and each id's time is looked up exactly once. First minimal
        // wins ties, matching `min_by`; quarantined ids never reach
        // `evaluated`, and the finite filter keeps even a stray NaN from
        // poisoning the pick.
        let mut best: Option<(u128, f64)> = None;
        for &(cand, _) in &result.evaluated {
            let t = evaluator.time(cand);
            let better = match best {
                None => true,
                Some((_, bt)) => t < bt,
            };
            if t.is_finite() && better {
                best = Some((cand, t));
            }
        }
        let id = best.map_or(result.best_id, |(id, _)| id);
        let locals = self.decode(id);
        let mut choices = Vec::new();
        let mut programs = Vec::new();
        for (s, &local) in self.statements.iter().zip(&locals) {
            let (v, config) = s.decode(local);
            programs.push(s.variants[v].program.clone());
            choices.push((v, config));
        }
        let kernels = self.kernels(id)?;
        let mut quarantine = self.build_quarantine();
        for (cid, reason) in &result.quarantined {
            quarantine.record_config(None, *cid, reason.clone());
        }
        // Report the noiseless model time of the chosen configuration.
        let gpu_seconds = self.try_gpu_seconds(id, arch)?;
        let transfer_seconds = self.transfer_seconds(arch);
        let flops = self.flops(id);
        Ok(TunedWorkload {
            name: self.workload.name.clone(),
            arch_name: arch.name.to_string(),
            id,
            choices,
            programs,
            kernels,
            gpu_seconds,
            transfer_seconds,
            flops,
            search: SearchStats {
                n_evals: result.n_evals(),
                batches: result.batches,
                evaluated_times: result.evaluated.iter().map(|(_, t)| *t).collect(),
                space_size: self.total_space(),
                pool_size: pool.len(),
                cache_hits: hits1 - hits0,
                cache_misses: misses1 - misses0,
                wall_s: result.wall_s,
                threads: result.threads,
                quarantined_versions: quarantine.versions(),
                quarantined_configs: quarantine.configs(),
                per_op_hits: oh1 - oh0,
                per_op_misses: om1 - om0,
                time_hits: th1 - th0,
                time_misses: tm1 - tm0,
                hot,
            },
            status,
            quarantine,
        })
    }
}

impl WorkloadTuner {
    /// Decomposed tuning: each statement is searched *independently* (the
    /// joint objective is a sum over statements, so the joint optimum
    /// factors — an observation the paper's joint 512,000-variant framing
    /// leaves on the table). Costs the sum of the per-statement budgets
    /// instead of one budget over the product space.
    pub fn autotune_decomposed(
        &self,
        arch: &GpuArch,
        params: TuneParams,
    ) -> Result<TunedWorkload, BarracudaError> {
        self.autotune_decomposed_with_cache(arch, params, &EvalCache::new())
    }

    /// [`WorkloadTuner::autotune_decomposed`] against a shared memo cache:
    /// statements salt the cache's keyspace individually, so repeated or
    /// interleaved runs reuse each other's simulations.
    ///
    /// [`TuneParams::max_evaluations`] and [`TuneParams::wall_deadline_s`]
    /// are *shared* budgets: each statement's search gets what the previous
    /// statements left over, and exhaustion degrades the run rather than
    /// failing it.
    pub fn autotune_decomposed_with_cache(
        &self,
        arch: &GpuArch,
        params: TuneParams,
        cache: &EvalCache,
    ) -> Result<TunedWorkload, BarracudaError> {
        let mut locals: Vec<u128> = Vec::with_capacity(self.statements.len());
        let mut n_evals = 0;
        let mut batches = 0;
        let mut evaluated_times = Vec::new();
        let mut wall_s = 0.0;
        let mut threads = 1;
        let mut predict_ns = 0u64;
        let mut quarantine = self.build_quarantine();
        let mut status = SearchStatus::Complete;
        let mut remaining = params.max_evaluations;
        let mut attempted_total = 0usize;
        let start = Instant::now();
        let (hits0, misses0) = cache.stats();
        let (th0, tm0) = cache.time_stats();
        let (oh0, om0) = cache.op_stats();
        let hot0 = cache.hot().snapshot();
        for (k, st) in self.statements.iter().enumerate() {
            // Pool over this statement's own space.
            let total = st.total();
            let cap = params.pool_cap as u128;
            let pool: Vec<u128> = if total <= cap {
                (0..total).collect()
            } else {
                let mut rng = StdRng::seed_from_u64(params.seed ^ k as u64);
                let mut set = std::collections::BTreeSet::new();
                while (set.len() as u128) < cap {
                    let v = rng.gen_range(0..st.variants.len());
                    let local = st.encode(
                        v,
                        &st.variants[v]
                            .space
                            .config(rng.gen_range(0..st.variants[v].space.len())),
                    );
                    set.insert(local);
                }
                set.into_iter().collect()
            };
            let evaluator = StatementEvaluator {
                st,
                stmt: k,
                accumulate: self.workload.statements[k].accumulate,
                arch,
                cache,
                salt: salt_of(arch.name) ^ (k as u64 + 1),
                op_salt: salt_of(arch.name),
                eval_noise: params.eval_noise,
                noise_floor_us: params.noise_floor_us,
                noise_seed: params.seed ^ k as u64,
            };
            let faulty = FaultyEvaluator::new(
                &evaluator,
                params.fault_injection.unwrap_or_else(FaultPlan::none),
            );
            // This statement's share of the run-wide budget/deadline.
            let mut sp = params.effective_surf();
            if let Some(rem) = remaining {
                sp.max_evals = sp.max_evals.min(rem.max(1));
            }
            if let Some(d) = params.wall_deadline_s {
                sp.wall_deadline_s = Some((d - start.elapsed().as_secs_f64()).max(0.0));
            }
            let result = search_with(&pool, &faulty, sp, params.threads).map_err(|e| {
                BarracudaError::Search {
                    workload: self.workload.name.clone(),
                    detail: format!("statement {k}: {e}"),
                }
            })?;
            if let Some(rem) = remaining.as_mut() {
                *rem = rem.saturating_sub(result.n_attempted());
            }
            attempted_total += result.n_attempted();
            if let (SearchStatus::Complete, SearchStatus::Degraded { reason }) =
                (&status, &result.status)
            {
                status = SearchStatus::Degraded {
                    reason: format!("statement {k}: {reason}"),
                };
            }
            for (cid, reason) in &result.quarantined {
                quarantine.record_config(Some(k), *cid, reason.clone());
            }
            // Final noiseless pick and the evaluated-times record in one
            // pass: each id's time is looked up exactly once (first minimal
            // wins ties, matching `min_by`).
            let mut best: Option<(u128, f64)> = None;
            evaluated_times.reserve(result.evaluated.len());
            for &(cand, _) in &result.evaluated {
                let t = evaluator.time(cand);
                evaluated_times.push(t);
                let better = match best {
                    None => true,
                    Some((_, bt)) => t < bt,
                };
                if t.is_finite() && better {
                    best = Some((cand, t));
                }
            }
            let best = best.map_or(result.best_id, |(id, _)| id);
            n_evals += result.n_evals();
            batches += result.batches;
            wall_s += result.wall_s;
            threads = threads.max(result.threads);
            predict_ns += result.predict_ns;
            locals.push(best);
        }
        let (hits1, misses1) = cache.stats();
        let (th1, tm1) = cache.time_stats();
        let (oh1, om1) = cache.op_stats();
        let mut hot = cache.hot().snapshot().delta(&hot0);
        hot.predict_ns = predict_ns;
        // The shared attempt budget ran dry: an explicit degradation.
        if let Some(cap) = params.max_evaluations {
            if !status.is_degraded() && attempted_total >= cap {
                status = SearchStatus::Degraded {
                    reason: format!(
                        "shared evaluation budget exhausted after {attempted_total} attempts (cap {cap})"
                    ),
                };
            }
        }
        // Re-encode as a joint id and assemble the result.
        let mut id = 0u128;
        for (st, &local) in self.statements.iter().zip(&locals) {
            id = id * st.total() + local;
        }
        let mut choices = Vec::new();
        let mut programs = Vec::new();
        for (st, &local) in self.statements.iter().zip(&locals) {
            let (v, config) = st.decode(local);
            programs.push(st.variants[v].program.clone());
            choices.push((v, config));
        }
        let kernels = self.kernels(id)?;
        Ok(TunedWorkload {
            name: self.workload.name.clone(),
            arch_name: arch.name.to_string(),
            id,
            choices,
            programs,
            kernels,
            gpu_seconds: self.try_gpu_seconds(id, arch)?,
            transfer_seconds: self.transfer_seconds(arch),
            flops: self.flops(id),
            search: SearchStats {
                n_evals,
                batches,
                evaluated_times,
                space_size: self.total_space(),
                pool_size: 0,
                cache_hits: hits1 - hits0,
                cache_misses: misses1 - misses0,
                wall_s,
                threads,
                quarantined_versions: quarantine.versions(),
                quarantined_configs: quarantine.configs(),
                per_op_hits: oh1 - oh0,
                per_op_misses: om1 - om0,
                time_hits: th1 - th0,
                time_misses: tm1 - tm0,
                hot,
            },
            status,
            quarantine,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::index::uniform_dims;

    fn matmul_workload(n: usize) -> Workload {
        Workload::parse(
            "mm",
            "C[i k] = Sum([j], A[i j] * B[j k])",
            &uniform_dims(&["i", "j", "k"], n),
        )
        .unwrap()
    }

    fn eqn1_workload(n: usize) -> Workload {
        Workload::parse(
            "ex",
            "V[i j k] = Sum([l m n], A[l k] * B[m j] * C[n i] * U[l m n])",
            &uniform_dims(&["i", "j", "k", "l", "m", "n"], n),
        )
        .unwrap()
    }

    #[test]
    fn tuned_matmul_is_correct() {
        let w = matmul_workload(8);
        let tuner = WorkloadTuner::build(&w);
        let arch = gpusim::gtx980();
        let tuned = tuner.autotune(&arch, TuneParams::quick()).unwrap();
        let inputs = w.random_inputs(3);
        let expect = w.evaluate_reference(&inputs).unwrap();
        let got = tuned.execute(&w, &inputs).unwrap();
        assert_eq!(expect.len(), got.len());
        for ((n1, t1), (n2, t2)) in expect.iter().zip(&got) {
            assert_eq!(n1, n2);
            assert!(t1.approx_eq(t2, 1e-10));
        }
    }

    #[test]
    fn tuned_eqn1_is_correct_and_strength_reduced() {
        // N must be large enough for strength reduction to pay (at N=5 the
        // O(N^4) reorganizations cost about as much as the naive O(N^6)).
        let w = eqn1_workload(6);
        let tuner = WorkloadTuner::build(&w);
        let arch = gpusim::k20();
        let mut params = TuneParams::quick();
        params.surf.batch_size = 10;
        params.surf.max_evals = 150;
        let tuned = tuner.autotune(&arch, params).unwrap();
        // Correctness across the whole chain of temporaries.
        let inputs = w.random_inputs(11);
        let expect = w.evaluate_reference(&inputs).unwrap();
        let got = tuned.execute(&w, &inputs).unwrap();
        assert!(expect[0].1.approx_eq(&got[0].1, 1e-10));
        // The tuner must not pick the naive O(N^6) version.
        assert!(
            tuned.flops < w.naive_flops(),
            "strength reduction must win: {} vs naive {}",
            tuned.flops,
            w.naive_flops()
        );
    }

    #[test]
    fn autotuning_beats_the_median_configuration() {
        let w = matmul_workload(32);
        let tuner = WorkloadTuner::build(&w);
        let arch = gpusim::c2050();
        let tuned = tuner.autotune(&arch, TuneParams::quick()).unwrap();
        // Compare against the average of a random sample.
        let pool = tuner.pool(64, 9);
        let avg: f64 = pool
            .iter()
            .map(|&id| tuner.gpu_seconds(id, &arch))
            .sum::<f64>()
            / pool.len() as f64;
        assert!(
            tuned.gpu_seconds <= avg,
            "tuned {} should beat average {avg}",
            tuned.gpu_seconds
        );
    }

    #[test]
    fn deterministic_tuning() {
        let w = matmul_workload(16);
        let tuner = WorkloadTuner::build(&w);
        let arch = gpusim::gtx980();
        let a = tuner.autotune(&arch, TuneParams::quick()).unwrap();
        let b = tuner.autotune(&arch, TuneParams::quick()).unwrap();
        assert_eq!(a.id, b.id);
        assert_eq!(a.gpu_seconds, b.gpu_seconds);
    }

    #[test]
    fn cuda_source_contains_all_kernels() {
        let w = eqn1_workload(6);
        let tuner = WorkloadTuner::build(&w);
        let tuned = tuner
            .autotune(&gpusim::gtx980(), TuneParams::quick())
            .unwrap();
        let src = tuned.cuda_source();
        let n_kernels: usize = tuned.kernels.iter().map(|k| k.len()).sum();
        assert_eq!(src.matches("__global__").count(), n_kernels);
        assert_eq!(src.matches("<<<").count(), n_kernels);
    }

    #[test]
    fn search_stats_account_time() {
        let w = matmul_workload(16);
        let tuner = WorkloadTuner::build(&w);
        let arch = gpusim::gtx980();
        let tuned = tuner.autotune(&arch, TuneParams::quick()).unwrap();
        let s = tuned.search.search_seconds(&arch, 100);
        assert!(s > tuned.search.n_evals as f64 * arch.compile_seconds);
        // When the space is fully enumerated the two estimates coincide up
        // to averaging; otherwise exhaustive is (much) larger.
        assert!(tuned.search.exhaustive_seconds(&arch, 100) >= s * 0.999);
    }

    #[test]
    fn decomposed_tuning_matches_joint_quality() {
        // The objective is separable, so per-statement search must find a
        // configuration at least as good as joint search at a similar
        // total budget (usually better: no cross-statement credit
        // assignment for the model to learn).
        let w = Workload::parse(
            "pair",
            "T[i l] = Sum([j], A[i j] * B[j l])\nC[i k] = Sum([l], T[i l] * D[l k])",
            &uniform_dims(&["i", "j", "k", "l"], 12),
        )
        .unwrap();
        let tuner = WorkloadTuner::build(&w);
        let arch = gpusim::k20();
        let mut params = TuneParams::quick();
        params.surf.max_evals = 60;
        let joint = tuner.autotune(&arch, params).unwrap();
        params.surf.max_evals = 30; // per statement -> same total budget
        let decomposed = tuner.autotune_decomposed(&arch, params).unwrap();
        assert!(
            decomposed.gpu_seconds <= joint.gpu_seconds * 1.05,
            "decomposed {} vs joint {}",
            decomposed.gpu_seconds,
            joint.gpu_seconds
        );
        // The result must execute correctly too.
        let inputs = w.random_inputs(3);
        let expect = w.evaluate_reference(&inputs).unwrap();
        let got = decomposed.execute(&w, &inputs).unwrap();
        assert!(expect[0].1.approx_eq(&got[0].1, 1e-10));
    }

    #[test]
    fn parallel_tuning_is_bit_identical_to_serial() {
        let w = eqn1_workload(6);
        let tuner = WorkloadTuner::build(&w);
        let arch = gpusim::k20();
        let mut serial_params = TuneParams::quick();
        serial_params.threads = 1;
        let mut parallel_params = TuneParams::quick();
        parallel_params.threads = 0;
        let serial = tuner.autotune(&arch, serial_params).unwrap();
        let parallel = tuner.autotune(&arch, parallel_params).unwrap();
        assert_eq!(serial.id, parallel.id);
        assert_eq!(serial.gpu_seconds.to_bits(), parallel.gpu_seconds.to_bits());
        assert_eq!(serial.search.n_evals, parallel.search.n_evals);
        let bits = |v: &[f64]| v.iter().map(|t| t.to_bits()).collect::<Vec<_>>();
        assert_eq!(
            bits(&serial.search.evaluated_times),
            bits(&parallel.search.evaluated_times)
        );
    }

    #[test]
    fn one_search_never_duplicates_a_simulation() {
        // Every time-cache miss is one simulator call; SURF never
        // re-evaluates a configuration and the final noiseless pick only
        // re-reads evaluated ids, so misses = distinct evaluated ids and
        // the final pass is pure hits.
        let w = matmul_workload(16);
        let tuner = WorkloadTuner::build(&w);
        let arch = gpusim::gtx980();
        let cache = EvalCache::new();
        let tuned = tuner
            .autotune_with_cache(&arch, TuneParams::quick(), &cache)
            .unwrap();
        let total_lookups = tuned.search.cache_hits + tuned.search.cache_misses;
        assert!(total_lookups > 0);
        // Distinct simulations recorded in the shared cache must equal the
        // evaluation count — zero duplicate simulator calls.
        assert_eq!(cache.times_len(), tuned.search.n_evals);
    }

    #[test]
    fn shared_cache_skips_resimulation_on_reruns() {
        let w = matmul_workload(16);
        let tuner = WorkloadTuner::build(&w);
        let arch = gpusim::gtx980();
        let cache = EvalCache::new();
        let first = tuner
            .autotune_with_cache(&arch, TuneParams::quick(), &cache)
            .unwrap();
        let second = tuner
            .autotune_with_cache(&arch, TuneParams::quick(), &cache)
            .unwrap();
        assert_eq!(first.id, second.id);
        // The second run re-simulates nothing: every time lookup hits.
        assert_eq!(second.search.cache_misses, 0);
        assert!(second.search.cache_hit_rate() == 1.0);
    }

    #[test]
    fn pool_sampling_is_deterministic_and_distinct() {
        let w = eqn1_workload(10);
        let tuner = WorkloadTuner::build(&w);
        let a = tuner.pool(500, 1);
        let b = tuner.pool(500, 1);
        assert_eq!(a, b);
        assert_eq!(a.len(), 500);
        let mut c = a.clone();
        c.dedup();
        assert_eq!(c.len(), 500);
    }
}
