//! End-to-end autotuning facade over the staged compiler driver.
//!
//! The actual pipeline lives in [`crate::stages`] as five explicitly
//! staged modules with typed artifacts (`CompiledWorkload` →
//! `LoweredVersions` → `SearchSpace` → `TunedWorkload`). This module keeps
//! the original one-call API on top of them: a [`WorkloadTuner`] joins the
//! per-statement spaces of a workload into a single flat configuration
//! space (the cross product that reaches 512,000 variants for Lg3t in the
//! paper), runs SURF against the GPU simulator and returns a
//! [`TunedWorkload`]: chosen version + configuration per statement, mapped
//! kernels, CUDA source, timing breakdown, and search statistics including
//! the modeled wall-clock search time the paper reports in Table II.

use crate::cache::EvalCache;
use crate::error::BarracudaError;
use crate::stages::{evaluate, lower, search, space, LoweredVersions};
use crate::variant::StatementTuner;
use crate::workload::Workload;
use gpusim::GpuArch;
use rand::rngs::StdRng;
use tcr::mapping::MappedKernel;

pub use crate::stages::{SearchStats, TuneParams, TunedWorkload, TunerEvaluator};

impl<'a> TunerEvaluator<'a> {
    /// Facade constructor over [`TunerEvaluator::from_parts`], taking the
    /// tuner and the autotuning parameters the way the search entry points
    /// do.
    pub fn new(
        tuner: &'a WorkloadTuner,
        arch: &'a GpuArch,
        cache: &'a EvalCache,
        params: &TuneParams,
    ) -> Self {
        TunerEvaluator::from_parts(
            &tuner.workload,
            &tuner.statements,
            arch,
            cache,
            params.eval_noise,
            params.noise_floor_us,
            params.seed,
        )
    }
}

/// Joint tuner over every statement of a workload.
#[derive(Clone, Debug)]
pub struct WorkloadTuner {
    pub workload: Workload,
    pub statements: Vec<StatementTuner>,
}

impl WorkloadTuner {
    /// Lowers every statement (see [`LoweredVersions::build`]) and wraps
    /// the artifact with its workload.
    pub fn build(workload: &Workload) -> Self {
        Self::from_lowered(workload.clone(), LoweredVersions::build(workload))
    }

    /// Builds the tuner with every statement's space pruned by `rules`
    /// (§VIII future work; see `tcr::prune`).
    pub fn build_pruned(workload: &Workload, rules: &tcr::PruneRules) -> Self {
        let mut lowered = LoweredVersions::build(workload);
        lowered.prune(rules);
        Self::from_lowered(workload.clone(), lowered)
    }

    /// Wraps an already-built lowering artifact.
    pub fn from_lowered(workload: Workload, lowered: LoweredVersions) -> Self {
        WorkloadTuner {
            workload,
            statements: lowered.statements,
        }
    }

    /// A random neighbor of `id` for local-search baselines: re-draws one
    /// statement's configuration (keeping its OCTOPI version with
    /// probability ~0.7).
    pub fn neighbor(&self, id: u128, rng: &mut StdRng) -> u128 {
        space::neighbor(&self.statements, id, rng)
    }

    /// Total joint configurations (product of per-statement spaces).
    pub fn total_space(&self) -> u128 {
        lower::total_space(&self.statements)
    }

    /// Decodes a joint id into per-statement local ids.
    pub fn decode(&self, id: u128) -> Vec<u128> {
        lower::decode_joint(&self.statements, id)
    }

    /// Names of every binarized feature column of [`WorkloadTuner::features`].
    pub fn binarized_feature_names(&self) -> Vec<String> {
        lower::binarized_feature_names(&self.statements)
    }

    /// Binarized features of a joint id: concatenation across statements.
    pub fn features(&self, id: u128) -> Vec<f64> {
        lower::joint_features(&self.statements, id)
    }

    /// Maps every statement under the joint id (statements map in parallel
    /// on the rayon pool); fails with full context when any statement's
    /// configuration cannot be applied to its loop nest.
    pub fn kernels(&self, id: u128) -> Result<Vec<Vec<MappedKernel>>, BarracudaError> {
        lower::map_joint(&self.workload, &self.statements, id)
    }

    /// Device-side time of a joint configuration (no transfers — they are
    /// identical across configurations); `NaN` when mapping or simulation
    /// fails. Prefer [`WorkloadTuner::try_gpu_seconds`] for the reason.
    pub fn gpu_seconds(&self, id: u128, arch: &GpuArch) -> f64 {
        self.try_gpu_seconds(id, arch).unwrap_or(f64::NAN)
    }

    /// Device-side time of a joint configuration, with a typed error naming
    /// the statement/version/configuration when mapping fails or the
    /// simulator rejects a kernel.
    pub fn try_gpu_seconds(&self, id: u128, arch: &GpuArch) -> Result<f64, BarracudaError> {
        evaluate::joint_gpu_seconds(&self.workload, &self.statements, id, arch)
    }

    /// [`WorkloadTuner::try_gpu_seconds`] through the per-op memo layer of
    /// `cache` (see [`evaluate::joint_gpu_seconds_memo`]).
    pub fn try_gpu_seconds_memo(
        &self,
        id: u128,
        arch: &GpuArch,
        cache: &EvalCache,
    ) -> Result<f64, BarracudaError> {
        evaluate::joint_gpu_seconds_memo(&self.workload, &self.statements, id, arch, cache)
    }

    /// PCIe transfer time of the workload on `arch`.
    pub fn transfer_seconds(&self, arch: &GpuArch) -> f64 {
        evaluate::transfer_seconds(&self.workload, arch)
    }

    /// Flops of the versions selected by `id`.
    pub fn flops(&self, id: u128) -> u64 {
        lower::joint_flops(&self.statements, id)
    }

    /// Configuration pool: the full space when it fits under `cap`, else a
    /// deterministic stratified sample (see [`space::joint_pool`]).
    pub fn pool(&self, cap: usize, seed: u64) -> Vec<u128> {
        space::joint_pool(&self.statements, cap, seed)
    }

    /// Runs SURF and returns the tuned workload. Uses a fresh memo cache;
    /// [`WorkloadTuner::autotune_with_cache`] shares one across runs.
    pub fn autotune(
        &self,
        arch: &GpuArch,
        params: TuneParams,
    ) -> Result<TunedWorkload, BarracudaError> {
        self.autotune_with_cache(arch, params, &EvalCache::new())
    }

    /// Runs SURF against a caller-provided [`EvalCache`] (see
    /// [`search::autotune_joint`] for the full contract).
    pub fn autotune_with_cache(
        &self,
        arch: &GpuArch,
        params: TuneParams,
        cache: &EvalCache,
    ) -> Result<TunedWorkload, BarracudaError> {
        search::autotune_joint(&self.workload, &self.statements, arch, params, cache)
    }

    /// Decomposed tuning: each statement is searched independently (see
    /// [`search::autotune_decomposed`]). Uses a fresh memo cache.
    pub fn autotune_decomposed(
        &self,
        arch: &GpuArch,
        params: TuneParams,
    ) -> Result<TunedWorkload, BarracudaError> {
        self.autotune_decomposed_with_cache(arch, params, &EvalCache::new())
    }

    /// [`WorkloadTuner::autotune_decomposed`] against a shared memo cache
    /// (see [`search::autotune_decomposed`] for the budget semantics).
    pub fn autotune_decomposed_with_cache(
        &self,
        arch: &GpuArch,
        params: TuneParams,
        cache: &EvalCache,
    ) -> Result<TunedWorkload, BarracudaError> {
        search::autotune_decomposed(&self.workload, &self.statements, arch, params, cache)
    }
}
