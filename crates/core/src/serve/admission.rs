//! Admission control for cold searches: a bounded permit pool plus a
//! bounded wait queue, so a storm of cold tunes can never occupy every
//! thread of the daemon.
//!
//! Only **leaders of cold searches** pass through the gate. Store hits
//! replay without touching it (warm traffic is never starved by a cold
//! storm), and coalesced followers wait on their leader's publication
//! (the leader's one permit covers the whole coalition). A request that
//! finds every permit taken waits in the queue — bounded in depth by
//! `queue` and in time by its own deadline (or the server-side default) —
//! and a request that finds the queue full too is rejected immediately
//! with a typed [`BarracudaError::Busy`] carrying a `retry_after_ms`
//! hint, the 429 of this protocol.

use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::error::BarracudaError;

/// Mutable gate state under the lock.
#[derive(Debug, Default)]
struct GateState {
    /// Permits currently held by running leader searches.
    active: usize,
    /// Admitted waiters parked in the queue.
    waiting: usize,
}

/// The bounded permit pool + wait queue.
#[derive(Debug)]
pub struct AdmissionGate {
    /// Maximum concurrently running cold searches.
    max_searches: usize,
    /// Maximum requests parked waiting for a permit.
    queue: usize,
    state: Mutex<GateState>,
    freed: Condvar,
}

/// Why a request was not admitted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdmitReject {
    /// Pool and queue both full: reject immediately.
    Full,
    /// Queued, but no permit freed up within the wait cap.
    QueueTimeout,
}

/// RAII permit: dropping it releases the slot and wakes one queued
/// waiter. Held by the leader across its whole search — including a
/// panicking one, which is why this must be RAII and not a manual
/// release.
#[derive(Debug)]
pub struct Permit<'a> {
    gate: &'a AdmissionGate,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut s = lock(&self.gate.state);
        s.active = s.active.saturating_sub(1);
        drop(s);
        self.gate.freed.notify_one();
    }
}

fn lock<'a>(m: &'a Mutex<GateState>) -> std::sync::MutexGuard<'a, GateState> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl AdmissionGate {
    /// A gate with `max_searches` permits and `queue` wait slots. Zero
    /// permits would deadlock every cold request, so the pool is at
    /// least 1.
    pub fn new(max_searches: usize, queue: usize) -> AdmissionGate {
        AdmissionGate {
            max_searches: max_searches.max(1),
            queue,
            state: Mutex::new(GateState::default()),
            freed: Condvar::new(),
        }
    }

    pub fn max_searches(&self) -> usize {
        self.max_searches
    }

    pub fn queue(&self) -> usize {
        self.queue
    }

    /// Current `(active searches, queued waiters)` — for load shedding
    /// heuristics and the stats op.
    pub fn depth(&self) -> (usize, usize) {
        let s = lock(&self.state);
        (s.active, s.waiting)
    }

    /// Try to take a permit, waiting in the queue up to `wait_cap` if the
    /// pool is momentarily full. Returns the RAII [`Permit`] on success.
    pub fn admit(&self, wait_cap: Duration) -> Result<Permit<'_>, AdmitReject> {
        let mut s = lock(&self.state);
        if s.active < self.max_searches {
            s.active += 1;
            return Ok(Permit { gate: self });
        }
        if s.waiting >= self.queue {
            return Err(AdmitReject::Full);
        }
        s.waiting += 1;
        let start = Instant::now();
        loop {
            let left = match wait_cap.checked_sub(start.elapsed()) {
                Some(left) if !left.is_zero() => left,
                _ => {
                    s.waiting -= 1;
                    return Err(AdmitReject::QueueTimeout);
                }
            };
            s = match self.freed.wait_timeout(s, left) {
                Ok((g, _)) => g,
                Err(poisoned) => poisoned.into_inner().0,
            };
            if s.active < self.max_searches {
                s.active += 1;
                s.waiting -= 1;
                return Ok(Permit { gate: self });
            }
        }
    }

    /// The typed rejection for `reject`, with a back-off hint derived
    /// from how long a cold search has recently been taking and how much
    /// work is already committed ahead of the caller.
    pub fn busy_error(&self, reject: &AdmitReject, recent_search_ms: u64) -> BarracudaError {
        let (active, waiting) = self.depth();
        let backlog = (active + waiting).max(1) as u64;
        let retry_after_ms = (recent_search_ms.max(50))
            .saturating_mul(backlog)
            .min(60_000);
        let detail = match reject {
            AdmitReject::Full => format!(
                "cold-search admission rejected: all {} permit(s) and {} queue slot(s) are \
                 taken ({active} searching, {waiting} queued)",
                self.max_searches, self.queue
            ),
            AdmitReject::QueueTimeout => format!(
                "cold-search admission timed out in the wait queue: no permit freed up in time \
                 ({active} searching, {waiting} queued)"
            ),
        };
        BarracudaError::Busy {
            detail,
            retry_after_ms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn pool_admits_up_to_capacity_then_queues_then_rejects() {
        let gate = AdmissionGate::new(2, 1);
        let p1 = gate.admit(Duration::ZERO).unwrap();
        let p2 = gate.admit(Duration::ZERO).unwrap();
        // Pool full, zero wait budget: the queue slot times out at once.
        assert_eq!(
            gate.admit(Duration::ZERO).unwrap_err(),
            AdmitReject::QueueTimeout
        );
        drop(p1);
        let p3 = gate.admit(Duration::ZERO).unwrap();
        assert_eq!(gate.depth(), (2, 0));
        drop(p2);
        drop(p3);
        assert_eq!(gate.depth(), (0, 0));
    }

    #[test]
    fn full_queue_rejects_immediately() {
        let gate = Arc::new(AdmissionGate::new(1, 1));
        let permit = gate.admit(Duration::ZERO).unwrap();
        // Park one waiter in the single queue slot.
        let waiter = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || gate.admit(Duration::from_secs(5)).map(|_| ()))
        };
        // Wait until the waiter is actually queued.
        while gate.depth().1 == 0 {
            std::thread::yield_now();
        }
        // Second overflow request: queue full, immediate Full rejection,
        // even with a generous wait budget.
        assert_eq!(
            gate.admit(Duration::from_secs(5)).unwrap_err(),
            AdmitReject::Full
        );
        drop(permit);
        waiter.join().unwrap().unwrap();
    }

    #[test]
    fn permit_released_on_drop_wakes_a_waiter() {
        let gate = Arc::new(AdmissionGate::new(1, 4));
        let permit = gate.admit(Duration::ZERO).unwrap();
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let gate = Arc::clone(&gate);
                std::thread::spawn(move || gate.admit(Duration::from_secs(10)).map(|_| ()))
            })
            .collect();
        while gate.depth().1 < 3 {
            std::thread::yield_now();
        }
        drop(permit);
        for h in handles {
            h.join().unwrap().unwrap();
        }
        assert_eq!(gate.depth(), (0, 0));
    }

    #[test]
    fn busy_error_is_typed_with_retry_hint() {
        let gate = AdmissionGate::new(1, 0);
        let _p = gate.admit(Duration::ZERO).unwrap();
        let err = gate.busy_error(&AdmitReject::Full, 120);
        assert_eq!(err.stage(), "busy");
        assert_eq!(err.exit_code(), 13);
        match err {
            BarracudaError::Busy { retry_after_ms, .. } => {
                assert!(retry_after_ms >= 120, "retry_after_ms {retry_after_ms}")
            }
            other => panic!("expected Busy, got {other:?}"),
        }
    }
}
