//! Line-delimited JSON request/response protocol for `barracuda serve`.
//!
//! One request per line, one response line per request, in order. The
//! wire form is [`crate::json::Json::to_string_compact`] — a single line
//! with no interior newlines — so any language with a JSON parser and a
//! line reader is a client. Requests:
//!
//! ```text
//! {"op":"ping"}
//! {"op":"stats"}
//! {"op":"backends"}
//! {"op":"shutdown"}
//! {"op":"tune","id":"r1","workload":"builtin:tce","backend":"k20",
//!  "evals":40,"quick":true,"deadline_s":2.5}
//! {"op":"tune","workload":"tce","objective":"balanced",
//!  "mem_budget":1048576,"penalize":true}
//! ```
//!
//! A tune request may carry a search objective: `"objective"` names a
//! preset (`time` / `memory` / `balanced`), `"mem_weight"` /
//! `"rw_weight"` override individual weights, `"mem_budget"` sets a hard
//! cap on modeled peak temporary bytes and `"penalize"` selects
//! [`BudgetMode::Penalize`](crate::objective::BudgetMode) instead of
//! pruning. Requests with different objectives never coalesce and never
//! share stored plans.
//!
//! Every response carries `"ok"` and echoes `"op"` (and `"id"` when the
//! request had one). Failures return `"ok":false` with the typed stage
//! tag and the exit code the CLI would have died with, so scripted
//! clients branch on the same taxonomy either way.

use crate::error::BarracudaError;
use crate::json::Json;
use crate::objective::{BudgetMode, Objective};

/// One parsed request line.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness probe; answered without touching the session.
    Ping,
    /// Daemon counters and latency percentiles.
    Stats,
    /// The daemon's loaded backend set (keys, names, cache salts).
    Backends,
    /// Stop accepting work; transports drain and exit.
    Shutdown,
    /// Tune (or replay) one workload on one backend.
    Tune(TuneRequest),
}

/// The tune request's fields, defaults filled by the daemon.
#[derive(Clone, Debug, PartialEq)]
pub struct TuneRequest {
    /// Opaque client correlation id, echoed verbatim in the response.
    pub id: Option<String>,
    /// Workload spec: `builtin:NAME` or a bare builtin name
    /// ([`crate::kernels::builtin`]).
    pub workload: String,
    /// Backend registry key; `None` uses the daemon default.
    pub backend: Option<String>,
    /// SURF evaluation budget override.
    pub evals: Option<usize>,
    /// `true` for quick-profile parameters, `false`/absent for the
    /// daemon's default profile.
    pub quick: Option<bool>,
    /// Per-request wall-clock deadline in seconds. Overruns degrade the
    /// result (best-so-far, typed status) — they never hang the request.
    pub deadline_s: Option<f64>,
    /// Search objective assembled from the request's `objective` /
    /// `mem_weight` / `rw_weight` / `mem_budget` / `penalize` fields;
    /// `None` (no objective fields at all) uses the daemon default
    /// (time-only).
    pub objective: Option<Objective>,
}

impl Request {
    /// Parse one request line. Malformed JSON, a missing/unknown `op`,
    /// or a tune without a workload is a typed
    /// [`BarracudaError::Serve`].
    pub fn parse(line: &str) -> Result<Request, BarracudaError> {
        let v = Json::parse(line).map_err(|e| BarracudaError::Serve {
            detail: format!("malformed request line: {e}"),
        })?;
        let op = v
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| BarracudaError::Serve {
                detail: "request has no \"op\" field".to_string(),
            })?;
        match op {
            "ping" => Ok(Request::Ping),
            "stats" => Ok(Request::Stats),
            "backends" => Ok(Request::Backends),
            "shutdown" => Ok(Request::Shutdown),
            "tune" => {
                let workload = v
                    .get("workload")
                    .and_then(Json::as_str)
                    .ok_or_else(|| BarracudaError::Serve {
                        detail: "tune request has no \"workload\" field".to_string(),
                    })?
                    .to_string();
                Ok(Request::Tune(TuneRequest {
                    id: v.get("id").and_then(Json::as_str).map(str::to_string),
                    workload,
                    backend: v.get("backend").and_then(Json::as_str).map(str::to_string),
                    evals: v.get("evals").and_then(Json::as_u64).map(|n| n as usize),
                    quick: v.get("quick").and_then(Json::as_bool),
                    deadline_s: v.get("deadline_s").and_then(Json::as_f64),
                    objective: parse_objective(&v)?,
                }))
            }
            other => Err(BarracudaError::Serve {
                detail: format!("unknown op \"{other}\""),
            }),
        }
    }
}

/// Assemble a tune request's objective from its optional fields:
/// preset (`objective`), weight overrides (`mem_weight` / `rw_weight`),
/// budget (`mem_budget` bytes) and mode (`penalize`). `Ok(None)` when no
/// objective field is present; an unknown preset or a malformed field is
/// a typed [`BarracudaError::Serve`].
fn parse_objective(v: &Json) -> Result<Option<Objective>, BarracudaError> {
    let has_any = [
        "objective",
        "mem_weight",
        "rw_weight",
        "mem_budget",
        "penalize",
    ]
    .iter()
    .any(|k| v.get(k).is_some());
    if !has_any {
        return Ok(None);
    }
    let mut o = match v.get("objective") {
        None => Objective::time_only(),
        Some(p) => {
            let name = p.as_str().ok_or_else(|| BarracudaError::Serve {
                detail: "field \"objective\" must be a string preset name".to_string(),
            })?;
            Objective::preset(name).ok_or_else(|| BarracudaError::Serve {
                detail: format!(
                    "unknown objective preset \"{name}\" (one of: time, memory, balanced)"
                ),
            })?
        }
    };
    let weight = |key: &str| -> Result<Option<f64>, BarracudaError> {
        match v.get(key) {
            None => Ok(None),
            Some(w) => {
                let w = w.as_f64().ok_or_else(|| BarracudaError::Serve {
                    detail: format!("field \"{key}\" must be a number"),
                })?;
                if !w.is_finite() || w < 0.0 {
                    return Err(BarracudaError::Serve {
                        detail: format!("field \"{key}\" must be a finite non-negative number"),
                    });
                }
                Ok(Some(w))
            }
        }
    };
    if let Some(w) = weight("mem_weight")? {
        o.mem_weight = w;
    }
    if let Some(w) = weight("rw_weight")? {
        o.rw_weight = w;
    }
    if let Some(b) = v.get("mem_budget") {
        o.mem_budget = Some(b.as_u64().ok_or_else(|| BarracudaError::Serve {
            detail: "field \"mem_budget\" must be an integer byte count".to_string(),
        })?);
    }
    if v.get("penalize").is_some() {
        let p = v
            .get("penalize")
            .and_then(Json::as_bool)
            .ok_or_else(|| BarracudaError::Serve {
                detail: "field \"penalize\" must be a boolean".to_string(),
            })?;
        if p {
            o.budget_mode = BudgetMode::Penalize;
        }
    }
    Ok(Some(o))
}

/// Where a served tune came from, as reported on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServedSource {
    /// Store hit: replayed, zero search evaluations.
    Hit,
    /// Store miss: SURF searched and the plan was persisted.
    Searched,
    /// No store attached: searched, nothing persisted.
    Detached,
}

impl ServedSource {
    /// The wire token (`"hit"` / `"searched"` / `"detached"`).
    pub fn token(self) -> &'static str {
        match self {
            ServedSource::Hit => "hit",
            ServedSource::Searched => "searched",
            ServedSource::Detached => "detached",
        }
    }
}

/// The shareable result of one tune — what coalesced duplicates receive
/// (every follower formats the *same* `Arc<ServedTune>`, so responses
/// are bit-identical up to the echoed request id).
#[derive(Clone, Debug)]
pub struct ServedTune {
    /// Resolved workload name.
    pub workload: String,
    /// Backend registry key.
    pub backend: String,
    /// Architecture display name (`Tesla K20`, …).
    pub arch: String,
    pub source: ServedSource,
    pub gpu_seconds: f64,
    pub gflops_device: f64,
    pub gflops: f64,
    /// Search provenance: evaluations recorded in the plan (identical
    /// hit vs. miss — it describes the tuning, not this request).
    pub n_evals: usize,
    /// Full configuration-space size (stringified on the wire: u128).
    pub space_size: u128,
    /// Evaluations this *request* performed: 0 on a store hit.
    pub evals_performed: usize,
    /// Quarantine entries carried by the result.
    pub quarantined: usize,
    /// Degraded reason, when the search stopped early.
    pub degraded: Option<String>,
    /// The objective the result was tuned under
    /// ([`Objective::describe`] form, e.g. `time-only`).
    pub objective: String,
    /// Modeled peak live temporary bytes of the served configuration.
    pub peak_temp_bytes: u64,
    /// The CLI timing line, byte-identical between a fresh search and a
    /// store-hit replay of the same plan.
    pub timing: String,
}

/// Successful tune response for one request.
pub fn tune_response(id: Option<&str>, t: &ServedTune) -> Json {
    let mut obj = vec![
        ("ok".to_string(), Json::Bool(true)),
        ("op".to_string(), Json::Str("tune".to_string())),
    ];
    if let Some(id) = id {
        obj.push(("id".to_string(), Json::Str(id.to_string())));
    }
    obj.extend([
        ("workload".to_string(), Json::Str(t.workload.clone())),
        ("backend".to_string(), Json::Str(t.backend.clone())),
        ("arch".to_string(), Json::Str(t.arch.clone())),
        (
            "source".to_string(),
            Json::Str(t.source.token().to_string()),
        ),
        ("gpu_us".to_string(), Json::Num(t.gpu_seconds * 1e6)),
        ("gflops_device".to_string(), Json::Num(t.gflops_device)),
        ("gflops".to_string(), Json::Num(t.gflops)),
        ("evals".to_string(), Json::Num(t.n_evals as f64)),
        ("space".to_string(), Json::Str(t.space_size.to_string())),
        (
            "evals_performed".to_string(),
            Json::Num(t.evals_performed as f64),
        ),
        ("quarantined".to_string(), Json::Num(t.quarantined as f64)),
        (
            "degraded".to_string(),
            match &t.degraded {
                Some(reason) => Json::Str(reason.clone()),
                None => Json::Null,
            },
        ),
        ("objective".to_string(), Json::Str(t.objective.clone())),
        (
            "peak_temp_bytes".to_string(),
            Json::Str(t.peak_temp_bytes.to_string()),
        ),
        ("timing".to_string(), Json::Str(t.timing.clone())),
    ]);
    Json::Obj(obj)
}

/// Trivial success response (`ping`, `shutdown`).
pub fn ack_response(op: &str) -> Json {
    Json::Obj(vec![
        ("ok".to_string(), Json::Bool(true)),
        ("op".to_string(), Json::Str(op.to_string())),
    ])
}

/// Failure response: typed stage + the exit code the CLI maps it to. A
/// [`BarracudaError::Busy`] rejection (the protocol's 429) additionally
/// carries `retry_after_ms`, the daemon's back-off hint, so clients can
/// retry with informed jitter instead of hammering a saturated pool.
pub fn error_response(op: &str, id: Option<&str>, err: &BarracudaError) -> Json {
    let mut obj = vec![
        ("ok".to_string(), Json::Bool(false)),
        ("op".to_string(), Json::Str(op.to_string())),
    ];
    if let Some(id) = id {
        obj.push(("id".to_string(), Json::Str(id.to_string())));
    }
    obj.extend([
        ("stage".to_string(), Json::Str(err.stage().to_string())),
        ("error".to_string(), Json::Str(err.to_string())),
        (
            "exit_code".to_string(),
            Json::Num(f64::from(err.exit_code())),
        ),
    ]);
    if let BarracudaError::Busy { retry_after_ms, .. } = err {
        obj.push((
            "retry_after_ms".to_string(),
            Json::Num(*retry_after_ms as f64),
        ));
    }
    Json::Obj(obj)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_op() {
        assert_eq!(Request::parse(r#"{"op":"ping"}"#).unwrap(), Request::Ping);
        assert_eq!(Request::parse(r#"{"op":"stats"}"#).unwrap(), Request::Stats);
        assert_eq!(
            Request::parse(r#"{"op":"backends"}"#).unwrap(),
            Request::Backends
        );
        assert_eq!(
            Request::parse(r#"{"op":"shutdown"}"#).unwrap(),
            Request::Shutdown
        );
        let t = Request::parse(
            r#"{"op":"tune","id":"r1","workload":"builtin:tce","backend":"k20","evals":40,"quick":true,"deadline_s":2.5}"#,
        )
        .unwrap();
        assert_eq!(
            t,
            Request::Tune(TuneRequest {
                id: Some("r1".to_string()),
                workload: "builtin:tce".to_string(),
                backend: Some("k20".to_string()),
                evals: Some(40),
                quick: Some(true),
                deadline_s: Some(2.5),
                objective: None,
            })
        );
    }

    #[test]
    fn parses_objective_fields() {
        let t = Request::parse(
            r#"{"op":"tune","workload":"tce","objective":"balanced","mem_budget":1048576,"penalize":true}"#,
        )
        .unwrap();
        let Request::Tune(req) = t else {
            panic!("expected a tune request")
        };
        let o = req.objective.expect("objective fields must be parsed");
        assert!(o.same_as(&Objective {
            mem_budget: Some(1_048_576),
            budget_mode: BudgetMode::Penalize,
            ..Objective::balanced()
        }));

        // Weight overrides on top of the time-only base.
        let t = Request::parse(r#"{"op":"tune","workload":"tce","mem_weight":2.5}"#).unwrap();
        let Request::Tune(req) = t else {
            panic!("expected a tune request")
        };
        let o = req.objective.unwrap();
        assert_eq!(o.mem_weight, 2.5);
        assert_eq!(o.rw_weight, 0.0);
        assert_eq!(o.mem_budget, None);

        // No objective fields at all: None, daemon default applies.
        let t = Request::parse(r#"{"op":"tune","workload":"tce"}"#).unwrap();
        let Request::Tune(req) = t else {
            panic!("expected a tune request")
        };
        assert_eq!(req.objective, None);
    }

    #[test]
    fn malformed_objective_fields_are_typed_serve_errors() {
        for line in [
            r#"{"op":"tune","workload":"tce","objective":"fastest"}"#,
            r#"{"op":"tune","workload":"tce","mem_weight":-1}"#,
            r#"{"op":"tune","workload":"tce","mem_budget":"lots"}"#,
            r#"{"op":"tune","workload":"tce","penalize":"yes"}"#,
        ] {
            let err = Request::parse(line).unwrap_err();
            assert_eq!(err.stage(), "serve", "line {line:?}");
            assert_eq!(err.exit_code(), 12);
        }
    }

    #[test]
    fn malformed_lines_are_typed_serve_errors() {
        for line in ["", "not json", "{}", r#"{"op":"fly"}"#, r#"{"op":"tune"}"#] {
            let err = Request::parse(line).unwrap_err();
            assert_eq!(err.stage(), "serve", "line {line:?}");
            assert_eq!(err.exit_code(), 12);
        }
    }

    #[test]
    fn responses_are_single_lines_that_round_trip() {
        let t = ServedTune {
            workload: "tce".to_string(),
            backend: "k20".to_string(),
            arch: "Tesla K20".to_string(),
            source: ServedSource::Hit,
            gpu_seconds: 1.5e-4,
            gflops_device: 12.0,
            gflops: 8.0,
            n_evals: 40,
            space_size: 123456789,
            evals_performed: 0,
            quarantined: 2,
            degraded: None,
            objective: "time-only".to_string(),
            peak_temp_bytes: 4096,
            timing: "K20   150 us".to_string(),
        };
        let line = tune_response(Some("r1"), &t).to_string_compact();
        assert!(!line.contains('\n'));
        let back = Json::parse(&line).unwrap();
        assert_eq!(back.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(back.get("id").and_then(Json::as_str), Some("r1"));
        assert_eq!(back.get("source").and_then(Json::as_str), Some("hit"));
        assert_eq!(back.get("space").and_then(Json::as_str), Some("123456789"));
        assert_eq!(back.get("evals_performed").and_then(Json::as_u64), Some(0));
        assert_eq!(
            back.get("objective").and_then(Json::as_str),
            Some("time-only")
        );
        assert_eq!(
            back.get("peak_temp_bytes").and_then(Json::as_str),
            Some("4096")
        );

        let err = BarracudaError::Serve {
            detail: "nope".to_string(),
        };
        let e = error_response("tune", None, &err).to_string_compact();
        let back = Json::parse(&e).unwrap();
        assert_eq!(back.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(back.get("exit_code").and_then(Json::as_u64), Some(12));
        assert_eq!(back.get("retry_after_ms"), None);
    }

    #[test]
    fn busy_response_carries_retry_after_hint() {
        let err = BarracudaError::Busy {
            detail: "pool full".to_string(),
            retry_after_ms: 250,
        };
        let e = error_response("tune", Some("r9"), &err).to_string_compact();
        let back = Json::parse(&e).unwrap();
        assert_eq!(back.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(back.get("stage").and_then(Json::as_str), Some("busy"));
        assert_eq!(back.get("exit_code").and_then(Json::as_u64), Some(13));
        assert_eq!(back.get("retry_after_ms").and_then(Json::as_u64), Some(250));
    }
}
