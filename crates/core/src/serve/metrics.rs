//! Daemon observability: lock-free counters plus request latencies.
//!
//! Every request the daemon handles bumps these; the `stats` op returns
//! a [`MetricsSnapshot`] and the transports print one on shutdown, so a
//! load run always ends with the hit/miss/coalesce story in plain text.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::json::Json;

/// Shared counters for one daemon. All atomics: request handlers touch
/// them concurrently from transport threads.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// Requests received (every op, including malformed lines).
    pub requests: AtomicUsize,
    /// Tune requests that resolved to a result (hit, miss, or coalesced).
    pub tunes: AtomicUsize,
    /// Tunes served by replaying a stored plan (zero search evaluations).
    pub store_hits: AtomicUsize,
    /// Tunes that ran SURF (store miss or no store attached).
    pub store_misses: AtomicUsize,
    /// Tune requests that joined an identical in-flight tune instead of
    /// starting their own search.
    pub coalesced: AtomicUsize,
    /// Quarantine entries carried by served results (sum over responses).
    pub quarantined: AtomicUsize,
    /// Requests answered `ok:false`.
    pub errors: AtomicUsize,
    /// Tune requests shed by admission control or shutdown drain with a
    /// typed Busy (load shedding — counted apart from `errors`).
    pub busy: AtomicUsize,
    /// Requests that returned a degraded (best-so-far) result.
    pub degraded: AtomicUsize,
    /// Per-request wall latencies in microseconds, for the percentiles.
    latencies_us: Mutex<Vec<u64>>,
}

/// Point-in-time copy of the counters, with latency percentiles.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsSnapshot {
    pub requests: usize,
    pub tunes: usize,
    pub store_hits: usize,
    pub store_misses: usize,
    pub coalesced: usize,
    pub quarantined: usize,
    pub errors: usize,
    /// Tune requests shed with a typed Busy rejection.
    pub busy: usize,
    pub degraded: usize,
    /// Corrupt store entries quarantined to `*.corrupt` sidecars (filled
    /// by [`crate::serve::Daemon::snapshot`]; 0 from a bare
    /// [`ServeMetrics::snapshot`]).
    pub store_corrupt: usize,
    /// Cold searches currently holding an admission permit (filled by
    /// the daemon snapshot).
    pub active_searches: usize,
    /// Requests currently parked in the admission wait queue (filled by
    /// the daemon snapshot).
    pub queued_searches: usize,
    /// Backends in the daemon's loaded set — built-ins plus descriptors
    /// (filled by the daemon snapshot; 0 from a bare
    /// [`ServeMetrics::snapshot`]).
    pub backends_loaded: usize,
    /// Median request latency in microseconds (0 with no samples).
    pub p50_us: u64,
    /// 99th-percentile request latency in microseconds.
    pub p99_us: u64,
}

impl ServeMetrics {
    /// Record one finished request's wall latency.
    pub fn record_latency_us(&self, us: u64) {
        let mut l = match self.latencies_us.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        l.push(us);
    }

    /// Copy out the counters and compute latency percentiles.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut lat = {
            let l = match self.latencies_us.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            l.clone()
        };
        lat.sort_unstable();
        MetricsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            tunes: self.tunes.load(Ordering::Relaxed),
            store_hits: self.store_hits.load(Ordering::Relaxed),
            store_misses: self.store_misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            busy: self.busy.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            store_corrupt: 0,
            active_searches: 0,
            queued_searches: 0,
            backends_loaded: 0,
            p50_us: percentile(&lat, 50.0),
            p99_us: percentile(&lat, 99.0),
        }
    }
}

/// Nearest-rank percentile over an already-sorted sample (0 when empty).
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

impl MetricsSnapshot {
    /// The `stats` response body.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("ok".to_string(), Json::Bool(true)),
            ("op".to_string(), Json::Str("stats".to_string())),
            ("requests".to_string(), Json::Num(self.requests as f64)),
            ("tunes".to_string(), Json::Num(self.tunes as f64)),
            ("store_hits".to_string(), Json::Num(self.store_hits as f64)),
            (
                "store_misses".to_string(),
                Json::Num(self.store_misses as f64),
            ),
            ("coalesced".to_string(), Json::Num(self.coalesced as f64)),
            (
                "quarantined".to_string(),
                Json::Num(self.quarantined as f64),
            ),
            ("errors".to_string(), Json::Num(self.errors as f64)),
            ("busy".to_string(), Json::Num(self.busy as f64)),
            ("degraded".to_string(), Json::Num(self.degraded as f64)),
            (
                "store_corrupt".to_string(),
                Json::Num(self.store_corrupt as f64),
            ),
            (
                "active_searches".to_string(),
                Json::Num(self.active_searches as f64),
            ),
            (
                "queued_searches".to_string(),
                Json::Num(self.queued_searches as f64),
            ),
            (
                "backends_loaded".to_string(),
                Json::Num(self.backends_loaded as f64),
            ),
            ("p50_us".to_string(), Json::Num(self.p50_us as f64)),
            ("p99_us".to_string(), Json::Num(self.p99_us as f64)),
        ])
    }
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "serve: {} requests, {} tunes ({} store hits, {} misses, {} coalesced)",
            self.requests, self.tunes, self.store_hits, self.store_misses, self.coalesced
        )?;
        write!(
            f,
            "serve: {} errors, {} busy, {} degraded, {} quarantined, {} corrupt quarantined; \
             latency p50 {} us, p99 {} us",
            self.errors,
            self.busy,
            self.degraded,
            self.quarantined,
            self.store_corrupt,
            self.p50_us,
            self.p99_us
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        assert_eq!(percentile(&[], 50.0), 0);
        assert_eq!(percentile(&[7], 50.0), 7);
        assert_eq!(percentile(&[7], 99.0), 7);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50.0), 50);
        assert_eq!(percentile(&v, 99.0), 99);
        assert_eq!(percentile(&v, 100.0), 100);
    }

    #[test]
    fn snapshot_copies_counters_and_renders() {
        let m = ServeMetrics::default();
        m.requests.fetch_add(3, Ordering::Relaxed);
        m.store_hits.fetch_add(2, Ordering::Relaxed);
        m.record_latency_us(10);
        m.record_latency_us(30);
        m.record_latency_us(20);
        let s = m.snapshot();
        assert_eq!(s.requests, 3);
        assert_eq!(s.store_hits, 2);
        assert_eq!(s.p50_us, 20);
        assert_eq!(s.p99_us, 30);
        let text = s.to_string();
        assert!(text.contains("2 store hits"));
        let json = s.to_json().to_string_compact();
        assert!(json.contains("\"p50_us\":20"));
    }
}
