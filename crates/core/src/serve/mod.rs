//! `barracuda serve` — the tuning-as-a-service daemon.
//!
//! A [`Daemon`] is one long-lived [`TuningSession`] behind a
//! line-delimited JSON protocol ([`protocol`]): every request routes
//! through the same per-workload [`crate::cache::EvalCache`]s and the
//! same (optional) content-addressed plan store, so the paper's
//! compile-once/run-many loop (§5) becomes a network service. Three
//! properties the tests pin:
//!
//! - **Store hits replay.** A warm request never searches: the stored
//!   plan replays with zero search evaluations and the response's timing
//!   line is byte-identical to the one the original search printed.
//! - **Identical misses coalesce.** Concurrent requests for the same
//!   `(workload, backend, parameters)` run *one* search: the first
//!   becomes the leader, the rest wait on its [`ServedTune`] and answer
//!   with bit-identical results. Duplicate work is counted, not done.
//! - **Deadlines degrade, never hang.** A request deadline flows into
//!   [`TuneParams::wall_deadline_s`]; overrun returns best-so-far with
//!   the typed degraded status. A coalesced waiter that outlives its
//!   deadline (plus a fixed grace) fails with a typed
//!   [`BarracudaError::Serve`] instead of blocking forever.
//!
//! Transports ([`transport`]): sequential stdio (deterministic — what CI
//! scripts drive) and thread-per-connection TCP or Unix sockets (where
//! coalescing actually overlaps). Tests and the load generator skip the
//! transport and call [`Daemon::handle_line`] directly.

pub mod metrics;
pub mod protocol;
pub mod transport;

use std::collections::hash_map::{DefaultHasher, Entry};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crate::error::BarracudaError;
use crate::json::Json;
use crate::kernels;
use crate::pipeline::{TuneParams, TunedWorkload, WorkloadTuner};
use crate::report::fmt_f;
use crate::session::{PlanSource, TuningSession};
use crate::stages::frontend::workload_fingerprint;
use crate::workload::Workload;

pub use metrics::{MetricsSnapshot, ServeMetrics};
pub use protocol::{Request, ServedSource, ServedTune, TuneRequest};
pub use transport::Listen;

/// Extra wall-clock a coalesced follower grants the leader past the
/// request deadline: the search stops at the next *batch boundary* after
/// the deadline, so the tail of one batch must fit inside the grace.
const COALESCE_GRACE_S: f64 = 30.0;

/// Daemon-wide defaults for fields a tune request leaves unset.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Plan store directory; `None` serves without persistence (every
    /// cold request searches, warmth only via coalescing and caches).
    pub store: Option<PathBuf>,
    /// Default backend registry key for requests without `"backend"`.
    pub backend: String,
    /// Default parameter profile: `true` = quick, `false` = paper.
    pub quick: bool,
    /// Default SURF evaluation budget (`None`: the profile's own).
    pub evals: Option<usize>,
    /// Default per-request deadline in seconds.
    pub deadline_s: Option<f64>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            store: None,
            backend: "gtx980".to_string(),
            quick: false,
            evals: None,
            deadline_s: None,
        }
    }
}

/// One handled request line: the response line (compact JSON, no
/// newline) and whether this request asked the daemon to stop.
#[derive(Clone, Debug)]
pub struct LineOutcome {
    pub response: String,
    pub shutdown: bool,
}

/// The slot duplicates rendezvous on: the leader publishes exactly once,
/// then wakes every waiter.
#[derive(Default)]
struct InFlight {
    slot: Mutex<Option<Result<Arc<ServedTune>, BarracudaError>>>,
    ready: Condvar,
}

enum Role {
    Leader(Arc<InFlight>),
    Follower(Arc<InFlight>),
}

/// The serving daemon: one shared session, a tuner cache, the in-flight
/// coalescing map, and counters. `&self` everywhere — transports share
/// one daemon across threads.
pub struct Daemon {
    session: TuningSession,
    options: ServeOptions,
    /// Lowered tuners by workload fingerprint: warm requests replay
    /// against a cached lowering instead of re-running the frontend.
    tuners: Mutex<HashMap<u64, Arc<WorkloadTuner>>>,
    /// In-flight tunes by coalescing key; entries live from the leader's
    /// insertion to just after it publishes.
    inflight: Mutex<HashMap<(u64, String, u64), Arc<InFlight>>>,
    metrics: ServeMetrics,
    shutdown: AtomicBool,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl Daemon {
    /// Build a daemon; opening the plan store is the only fallible part.
    pub fn new(options: ServeOptions) -> Result<Daemon, BarracudaError> {
        let session = match &options.store {
            Some(root) => TuningSession::with_store(root.clone())?,
            None => TuningSession::new(),
        };
        Ok(Daemon {
            session,
            options,
            tuners: Mutex::new(HashMap::new()),
            inflight: Mutex::new(HashMap::new()),
            metrics: ServeMetrics::default(),
            shutdown: AtomicBool::new(false),
        })
    }

    /// The daemon's counters (live; snapshot to read them consistently).
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// The underlying session (tests reach its caches through this).
    pub fn session(&self) -> &TuningSession {
        &self.session
    }

    /// `true` once a shutdown request was handled.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Handle one request line end-to-end: parse, dispatch, count, and
    /// render the one response line. Never panics and never blocks
    /// beyond the request's own deadline plus the coalescing grace.
    pub fn handle_line(&self, line: &str) -> LineOutcome {
        let start = Instant::now();
        self.metrics.requests.fetch_add(1, Ordering::Relaxed);
        let mut shutdown = false;
        let response: Json = match Request::parse(line) {
            Err(e) => {
                self.metrics.errors.fetch_add(1, Ordering::Relaxed);
                protocol::error_response("error", None, &e)
            }
            Ok(Request::Ping) => protocol::ack_response("ping"),
            Ok(Request::Stats) => self.metrics.snapshot().to_json(),
            Ok(Request::Shutdown) => {
                self.shutdown.store(true, Ordering::SeqCst);
                shutdown = true;
                protocol::ack_response("shutdown")
            }
            Ok(Request::Tune(req)) => match self.serve_tune(&req) {
                Ok(t) => {
                    self.metrics.tunes.fetch_add(1, Ordering::Relaxed);
                    self.metrics
                        .quarantined
                        .fetch_add(t.quarantined, Ordering::Relaxed);
                    if t.degraded.is_some() {
                        self.metrics.degraded.fetch_add(1, Ordering::Relaxed);
                    }
                    protocol::tune_response(req.id.as_deref(), &t)
                }
                Err(e) => {
                    self.metrics.errors.fetch_add(1, Ordering::Relaxed);
                    protocol::error_response("tune", req.id.as_deref(), &e)
                }
            },
        };
        self.metrics
            .record_latency_us(start.elapsed().as_micros() as u64);
        LineOutcome {
            response: response.to_string_compact(),
            shutdown,
        }
    }

    /// Serve one tune request, coalescing with identical in-flight ones.
    pub fn serve_tune(&self, req: &TuneRequest) -> Result<Arc<ServedTune>, BarracudaError> {
        let workload = resolve_workload(&req.workload)?;
        let backend = req
            .backend
            .clone()
            .unwrap_or_else(|| self.options.backend.clone());
        let params = self.params_for(req);
        let key = self.coalesce_key(&workload, &backend, &params)?;
        let role = {
            let mut map = lock(&self.inflight);
            match map.entry(key.clone()) {
                Entry::Occupied(e) => Role::Follower(Arc::clone(e.get())),
                Entry::Vacant(e) => {
                    let f = Arc::new(InFlight::default());
                    e.insert(Arc::clone(&f));
                    Role::Leader(f)
                }
            }
        };
        match role {
            Role::Follower(flight) => {
                self.metrics.coalesced.fetch_add(1, Ordering::Relaxed);
                wait_for_leader(&flight, params.wall_deadline_s)
            }
            Role::Leader(flight) => {
                let result = catch_unwind(AssertUnwindSafe(|| {
                    self.tune_once(&workload, &backend, params)
                }))
                .unwrap_or_else(|panic| {
                    Err(BarracudaError::Serve {
                        detail: format!("tune panicked: {}", panic_message(panic.as_ref())),
                    })
                })
                .map(Arc::new);
                *lock(&flight.slot) = Some(result.clone());
                flight.ready.notify_all();
                lock(&self.inflight).remove(&key);
                result
            }
        }
    }

    /// The leader's actual tune: store-first through the shared session
    /// over the cached (or freshly lowered) tuner.
    fn tune_once(
        &self,
        workload: &Workload,
        backend: &str,
        params: TuneParams,
    ) -> Result<ServedTune, BarracudaError> {
        let tuner = self.tuner_for(workload);
        let out = self.session.tune_built(&tuner, backend, params)?;
        let source = match &out.source {
            PlanSource::StoreHit { .. } => ServedSource::Hit,
            PlanSource::Searched { stored: Some(_) } => ServedSource::Searched,
            PlanSource::Searched { stored: None } => ServedSource::Detached,
        };
        match source {
            ServedSource::Hit => self.metrics.store_hits.fetch_add(1, Ordering::Relaxed),
            _ => self.metrics.store_misses.fetch_add(1, Ordering::Relaxed),
        };
        Ok(served_from(&out.tuned, backend, source))
    }

    /// Cached lowering for `workload`, built on first sight.
    fn tuner_for(&self, workload: &Workload) -> Arc<WorkloadTuner> {
        let fp = workload_fingerprint(workload);
        if let Some(t) = lock(&self.tuners).get(&fp) {
            return Arc::clone(t);
        }
        // Lower outside the lock: first requests for distinct workloads
        // must not serialize on one mutex. A racing duplicate lowering
        // is idempotent; first insert wins.
        let built = Arc::new(WorkloadTuner::build(workload));
        Arc::clone(
            lock(&self.tuners)
                .entry(fp)
                .or_insert_with(|| Arc::clone(&built)),
        )
    }

    /// Request parameters: profile default, then request overrides.
    fn params_for(&self, req: &TuneRequest) -> TuneParams {
        let quick = req.quick.unwrap_or(self.options.quick);
        let mut p = if quick {
            TuneParams::quick()
        } else {
            TuneParams::paper()
        };
        if let Some(evals) = req.evals.or(self.options.evals) {
            p.surf.max_evals = evals;
        }
        p.wall_deadline_s = req.deadline_s.or(self.options.deadline_s);
        p
    }

    /// The coalescing key: workload fingerprint + backend + a digest of
    /// every parameter that changes the result. Two requests with equal
    /// keys are interchangeable, so one may answer for both.
    fn coalesce_key(
        &self,
        workload: &Workload,
        backend: &str,
        params: &TuneParams,
    ) -> Result<(u64, String, u64), BarracudaError> {
        // Validates the backend key early: an unknown backend fails the
        // request before it can occupy a coalescing slot.
        let key = self.session.key_for(workload, backend)?;
        let mut h = DefaultHasher::new();
        params.surf.max_evals.hash(&mut h);
        params.surf.batch_size.hash(&mut h);
        params.surf.seed.hash(&mut h);
        params
            .wall_deadline_s
            .unwrap_or(f64::NAN)
            .to_bits()
            .hash(&mut h);
        key.cache_salt.hash(&mut h);
        Ok((key.fingerprint, key.backend, h.finish()))
    }
}

/// Follower wait: until the leader publishes, bounded by the request
/// deadline plus [`COALESCE_GRACE_S`] when one is set (unbounded
/// otherwise — the leader always publishes, even on panic).
fn wait_for_leader(
    flight: &InFlight,
    deadline_s: Option<f64>,
) -> Result<Arc<ServedTune>, BarracudaError> {
    let cap = deadline_s.map(|d| Duration::from_secs_f64(d.max(0.0) + COALESCE_GRACE_S));
    let start = Instant::now();
    let mut slot = lock(&flight.slot);
    loop {
        if let Some(result) = slot.as_ref() {
            return result.clone();
        }
        match cap {
            None => {
                slot = match flight.ready.wait(slot) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
            Some(cap) => {
                let left = cap.checked_sub(start.elapsed()).unwrap_or(Duration::ZERO);
                if left.is_zero() {
                    return Err(BarracudaError::Serve {
                        detail: format!(
                            "coalesced wait outlived its deadline ({:.1}s + {COALESCE_GRACE_S:.0}s \
                             grace) — the leading tune did not publish in time",
                            deadline_s.unwrap_or(0.0)
                        ),
                    });
                }
                slot = match flight.ready.wait_timeout(slot, left) {
                    Ok((g, _)) => g,
                    Err(poisoned) => poisoned.into_inner().0,
                };
            }
        }
    }
}

/// Resolve a request's workload spec (`builtin:NAME` or bare name).
fn resolve_workload(spec: &str) -> Result<Workload, BarracudaError> {
    let name = spec.strip_prefix("builtin:").unwrap_or(spec);
    kernels::builtin(name).ok_or_else(|| BarracudaError::Serve {
        detail: format!(
            "unknown workload \"{spec}\" — serve resolves builtin workloads only \
             (eqn1, lg3, lg3t, tce, s1_1..s1_9, d1_1..d1_9, d2_1..d2_9)"
        ),
    })
}

/// Project a tuned result onto the wire struct. The timing line uses the
/// exact CLI `tune` format, so a store-hit replay prints byte-identical
/// to the search that produced the plan.
fn served_from(tuned: &TunedWorkload, backend: &str, source: ServedSource) -> ServedTune {
    let timing = format!(
        "{:12} {:>10} us device  {:>8} GF device  {:>8} GF w/transfers  ({} evals, space {})",
        tuned.arch_name,
        fmt_f(tuned.gpu_seconds * 1e6),
        fmt_f(tuned.gflops_device()),
        fmt_f(tuned.gflops()),
        tuned.search.n_evals,
        tuned.search.space_size,
    );
    ServedTune {
        workload: tuned.name.clone(),
        backend: backend.to_string(),
        arch: tuned.arch_name.clone(),
        source,
        gpu_seconds: tuned.gpu_seconds,
        gflops_device: tuned.gflops_device(),
        gflops: tuned.gflops(),
        n_evals: tuned.search.n_evals,
        space_size: tuned.search.space_size,
        evals_performed: match source {
            ServedSource::Hit => 0,
            _ => tuned.search.n_evals,
        },
        quarantined: tuned.quarantine.len(),
        degraded: match &tuned.status {
            surf::SearchStatus::Complete => None,
            surf::SearchStatus::Degraded { reason } => Some(reason.clone()),
        },
        timing,
    }
}

/// Best-effort text of a panic payload.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = panic.downcast_ref::<&str>() {
        s
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}
