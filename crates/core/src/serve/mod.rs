//! `barracuda serve` — the tuning-as-a-service daemon.
//!
//! A [`Daemon`] is one long-lived [`TuningSession`] behind a
//! line-delimited JSON protocol ([`protocol`]): every request routes
//! through the same per-workload [`crate::cache::EvalCache`]s and the
//! same (optional) content-addressed plan store, so the paper's
//! compile-once/run-many loop (§5) becomes a network service. Five
//! properties the tests pin:
//!
//! - **Store hits replay.** A warm request never searches: the stored
//!   plan replays with zero search evaluations and the response's timing
//!   line is byte-identical to the one the original search printed.
//! - **Identical misses coalesce.** Concurrent requests for the same
//!   `(workload, backend, parameters)` run *one* search: the first
//!   becomes the leader, the rest wait on its [`ServedTune`] and answer
//!   with bit-identical results. Duplicate work is counted, not done.
//! - **Deadlines degrade, never hang.** A request deadline flows into
//!   [`TuneParams::wall_deadline_s`]; overrun returns best-so-far with
//!   the typed degraded status. A coalesced waiter is *always* bounded:
//!   by its deadline plus a fixed grace when it set one, by the
//!   server-side [`ServeOptions::follower_wait_s`] otherwise — overrun
//!   fails with a typed [`BarracudaError::Serve`], never a hang.
//! - **Cold searches are admitted, not unleashed.** A bounded permit
//!   pool ([`admission::AdmissionGate`], sized by `--max-searches`) plus
//!   a bounded wait queue (`--queue`) cap concurrent SURF searches.
//!   Overflow is rejected with a typed [`BarracudaError::Busy`] (exit
//!   13) carrying a `retry_after_ms` hint derived from recent search
//!   duration. Store hits bypass the gate entirely and coalesced
//!   followers ride their leader's permit, so warm traffic keeps
//!   flowing while a cold storm saturates the pool.
//! - **Chaos is survivable.** A seeded [`chaos::ChaosPlan`] can make
//!   leader searches panic or stall and make the transport drop
//!   responses; the daemon keeps serving, permits are released by RAII,
//!   and every injected failure surfaces as a typed error.
//!
//! Transports ([`transport`]): sequential stdio (deterministic — what CI
//! scripts drive) and thread-per-connection TCP or Unix sockets (where
//! coalescing actually overlaps). Tests and the load generator skip the
//! transport and call [`Daemon::handle_line`] directly.

pub mod admission;
pub mod chaos;
pub mod metrics;
pub mod protocol;
pub mod transport;

use std::collections::hash_map::{DefaultHasher, Entry};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crate::backend::BackendSet;
use crate::error::BarracudaError;
use crate::json::Json;
use crate::kernels;
use crate::pipeline::{TuneParams, TunedWorkload, WorkloadTuner};
use crate::report::fmt_f;
use crate::session::{PlanSource, TuningSession};
use crate::stages::frontend::workload_fingerprint;
use crate::store::{PlanStore, StoreFaultPlan, StoreOptions};
use crate::workload::Workload;

pub use admission::{AdmissionGate, AdmitReject, Permit};
pub use chaos::{ChaosEvent, ChaosPlan};
pub use metrics::{MetricsSnapshot, ServeMetrics};
pub use protocol::{Request, ServedSource, ServedTune, TuneRequest};
pub use transport::Listen;

/// Extra wall-clock a coalesced follower grants the leader past the
/// request deadline: the search stops at the next *batch boundary* after
/// the deadline, so the tail of one batch must fit inside the grace.
const COALESCE_GRACE_S: f64 = 30.0;

/// Default server-side cap on a coalesced follower's wait when the
/// request set no deadline (seconds). Generous — a paper-profile search
/// finishes well inside it — but finite: no request ever waits forever.
pub const DEFAULT_FOLLOWER_WAIT_S: f64 = 600.0;

/// Daemon-wide defaults for fields a tune request leaves unset.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Plan store directory; `None` serves without persistence (every
    /// cold request searches, warmth only via coalescing and caches).
    pub store: Option<PathBuf>,
    /// Default backend registry key for requests without `"backend"`.
    pub backend: String,
    /// Default parameter profile: `true` = quick, `false` = paper.
    pub quick: bool,
    /// Default SURF evaluation budget (`None`: the profile's own).
    pub evals: Option<usize>,
    /// Default per-request deadline in seconds.
    pub deadline_s: Option<f64>,
    /// Cold-search permit pool size (`--max-searches`); `None` sizes it
    /// to the machine's available parallelism.
    pub max_searches: Option<usize>,
    /// Wait-queue depth for cold searches (`--queue`); `None` matches
    /// the permit pool size.
    pub queue: Option<usize>,
    /// Server-side wait cap (seconds) for coalesced followers and queued
    /// leaders whose request set no deadline.
    pub follower_wait_s: f64,
    /// Fsync plan-store writes (`--fsync`): survive power loss, not just
    /// process crash.
    pub durable: bool,
    /// Architecture descriptor files (`--arch-file`) loaded into the
    /// daemon's backend set at startup, in order.
    pub arch_files: Vec<PathBuf>,
    /// Directory of `*.toml` descriptors (`--arch-dir`) loaded after
    /// `arch_files`, sorted by file name.
    pub arch_dir: Option<PathBuf>,
    /// Serve-level chaos plan (tests and the chaos harness only).
    pub chaos: ChaosPlan,
    /// Store-level I/O fault plan (tests and the chaos harness only).
    pub store_faults: StoreFaultPlan,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            store: None,
            backend: "gtx980".to_string(),
            quick: false,
            evals: None,
            deadline_s: None,
            max_searches: None,
            queue: None,
            follower_wait_s: DEFAULT_FOLLOWER_WAIT_S,
            durable: false,
            arch_files: Vec::new(),
            arch_dir: None,
            chaos: ChaosPlan::none(),
            store_faults: StoreFaultPlan::none(),
        }
    }
}

/// One handled request line: the response line (compact JSON, no
/// newline), whether this request asked the daemon to stop, and whether
/// the chaos plan told the transport to drop the response instead of
/// writing it.
#[derive(Clone, Debug)]
pub struct LineOutcome {
    pub response: String,
    pub shutdown: bool,
    /// Chaos: the transport should sever the connection (or swallow the
    /// line, on stdio) instead of delivering `response`. The work still
    /// happened and was still published/persisted.
    pub drop_connection: bool,
}

/// The slot duplicates rendezvous on: the leader publishes exactly once,
/// then wakes every waiter.
#[derive(Default)]
struct InFlight {
    slot: Mutex<Option<Result<Arc<ServedTune>, BarracudaError>>>,
    ready: Condvar,
}

enum Role {
    Leader(Arc<InFlight>),
    Follower(Arc<InFlight>),
}

/// The serving daemon: one shared session, a tuner cache, the in-flight
/// coalescing map, the admission gate, and counters. `&self` everywhere —
/// transports share one daemon across threads.
pub struct Daemon {
    session: TuningSession,
    options: ServeOptions,
    /// Lowered tuners by workload fingerprint: warm requests replay
    /// against a cached lowering instead of re-running the frontend.
    tuners: Mutex<HashMap<u64, Arc<WorkloadTuner>>>,
    /// In-flight tunes by coalescing key; entries live from the leader's
    /// insertion to just after it publishes.
    inflight: Mutex<HashMap<(u64, String, u64), Arc<InFlight>>>,
    /// Cold-search admission: bounded permits + bounded wait queue.
    gate: AdmissionGate,
    metrics: ServeMetrics,
    shutdown: AtomicBool,
    /// Monotone request sequence — the chaos plan's decision key.
    req_seq: AtomicU64,
    /// EWMA of recent leader search wall time (ms), feeding the
    /// `retry_after_ms` hint in Busy rejections. 0 until the first
    /// search completes.
    search_ewma_ms: AtomicU64,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Permit pool size when `--max-searches` is not given: the machine's
/// available parallelism (at least 1).
fn default_max_searches() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

impl Daemon {
    /// Build a daemon. Fallible parts: opening the plan store, loading
    /// the architecture descriptors, and validating that the default
    /// backend exists in the loaded set and is searchable.
    pub fn new(options: ServeOptions) -> Result<Daemon, BarracudaError> {
        let mut set = BackendSet::builtin();
        for file in &options.arch_files {
            set.load_arch_file(file)?;
        }
        if let Some(dir) = &options.arch_dir {
            set.load_arch_dir(dir)?;
        }
        match set.get(&options.backend) {
            None => {
                return Err(BarracudaError::Serve {
                    detail: format!(
                        "default backend \"{}\" is not in the loaded backend set (one of: {})",
                        options.backend,
                        set.keys().join(", ")
                    ),
                })
            }
            Some(b) if !b.caps().searchable => {
                return Err(BarracudaError::Serve {
                    detail: format!(
                        "default backend \"{}\" is not searchable — serve needs a GPU backend",
                        options.backend
                    ),
                })
            }
            Some(_) => {}
        }
        let session = match &options.store {
            Some(root) => {
                let store = PlanStore::open_with(
                    root.clone(),
                    StoreOptions {
                        durable: options.durable,
                        faults: options.store_faults,
                    },
                )?;
                TuningSession::with_plan_store(store)
            }
            None => TuningSession::new(),
        }
        .with_backends(Arc::new(set));
        let max = options.max_searches.unwrap_or_else(default_max_searches);
        let queue = options.queue.unwrap_or(max);
        Ok(Daemon {
            session,
            options,
            tuners: Mutex::new(HashMap::new()),
            inflight: Mutex::new(HashMap::new()),
            gate: AdmissionGate::new(max, queue),
            metrics: ServeMetrics::default(),
            shutdown: AtomicBool::new(false),
            req_seq: AtomicU64::new(0),
            search_ewma_ms: AtomicU64::new(0),
        })
    }

    /// The daemon's counters (live; snapshot to read them consistently).
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// A consistent metrics snapshot, including the store's corruption
    /// quarantine count and the admission gate's current depth — what
    /// the `stats` op and the transports' shutdown line report.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut s = self.metrics.snapshot();
        s.store_corrupt = self
            .session
            .store()
            .map(PlanStore::corrupt_quarantined)
            .unwrap_or(0);
        let (active, queued) = self.gate.depth();
        s.active_searches = active;
        s.queued_searches = queued;
        s.backends_loaded = self.session.backends().len();
        s
    }

    /// The `backends` op: every backend in the daemon's loaded set, with
    /// its cache salt (the descriptor digest, for GPU backends) so
    /// clients can tell which machine description will address their
    /// plans — and which one is the default for requests that name none.
    fn backends_json(&self) -> Json {
        let list = self
            .session
            .backends()
            .iter()
            .map(|b| {
                Json::Obj(vec![
                    ("key".to_string(), Json::Str(b.key().to_string())),
                    ("name".to_string(), Json::Str(b.name().to_string())),
                    ("searchable".to_string(), Json::Bool(b.caps().searchable)),
                    (
                        "salt".to_string(),
                        Json::Str(format!("{:016x}", b.cache_salt())),
                    ),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("ok".to_string(), Json::Bool(true)),
            ("op".to_string(), Json::Str("backends".to_string())),
            (
                "default".to_string(),
                Json::Str(self.options.backend.clone()),
            ),
            ("backends".to_string(), Json::Arr(list)),
        ])
    }

    /// The underlying session (tests reach its caches through this).
    pub fn session(&self) -> &TuningSession {
        &self.session
    }

    /// The cold-search admission gate (tests assert on its depth).
    pub fn gate(&self) -> &AdmissionGate {
        &self.gate
    }

    /// `true` once a shutdown request was handled.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Handle one request line end-to-end: parse, dispatch, count, and
    /// render the one response line. Never panics and never blocks
    /// beyond the request's own deadline plus the coalescing grace (or
    /// the server-side wait cap).
    pub fn handle_line(&self, line: &str) -> LineOutcome {
        let start = Instant::now();
        let seq = self.req_seq.fetch_add(1, Ordering::Relaxed);
        self.metrics.requests.fetch_add(1, Ordering::Relaxed);
        let mut shutdown = false;
        let response: Json = match Request::parse(line) {
            Err(e) => {
                self.metrics.errors.fetch_add(1, Ordering::Relaxed);
                protocol::error_response("error", None, &e)
            }
            Ok(Request::Ping) => protocol::ack_response("ping"),
            Ok(Request::Stats) => self.snapshot().to_json(),
            Ok(Request::Backends) => self.backends_json(),
            Ok(Request::Shutdown) => {
                self.shutdown.store(true, Ordering::SeqCst);
                shutdown = true;
                protocol::ack_response("shutdown")
            }
            Ok(Request::Tune(req)) => match self.serve_tune_at(&req, seq) {
                Ok(t) => {
                    self.metrics.tunes.fetch_add(1, Ordering::Relaxed);
                    self.metrics
                        .quarantined
                        .fetch_add(t.quarantined, Ordering::Relaxed);
                    if t.degraded.is_some() {
                        self.metrics.degraded.fetch_add(1, Ordering::Relaxed);
                    }
                    protocol::tune_response(req.id.as_deref(), &t)
                }
                Err(e) => {
                    // Busy is load shedding, not failure: counted apart
                    // so a saturation run can tell rejections from bugs.
                    match &e {
                        BarracudaError::Busy { .. } => {
                            self.metrics.busy.fetch_add(1, Ordering::Relaxed)
                        }
                        _ => self.metrics.errors.fetch_add(1, Ordering::Relaxed),
                    };
                    protocol::error_response("tune", req.id.as_deref(), &e)
                }
            },
        };
        self.metrics
            .record_latency_us(start.elapsed().as_micros() as u64);
        LineOutcome {
            response: response.to_string_compact(),
            shutdown,
            drop_connection: self.options.chaos.decide_drop(seq),
        }
    }

    /// Serve one tune request, coalescing with identical in-flight ones.
    /// Allocates its own chaos sequence number — transports go through
    /// [`Daemon::handle_line`] instead.
    pub fn serve_tune(&self, req: &TuneRequest) -> Result<Arc<ServedTune>, BarracudaError> {
        let seq = self.req_seq.fetch_add(1, Ordering::Relaxed);
        self.serve_tune_at(req, seq)
    }

    /// Serve one tune request with an explicit chaos sequence number.
    fn serve_tune_at(
        &self,
        req: &TuneRequest,
        seq: u64,
    ) -> Result<Arc<ServedTune>, BarracudaError> {
        // Draining: in-flight leaders finish and publish, new tunes are
        // shed with a typed Busy so clients fail over instead of hanging
        // on a daemon that is going away.
        if self.is_shutdown() {
            return Err(BarracudaError::Busy {
                detail: "daemon is draining for shutdown — retry against another instance"
                    .to_string(),
                retry_after_ms: self.recent_search_ms(),
            });
        }
        let workload = resolve_workload(&req.workload)?;
        let backend = req
            .backend
            .clone()
            .unwrap_or_else(|| self.options.backend.clone());
        let params = self.params_for(req);

        // Warm fast path: probe the store *before* admission control and
        // before taking a coalescing slot. A replayed hit costs zero
        // search evaluations, so it must keep flowing even while a cold
        // storm holds every permit.
        let tuner = self.tuner_for(&workload);
        if let Some(hit) = self
            .session
            .replay_hit(&tuner, &backend, &params.objective)?
        {
            self.metrics.store_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::new(served_from(
                &hit.tuned,
                &backend,
                ServedSource::Hit,
            )));
        }

        let key = self.coalesce_key(&workload, &backend, &params)?;
        let role = {
            let mut map = lock(&self.inflight);
            match map.entry(key.clone()) {
                Entry::Occupied(e) => Role::Follower(Arc::clone(e.get())),
                Entry::Vacant(e) => {
                    let f = Arc::new(InFlight::default());
                    e.insert(Arc::clone(&f));
                    Role::Leader(f)
                }
            }
        };
        match role {
            // Followers ride the leader's permit: they hold no admission
            // slot and cost no search, only a bounded wait.
            Role::Follower(flight) => {
                self.metrics.coalesced.fetch_add(1, Ordering::Relaxed);
                wait_for_leader(
                    &flight,
                    params.wall_deadline_s,
                    self.options.follower_wait_s,
                )
            }
            Role::Leader(flight) => {
                let result = self.lead_tune(&workload, &backend, params, seq);
                *lock(&flight.slot) = Some(result.clone());
                flight.ready.notify_all();
                lock(&self.inflight).remove(&key);
                result
            }
        }
    }

    /// The leader's path: admission (bounded queue wait, typed Busy on
    /// overflow), then the search under `catch_unwind` with the permit
    /// held by RAII — a panicking search still releases its slot and
    /// still publishes a typed error to its followers.
    fn lead_tune(
        &self,
        workload: &Workload,
        backend: &str,
        params: TuneParams,
        seq: u64,
    ) -> Result<Arc<ServedTune>, BarracudaError> {
        let wait_cap = Duration::from_secs_f64(
            params
                .wall_deadline_s
                .map(|d| d.max(0.0) + COALESCE_GRACE_S)
                .unwrap_or(self.options.follower_wait_s)
                .max(0.0),
        );
        let permit = match self.gate.admit(wait_cap) {
            Ok(p) => p,
            Err(reject) => return Err(self.gate.busy_error(&reject, self.recent_search_ms())),
        };
        let started = Instant::now();
        let chaos = self.options.chaos;
        let result = catch_unwind(AssertUnwindSafe(|| {
            match chaos.decide_search(seq) {
                Some(ChaosEvent::PanicSearch) => {
                    panic!("chaos: injected leader-search panic (request seq {seq})")
                }
                Some(ChaosEvent::SlowSearch) => {
                    std::thread::sleep(Duration::from_millis(chaos.slow_ms));
                }
                Some(ChaosEvent::DropResponse) | None => {}
            }
            self.tune_once(workload, backend, params)
        }))
        .unwrap_or_else(|panic| {
            Err(BarracudaError::Serve {
                detail: format!("tune panicked: {}", panic_message(panic.as_ref())),
            })
        })
        .map(Arc::new);
        self.note_search_ms(started.elapsed().as_millis() as u64);
        drop(permit);
        result
    }

    /// The leader's actual tune: store-first through the shared session
    /// over the cached (or freshly lowered) tuner.
    fn tune_once(
        &self,
        workload: &Workload,
        backend: &str,
        params: TuneParams,
    ) -> Result<ServedTune, BarracudaError> {
        let tuner = self.tuner_for(workload);
        let out = self.session.tune_built(&tuner, backend, params)?;
        let source = match &out.source {
            PlanSource::StoreHit { .. } => ServedSource::Hit,
            PlanSource::Searched { stored: Some(_) } => ServedSource::Searched,
            PlanSource::Searched { stored: None } => ServedSource::Detached,
        };
        match source {
            ServedSource::Hit => self.metrics.store_hits.fetch_add(1, Ordering::Relaxed),
            _ => self.metrics.store_misses.fetch_add(1, Ordering::Relaxed),
        };
        Ok(served_from(&out.tuned, backend, source))
    }

    /// Cached lowering for `workload`, built on first sight.
    fn tuner_for(&self, workload: &Workload) -> Arc<WorkloadTuner> {
        let fp = workload_fingerprint(workload);
        if let Some(t) = lock(&self.tuners).get(&fp) {
            return Arc::clone(t);
        }
        // Lower outside the lock: first requests for distinct workloads
        // must not serialize on one mutex. A racing duplicate lowering
        // is idempotent; first insert wins.
        let built = Arc::new(WorkloadTuner::build(workload));
        Arc::clone(
            lock(&self.tuners)
                .entry(fp)
                .or_insert_with(|| Arc::clone(&built)),
        )
    }

    /// Recent leader search wall time in milliseconds (EWMA), floored so
    /// the `retry_after_ms` hint is never zero. Before any search
    /// completes the floor alone answers.
    fn recent_search_ms(&self) -> u64 {
        self.search_ewma_ms.load(Ordering::Relaxed).max(50)
    }

    /// Fold one finished search's wall time into the EWMA (¾ old, ¼
    /// new). Racy read-modify-write is fine: this feeds a back-off hint,
    /// not an invariant.
    fn note_search_ms(&self, sample_ms: u64) {
        let old = self.search_ewma_ms.load(Ordering::Relaxed);
        let next = if old == 0 {
            sample_ms
        } else {
            (old.saturating_mul(3).saturating_add(sample_ms)) / 4
        };
        self.search_ewma_ms.store(next, Ordering::Relaxed);
    }

    /// Request parameters: profile default, then request overrides.
    fn params_for(&self, req: &TuneRequest) -> TuneParams {
        let quick = req.quick.unwrap_or(self.options.quick);
        let mut p = if quick {
            TuneParams::quick()
        } else {
            TuneParams::paper()
        };
        if let Some(evals) = req.evals.or(self.options.evals) {
            p.surf.max_evals = evals;
        }
        p.wall_deadline_s = req.deadline_s.or(self.options.deadline_s);
        if let Some(objective) = req.objective {
            p.objective = objective;
        }
        p
    }

    /// The coalescing key: workload fingerprint + backend + a digest of
    /// every parameter that changes the result. Two requests with equal
    /// keys are interchangeable, so one may answer for both.
    fn coalesce_key(
        &self,
        workload: &Workload,
        backend: &str,
        params: &TuneParams,
    ) -> Result<(u64, String, u64), BarracudaError> {
        // Validates the backend key early: an unknown backend fails the
        // request before it can occupy a coalescing slot.
        let key = self.session.key_for(workload, backend)?;
        let mut h = DefaultHasher::new();
        params.surf.max_evals.hash(&mut h);
        params.surf.batch_size.hash(&mut h);
        params.surf.seed.hash(&mut h);
        params
            .wall_deadline_s
            .unwrap_or(f64::NAN)
            .to_bits()
            .hash(&mut h);
        key.cache_salt.hash(&mut h);
        // Different objectives produce different winners: never coalesce
        // across them.
        params.objective.digest().hash(&mut h);
        Ok((key.fingerprint, key.backend, h.finish()))
    }
}

/// Follower wait: until the leader publishes, bounded by the request
/// deadline plus [`COALESCE_GRACE_S`] when one is set, by the
/// server-side `follower_wait_s` cap otherwise. Always finite: a wedged
/// leader costs its followers a typed error, never a hang.
fn wait_for_leader(
    flight: &InFlight,
    deadline_s: Option<f64>,
    follower_wait_s: f64,
) -> Result<Arc<ServedTune>, BarracudaError> {
    let cap = Duration::from_secs_f64(
        deadline_s
            .map(|d| d.max(0.0) + COALESCE_GRACE_S)
            .unwrap_or(follower_wait_s)
            .max(0.0),
    );
    let start = Instant::now();
    let mut slot = lock(&flight.slot);
    loop {
        if let Some(result) = slot.as_ref() {
            return result.clone();
        }
        let left = cap.checked_sub(start.elapsed()).unwrap_or(Duration::ZERO);
        if left.is_zero() {
            let bound = match deadline_s {
                Some(d) => format!("{d:.1}s deadline + {COALESCE_GRACE_S:.0}s grace"),
                None => format!("{follower_wait_s:.0}s server-side wait cap"),
            };
            return Err(BarracudaError::Serve {
                detail: format!(
                    "coalesced wait outlived its bound ({bound}) — the leading tune did not \
                     publish in time"
                ),
            });
        }
        slot = match flight.ready.wait_timeout(slot, left) {
            Ok((g, _)) => g,
            Err(poisoned) => poisoned.into_inner().0,
        };
    }
}

/// Resolve a request's workload spec (`builtin:NAME` or bare name).
fn resolve_workload(spec: &str) -> Result<Workload, BarracudaError> {
    let name = spec.strip_prefix("builtin:").unwrap_or(spec);
    kernels::builtin(name).ok_or_else(|| BarracudaError::Serve {
        detail: format!(
            "unknown workload \"{spec}\" — serve resolves builtin workloads only \
             (eqn1, lg3, lg3t, tce, s1_1..s1_9, d1_1..d1_9, d2_1..d2_9)"
        ),
    })
}

/// Project a tuned result onto the wire struct. The timing line uses the
/// exact CLI `tune` format, so a store-hit replay prints byte-identical
/// to the search that produced the plan.
fn served_from(tuned: &TunedWorkload, backend: &str, source: ServedSource) -> ServedTune {
    let timing = format!(
        "{:12} {:>10} us device  {:>8} GF device  {:>8} GF w/transfers  ({} evals, space {})",
        tuned.arch_name,
        fmt_f(tuned.gpu_seconds * 1e6),
        fmt_f(tuned.gflops_device()),
        fmt_f(tuned.gflops()),
        tuned.search.n_evals,
        tuned.search.space_size,
    );
    ServedTune {
        workload: tuned.name.clone(),
        backend: backend.to_string(),
        arch: tuned.arch_name.clone(),
        source,
        gpu_seconds: tuned.gpu_seconds,
        gflops_device: tuned.gflops_device(),
        gflops: tuned.gflops(),
        n_evals: tuned.search.n_evals,
        space_size: tuned.search.space_size,
        evals_performed: match source {
            ServedSource::Hit => 0,
            _ => tuned.search.n_evals,
        },
        quarantined: tuned.quarantine.len(),
        degraded: match &tuned.status {
            surf::SearchStatus::Complete => None,
            surf::SearchStatus::Degraded { reason } => Some(reason.clone()),
        },
        objective: tuned.objective.describe(),
        peak_temp_bytes: tuned.search.peak_temp_bytes,
        timing,
    }
}

/// Best-effort text of a panic payload.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = panic.downcast_ref::<&str>() {
        s
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}
