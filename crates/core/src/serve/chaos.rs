//! Deterministic serve-level chaos: a seeded plan that decides, per
//! request sequence number, whether the daemon should misbehave — a
//! leader search that panics, a search that stalls, or a response the
//! transport drops mid-write. Decisions are a pure function of
//! `(seed, request seq)` via the same SplitMix64 draw the search-level
//! [`surf::FaultPlan`] uses, so a chaos run is bit-reproducible: the
//! same plan always breaks the same requests, and a test can predict
//! exactly which ones.
//!
//! The chaos harness proves the overload machinery is not fair-weather
//! code: a panicking leader must release its admission permit and fail
//! its followers with a typed error; a slow search must not wedge the
//! queue forever; a dropped connection must not take the daemon down.

use surf::fault_unit;

/// What the plan decided to do to one request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosEvent {
    /// The leader's search panics mid-flight (after admission).
    PanicSearch,
    /// The leader's search stalls for `slow_ms` before running.
    SlowSearch,
    /// The transport drops the connection instead of writing the
    /// response (the work still happens and is still published).
    DropResponse,
}

/// A deterministic serve-chaos plan: rates per misbehaviour class plus a
/// seed. Keyed by the daemon's request sequence number, which increments
/// once per handled line, so the plan is independent of thread
/// interleaving.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChaosPlan {
    /// Fraction of tune requests whose leader search panics.
    pub panic_rate: f64,
    /// Fraction of tune requests whose leader search stalls first.
    pub slow_rate: f64,
    /// Stall duration for slow searches, in milliseconds.
    pub slow_ms: u64,
    /// Fraction of responses the transport drops instead of writing.
    pub drop_response_rate: f64,
    /// Seed mixed into every per-request decision.
    pub seed: u64,
}

impl ChaosPlan {
    /// A plan that injects nothing.
    pub fn none() -> ChaosPlan {
        ChaosPlan {
            panic_rate: 0.0,
            slow_rate: 0.0,
            slow_ms: 0,
            drop_response_rate: 0.0,
            seed: 0,
        }
    }

    pub fn is_none(&self) -> bool {
        self.panic_rate <= 0.0 && self.slow_rate <= 0.0 && self.drop_response_rate <= 0.0
    }

    /// The fate of the search behind request `seq`: panic, stall, or run
    /// clean. Pure and stateless, so tests can predict every decision.
    pub fn decide_search(&self, seq: u64) -> Option<ChaosEvent> {
        if self.panic_rate <= 0.0 && self.slow_rate <= 0.0 {
            return None;
        }
        let u = fault_unit(self.seed ^ 0xC4A0_5EA2, seq as u128);
        if u < self.panic_rate {
            Some(ChaosEvent::PanicSearch)
        } else if u < self.panic_rate + self.slow_rate {
            Some(ChaosEvent::SlowSearch)
        } else {
            None
        }
    }

    /// Whether the transport should drop the connection instead of
    /// writing the response to request `seq`.
    pub fn decide_drop(&self, seq: u64) -> bool {
        if self.drop_response_rate <= 0.0 {
            return false;
        }
        fault_unit(self.seed ^ 0xD20_90E5, seq as u128) < self.drop_response_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_and_rate_accurate() {
        let plan = ChaosPlan {
            panic_rate: 0.15,
            slow_rate: 0.15,
            slow_ms: 5,
            drop_response_rate: 0.2,
            seed: 99,
        };
        let n = 10_000u64;
        let searches = (0..n).filter(|&s| plan.decide_search(s).is_some()).count();
        let drops = (0..n).filter(|&s| plan.decide_drop(s)).count();
        let search_frac = searches as f64 / n as f64;
        let drop_frac = drops as f64 / n as f64;
        assert!(
            (search_frac - 0.3).abs() < 0.02,
            "search rate {search_frac}"
        );
        assert!((drop_frac - 0.2).abs() < 0.02, "drop rate {drop_frac}");
        for s in 0..200 {
            assert_eq!(plan.decide_search(s), plan.decide_search(s));
            assert_eq!(plan.decide_drop(s), plan.decide_drop(s));
        }
    }

    #[test]
    fn none_plan_never_fires() {
        let plan = ChaosPlan::none();
        assert!(plan.is_none());
        for s in 0..1_000 {
            assert_eq!(plan.decide_search(s), None);
            assert!(!plan.decide_drop(s));
        }
    }

    #[test]
    fn search_and_drop_draws_are_independent() {
        // Same rates, same seed: the xor'd domain separators must make
        // the two decision streams differ somewhere.
        let plan = ChaosPlan {
            panic_rate: 0.5,
            slow_rate: 0.0,
            slow_ms: 0,
            drop_response_rate: 0.5,
            seed: 7,
        };
        let differs = (0..256).any(|s| (plan.decide_search(s).is_some()) != plan.decide_drop(s));
        assert!(differs);
    }
}
