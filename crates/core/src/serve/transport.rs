//! Transports for the serving daemon: stdio, TCP, and Unix sockets.
//!
//! stdio is **sequential** — requests are answered in arrival order, one
//! at a time — which makes it deterministic and therefore what the CI
//! smoke test drives (a cold tune followed by a warm one must produce
//! exactly one miss then one hit, never a coalesced pair). The socket
//! transports are thread-per-connection: that is where concurrent
//! identical requests actually overlap and coalesce.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::Arc;

use crate::error::BarracudaError;

use super::Daemon;

/// Where the daemon listens, parsed from `--listen`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Listen {
    /// Requests on stdin, responses on stdout (sequential).
    Stdio,
    /// TCP socket, e.g. `tcp:127.0.0.1:7070`.
    Tcp(String),
    /// Unix-domain socket at a filesystem path.
    Unix(PathBuf),
}

impl Listen {
    /// Parse a `--listen` spec: `stdio`, `tcp:HOST:PORT`, `unix:PATH`.
    pub fn parse(spec: &str) -> Result<Listen, BarracudaError> {
        if spec == "stdio" {
            return Ok(Listen::Stdio);
        }
        if let Some(addr) = spec.strip_prefix("tcp:") {
            if addr.is_empty() {
                return Err(BarracudaError::Serve {
                    detail: "empty tcp address in --listen (use tcp:HOST:PORT)".to_string(),
                });
            }
            return Ok(Listen::Tcp(addr.to_string()));
        }
        if let Some(path) = spec.strip_prefix("unix:") {
            if path.is_empty() {
                return Err(BarracudaError::Serve {
                    detail: "empty unix path in --listen (use unix:PATH)".to_string(),
                });
            }
            return Ok(Listen::Unix(PathBuf::from(path)));
        }
        Err(BarracudaError::Serve {
            detail: format!("unknown --listen spec \"{spec}\" (stdio, tcp:HOST:PORT, unix:PATH)"),
        })
    }
}

/// Run the daemon over the given transport until shutdown (or EOF on
/// stdio). Prints the final metrics snapshot to stderr on the way out.
pub fn run(daemon: Arc<Daemon>, listen: &Listen) -> Result<(), BarracudaError> {
    match listen {
        Listen::Stdio => serve_stdio(&daemon),
        Listen::Tcp(addr) => serve_tcp(daemon, addr),
        Listen::Unix(path) => serve_unix(daemon, path),
    }
}

/// Sequential stdio loop: one request line in, one response line out,
/// flushed per response. Blank lines are ignored; EOF is a clean stop.
pub fn serve_stdio(daemon: &Daemon) -> Result<(), BarracudaError> {
    eprintln!("serve: ready (stdio)");
    let stdin = std::io::stdin();
    let mut out = std::io::stdout().lock();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| BarracudaError::Serve {
            detail: format!("stdin read failed: {e}"),
        })?;
        if line.trim().is_empty() {
            continue;
        }
        let outcome = daemon.handle_line(&line);
        if outcome.drop_connection {
            // Chaos: swallow the response line (stdio has no connection
            // to sever) — the work still happened and was persisted.
            eprintln!("serve: chaos dropped a response (stdio)");
        } else {
            writeln!(out, "{}", outcome.response).map_err(write_err)?;
            out.flush().map_err(write_err)?;
        }
        if outcome.shutdown {
            break;
        }
    }
    eprintln!("{}", daemon.snapshot());
    Ok(())
}

fn write_err(e: std::io::Error) -> BarracudaError {
    BarracudaError::Serve {
        detail: format!("response write failed: {e}"),
    }
}

/// Thread-per-connection loop over any accept-able listener. `wake` is
/// called after shutdown to unblock the (otherwise parked) acceptor by
/// connecting to ourselves.
fn serve_accept_loop<L, S>(
    daemon: Arc<Daemon>,
    accept: impl Fn(&L) -> std::io::Result<S>,
    listener: L,
    wake: impl Fn() + Send + Sync + 'static,
) -> Result<(), BarracudaError>
where
    S: std::io::Read + Write + Send + 'static,
{
    let wake = Arc::new(wake);
    let mut workers = Vec::new();
    while !daemon.is_shutdown() {
        let stream = match accept(&listener) {
            Ok(s) => s,
            Err(e) => {
                if daemon.is_shutdown() {
                    break;
                }
                eprintln!("serve: accept failed: {e}");
                continue;
            }
        };
        let daemon = Arc::clone(&daemon);
        let wake = Arc::clone(&wake);
        workers.push(std::thread::spawn(move || {
            serve_connection(&daemon, stream);
            if daemon.is_shutdown() {
                wake();
            }
        }));
    }
    for w in workers {
        let _ = w.join();
    }
    eprintln!("{}", daemon.snapshot());
    Ok(())
}

/// One connection: lines in, lines out, until EOF or shutdown.
fn serve_connection<S: std::io::Read + Write>(daemon: &Daemon, stream: S) {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        let outcome = daemon.handle_line(line.trim_end());
        if outcome.drop_connection {
            // Chaos: sever the connection instead of writing the
            // response. The request was fully processed and published;
            // only the delivery is lost.
            return;
        }
        let stream = reader.get_mut();
        if writeln!(stream, "{}", outcome.response)
            .and_then(|()| stream.flush())
            .is_err()
        {
            return;
        }
        if outcome.shutdown {
            return;
        }
    }
}

fn serve_tcp(daemon: Arc<Daemon>, addr: &str) -> Result<(), BarracudaError> {
    let listener = TcpListener::bind(addr).map_err(|e| BarracudaError::Serve {
        detail: format!("cannot bind tcp {addr}: {e}"),
    })?;
    serve_tcp_on(daemon, listener)
}

/// Serve on an already-bound TCP listener. The overload smoke bench and
/// tests bind port 0 themselves to learn the ephemeral port before
/// handing the listener over.
pub fn serve_tcp_on(daemon: Arc<Daemon>, listener: TcpListener) -> Result<(), BarracudaError> {
    let local = listener.local_addr().map_err(|e| BarracudaError::Serve {
        detail: format!("cannot resolve bound address: {e}"),
    })?;
    eprintln!("serve: listening on tcp:{local}");
    serve_accept_loop(
        daemon,
        |l: &TcpListener| l.accept().map(|(s, _)| s),
        listener,
        move || {
            let _ = TcpStream::connect(local);
        },
    )
}

fn serve_unix(daemon: Arc<Daemon>, path: &PathBuf) -> Result<(), BarracudaError> {
    // A stale socket file from a previous run refuses the bind; remove
    // it (a live daemon would still hold the file open, but there is no
    // portable liveness probe — last writer wins, as with pid files).
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path).map_err(|e| BarracudaError::Serve {
        detail: format!("cannot bind unix socket {}: {e}", path.display()),
    })?;
    eprintln!("serve: listening on unix:{}", path.display());
    let wake_path = path.clone();
    let result = serve_accept_loop(
        daemon,
        |l: &UnixListener| l.accept().map(|(s, _)| s),
        listener,
        move || {
            let _ = UnixStream::connect(&wake_path);
        },
    );
    let _ = std::fs::remove_file(path);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn listen_specs_parse() {
        assert_eq!(Listen::parse("stdio").unwrap(), Listen::Stdio);
        assert_eq!(
            Listen::parse("tcp:127.0.0.1:7070").unwrap(),
            Listen::Tcp("127.0.0.1:7070".to_string())
        );
        assert_eq!(
            Listen::parse("unix:/tmp/b.sock").unwrap(),
            Listen::Unix(PathBuf::from("/tmp/b.sock"))
        );
        for bad in ["", "tcp:", "unix:", "udp:1.2.3.4:5"] {
            let err = Listen::parse(bad).unwrap_err();
            assert_eq!(err.stage(), "serve", "spec {bad:?}");
        }
    }
}
