//! The staged compiler driver: explicit pipeline stages with typed
//! inter-stage artifacts.
//!
//! The pipeline of the paper (OCTOPI → TCR → mapping → SURF) runs as four
//! stages, each consuming the previous stage's artifact:
//!
//! ```text
//!  frontend ──▶ CompiledWorkload     parse + validate + fingerprint
//!  lower    ──▶ LoweredVersions      OCTOPI versions × TCR spaces
//!  space    ──▶ SearchSpace          candidate pool over the joint space
//!  search   ──▶ TunedWorkload        SURF + final noiseless pick
//! ```
//!
//! A [`TunedWorkload`] can then be projected into a serializable
//! [`crate::plan::TunedPlan`] for the compile-once / serve-many workflow.
//! Each stage is independently constructible — tests can build a
//! [`LoweredVersions`] without searching, or a [`SearchSpace`] without
//! evaluating — and the stages form a DAG with no back-edges: `frontend ←
//! lower ← {space, evaluate} ← search`. The [`crate::pipeline`] module is a
//! thin facade ([`crate::pipeline::WorkloadTuner`]) over these stages that
//! preserves the original one-call API.

pub mod evaluate;
pub mod frontend;
pub mod lower;
pub mod search;
pub mod space;

pub use evaluate::TunerEvaluator;
pub use frontend::CompiledWorkload;
pub use lower::LoweredVersions;
pub use search::{SearchStats, TuneParams, TunedWorkload};
pub use space::SearchSpace;
