//! Stage 4 — evaluate: memoized simulated timing of configurations, plus
//! the deterministic measurement noise the search observes.
//!
//! [`TunerEvaluator`] times *joint* configurations and the crate-private
//! `StatementEvaluator` times one statement's *local* configurations
//! (decomposed tuning); both implement [`surf::ParallelEvaluator`] over a
//! shared [`EvalCache`] and both key their noise by configuration id, never
//! by evaluation order — which is what keeps parallel runs bit-identical to
//! serial ones. Under the whole-configuration time cache sits a per-op memo
//! layer (`statement_time_memo`) keyed by `(statement, version, op,
//! choice)`, shared between joint and decomposed tuning.

use crate::cache::{EvalCache, OpOutcome};
use crate::error::BarracudaError;
use crate::objective::Objective;
use crate::stages::lower;
use crate::variant::StatementTuner;
use crate::workload::Workload;
use gpusim::GpuArch;
use std::time::Instant;
use surf::{EvalFault, ParallelEvaluator};
use tcr::mapping::{map_kernel, map_program};
use tcr::program::ArrayKind;

/// SplitMix64 hash mapped to [-1, 1): deterministic per-configuration noise.
pub(crate) fn noise_unit(mut z: u64) -> f64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^= z >> 31;
    2.0 * ((z >> 11) as f64 / (1u64 << 53) as f64) - 1.0
}

/// FNV-1a of a string, used to salt the shared [`EvalCache`] keyspace per
/// architecture (and per statement in decomposed tuning).
pub fn salt_of(name: &str) -> u64 {
    let mut h: u64 = 0xCBF29CE484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001B3);
    }
    h
}

/// Cache key of one per-op outcome: statement, version, op and the op's
/// configuration digit, packed bit-disjoint. Joint and decomposed tuning
/// use the same keys, so they share each other's sub-results.
pub fn op_key(stmt: usize, version: usize, op: usize, choice: usize) -> u128 {
    debug_assert!(stmt < 1 << 8 && op < 1 << 8 && version < 1 << 16);
    ((choice as u128) << 32) | ((version as u128) << 16) | ((op as u128) << 8) | stmt as u128
}

/// A statement-level failure reconstructed from memoized per-op outcomes,
/// carrying the exact detail string the unmemoized pipeline produces.
pub(crate) enum StatementFault {
    Mapping { version: usize, detail: String },
    Simulation { detail: String },
}

/// Device time of one statement under `(version, per-op choices)`, with
/// each op's map + validate + time outcome memoized in `cache` under
/// `salt`. Bitwise identical to `map_program` + `validate_kernel` +
/// `time_program(..).gpu_s`: the first op that fails to map fails the
/// statement (mapping runs before any validation), then the first
/// validation failure in op order, else the kernel times are summed
/// left-to-right exactly like `ProgramTiming::gpu_s`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn statement_time_memo(
    st: &StatementTuner,
    stmt: usize,
    version: usize,
    choices: &[usize],
    accumulate: bool,
    arch: &GpuArch,
    cache: &EvalCache,
    salt: u64,
) -> Result<f64, StatementFault> {
    let variant = &st.variants[version];
    let mut sum = 0.0;
    let mut sim_fault: Option<String> = None;
    for (o, &choice) in choices.iter().enumerate() {
        let outcome = cache.op_outcome(salt, op_key(stmt, version, o, choice), || {
            let t0 = Instant::now();
            let cfg = &variant.space.per_op[o].configs[choice];
            // Only the statement writing the program output may accumulate
            // into pre-existing data (same rule as `map_program`).
            let acc = accumulate
                && variant.program.arrays[variant.program.ops[o].output].kind == ArrayKind::Output;
            match map_kernel(&variant.program, o, cfg, acc) {
                Ok(kernel) => {
                    cache.hot().add_map(t0.elapsed().as_nanos() as u64);
                    let t1 = Instant::now();
                    let out = match gpusim::validate_kernel(&kernel, arch) {
                        Ok(()) => OpOutcome::Time(gpusim::kernel_time_s(&kernel, arch)),
                        Err(detail) => OpOutcome::SimFault(detail),
                    };
                    cache.hot().add_sim(t1.elapsed().as_nanos() as u64);
                    out
                }
                Err(e) => {
                    cache.hot().add_map(t0.elapsed().as_nanos() as u64);
                    OpOutcome::MapFault(e.to_string())
                }
            }
        });
        match outcome {
            OpOutcome::Time(t) => sum += t,
            // Validation only runs once the whole statement maps, so a
            // later op's mapping failure still outranks this one.
            OpOutcome::SimFault(detail) => {
                if sim_fault.is_none() {
                    sim_fault = Some(detail);
                }
            }
            OpOutcome::MapFault(detail) => return Err(StatementFault::Mapping { version, detail }),
        }
    }
    match sim_fault {
        Some(detail) => Err(StatementFault::Simulation { detail }),
        None => Ok(sum),
    }
}

/// Device-side time of a joint configuration (no transfers — they are
/// identical across configurations), with a typed error naming the
/// statement/version/configuration when mapping fails or the simulator
/// rejects a kernel. Unmemoized; [`joint_gpu_seconds_memo`] is the hot
/// path.
pub fn joint_gpu_seconds(
    workload: &Workload,
    statements: &[StatementTuner],
    id: u128,
    arch: &GpuArch,
) -> Result<f64, BarracudaError> {
    let locals = lower::decode_joint(statements, id);
    let mut total = 0.0;
    for (k, (s, &local)) in statements.iter().zip(&locals).enumerate() {
        let (v, config) = s.decode(local);
        let variant = &s.variants[v];
        let st = &workload.statements[k];
        let kernels = map_program(&variant.program, &variant.space, &config, st.accumulate)
            .map_err(|e| BarracudaError::Mapping {
                workload: workload.name.clone(),
                statement: k,
                version: Some(v),
                config: Some(id),
                detail: e.to_string(),
            })?;
        for kernel in &kernels {
            gpusim::validate_kernel(kernel, arch).map_err(|detail| BarracudaError::Simulation {
                workload: workload.name.clone(),
                config: Some(id),
                detail,
            })?;
        }
        total += gpusim::time_program(&variant.program, &kernels, arch, false).gpu_s;
    }
    Ok(total)
}

/// [`joint_gpu_seconds`] through the per-op memo layer of `cache`: every op
/// outcome is keyed by `(statement, version, op, choice)`, so a fresh joint
/// configuration that re-combines already-seen per-op choices costs only
/// cache hits instead of a full map + validate + simulate pass. Bitwise
/// identical to the unmemoized path, including the error a faulting
/// configuration produces.
pub fn joint_gpu_seconds_memo(
    workload: &Workload,
    statements: &[StatementTuner],
    id: u128,
    arch: &GpuArch,
    cache: &EvalCache,
) -> Result<f64, BarracudaError> {
    let salt = salt_of(&arch.name);
    let t0 = Instant::now();
    let locals = lower::decode_joint(statements, id);
    cache.hot().add_decode(t0.elapsed().as_nanos() as u64);
    let mut choices: Vec<usize> = Vec::new();
    let mut total = 0.0;
    for (k, (s, &local)) in statements.iter().zip(&locals).enumerate() {
        let t0 = Instant::now();
        let (v, local_cfg) = s.decode_raw(local);
        s.variants[v].space.choices_into(local_cfg, &mut choices);
        cache.hot().add_decode(t0.elapsed().as_nanos() as u64);
        let accumulate = workload.statements[k].accumulate;
        match statement_time_memo(s, k, v, &choices, accumulate, arch, cache, salt) {
            Ok(stmt_s) => total += stmt_s,
            Err(StatementFault::Mapping { version, detail }) => {
                return Err(BarracudaError::Mapping {
                    workload: workload.name.clone(),
                    statement: k,
                    version: Some(version),
                    config: Some(id),
                    detail,
                })
            }
            Err(StatementFault::Simulation { detail }) => {
                return Err(BarracudaError::Simulation {
                    workload: workload.name.clone(),
                    config: Some(id),
                    detail,
                })
            }
        }
    }
    Ok(total)
}

/// PCIe transfer time of the workload on `arch`.
pub fn transfer_seconds(workload: &Workload, arch: &GpuArch) -> f64 {
    workload.transfer_bytes() as f64 / (arch.pcie_bw_gbs * 1e9) + 2.0 * arch.pcie_latency_us * 1e-6
}

/// Thread-safe joint-configuration evaluator: memoized simulated times and
/// features from a shared [`EvalCache`], plus the deterministic measurement
/// noise SURF observes. Implements [`surf::ParallelEvaluator`], so one
/// instance serves both the serial and the parallel search backends —
/// noise is keyed by configuration id, never by evaluation order, which is
/// what keeps parallel runs bit-identical to serial ones.
pub struct TunerEvaluator<'a> {
    workload: &'a Workload,
    statements: &'a [StatementTuner],
    arch: &'a GpuArch,
    cache: &'a EvalCache,
    salt: u64,
    eval_noise: f64,
    noise_floor_us: f64,
    noise_seed: u64,
}

impl<'a> TunerEvaluator<'a> {
    /// Builds an evaluator over explicit stage artifacts. The facade's
    /// `TunerEvaluator::new` (in `crate::pipeline`) wraps this with a
    /// `WorkloadTuner` + `TuneParams` signature.
    pub fn from_parts(
        workload: &'a Workload,
        statements: &'a [StatementTuner],
        arch: &'a GpuArch,
        cache: &'a EvalCache,
        eval_noise: f64,
        noise_floor_us: f64,
        noise_seed: u64,
    ) -> Self {
        TunerEvaluator {
            workload,
            statements,
            arch,
            cache,
            salt: salt_of(&arch.name),
            eval_noise,
            noise_floor_us,
            noise_seed,
        }
    }

    /// Noiseless memoized simulated time of a joint configuration; `NaN`
    /// when the configuration fails to map or simulate (the NaN is cached,
    /// so a failing configuration is never re-simulated).
    pub fn time(&self, id: u128) -> f64 {
        self.try_time(id).unwrap_or(f64::NAN)
    }

    /// Noiseless memoized simulated time, with typed failure. Failures are
    /// memoized as a cached `NaN` sentinel: re-asking about a quarantined
    /// configuration costs one cache hit, not a re-simulation.
    pub fn try_time(&self, id: u128) -> Result<f64, EvalFault> {
        let mut fault = None;
        let t = self.cache.time(self.salt, id, || {
            match joint_gpu_seconds_memo(self.workload, self.statements, id, self.arch, self.cache)
            {
                Ok(t) => t,
                Err(e) => {
                    fault = Some(EvalFault::new(e.stage(), e.to_string()));
                    f64::NAN
                }
            }
        });
        if let Some(f) = fault {
            return Err(f);
        }
        if !t.is_finite() || t <= 0.0 {
            return Err(EvalFault::new(
                "simulation",
                format!("non-finite or non-positive simulated time {t} for config {id}"),
            ));
        }
        Ok(t)
    }

    /// Applies the deterministic measurement noise the search observes.
    fn noisy(&self, id: u128, t: f64) -> f64 {
        // A relative component plus absolute launch/measurement jitter that
        // dominates for microsecond-scale kernels.
        let rel = self.eval_noise + self.noise_floor_us * 1e-6 / t;
        t * (1.0 + rel * noise_unit(id as u64 ^ self.noise_seed))
    }
}

impl ParallelEvaluator for TunerEvaluator<'_> {
    fn features(&self, id: u128) -> Vec<f64> {
        // Features are arch-independent; salt 0 shares them across archs.
        self.cache
            .features(0, id, || lower::joint_features(self.statements, id))
    }

    fn evaluate(&self, id: u128) -> f64 {
        match self.try_time(id) {
            Ok(t) => self.noisy(id, t),
            Err(_) => f64::NAN,
        }
    }

    fn try_evaluate(&self, id: u128) -> Result<f64, EvalFault> {
        self.try_time(id).map(|t| self.noisy(id, t))
    }
}

/// Objective-scoring adapter: wraps any [`ParallelEvaluator`] so the value
/// the search minimizes is [`Objective::score`] of the wrapped evaluator's
/// (noisy) time and the candidate's modeled memory — looked up through
/// `memory`, a pure `id -> (peak_temp_bytes, rw_bytes)` function (a
/// version-table lookup in practice, see
/// [`crate::stages::lower::version_memory_table`]).
///
/// For a time-only objective the adapter returns the wrapped time
/// untouched — same bits, and `memory` is never called — which is what
/// keeps the default pipeline bit-identical to the raw-time builds.
/// Purity: `memory` depends only on `id`, so wrapping preserves the
/// order-independence [`ParallelEvaluator`] requires.
pub(crate) struct ObjectiveEvaluator<'a, E, M> {
    pub(crate) inner: &'a E,
    pub(crate) objective: Objective,
    pub(crate) memory: M,
}

impl<E: ParallelEvaluator, M: Fn(u128) -> (u64, u64) + Sync> ParallelEvaluator
    for ObjectiveEvaluator<'_, E, M>
{
    fn features(&self, id: u128) -> Vec<f64> {
        self.inner.features(id)
    }

    fn evaluate(&self, id: u128) -> f64 {
        self.try_evaluate(id).unwrap_or(f64::NAN)
    }

    fn try_evaluate(&self, id: u128) -> Result<f64, EvalFault> {
        let t = self.inner.try_evaluate(id)?;
        if self.objective.is_time_only() {
            return Ok(t);
        }
        let (peak, rw) = (self.memory)(id);
        Ok(self.objective.score(t, peak, rw))
    }
}

/// Statement-local analog of [`TunerEvaluator`] for decomposed tuning: ids
/// are local to one statement's space, salted so several statements share
/// one cache without key collisions.
pub(crate) struct StatementEvaluator<'a> {
    pub(crate) st: &'a StatementTuner,
    /// Statement index in the workload — keys the per-op memo layer with
    /// the same `(statement, version, op, choice)` keys joint tuning uses,
    /// so the two paths share sub-results.
    pub(crate) stmt: usize,
    pub(crate) accumulate: bool,
    pub(crate) arch: &'a GpuArch,
    pub(crate) cache: &'a EvalCache,
    pub(crate) salt: u64,
    /// Per-op memo salt (per-architecture, shared with joint tuning).
    pub(crate) op_salt: u64,
    pub(crate) eval_noise: f64,
    pub(crate) noise_floor_us: f64,
    pub(crate) noise_seed: u64,
}

impl StatementEvaluator<'_> {
    pub(crate) fn time(&self, local: u128) -> f64 {
        self.try_time(local).unwrap_or(f64::NAN)
    }

    /// Statement-local analog of [`TunerEvaluator::try_time`], with the
    /// same cached-NaN memoization of failures, built on the shared per-op
    /// memo layer.
    fn try_time(&self, local: u128) -> Result<f64, EvalFault> {
        let mut fault = None;
        let t = self.cache.time(self.salt, local, || {
            let t0 = Instant::now();
            let (v, local_cfg) = self.st.decode_raw(local);
            let mut choices = Vec::new();
            self.st.variants[v]
                .space
                .choices_into(local_cfg, &mut choices);
            self.cache.hot().add_decode(t0.elapsed().as_nanos() as u64);
            match statement_time_memo(
                self.st,
                self.stmt,
                v,
                &choices,
                self.accumulate,
                self.arch,
                self.cache,
                self.op_salt,
            ) {
                Ok(t) => t,
                Err(StatementFault::Mapping { detail, .. }) => {
                    fault = Some(EvalFault::new("mapping", detail));
                    f64::NAN
                }
                Err(StatementFault::Simulation { detail }) => {
                    fault = Some(EvalFault::new("simulation", detail));
                    f64::NAN
                }
            }
        });
        if let Some(f) = fault {
            return Err(f);
        }
        if !t.is_finite() || t <= 0.0 {
            return Err(EvalFault::new(
                "simulation",
                format!("non-finite or non-positive simulated time {t} for config {local}"),
            ));
        }
        Ok(t)
    }

    fn noisy(&self, local: u128, t: f64) -> f64 {
        let rel = self.eval_noise + self.noise_floor_us * 1e-6 / t;
        t * (1.0 + rel * noise_unit(local as u64 ^ self.noise_seed))
    }
}

impl ParallelEvaluator for StatementEvaluator<'_> {
    fn features(&self, local: u128) -> Vec<f64> {
        self.cache
            .features(self.salt, local, || self.st.features(local))
    }

    fn evaluate(&self, local: u128) -> f64 {
        match self.try_time(local) {
            Ok(t) => self.noisy(local, t),
            Err(_) => f64::NAN,
        }
    }

    fn try_evaluate(&self, local: u128) -> Result<f64, EvalFault> {
        self.try_time(local).map(|t| self.noisy(local, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stages::lower::LoweredVersions;
    use tensor::index::uniform_dims;

    fn mm(n: usize) -> Workload {
        Workload::parse(
            "mm",
            "C[i k] = Sum([j], A[i j] * B[j k])",
            &uniform_dims(&["i", "j", "k"], n),
        )
        .unwrap()
    }

    #[test]
    fn evaluator_builds_from_stage_artifacts_alone() {
        // No WorkloadTuner, no TuneParams: the evaluate stage works from
        // the lowering artifact directly.
        let w = mm(8);
        let lowered = LoweredVersions::build(&w);
        let arch = gpusim::gtx980();
        let cache = EvalCache::new();
        let ev = TunerEvaluator::from_parts(&w, &lowered.statements, &arch, &cache, 0.0, 0.0, 1);
        let t = ev.try_time(0).unwrap();
        assert!(t.is_finite() && t > 0.0);
        // Memoized and bit-identical to the unmemoized path.
        assert_eq!(
            t.to_bits(),
            joint_gpu_seconds(&w, &lowered.statements, 0, &arch)
                .unwrap()
                .to_bits()
        );
        assert_eq!(ev.time(0).to_bits(), t.to_bits());
    }

    #[test]
    fn noise_is_keyed_by_id_not_order() {
        let w = mm(8);
        let lowered = LoweredVersions::build(&w);
        let arch = gpusim::gtx980();
        let cache = EvalCache::new();
        let ev = TunerEvaluator::from_parts(&w, &lowered.statements, &arch, &cache, 0.05, 2.0, 9);
        let a = ev.evaluate(3);
        let _ = ev.evaluate(1);
        let b = ev.evaluate(3);
        assert_eq!(a.to_bits(), b.to_bits());
        assert_ne!(a.to_bits(), ev.time(3).to_bits(), "noise actually applied");
    }

    #[test]
    fn op_keys_are_bit_disjoint() {
        let a = op_key(1, 2, 3, 4);
        let b = op_key(1, 2, 3, 5);
        let c = op_key(2, 2, 3, 4);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a & 0xFF, 1);
    }
}
