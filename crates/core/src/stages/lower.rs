//! Stage 2 — lower: enumerate OCTOPI versions, lower each to TCR, build
//! per-statement search spaces, and join them into one flat id space.
//!
//! The artifact is [`LoweredVersions`]: one [`StatementTuner`] per workload
//! statement. The joint configuration space is the mixed-radix product of
//! the per-statement spaces; the free functions here ([`total_space`],
//! [`decode_joint`], [`encode_joint`], [`joint_features`], [`joint_flops`],
//! [`map_joint`]) operate on any `&[StatementTuner]` slice so the facade,
//! the evaluators and the search stage all share one implementation.

use crate::error::BarracudaError;
use crate::quarantine::QuarantineReport;
use crate::stages::frontend::CompiledWorkload;
use crate::variant::StatementTuner;
use crate::workload::Workload;
use tcr::mapping::{map_programs, MapJob, MappedKernel};

/// The lowering artifact: every statement's versions × configurations.
#[derive(Clone, Debug)]
pub struct LoweredVersions {
    pub statements: Vec<StatementTuner>,
}

impl LoweredVersions {
    /// Enumerates, lowers and space-builds every statement of `workload`.
    /// Statements are independent, so each is built on the rayon pool
    /// (order-preserving: offsets and ids match the serial construction).
    pub fn build(workload: &Workload) -> LoweredVersions {
        let idx: Vec<usize> = (0..workload.statements.len()).collect();
        let statements = rayon::par_map_slice(&idx, |&i| {
            StatementTuner::build(
                &format!("{}_{}", workload.name, i),
                &workload.statements[i],
                &workload.dims,
            )
        });
        LoweredVersions { statements }
    }

    /// [`LoweredVersions::build`] from the frontend artifact.
    pub fn from_compiled(compiled: &CompiledWorkload) -> LoweredVersions {
        Self::build(&compiled.workload)
    }

    /// Prunes every statement's space in place (§VIII future work; see
    /// `tcr::prune`).
    pub fn prune(&mut self, rules: &tcr::PruneRules) {
        for st in &mut self.statements {
            st.prune(rules);
        }
    }

    /// Total joint configurations (product of per-statement spaces).
    pub fn total_space(&self) -> u128 {
        total_space(&self.statements)
    }

    /// Quarantine report of this stage: every version whose lowering
    /// failed, per statement.
    pub fn quarantine(&self) -> QuarantineReport {
        build_quarantine(&self.statements)
    }
}

/// Total joint configurations (product of per-statement spaces).
pub fn total_space(statements: &[StatementTuner]) -> u128 {
    statements
        .iter()
        .map(|s| s.total())
        .fold(1u128, |a, b| a.saturating_mul(b))
}

/// Decodes a joint id into per-statement local ids.
pub fn decode_joint(statements: &[StatementTuner], mut id: u128) -> Vec<u128> {
    let mut locals = vec![0u128; statements.len()];
    for (k, s) in statements.iter().enumerate().rev() {
        let radix = s.total();
        locals[k] = id % radix;
        id /= radix;
    }
    locals
}

/// Inverse of [`decode_joint`]: re-encodes per-statement local ids into one
/// joint id.
pub fn encode_joint(statements: &[StatementTuner], locals: &[u128]) -> u128 {
    let mut id = 0u128;
    for (st, &local) in statements.iter().zip(locals) {
        id = id * st.total() + local;
    }
    id
}

/// Names of every binarized feature column of [`joint_features`].
pub fn binarized_feature_names(statements: &[StatementTuner]) -> Vec<String> {
    let mut out = Vec::new();
    for (k, st) in statements.iter().enumerate() {
        out.extend(
            st.binarized_feature_names()
                .into_iter()
                .map(|n| format!("s{k}.{n}")),
        );
    }
    out
}

/// Binarized features of a joint id: concatenation across statements.
pub fn joint_features(statements: &[StatementTuner], id: u128) -> Vec<f64> {
    let locals = decode_joint(statements, id);
    let mut out = Vec::new();
    for (s, &local) in statements.iter().zip(&locals) {
        out.extend(s.features(local));
    }
    out
}

/// Flops of the versions selected by a joint id.
pub fn joint_flops(statements: &[StatementTuner], id: u128) -> u64 {
    let locals = decode_joint(statements, id);
    statements
        .iter()
        .zip(&locals)
        .map(|(s, &local)| {
            let (v, _) = s.decode(local);
            s.variants[v].program.flops()
        })
        .sum()
}

/// Quarantine report of the build stage: every version whose lowering
/// failed, per statement.
pub fn build_quarantine(statements: &[StatementTuner]) -> QuarantineReport {
    let mut q = QuarantineReport::new();
    for (k, st) in statements.iter().enumerate() {
        for (v, reason) in &st.quarantined_versions {
            q.record_version(k, *v, reason.clone());
        }
    }
    q
}

/// Maps every statement under the joint id (statements map in parallel on
/// the rayon pool); fails with full context when any statement's
/// configuration cannot be applied to its loop nest.
pub fn map_joint(
    workload: &Workload,
    statements: &[StatementTuner],
    id: u128,
) -> Result<Vec<Vec<MappedKernel>>, BarracudaError> {
    let locals = decode_joint(statements, id);
    let jobs: Vec<MapJob<'_>> = statements
        .iter()
        .zip(&locals)
        .zip(&workload.statements)
        .map(|((s, &local), st)| {
            let (v, config) = s.decode(local);
            let variant = &s.variants[v];
            MapJob {
                program: &variant.program,
                space: &variant.space,
                config,
                accumulate_output: st.accumulate,
            }
        })
        .collect();
    map_programs(&jobs)
        .into_iter()
        .enumerate()
        .map(|(k, r)| {
            r.map_err(|e| BarracudaError::Mapping {
                workload: workload.name.clone(),
                statement: k,
                version: Some(statements[k].decode(locals[k]).0),
                config: Some(id),
                detail: e.to_string(),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::index::uniform_dims;

    fn lowered_pair() -> (Workload, LoweredVersions) {
        let w = Workload::parse(
            "pair",
            "T[i l] = Sum([j], A[i j] * B[j l])\nC[i k] = Sum([l], T[i l] * D[l k])",
            &uniform_dims(&["i", "j", "k", "l"], 6),
        )
        .unwrap();
        let lowered = LoweredVersions::build(&w);
        (w, lowered)
    }

    #[test]
    fn builds_in_isolation_without_searching() {
        let (_, lowered) = lowered_pair();
        assert_eq!(lowered.statements.len(), 2);
        assert!(lowered.total_space() > 0);
        assert_eq!(lowered.quarantine().versions(), 0);
    }

    #[test]
    fn joint_ids_roundtrip_through_decode_encode() {
        let (_, lowered) = lowered_pair();
        let total = lowered.total_space();
        for frac in [0u128, 1, 7, 1000] {
            let id = total * frac % total;
            let locals = decode_joint(&lowered.statements, id);
            assert_eq!(encode_joint(&lowered.statements, &locals), id);
        }
    }

    #[test]
    fn joint_features_concatenate_statement_features() {
        let (_, lowered) = lowered_pair();
        let width: usize = lowered
            .statements
            .iter()
            .map(|s| s.feature_space().width())
            .sum();
        assert_eq!(joint_features(&lowered.statements, 0).len(), width);
        assert_eq!(binarized_feature_names(&lowered.statements).len(), width);
    }

    #[test]
    fn map_joint_maps_every_statement() {
        let (w, lowered) = lowered_pair();
        let kernels = map_joint(&w, &lowered.statements, 0).unwrap();
        assert_eq!(kernels.len(), 2);
        assert!(kernels.iter().all(|ks| !ks.is_empty()));
    }
}
