//! Stage 2 — lower: enumerate OCTOPI versions, lower each to TCR, build
//! per-statement search spaces, and join them into one flat id space.
//!
//! The artifact is [`LoweredVersions`]: one [`StatementTuner`] per workload
//! statement. The joint configuration space is the mixed-radix product of
//! the per-statement spaces; the free functions here ([`total_space`],
//! [`decode_joint`], [`encode_joint`], [`joint_features`], [`joint_flops`],
//! [`map_joint`]) operate on any `&[StatementTuner]` slice so the facade,
//! the evaluators and the search stage all share one implementation.

use crate::error::BarracudaError;
use crate::quarantine::QuarantineReport;
use crate::stages::frontend::CompiledWorkload;
use crate::variant::StatementTuner;
use crate::workload::Workload;
use tcr::mapping::{map_programs, MapJob, MappedKernel};
use tcr::{ArrayKind, TcrProgram};

/// The lowering artifact: every statement's versions × configurations.
#[derive(Clone, Debug)]
pub struct LoweredVersions {
    pub statements: Vec<StatementTuner>,
}

impl LoweredVersions {
    /// Enumerates, lowers and space-builds every statement of `workload`.
    /// Statements are independent, so each is built on the rayon pool
    /// (order-preserving: offsets and ids match the serial construction).
    pub fn build(workload: &Workload) -> LoweredVersions {
        let idx: Vec<usize> = (0..workload.statements.len()).collect();
        let statements = rayon::par_map_slice(&idx, |&i| {
            StatementTuner::build(
                &format!("{}_{}", workload.name, i),
                &workload.statements[i],
                &workload.dims,
            )
        });
        LoweredVersions { statements }
    }

    /// [`LoweredVersions::build`] from the frontend artifact.
    pub fn from_compiled(compiled: &CompiledWorkload) -> LoweredVersions {
        Self::build(&compiled.workload)
    }

    /// Prunes every statement's space in place (§VIII future work; see
    /// `tcr::prune`).
    pub fn prune(&mut self, rules: &tcr::PruneRules) {
        for st in &mut self.statements {
            st.prune(rules);
        }
    }

    /// Total joint configurations (product of per-statement spaces).
    pub fn total_space(&self) -> u128 {
        total_space(&self.statements)
    }

    /// Quarantine report of this stage: every version whose lowering
    /// failed, per statement.
    pub fn quarantine(&self) -> QuarantineReport {
        build_quarantine(&self.statements)
    }
}

/// Total joint configurations (product of per-statement spaces).
pub fn total_space(statements: &[StatementTuner]) -> u128 {
    statements
        .iter()
        .map(|s| s.total())
        .fold(1u128, |a, b| a.saturating_mul(b))
}

/// Decodes a joint id into per-statement local ids.
pub fn decode_joint(statements: &[StatementTuner], mut id: u128) -> Vec<u128> {
    let mut locals = vec![0u128; statements.len()];
    for (k, s) in statements.iter().enumerate().rev() {
        let radix = s.total();
        locals[k] = id % radix;
        id /= radix;
    }
    locals
}

/// Inverse of [`decode_joint`]: re-encodes per-statement local ids into one
/// joint id.
pub fn encode_joint(statements: &[StatementTuner], locals: &[u128]) -> u128 {
    let mut id = 0u128;
    for (st, &local) in statements.iter().zip(locals) {
        id = id * st.total() + local;
    }
    id
}

/// Names of every binarized feature column of [`joint_features`].
pub fn binarized_feature_names(statements: &[StatementTuner]) -> Vec<String> {
    let mut out = Vec::new();
    for (k, st) in statements.iter().enumerate() {
        out.extend(
            st.binarized_feature_names()
                .into_iter()
                .map(|n| format!("s{k}.{n}")),
        );
    }
    out
}

/// Binarized features of a joint id: concatenation across statements.
pub fn joint_features(statements: &[StatementTuner], id: u128) -> Vec<f64> {
    let locals = decode_joint(statements, id);
    let mut out = Vec::new();
    for (s, &local) in statements.iter().zip(&locals) {
        out.extend(s.features(local));
    }
    out
}

/// Flops of the versions selected by a joint id.
pub fn joint_flops(statements: &[StatementTuner], id: u128) -> u64 {
    let locals = decode_joint(statements, id);
    statements
        .iter()
        .zip(&locals)
        .map(|(s, &local)| {
            let (v, _) = s.decode(local);
            s.variants[v].program.flops()
        })
        .sum()
}

/// Peak live temporary bytes of one TCR program: the largest sum of
/// simultaneously-live `Temp` arrays (f64 elements, 8 bytes each) over the
/// program's statement sequence. A temporary is live from the op that
/// produces it through the last op that consumes it; a produced-but-never-
/// consumed temporary is live only at its producing op. `Input` and
/// `Output` arrays are excluded — they are resident for the whole program
/// regardless of factorization, so only the temporaries differentiate
/// versions.
///
/// This is what an [`crate::objective::Objective`] memory budget caps:
/// the footprint is a function of the OCTOPI version alone (loop-nest
/// configurations never change array shapes), so over-budget versions can
/// be pruned before lowering or evaluation ever touches them.
pub fn program_peak_temp_bytes(program: &TcrProgram) -> u64 {
    let mut live_at = vec![0u64; program.ops.len()];
    for (a_id, a) in program.arrays.iter().enumerate() {
        if a.kind != ArrayKind::Temp {
            continue;
        }
        let Some(birth) = program.ops.iter().position(|op| op.output == a_id) else {
            continue;
        };
        let death = program
            .ops
            .iter()
            .rposition(|op| op.inputs.contains(&a_id))
            .map_or(birth, |d| d.max(birth));
        let bytes = 8 * a.len(&program.dims) as u64;
        for slot in &mut live_at[birth..=death] {
            *slot += bytes;
        }
    }
    live_at.into_iter().max().unwrap_or(0)
}

/// Total global-memory read+write volume of one TCR program: per op, the
/// output array is written once and every input array read once (f64
/// elements, 8 bytes), summed over the statement sequence. This models
/// DRAM traffic under perfect intra-kernel reuse — the quantity omeco's
/// `rw` weight scores — and, like [`program_peak_temp_bytes`], depends on
/// the version only, never the loop-nest configuration.
pub fn program_rw_bytes(program: &TcrProgram) -> u64 {
    program
        .ops
        .iter()
        .map(|op| {
            let elems = program.arrays[op.output].len(&program.dims)
                + op.inputs
                    .iter()
                    .map(|&i| program.arrays[i].len(&program.dims))
                    .sum::<usize>();
            8 * elems as u64
        })
        .sum()
}

/// Per-statement, per-version `(peak_temp_bytes, rw_bytes)` table,
/// computed once per search so the per-candidate objective score is two
/// table lookups instead of a liveness walk.
pub fn version_memory_table(statements: &[StatementTuner]) -> Vec<Vec<(u64, u64)>> {
    statements
        .iter()
        .map(|st| {
            st.variants
                .iter()
                .map(|v| {
                    (
                        program_peak_temp_bytes(&v.program),
                        program_rw_bytes(&v.program),
                    )
                })
                .collect()
        })
        .collect()
}

/// Hot-path variant of [`joint_memory`]: combines a precomputed
/// [`version_memory_table`] instead of re-walking each program's liveness,
/// so a per-candidate lookup costs one joint decode plus table reads.
pub fn joint_memory_from_table(
    statements: &[StatementTuner],
    table: &[Vec<(u64, u64)>],
    id: u128,
) -> (u64, u64) {
    let locals = decode_joint(statements, id);
    let mut peak = 0u64;
    let mut rw = 0u64;
    for (k, (s, &local)) in statements.iter().zip(&locals).enumerate() {
        let (v, _) = s.decode_raw(local);
        let (p, r) = table[k][v];
        peak = peak.max(p);
        rw = rw.saturating_add(r);
    }
    (peak, rw)
}

/// Modeled `(peak_temp_bytes, rw_bytes)` of a joint configuration:
/// statements execute in sequence and each statement's temporaries die at
/// its end, so the joint peak is the max over statements while the traffic
/// volume sums.
pub fn joint_memory(statements: &[StatementTuner], id: u128) -> (u64, u64) {
    let locals = decode_joint(statements, id);
    let mut peak = 0u64;
    let mut rw = 0u64;
    for (s, &local) in statements.iter().zip(&locals) {
        let (v, _) = s.decode(local);
        let program = &s.variants[v].program;
        peak = peak.max(program_peak_temp_bytes(program));
        rw = rw.saturating_add(program_rw_bytes(program));
    }
    (peak, rw)
}

/// Quarantine report of the build stage: every version whose lowering
/// failed, per statement.
pub fn build_quarantine(statements: &[StatementTuner]) -> QuarantineReport {
    let mut q = QuarantineReport::new();
    for (k, st) in statements.iter().enumerate() {
        for (v, reason) in &st.quarantined_versions {
            q.record_version(k, *v, reason.clone());
        }
    }
    q
}

/// Maps every statement under the joint id (statements map in parallel on
/// the rayon pool); fails with full context when any statement's
/// configuration cannot be applied to its loop nest.
pub fn map_joint(
    workload: &Workload,
    statements: &[StatementTuner],
    id: u128,
) -> Result<Vec<Vec<MappedKernel>>, BarracudaError> {
    let locals = decode_joint(statements, id);
    let jobs: Vec<MapJob<'_>> = statements
        .iter()
        .zip(&locals)
        .zip(&workload.statements)
        .map(|((s, &local), st)| {
            let (v, config) = s.decode(local);
            let variant = &s.variants[v];
            MapJob {
                program: &variant.program,
                space: &variant.space,
                config,
                accumulate_output: st.accumulate,
            }
        })
        .collect();
    map_programs(&jobs)
        .into_iter()
        .enumerate()
        .map(|(k, r)| {
            r.map_err(|e| BarracudaError::Mapping {
                workload: workload.name.clone(),
                statement: k,
                version: Some(statements[k].decode(locals[k]).0),
                config: Some(id),
                detail: e.to_string(),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::index::uniform_dims;

    fn lowered_pair() -> (Workload, LoweredVersions) {
        let w = Workload::parse(
            "pair",
            "T[i l] = Sum([j], A[i j] * B[j l])\nC[i k] = Sum([l], T[i l] * D[l k])",
            &uniform_dims(&["i", "j", "k", "l"], 6),
        )
        .unwrap();
        let lowered = LoweredVersions::build(&w);
        (w, lowered)
    }

    #[test]
    fn builds_in_isolation_without_searching() {
        let (_, lowered) = lowered_pair();
        assert_eq!(lowered.statements.len(), 2);
        assert!(lowered.total_space() > 0);
        assert_eq!(lowered.quarantine().versions(), 0);
    }

    #[test]
    fn joint_ids_roundtrip_through_decode_encode() {
        let (_, lowered) = lowered_pair();
        let total = lowered.total_space();
        for frac in [0u128, 1, 7, 1000] {
            let id = total * frac % total;
            let locals = decode_joint(&lowered.statements, id);
            assert_eq!(encode_joint(&lowered.statements, &locals), id);
        }
    }

    #[test]
    fn joint_features_concatenate_statement_features() {
        let (_, lowered) = lowered_pair();
        let width: usize = lowered
            .statements
            .iter()
            .map(|s| s.feature_space().width())
            .sum();
        assert_eq!(joint_features(&lowered.statements, 0).len(), width);
        assert_eq!(binarized_feature_names(&lowered.statements).len(), width);
    }

    #[test]
    fn map_joint_maps_every_statement() {
        let (w, lowered) = lowered_pair();
        let kernels = map_joint(&w, &lowered.statements, 0).unwrap();
        assert_eq!(kernels.len(), 2);
        assert!(kernels.iter().all(|ks| !ks.is_empty()));
    }

    #[test]
    fn single_step_programs_have_no_temporary_footprint() {
        // Both "pair" statements are binary contractions: one step, no
        // temps — the peak must be exactly zero while traffic is not.
        let (_, lowered) = lowered_pair();
        for st in &lowered.statements {
            for v in &st.variants {
                assert_eq!(program_peak_temp_bytes(&v.program), 0);
                assert!(program_rw_bytes(&v.program) > 0);
            }
        }
    }

    #[test]
    fn multi_step_versions_carry_live_temporaries() {
        let w = Workload::parse(
            "eqn1",
            "V[i j k] = Sum([l m n], A[l k] * B[m j] * C[n i] * U[l m n])",
            &uniform_dims(&["i", "j", "k", "l", "m", "n"], 6),
        )
        .unwrap();
        let lowered = LoweredVersions::build(&w);
        let st = &lowered.statements[0];
        let peaks: Vec<u64> = st
            .variants
            .iter()
            .map(|v| program_peak_temp_bytes(&v.program))
            .collect();
        // Every eqn1 factorization chains at least two steps, so every
        // version owns at least one temporary...
        assert!(peaks.iter().all(|&p| p > 0), "{peaks:?}");
        // ...and the footprints differentiate versions (that is the whole
        // point of a memory-aware objective).
        assert!(peaks.iter().any(|&p| p != peaks[0]), "{peaks:?}");
    }

    #[test]
    fn joint_memory_is_max_peak_and_summed_traffic() {
        let (_, lowered) = lowered_pair();
        let table = version_memory_table(&lowered.statements);
        assert_eq!(table.len(), 2);
        for (st, versions) in lowered.statements.iter().zip(&table) {
            assert_eq!(st.variants.len(), versions.len());
        }
        let total = lowered.total_space();
        for id in [0u128, 1, total / 2, total - 1] {
            let (peak, rw) = joint_memory(&lowered.statements, id);
            let locals = decode_joint(&lowered.statements, id);
            let mut want_peak = 0u64;
            let mut want_rw = 0u64;
            for (k, (st, &local)) in lowered.statements.iter().zip(&locals).enumerate() {
                let (v, _) = st.decode(local);
                want_peak = want_peak.max(table[k][v].0);
                want_rw += table[k][v].1;
            }
            assert_eq!(peak, want_peak);
            assert_eq!(rw, want_rw);
        }
    }
}
