//! Stage 1 — frontend: parse and validate DSL source into a typed,
//! fingerprinted artifact.
//!
//! A [`CompiledWorkload`] is a validated [`Workload`] plus a deterministic
//! fingerprint over its canonical source and extents. The fingerprint is
//! what lets a saved [`crate::plan::TunedPlan`] prove at replay time that it
//! was tuned for *this* computation and not a stale or edited one.

use crate::error::BarracudaError;
use crate::workload::Workload;
use tensor::IndexMap;

/// The frontend artifact: a validated workload plus its fingerprint.
#[derive(Clone, Debug)]
pub struct CompiledWorkload {
    pub workload: Workload,
    /// [`workload_fingerprint`] of the workload.
    pub fingerprint: u64,
}

impl CompiledWorkload {
    /// Parses and validates DSL source (see [`Workload::parse`]).
    pub fn parse(
        name: impl Into<String>,
        src: &str,
        dims: &IndexMap,
    ) -> Result<CompiledWorkload, BarracudaError> {
        Ok(Self::from_workload(Workload::parse(name, src, dims)?))
    }

    /// Wraps an already-validated workload.
    pub fn from_workload(workload: Workload) -> CompiledWorkload {
        let fingerprint = workload_fingerprint(&workload);
        CompiledWorkload {
            workload,
            fingerprint,
        }
    }

    /// Canonical DSL text of the workload (see [`canonical_source`]).
    pub fn canonical_source(&self) -> String {
        canonical_source(&self.workload)
    }
}

/// Canonical DSL text of a workload: every statement printed by its
/// `Display` form, one per line. Parsing this text back yields an equivalent
/// workload, so it doubles as the replayable source embedded in saved plans.
pub fn canonical_source(w: &Workload) -> String {
    let lines: Vec<String> = w.statements.iter().map(|s| s.to_string()).collect();
    lines.join("\n")
}

/// Deterministic fingerprint of a workload: FNV-1a over the canonical
/// source and the extent map (ordered — `IndexMap` is a `BTreeMap`). The
/// workload *name* is deliberately excluded: renaming a workload does not
/// change what was tuned.
pub fn workload_fingerprint(w: &Workload) -> u64 {
    let mut h: u64 = 0xCBF29CE484222325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001B3);
        }
    };
    eat(canonical_source(w).as_bytes());
    for (var, extent) in &w.dims {
        eat(b"\n");
        eat(var.name().as_bytes());
        eat(b"=");
        eat(extent.to_string().as_bytes());
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::index::uniform_dims;

    fn mm(n: usize) -> CompiledWorkload {
        CompiledWorkload::parse(
            "mm",
            "C[i k] = Sum([j], A[i j] * B[j k])",
            &uniform_dims(&["i", "j", "k"], n),
        )
        .unwrap()
    }

    #[test]
    fn canonical_source_reparses_to_same_fingerprint() {
        let c = mm(8);
        let again =
            CompiledWorkload::parse("renamed", &c.canonical_source(), &c.workload.dims).unwrap();
        assert_eq!(c.fingerprint, again.fingerprint);
    }

    #[test]
    fn fingerprint_tracks_source_and_extents() {
        let a = mm(8);
        let b = mm(16); // same source, different extents
        assert_ne!(a.fingerprint, b.fingerprint);
        let c = CompiledWorkload::parse(
            "mm",
            "C[i k] = Sum([j], A[k i] * B[j k])",
            &uniform_dims(&["i", "j", "k"], 8),
        )
        .unwrap();
        assert_ne!(a.fingerprint, c.fingerprint);
    }

    #[test]
    fn fingerprint_ignores_the_name() {
        let a = mm(8);
        let b = CompiledWorkload::parse(
            "completely_different",
            "C[i k] = Sum([j], A[i j] * B[j k])",
            &uniform_dims(&["i", "j", "k"], 8),
        )
        .unwrap();
        assert_eq!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn parse_errors_pass_through_typed() {
        let err = CompiledWorkload::parse("bad", "C[i] =", &IndexMap::new()).unwrap_err();
        assert_eq!(err.stage(), "parse");
    }
}
