//! Stage 3 — space: candidate pools over the joint configuration space.
//!
//! The artifact is [`SearchSpace`]: the (possibly sampled) pool of joint
//! ids SURF searches over, together with the size of the full space it was
//! drawn from. Sampling is deterministic and *stratified*: the OCTOPI
//! version of every statement is drawn uniformly, then a configuration
//! within it — plain uniform id sampling would weight versions by their
//! space size and all but hide the small-space (often minimal-flop)
//! versions OCTOPI works hardest to expose.

use crate::stages::lower::{self, LoweredVersions};
use crate::variant::StatementTuner;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The space artifact: a deterministic candidate pool over the joint space.
#[derive(Clone, Debug)]
pub struct SearchSpace {
    /// Candidate joint ids, sorted ascending (full space or sample).
    pub pool: Vec<u128>,
    /// Size of the full joint space the pool was drawn from.
    pub space_size: u128,
    /// The cap the pool was built under.
    pub cap: usize,
    /// The seed the sample was drawn with (unused when the space fits).
    pub seed: u64,
}

impl SearchSpace {
    /// Builds the pool over `statements` (see [`joint_pool`]).
    pub fn build(statements: &[StatementTuner], cap: usize, seed: u64) -> SearchSpace {
        SearchSpace {
            pool: joint_pool(statements, cap, seed),
            space_size: lower::total_space(statements),
            cap,
            seed,
        }
    }

    /// [`SearchSpace::build`] from the lowering artifact.
    pub fn from_lowered(lowered: &LoweredVersions, cap: usize, seed: u64) -> SearchSpace {
        Self::build(&lowered.statements, cap, seed)
    }

    /// `true` when the pool is the full space rather than a sample.
    pub fn is_exhaustive(&self) -> bool {
        self.pool.len() as u128 == self.space_size
    }
}

/// Configuration pool: the full space when it fits under `cap`, else a
/// deterministic stratified sample of `cap` distinct ids.
pub fn joint_pool(statements: &[StatementTuner], cap: usize, seed: u64) -> Vec<u128> {
    let total = lower::total_space(statements);
    if total <= cap as u128 {
        return (0..total).collect();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut set = std::collections::BTreeSet::new();
    let mut guard = 0usize;
    while set.len() < cap && guard < cap * 20 {
        guard += 1;
        // Per statement: uniform version, then uniform config inside it.
        let mut id = 0u128;
        for st in statements {
            let v = rng.gen_range(0..st.variants.len());
            let local = st.encode(
                v,
                &st.variants[v]
                    .space
                    .config(rng.gen_range(0..st.variants[v].space.len())),
            );
            id = id * st.total() + local;
        }
        set.insert(id);
    }
    set.into_iter().collect()
}

/// Pool over one statement's own space (decomposed tuning): the full space
/// when it fits under `cap`, else a stratified sample of local ids.
pub fn statement_pool(st: &StatementTuner, cap: usize, seed: u64) -> Vec<u128> {
    let total = st.total();
    let cap = cap as u128;
    if total <= cap {
        return (0..total).collect();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut set = std::collections::BTreeSet::new();
    while (set.len() as u128) < cap {
        let v = rng.gen_range(0..st.variants.len());
        let local = st.encode(
            v,
            &st.variants[v]
                .space
                .config(rng.gen_range(0..st.variants[v].space.len())),
        );
        set.insert(local);
    }
    set.into_iter().collect()
}

/// A random neighbor of `id` for local-search baselines: re-draws one
/// statement's configuration (keeping its OCTOPI version with probability
/// ~0.7).
pub fn neighbor(statements: &[StatementTuner], id: u128, rng: &mut StdRng) -> u128 {
    let locals = lower::decode_joint(statements, id);
    let k = rng.gen_range(0..statements.len());
    let st = &statements[k];
    let (v, _) = st.decode(locals[k]);
    let new_v = if st.variants.len() > 1 && rng.gen_range(0..10) < 3 {
        rng.gen_range(0..st.variants.len())
    } else {
        v
    };
    let space_len = st.variants[new_v].space.len();
    let new_local = st.encode(
        new_v,
        &st.variants[new_v].space.config(rng.gen_range(0..space_len)),
    );
    // Re-encode the joint id.
    let mut out = 0u128;
    for (i, s) in statements.iter().enumerate() {
        let l = if i == k { new_local } else { locals[i] };
        out = out * s.total() + l;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;
    use tensor::index::uniform_dims;

    fn lowered_eqn1(n: usize) -> LoweredVersions {
        let w = Workload::parse(
            "ex",
            "V[i j k] = Sum([l m n], A[l k] * B[m j] * C[n i] * U[l m n])",
            &uniform_dims(&["i", "j", "k", "l", "m", "n"], n),
        )
        .unwrap();
        LoweredVersions::build(&w)
    }

    #[test]
    fn space_artifact_builds_in_isolation() {
        let lowered = lowered_eqn1(10);
        let space = SearchSpace::from_lowered(&lowered, 500, 1);
        assert_eq!(space.pool.len(), 500);
        assert!(!space.is_exhaustive());
        assert!(space.space_size > 500);
        // Every candidate decodes.
        for &id in space.pool.iter().take(10) {
            assert!(id < space.space_size);
        }
    }

    #[test]
    fn small_spaces_enumerate_exhaustively() {
        let w = Workload::parse(
            "mm",
            "C[i k] = Sum([j], A[i j] * B[j k])",
            &uniform_dims(&["i", "j", "k"], 8),
        )
        .unwrap();
        let lowered = LoweredVersions::build(&w);
        let total = lowered.total_space();
        assert!(total < 100_000, "matmul space stays enumerable: {total}");
        let space = SearchSpace::from_lowered(&lowered, total as usize, 1);
        assert!(space.is_exhaustive());
        assert_eq!(space.pool.len() as u128, total);
    }

    #[test]
    fn statement_pool_is_deterministic_and_within_range() {
        let lowered = lowered_eqn1(10);
        let st = &lowered.statements[0];
        let a = statement_pool(st, 200, 7);
        let b = statement_pool(st, 200, 7);
        assert_eq!(a, b);
        assert!(a.iter().all(|&l| l < st.total()));
    }
}
