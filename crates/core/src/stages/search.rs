//! Stage 5 — search: SURF over a candidate pool, final noiseless pick,
//! and the [`TunedWorkload`] result artifact.
//!
//! [`autotune_joint`] searches the whole joint space at once (the paper's
//! framing); [`autotune_decomposed`] searches each statement independently
//! (the objective is a sum over statements, so the optimum factors). Both
//! operate purely on stage artifacts — a [`Workload`] plus its lowered
//! `&[StatementTuner]` — and a shared [`EvalCache`].

use crate::cache::{EvalCache, HotPathSnapshot};
use crate::error::BarracudaError;
use crate::objective::{BudgetMode, Objective};
use crate::quarantine::QuarantineReport;
use crate::stages::evaluate::{salt_of, ObjectiveEvaluator, StatementEvaluator, TunerEvaluator};
use crate::stages::{evaluate, lower, space};
use crate::variant::StatementTuner;
use crate::workload::Workload;
use gpusim::GpuArch;
use std::collections::BTreeMap;
use std::time::Instant;
use surf::{
    surf_search_parallel, surf_search_serial, FaultPlan, FaultyEvaluator, ForestParams,
    ParallelEvaluator, SearchStatus, SurfParams, SurfResult,
};
use tcr::mapping::MappedKernel;
use tcr::space::Configuration;
use tcr::TcrProgram;
use tensor::Tensor;

/// Autotuning parameters.
#[derive(Clone, Copy, Debug)]
pub struct TuneParams {
    pub surf: SurfParams,
    /// Maximum pool presented to SURF; larger spaces are sampled.
    pub pool_cap: usize,
    /// Repetitions per empirical measurement (the paper averages 100) —
    /// only affects the modeled search time, not the deterministic result.
    pub reps: usize,
    /// Relative run-to-run measurement noise injected into the times SURF
    /// observes (seeded, deterministic). Real autotuners see a few percent;
    /// it is what makes near-flat landscapes (Eqn.(1)) hard to search —
    /// the mechanism behind the paper's longest search time (§VI-A).
    pub eval_noise: f64,
    /// Absolute timing jitter in microseconds (launch/measurement jitter).
    /// Relative to a 30 µs Eqn.(1) run this dwarfs the differences between
    /// its versions; relative to a millisecond Lg3 run it is invisible.
    pub noise_floor_us: f64,
    pub seed: u64,
    /// Evaluation parallelism: `1` evaluates serially on the calling
    /// thread; any other value fans batches out over the rayon pool (sized
    /// by `RAYON_NUM_THREADS`, default: all cores — `0` means "auto").
    /// Results are bit-identical at every setting: noise is keyed by
    /// configuration id, not by evaluation order.
    pub threads: usize,
    /// Hard cap on evaluation *attempts* (successes + quarantined) across
    /// the whole run, on top of `surf.max_evals`. Decomposed tuning spends
    /// it as one shared budget across statements. `None`: surf budget only.
    pub max_evaluations: Option<usize>,
    /// Wall-clock deadline for the search; when it expires the run stops at
    /// the next batch boundary and returns best-so-far with a
    /// [`SearchStatus::Degraded`] status.
    pub wall_deadline_s: Option<f64>,
    /// Minimum fraction of attempts that must survive quarantine; dipping
    /// below stops the search early with a degraded status. `0.0` disables.
    pub min_survivor_fraction: f64,
    /// Deterministic fault injection (tests, resilience experiments):
    /// failures are keyed by configuration id exactly like the measurement
    /// noise, so injected runs stay bit-identical serial vs parallel.
    pub fault_injection: Option<FaultPlan>,
    /// What the search minimizes: simulated time alone (the default — the
    /// paper's objective, bit-identical to the pre-objective pipeline) or
    /// a weighted time/memory/traffic score with an optional hard memory
    /// budget (see [`Objective`]). A budget in [`BudgetMode::Prune`] mode
    /// removes over-budget versions from the pool before evaluation; in
    /// either mode the final pick refuses them.
    pub objective: Objective,
}

impl TuneParams {
    /// Paper-scale settings: batch 10, generous eval budget with the
    /// model-confidence stop (flat landscapes run long, §VI-A).
    pub fn paper() -> Self {
        TuneParams {
            surf: SurfParams {
                init_evals: 50,
                batch_size: 10,
                max_evals: 1200,
                // Stop after 8 batches without a >1% record: noisy flat
                // landscapes keep producing small records and run long.
                patience: Some(8),
                min_improvement: 0.01,
                unpromising_stop: None,
                seed: 0xBA22,
                wall_deadline_s: None,
                min_survivor_fraction: 0.0,
                forest: ForestParams {
                    n_trees: 30,
                    min_samples_leaf: 2,
                    k_features: Some(48),
                    seed: 0xF0357,
                },
            },
            pool_cap: 20_000,
            reps: 100,
            eval_noise: 0.02,
            noise_floor_us: 6.0,
            seed: 0xBA22,
            threads: 0,
            max_evaluations: None,
            wall_deadline_s: None,
            min_survivor_fraction: 0.0,
            fault_injection: None,
            objective: Objective::time_only(),
        }
    }

    /// Small settings for tests and doc examples.
    pub fn quick() -> Self {
        TuneParams {
            surf: SurfParams {
                init_evals: 0,
                batch_size: 8,
                max_evals: 40,
                patience: None,
                min_improvement: 0.01,
                unpromising_stop: None,
                seed: 0xBA22,
                wall_deadline_s: None,
                min_survivor_fraction: 0.0,
                forest: ForestParams {
                    n_trees: 10,
                    min_samples_leaf: 2,
                    k_features: Some(24),
                    seed: 0xF0357,
                },
            },
            pool_cap: 2_000,
            reps: 100,
            eval_noise: 0.0,
            noise_floor_us: 0.0,
            seed: 0xBA22,
            threads: 0,
            max_evaluations: None,
            wall_deadline_s: None,
            min_survivor_fraction: 0.0,
            fault_injection: None,
            objective: Objective::time_only(),
        }
    }

    /// The SURF parameters actually handed to the search: the tuner-level
    /// budget/deadline/threshold knobs folded into `surf`.
    fn effective_surf(&self) -> SurfParams {
        let mut sp = self.surf;
        if let Some(cap) = self.max_evaluations {
            sp.max_evals = sp.max_evals.min(cap.max(1));
        }
        if self.wall_deadline_s.is_some() {
            sp.wall_deadline_s = self.wall_deadline_s;
        }
        sp.min_survivor_fraction = sp.min_survivor_fraction.max(self.min_survivor_fraction);
        sp
    }
}

/// Search bookkeeping of one autotuning run.
#[derive(Clone, Debug)]
pub struct SearchStats {
    pub n_evals: usize,
    pub batches: usize,
    /// Simulated execution time of every evaluated variant.
    pub evaluated_times: Vec<f64>,
    /// Size of the full configuration space (before pool sampling).
    pub space_size: u128,
    pub pool_size: usize,
    /// Memo-cache hits during this run (times + features combined).
    pub cache_hits: usize,
    /// Memo-cache misses during this run (= distinct computations).
    pub cache_misses: usize,
    /// Wall-clock seconds spent inside the SURF search.
    pub wall_s: f64,
    /// Threads the evaluation backend used (1 = serial).
    pub threads: usize,
    /// OCTOPI versions quarantined at build time (lowering failures).
    pub quarantined_versions: usize,
    /// Configurations quarantined during the search (mapping/simulation
    /// failures, non-finite times, injected faults).
    pub quarantined_configs: usize,
    /// Per-op outcome cache hits during this run — the memo layer under the
    /// whole-configuration cache, keyed by `(statement, version, op,
    /// choice)` so distinct joint configurations share sub-results.
    pub per_op_hits: usize,
    pub per_op_misses: usize,
    /// Whole-configuration time cache hits/misses during this run.
    pub time_hits: usize,
    pub time_misses: usize,
    /// Duplicate candidate ids pruned from the pool before the search (0
    /// for the internal pools, which are built from sets; nonzero only
    /// when a caller hands SURF a pool with repeats).
    pub duplicate_candidates: usize,
    /// Pool candidates removed before the search because their modeled
    /// peak temporary footprint exceeded the objective's memory budget
    /// (0 without a budget, or under [`BudgetMode::Penalize`]).
    pub pruned_by_memory: usize,
    /// Distinct `(statement, version)` pairs whose modeled peak exceeds
    /// the objective's memory budget (0 without a budget).
    pub versions_over_budget: usize,
    /// Modeled peak live temporary bytes of the chosen configuration.
    pub peak_temp_bytes: u64,
    /// Modeled global read+write volume of the chosen configuration.
    pub rw_bytes: u64,
    /// Wall-time spent per hot-path stage (decode / map / simulate /
    /// predict) during this run.
    pub hot: HotPathSnapshot,
}

impl SearchStats {
    /// Modeled wall-clock search time the way the paper accounts it: per
    /// evaluated variant, one `nvcc` compile plus `reps` timed runs plus
    /// fixed measurement overhead.
    pub fn search_seconds(&self, arch: &GpuArch, reps: usize) -> f64 {
        self.evaluated_times
            .iter()
            .map(|t| arch.compile_seconds + reps as f64 * t + 0.1)
            .sum()
    }

    /// Modeled time to exhaustively enumerate the whole space at the same
    /// per-variant cost (the paper's "23 days" comparison for Lg3t).
    pub fn exhaustive_seconds(&self, arch: &GpuArch, reps: usize) -> f64 {
        let avg = if self.evaluated_times.is_empty() {
            0.0
        } else {
            self.evaluated_times.iter().sum::<f64>() / self.evaluated_times.len() as f64
        };
        self.space_size as f64 * (arch.compile_seconds + reps as f64 * avg + 0.1)
    }

    /// Fraction of cache lookups served without recomputation.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Fraction of per-op outcome lookups served from the memo layer. The
    /// joint space is a Cartesian product of per-op choices, so this runs
    /// far above the whole-configuration rates: a fresh joint id usually
    /// re-combines already-seen sub-configurations.
    pub fn per_op_hit_rate(&self) -> f64 {
        let total = self.per_op_hits + self.per_op_misses;
        if total == 0 {
            0.0
        } else {
            self.per_op_hits as f64 / total as f64
        }
    }

    /// Fraction of whole-configuration time lookups served memoized.
    pub fn time_hit_rate(&self) -> f64 {
        let total = self.time_hits + self.time_misses;
        if total == 0 {
            0.0
        } else {
            self.time_hits as f64 / total as f64
        }
    }
}

/// Dispatches to the serial or parallel SURF backend per
/// [`TuneParams::threads`]; both run the same driver over the same
/// evaluator (including its typed-fault path), so the choice never changes
/// the result — including which configurations get quarantined and why.
fn search_with<E: ParallelEvaluator>(
    pool: &[u128],
    evaluator: &E,
    surf_params: SurfParams,
    threads: usize,
) -> Result<SurfResult, surf::SearchError> {
    if threads == 1 {
        surf_search_serial(pool, evaluator, surf_params)
    } else {
        surf_search_parallel(pool, evaluator, surf_params)
    }
}

/// Result of autotuning one workload on one architecture.
#[derive(Clone, Debug)]
pub struct TunedWorkload {
    pub name: String,
    pub arch_name: String,
    /// Flat id of the chosen configuration.
    pub id: u128,
    /// Per statement: chosen version index + configuration.
    pub choices: Vec<(usize, Configuration)>,
    /// Per statement: the chosen version's TCR program.
    pub programs: Vec<TcrProgram>,
    /// Per statement: mapped kernels.
    pub kernels: Vec<Vec<MappedKernel>>,
    pub gpu_seconds: f64,
    pub transfer_seconds: f64,
    pub flops: u64,
    pub search: SearchStats,
    /// The objective this result was tuned under (recorded in plans, so
    /// replay can refuse a foreign-objective plan).
    pub objective: Objective,
    /// Whether the search ran to completion or stopped early (budget,
    /// deadline, survivor-fraction threshold) with best-so-far.
    pub status: SearchStatus,
    /// Every version and configuration excluded from the search, with the
    /// stage and reason it was quarantined.
    pub quarantine: QuarantineReport,
}

impl TunedWorkload {
    pub fn total_seconds(&self) -> f64 {
        self.gpu_seconds + self.transfer_seconds
    }

    /// `true` when the search stopped early instead of running to its
    /// configured budget (the result is still the best configuration seen).
    pub fn is_degraded(&self) -> bool {
        self.status.is_degraded()
    }

    /// Sustained GFlop/s including PCIe transfers.
    pub fn gflops(&self) -> f64 {
        self.flops as f64 / self.total_seconds() / 1e9
    }

    /// Device-side GFlop/s (kernels + launches only).
    pub fn gflops_device(&self) -> f64 {
        self.flops as f64 / self.gpu_seconds / 1e9
    }

    /// Time per run when the measurement loop repeats the kernels `reps`
    /// times over device-resident data (the paper averages 100 repetitions,
    /// so host transfers amortize across them).
    pub fn amortized_seconds(&self, reps: usize) -> f64 {
        self.gpu_seconds + self.transfer_seconds / reps.max(1) as f64
    }

    /// GFlop/s under `reps`-amortized transfers (the Table II metric).
    pub fn gflops_amortized(&self, reps: usize) -> f64 {
        self.flops as f64 / self.amortized_seconds(reps) / 1e9
    }

    /// Full CUDA source: every kernel plus the host launcher.
    pub fn cuda_source(&self) -> String {
        let mut s = String::new();
        for ks in &self.kernels {
            for k in ks {
                s.push_str(&tcr::codegen::cuda_kernel(k));
                s.push('\n');
            }
        }
        for ks in &self.kernels {
            s.push_str(&tcr::codegen::cuda_launcher(ks));
        }
        s
    }

    /// Executes the tuned kernels functionally (simulated GPU) over named
    /// inputs; returns the workload's external outputs. Fails when `inputs`
    /// is missing a tensor some statement consumes.
    pub fn execute(
        &self,
        workload: &Workload,
        inputs: &[(String, Tensor)],
    ) -> Result<Vec<(String, Tensor)>, BarracudaError> {
        let mut env: BTreeMap<String, Tensor> = inputs.iter().cloned().collect();
        for (sidx, st) in workload.statements.iter().enumerate() {
            let program = &self.programs[sidx];
            let input_ids = program.input_ids();
            let operands: Vec<&Tensor> = input_ids
                .iter()
                .map(|&id| {
                    let name = &program.arrays[id].name;
                    env.get(name).ok_or_else(|| BarracudaError::Validation {
                        workload: self.name.clone(),
                        statement: Some(sidx),
                        detail: format!("missing input tensor {name}"),
                    })
                })
                .collect::<Result<_, _>>()?;
            let fresh = gpusim::execute_program(program, &self.kernels[sidx], &operands);
            match env.entry(st.output.name.clone()) {
                std::collections::btree_map::Entry::Occupied(mut o) if st.accumulate => {
                    for (a, b) in o.get_mut().data_mut().iter_mut().zip(fresh.data()) {
                        *a += b;
                    }
                }
                std::collections::btree_map::Entry::Occupied(mut o) => {
                    *o.get_mut() = fresh;
                }
                std::collections::btree_map::Entry::Vacant(v) => {
                    v.insert(fresh);
                }
            }
        }
        workload
            .external_outputs()
            .into_iter()
            .map(|name| {
                let t = env
                    .remove(&name)
                    .ok_or_else(|| BarracudaError::Validation {
                        workload: self.name.clone(),
                        statement: None,
                        detail: format!("external output {name} was never computed"),
                    })?;
                Ok((name, t))
            })
            .collect()
    }
}

/// Runs SURF over the joint space against a caller-provided [`EvalCache`],
/// so repeated runs (per-architecture sweeps, benchmark repetitions,
/// decomposed + joint comparisons) never re-simulate a configuration they
/// have already seen.
///
/// Configurations that fail to map/simulate (or are failed by
/// [`TuneParams::fault_injection`]) are quarantined, not fatal: the search
/// continues over survivors and the report travels on the result. The only
/// hard errors are an empty pool and a search with no survivors at all.
pub fn autotune_joint(
    workload: &Workload,
    statements: &[StatementTuner],
    arch: &GpuArch,
    params: TuneParams,
    cache: &EvalCache,
) -> Result<TunedWorkload, BarracudaError> {
    let objective = params.objective;
    let mem_table = lower::version_memory_table(statements);
    let memory = |id: u128| lower::joint_memory_from_table(statements, &mem_table, id);
    let mut pool = space::joint_pool(statements, params.pool_cap, params.seed);
    let mut pruned_by_memory = 0usize;
    let mut versions_over_budget = 0usize;
    if let Some(budget) = objective.mem_budget {
        versions_over_budget = mem_table
            .iter()
            .flatten()
            .filter(|&&(peak, _)| peak > budget)
            .count();
        if objective.budget_mode == BudgetMode::Prune {
            let before = pool.len();
            pool.retain(|&id| memory(id).0 <= budget);
            pruned_by_memory = before - pool.len();
            if pool.is_empty() {
                return Err(BarracudaError::Search {
                    workload: workload.name.clone(),
                    detail: format!(
                        "memory budget {budget} B excludes every candidate \
                         ({versions_over_budget} over-budget versions, {pruned_by_memory} \
                         configurations pruned) — raise the budget or use penalize mode"
                    ),
                });
            }
        }
    }
    let evaluator = TunerEvaluator::from_parts(
        workload,
        statements,
        arch,
        cache,
        params.eval_noise,
        params.noise_floor_us,
        params.seed,
    );
    let scored = ObjectiveEvaluator {
        inner: &evaluator,
        objective,
        memory,
    };
    let faulty = FaultyEvaluator::new(
        &scored,
        params.fault_injection.unwrap_or_else(FaultPlan::none),
    );
    let (hits0, misses0) = cache.stats();
    let (th0, tm0) = cache.time_stats();
    let (oh0, om0) = cache.op_stats();
    let hot0 = cache.hot().snapshot();
    let result =
        search_with(&pool, &faulty, params.effective_surf(), params.threads).map_err(|e| {
            BarracudaError::Search {
                workload: workload.name.clone(),
                detail: e.to_string(),
            }
        })?;
    let (hits1, misses1) = cache.stats();
    let (th1, tm1) = cache.time_stats();
    let (oh1, om1) = cache.op_stats();
    let mut hot = cache.hot().snapshot().delta(&hot0);
    hot.predict_ns = result.predict_ns;
    // An external attempt cap that actually truncated the search is an
    // explicit degradation, not a silent completion.
    let mut status = result.status.clone();
    if let Some(cap) = params.max_evaluations {
        if !status.is_degraded() && cap < params.surf.max_evals && result.n_attempted() >= cap {
            status = SearchStatus::Degraded {
                reason: format!(
                    "evaluation budget exhausted after {} attempts (cap {cap})",
                    result.n_attempted()
                ),
            };
        }
    }

    // The search observed noisy measurements; the final pick re-measures
    // carefully: choose the best *noiseless* objective score among
    // everything the search evaluated (the paper's final numbers are
    // 100-rep averages; under the default objective the score is the raw
    // time, bit for bit). One cache hit per candidate — the search already
    // simulated them all, and each id's time is looked up exactly once.
    // First minimal wins ties, matching `min_by`; quarantined ids never
    // reach `evaluated`, the finite filter keeps even a stray NaN from
    // poisoning the pick, and a candidate over the memory budget is never
    // selected, in either budget mode.
    let mut best: Option<(u128, f64)> = None;
    for &(cand, _) in &result.evaluated {
        let t = evaluator.time(cand);
        let s = if objective.is_time_only() {
            t
        } else {
            let (peak, rw) = memory(cand);
            if objective.over_budget(peak) {
                continue;
            }
            objective.score(t, peak, rw)
        };
        let better = match best {
            None => true,
            Some((_, bs)) => s < bs,
        };
        if s.is_finite() && better {
            best = Some((cand, s));
        }
    }
    if best.is_none() && objective.mem_budget.is_some() {
        // Penalize mode lets over-budget candidates into the pool (their
        // evaluations still train the surrogate), but the pick must never
        // exceed the budget.
        return Err(BarracudaError::Search {
            workload: workload.name.clone(),
            detail: format!(
                "every surviving candidate exceeds the memory budget {} B \
                 ({versions_over_budget} over-budget versions)",
                objective.mem_budget.unwrap_or(0)
            ),
        });
    }
    let id = best.map_or(result.best_id, |(id, _)| id);
    let locals = lower::decode_joint(statements, id);
    let mut choices = Vec::new();
    let mut programs = Vec::new();
    for (s, &local) in statements.iter().zip(&locals) {
        let (v, config) = s.decode(local);
        programs.push(s.variants[v].program.clone());
        choices.push((v, config));
    }
    let kernels = lower::map_joint(workload, statements, id)?;
    let mut quarantine = lower::build_quarantine(statements);
    for (cid, reason) in &result.quarantined {
        quarantine.record_config(None, *cid, reason.clone());
    }
    // Report the noiseless model time of the chosen configuration.
    let gpu_seconds = evaluate::joint_gpu_seconds(workload, statements, id, arch)?;
    let transfer_seconds = evaluate::transfer_seconds(workload, arch);
    let flops = lower::joint_flops(statements, id);
    let (peak_temp_bytes, rw_bytes) = memory(id);
    Ok(TunedWorkload {
        name: workload.name.clone(),
        arch_name: arch.name.to_string(),
        id,
        choices,
        programs,
        kernels,
        gpu_seconds,
        transfer_seconds,
        flops,
        search: SearchStats {
            n_evals: result.n_evals(),
            batches: result.batches,
            evaluated_times: result.evaluated.iter().map(|(_, t)| *t).collect(),
            space_size: lower::total_space(statements),
            pool_size: pool.len(),
            cache_hits: hits1 - hits0,
            cache_misses: misses1 - misses0,
            wall_s: result.wall_s,
            threads: result.threads,
            quarantined_versions: quarantine.versions(),
            quarantined_configs: quarantine.configs(),
            per_op_hits: oh1 - oh0,
            per_op_misses: om1 - om0,
            time_hits: th1 - th0,
            time_misses: tm1 - tm0,
            duplicate_candidates: result.duplicates_pruned,
            pruned_by_memory,
            versions_over_budget,
            peak_temp_bytes,
            rw_bytes,
            hot,
        },
        objective,
        status,
        quarantine,
    })
}

/// Decomposed tuning: each statement is searched *independently* (the
/// joint objective is a sum over statements, so the joint optimum factors —
/// an observation the paper's joint 512,000-variant framing leaves on the
/// table). Costs the sum of the per-statement budgets instead of one budget
/// over the product space. Statements salt the cache's keyspace
/// individually, so repeated or interleaved runs reuse each other's
/// simulations.
///
/// [`TuneParams::max_evaluations`] and [`TuneParams::wall_deadline_s`] are
/// *shared* budgets: each statement's search gets what the previous
/// statements left over, and exhaustion degrades the run rather than
/// failing it.
pub fn autotune_decomposed(
    workload: &Workload,
    statements: &[StatementTuner],
    arch: &GpuArch,
    params: TuneParams,
    cache: &EvalCache,
) -> Result<TunedWorkload, BarracudaError> {
    let objective = params.objective;
    let mem_table = lower::version_memory_table(statements);
    // Distinct over-budget versions across all statements, counted once up
    // front (the joint peak is the max over statements, so a version over
    // budget in isolation is over budget in any joint configuration).
    let mut versions_over_budget = 0usize;
    if let Some(budget) = objective.mem_budget {
        versions_over_budget = mem_table
            .iter()
            .flatten()
            .filter(|&&(peak, _)| peak > budget)
            .count();
    }
    let mut pruned_by_memory = 0usize;
    let mut locals: Vec<u128> = Vec::with_capacity(statements.len());
    let mut n_evals = 0;
    let mut batches = 0;
    let mut evaluated_times = Vec::new();
    let mut wall_s = 0.0;
    let mut threads = 1;
    let mut predict_ns = 0u64;
    let mut duplicate_candidates = 0usize;
    let mut quarantine = lower::build_quarantine(statements);
    let mut status = SearchStatus::Complete;
    let mut remaining = params.max_evaluations;
    let mut attempted_total = 0usize;
    let start = Instant::now();
    let (hits0, misses0) = cache.stats();
    let (th0, tm0) = cache.time_stats();
    let (oh0, om0) = cache.op_stats();
    let hot0 = cache.hot().snapshot();
    for (k, st) in statements.iter().enumerate() {
        // Pool over this statement's own space.
        let mut pool = space::statement_pool(st, params.pool_cap, params.seed ^ k as u64);
        // Per-statement memory model. The joint peak is the max over
        // statements, so pruning one statement's over-budget versions is
        // exactly the joint-space prune restricted to this axis.
        let st_memory = |local: u128| {
            let (v, _) = st.decode_raw(local);
            mem_table[k][v]
        };
        if let Some(budget) = objective.mem_budget {
            if objective.budget_mode == BudgetMode::Prune {
                let before = pool.len();
                pool.retain(|&local| st_memory(local).0 <= budget);
                pruned_by_memory += before - pool.len();
                if pool.is_empty() {
                    return Err(BarracudaError::Search {
                        workload: workload.name.clone(),
                        detail: format!(
                            "statement {k}: memory budget {budget} B excludes every \
                             candidate ({versions_over_budget} over-budget versions) — \
                             raise the budget or use penalize mode"
                        ),
                    });
                }
            }
        }
        let evaluator = StatementEvaluator {
            st,
            stmt: k,
            accumulate: workload.statements[k].accumulate,
            arch,
            cache,
            salt: salt_of(&arch.name) ^ (k as u64 + 1),
            op_salt: salt_of(&arch.name),
            eval_noise: params.eval_noise,
            noise_floor_us: params.noise_floor_us,
            noise_seed: params.seed ^ k as u64,
        };
        let scored = ObjectiveEvaluator {
            inner: &evaluator,
            objective,
            memory: st_memory,
        };
        let faulty = FaultyEvaluator::new(
            &scored,
            params.fault_injection.unwrap_or_else(FaultPlan::none),
        );
        // This statement's share of the run-wide budget/deadline.
        let mut sp = params.effective_surf();
        if let Some(rem) = remaining {
            sp.max_evals = sp.max_evals.min(rem.max(1));
        }
        if let Some(d) = params.wall_deadline_s {
            sp.wall_deadline_s = Some((d - start.elapsed().as_secs_f64()).max(0.0));
        }
        let result = search_with(&pool, &faulty, sp, params.threads).map_err(|e| {
            BarracudaError::Search {
                workload: workload.name.clone(),
                detail: format!("statement {k}: {e}"),
            }
        })?;
        if let Some(rem) = remaining.as_mut() {
            *rem = rem.saturating_sub(result.n_attempted());
        }
        attempted_total += result.n_attempted();
        if let (SearchStatus::Complete, SearchStatus::Degraded { reason }) =
            (&status, &result.status)
        {
            status = SearchStatus::Degraded {
                reason: format!("statement {k}: {reason}"),
            };
        }
        for (cid, reason) in &result.quarantined {
            quarantine.record_config(Some(k), *cid, reason.clone());
        }
        // Final noiseless pick and the evaluated-times record in one
        // pass: each id's time is looked up exactly once (first minimal
        // wins ties, matching `min_by`). Under a memory budget an
        // over-budget candidate is recorded but never selected.
        let mut best: Option<(u128, f64)> = None;
        evaluated_times.reserve(result.evaluated.len());
        for &(cand, _) in &result.evaluated {
            let t = evaluator.time(cand);
            evaluated_times.push(t);
            let s = if objective.is_time_only() {
                t
            } else {
                let (peak, rw) = st_memory(cand);
                if objective.over_budget(peak) {
                    continue;
                }
                objective.score(t, peak, rw)
            };
            let better = match best {
                None => true,
                Some((_, bs)) => s < bs,
            };
            if s.is_finite() && better {
                best = Some((cand, s));
            }
        }
        if best.is_none() && objective.mem_budget.is_some() {
            return Err(BarracudaError::Search {
                workload: workload.name.clone(),
                detail: format!(
                    "statement {k}: every surviving candidate exceeds the memory \
                     budget {} B ({versions_over_budget} over-budget versions)",
                    objective.mem_budget.unwrap_or(0)
                ),
            });
        }
        let best = best.map_or(result.best_id, |(id, _)| id);
        n_evals += result.n_evals();
        batches += result.batches;
        wall_s += result.wall_s;
        threads = threads.max(result.threads);
        predict_ns += result.predict_ns;
        duplicate_candidates += result.duplicates_pruned;
        locals.push(best);
    }
    let (hits1, misses1) = cache.stats();
    let (th1, tm1) = cache.time_stats();
    let (oh1, om1) = cache.op_stats();
    let mut hot = cache.hot().snapshot().delta(&hot0);
    hot.predict_ns = predict_ns;
    // The shared attempt budget ran dry: an explicit degradation.
    if let Some(cap) = params.max_evaluations {
        if !status.is_degraded() && attempted_total >= cap {
            status = SearchStatus::Degraded {
                reason: format!(
                    "shared evaluation budget exhausted after {attempted_total} attempts (cap {cap})"
                ),
            };
        }
    }
    // Re-encode as a joint id and assemble the result.
    let id = lower::encode_joint(statements, &locals);
    let (peak_temp_bytes, rw_bytes) = lower::joint_memory_from_table(statements, &mem_table, id);
    let mut choices = Vec::new();
    let mut programs = Vec::new();
    for (st, &local) in statements.iter().zip(&locals) {
        let (v, config) = st.decode(local);
        programs.push(st.variants[v].program.clone());
        choices.push((v, config));
    }
    let kernels = lower::map_joint(workload, statements, id)?;
    Ok(TunedWorkload {
        name: workload.name.clone(),
        arch_name: arch.name.to_string(),
        id,
        choices,
        programs,
        kernels,
        gpu_seconds: evaluate::joint_gpu_seconds(workload, statements, id, arch)?,
        transfer_seconds: evaluate::transfer_seconds(workload, arch),
        flops: lower::joint_flops(statements, id),
        search: SearchStats {
            n_evals,
            batches,
            evaluated_times,
            space_size: lower::total_space(statements),
            pool_size: 0,
            cache_hits: hits1 - hits0,
            cache_misses: misses1 - misses0,
            wall_s,
            threads,
            quarantined_versions: quarantine.versions(),
            quarantined_configs: quarantine.configs(),
            per_op_hits: oh1 - oh0,
            per_op_misses: om1 - om0,
            time_hits: th1 - th0,
            time_misses: tm1 - tm0,
            duplicate_candidates,
            pruned_by_memory,
            versions_over_budget,
            peak_temp_bytes,
            rw_bytes,
            hot,
        },
        objective,
        status,
        quarantine,
    })
}
