//! Unified `Backend` trait and string-keyed registry over every timing
//! target the reproduction models.
//!
//! The paper compares seven execution targets: three CUDA GPUs (GTX 980,
//! K20, C2050), sequential and 4-thread OpenMP CPU baselines, and the two
//! OpenACC analogs (naive and Barracuda-optimized directives). Before this
//! module each target had its own entry point with its own calling
//! convention; the [`Backend`] trait gives them one interface — time a
//! configuration, validate it, describe yourself — and [`BackendSet`] makes
//! them addressable by stable string keys (`gtx980`, `cpu4`, `acc-opt`, …)
//! from the CLI, the bench binaries and the tests alike.
//!
//! Backends are *data*: every GPU architecture is an
//! [`gpusim::ArchDescriptor`] (the built-ins ship as embedded TOML), and a
//! set can be extended at runtime from descriptor files (`--arch-file`,
//! `--arch-dir`). A GPU backend's [`Backend::cache_salt`] is the FNV-1a
//! digest of its canonical descriptor, so plan-store addressing is
//! self-invalidating: edit a descriptor and every plan tuned against the
//! old numbers misses (or is rejected on replay with the plan exit code).
//!
//! [`tune_all_backends`] is the sweep entry point: one lowering, one shared
//! [`EvalCache`], every backend. GPU backends salt the cache's per-op
//! keyspace by architecture name (distinct rooflines must never share
//! timings) but share the arch-independent feature memo, so a three-arch
//! sweep pays feature extraction once.

use crate::cache::EvalCache;
use crate::cpu::{try_cpu_programs, workload_cpu_time};
use crate::error::BarracudaError;
use crate::openacc::{try_openacc_naive, try_openacc_optimized_parts, AccMapping};
use crate::pipeline::{TuneParams, TunedWorkload, WorkloadTuner};
use crate::stages::evaluate::salt_of;
use cpusim::model::CpuModel;
use gpusim::{ArchDescriptor, GpuArch};
use std::path::Path;
use std::sync::{Arc, OnceLock};
use tcr::TcrProgram;

/// What a backend can do, for capability-gated callers (a search loop only
/// wants searchable backends; a codegen path only CUDA emitters).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BackendCaps {
    /// The backend's time depends on the configuration id, so SURF search
    /// over the joint space is meaningful.
    pub searchable: bool,
    /// The backend can emit CUDA source for its chosen configuration.
    pub emits_cuda: bool,
    /// The backend models an accelerator (device + PCIe transfers) rather
    /// than a host CPU.
    pub accelerator: bool,
}

/// One timing target: a simulated GPU architecture, a CPU baseline, or an
/// OpenACC analog. Implementations are stateless and `Send + Sync`, so a
/// [`BackendSet`] can be shared across threads behind `Arc`s.
pub trait Backend: Send + Sync {
    /// Stable machine-readable registry key (`gtx980`, `cpu1`, `acc-opt`).
    fn key(&self) -> &str;

    /// Human-readable name (`"GTX 980"`, `"Haswell CPU, 4 threads"`).
    fn name(&self) -> String;

    /// One-line description of what the backend models.
    fn describe(&self) -> String;

    /// The GPU architecture descriptor the backend times against, when it
    /// has one (CPU baselines return `None`).
    fn arch(&self) -> Option<&GpuArch>;

    fn caps(&self) -> BackendCaps;

    /// Salt separating this backend's entries in a shared [`EvalCache`]
    /// keyspace. Backends with equal salts may share cached timings; the
    /// arch-independent feature memo (salt 0) is always shared.
    fn cache_salt(&self) -> u64;

    /// End-to-end modeled seconds (device + transfers, or CPU wall time) of
    /// configuration `id` of the tuner's workload. Backends whose time does
    /// not depend on the configuration (CPU baselines) ignore `id`.
    fn time_config(&self, tuner: &WorkloadTuner, id: u128) -> Result<f64, BarracudaError>;

    /// Checks that configuration `id` lowers and maps cleanly on this
    /// backend without timing it.
    fn validate(&self, tuner: &WorkloadTuner, id: u128) -> Result<(), BarracudaError>;
}

/// A simulated CUDA GPU: one of the paper's three architectures, or any
/// machine described by a descriptor file.
pub struct GpuBackend {
    pub arch: GpuArch,
    /// FNV-1a digest of the canonical descriptor, computed once at
    /// construction — this is the plan-store salt.
    digest: u64,
}

impl GpuBackend {
    pub fn new(arch: GpuArch) -> Self {
        let digest = ArchDescriptor::from_arch(arch.clone()).digest();
        GpuBackend { arch, digest }
    }

    /// The descriptor digest (same value as [`Backend::cache_salt`]).
    pub fn descriptor_digest(&self) -> u64 {
        self.digest
    }
}

impl Backend for GpuBackend {
    fn key(&self) -> &str {
        &self.arch.key
    }

    fn name(&self) -> String {
        self.arch.name.to_string()
    }

    fn describe(&self) -> String {
        format!(
            "simulated {} ({}, {} SMs)",
            self.arch.name, self.arch.generation, self.arch.sm_count
        )
    }

    fn arch(&self) -> Option<&GpuArch> {
        Some(&self.arch)
    }

    fn caps(&self) -> BackendCaps {
        BackendCaps {
            searchable: true,
            emits_cuda: true,
            accelerator: true,
        }
    }

    fn cache_salt(&self) -> u64 {
        self.digest
    }

    fn time_config(&self, tuner: &WorkloadTuner, id: u128) -> Result<f64, BarracudaError> {
        Ok(tuner.try_gpu_seconds(id, &self.arch)? + tuner.transfer_seconds(&self.arch))
    }

    fn validate(&self, tuner: &WorkloadTuner, id: u128) -> Result<(), BarracudaError> {
        tuner.kernels(id).map(|_| ())
    }
}

/// A modeled Haswell CPU baseline (sequential or OpenMP).
pub struct CpuBackend {
    pub threads: usize,
    model: CpuModel,
}

impl CpuBackend {
    pub fn new(threads: usize) -> Self {
        CpuBackend {
            threads,
            model: CpuModel::haswell(),
        }
    }
}

impl Backend for CpuBackend {
    fn key(&self) -> &str {
        // The registry only constructs the paper's two thread counts.
        if self.threads <= 1 {
            "cpu1"
        } else {
            "cpu4"
        }
    }

    fn name(&self) -> String {
        if self.threads <= 1 {
            "Haswell CPU, sequential".to_string()
        } else {
            format!("Haswell CPU, {} OpenMP threads", self.threads)
        }
    }

    fn describe(&self) -> String {
        format!(
            "modeled Haswell core(s), best-flop sequential lowering on {} thread(s)",
            self.threads
        )
    }

    fn arch(&self) -> Option<&GpuArch> {
        None
    }

    fn caps(&self) -> BackendCaps {
        BackendCaps {
            searchable: false,
            emits_cuda: false,
            accelerator: false,
        }
    }

    fn cache_salt(&self) -> u64 {
        salt_of(self.key())
    }

    fn time_config(&self, tuner: &WorkloadTuner, _id: u128) -> Result<f64, BarracudaError> {
        // The CPU baseline always runs the best-flop lowering; the GPU
        // configuration id does not apply. Validate the lowering, then time.
        try_cpu_programs(&tuner.workload)?;
        Ok(workload_cpu_time(&tuner.workload, &self.model, self.threads).time_s)
    }

    fn validate(&self, tuner: &WorkloadTuner, _id: u128) -> Result<(), BarracudaError> {
        try_cpu_programs(&tuner.workload).map(|_| ())
    }
}

/// An OpenACC analog (paper §VI-B), timed on a reference GPU architecture.
pub struct AccBackend {
    pub optimized: bool,
    pub arch: GpuArch,
}

impl AccBackend {
    /// Directives with no decomposition guidance (gang/vector defaults).
    pub fn naive() -> Self {
        AccBackend {
            optimized: false,
            arch: gpusim::k20(),
        }
    }

    /// Barracuda-derived decomposition directives + scalar replacement.
    pub fn optimized() -> Self {
        AccBackend {
            optimized: true,
            arch: gpusim::k20(),
        }
    }

    /// Builds the mapping this backend times: naive ignores `id`; optimized
    /// derives its directives from the configuration `id` selects.
    fn mapping(&self, tuner: &WorkloadTuner, id: u128) -> Result<AccMapping, BarracudaError> {
        if !self.optimized {
            return try_openacc_naive(&tuner.workload);
        }
        let locals = tuner.decode(id);
        let programs: Vec<TcrProgram> = tuner
            .statements
            .iter()
            .zip(&locals)
            .map(|(st, &local)| {
                let (v, _) = st.decode(local);
                st.variants[v].program.clone()
            })
            .collect();
        let kernels = tuner.kernels(id)?;
        try_openacc_optimized_parts(&tuner.workload, &programs, &kernels)
    }
}

impl Backend for AccBackend {
    fn key(&self) -> &str {
        if self.optimized {
            "acc-opt"
        } else {
            "acc-naive"
        }
    }

    fn name(&self) -> String {
        if self.optimized {
            format!("OpenACC optimized on {}", self.arch.name)
        } else {
            format!("OpenACC naive on {}", self.arch.name)
        }
    }

    fn describe(&self) -> String {
        if self.optimized {
            "OpenACC with Barracuda-derived decomposition directives + scalar replacement"
                .to_string()
        } else {
            "OpenACC with default gang/vector placement, no scalar replacement".to_string()
        }
    }

    fn arch(&self) -> Option<&GpuArch> {
        Some(&self.arch)
    }

    fn caps(&self) -> BackendCaps {
        BackendCaps {
            // Optimized-ACC time varies with the id it borrows directives
            // from, but it is a derived mapping, not a search target.
            searchable: false,
            emits_cuda: false,
            accelerator: true,
        }
    }

    fn cache_salt(&self) -> u64 {
        salt_of(self.key())
    }

    fn time_config(&self, tuner: &WorkloadTuner, id: u128) -> Result<f64, BarracudaError> {
        Ok(self
            .mapping(tuner, id)?
            .total_seconds(&tuner.workload, &self.arch))
    }

    fn validate(&self, tuner: &WorkloadTuner, id: u128) -> Result<(), BarracudaError> {
        self.mapping(tuner, id).map(|_| ())
    }
}

/// An owned, ordered set of backends addressable by string key.
///
/// Constructed once and shared (`Arc<dyn Backend>` per entry), it replaces
/// the old `registry()` free function that re-built every box and re-cloned
/// every architecture on each lookup. The default set holds the paper's
/// seven targets in presentation order: three GPU architectures, two CPU
/// baselines, two OpenACC analogs. Descriptor files extend it at runtime.
#[derive(Clone)]
pub struct BackendSet {
    backends: Vec<Arc<dyn Backend>>,
}

impl Default for BackendSet {
    fn default() -> Self {
        Self::builtin()
    }
}

impl BackendSet {
    /// The seven built-in backends (a cheap clone of a process-wide set:
    /// seven `Arc` bumps, no arch parsing or boxing).
    pub fn builtin() -> BackendSet {
        builtin_backends().clone()
    }

    /// Registers a GPU architecture as a searchable backend. Keys and
    /// names must stay unique: two rooflines sharing a name would alias
    /// each other's evaluation-cache entries.
    pub fn add_arch(&mut self, arch: GpuArch) -> Result<(), BarracudaError> {
        if self.get(&arch.key).is_some() {
            return Err(BarracudaError::Descriptor {
                path: None,
                detail: format!("duplicate backend key `{}`", arch.key),
            });
        }
        if self.backends.iter().any(|b| b.name() == arch.name) {
            return Err(BarracudaError::Descriptor {
                path: None,
                detail: format!(
                    "duplicate backend name `{}` (names salt the shared eval cache)",
                    arch.name
                ),
            });
        }
        self.backends.push(Arc::new(GpuBackend::new(arch)));
        Ok(())
    }

    /// Loads one descriptor file and registers it. Returns the new key.
    pub fn load_arch_file(&mut self, path: &Path) -> Result<String, BarracudaError> {
        let d = ArchDescriptor::load(path).map_err(|e| with_path(e, path))?;
        let key = d.key().to_string();
        self.add_arch(d.into_arch()).map_err(|e| match e {
            BarracudaError::Descriptor { detail, .. } => BarracudaError::Descriptor {
                path: Some(path.display().to_string()),
                detail,
            },
            other => other,
        })?;
        Ok(key)
    }

    /// Loads every `*.toml` in a directory (sorted by file name, so the
    /// set's order — and any key collision — is deterministic). Returns
    /// the new keys.
    pub fn load_arch_dir(&mut self, dir: &Path) -> Result<Vec<String>, BarracudaError> {
        let entries = std::fs::read_dir(dir).map_err(|e| BarracudaError::Descriptor {
            path: Some(dir.display().to_string()),
            detail: format!("cannot read descriptor directory: {e}"),
        })?;
        let mut files: Vec<_> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "toml"))
            .collect();
        files.sort();
        let mut keys = Vec::new();
        for f in files {
            keys.push(self.load_arch_file(&f)?);
        }
        Ok(keys)
    }

    /// Looks a backend up by key — no allocation, no construction.
    pub fn get(&self, key: &str) -> Option<&Arc<dyn Backend>> {
        self.backends.iter().find(|b| b.key() == key)
    }

    pub fn iter(&self) -> impl Iterator<Item = &Arc<dyn Backend>> {
        self.backends.iter()
    }

    /// Every key, in set order (stable, CLI-facing).
    pub fn keys(&self) -> Vec<&str> {
        self.backends.iter().map(|b| b.key()).collect()
    }

    pub fn len(&self) -> usize {
        self.backends.len()
    }

    pub fn is_empty(&self) -> bool {
        self.backends.is_empty()
    }
}

fn with_path(e: gpusim::DescriptorError, path: &Path) -> BarracudaError {
    BarracudaError::Descriptor {
        path: Some(path.display().to_string()),
        detail: e.to_string(),
    }
}

/// The process-wide built-in set, constructed once on first use.
pub fn builtin_backends() -> &'static BackendSet {
    static CELL: OnceLock<BackendSet> = OnceLock::new();
    CELL.get_or_init(|| {
        let mut v: Vec<Arc<dyn Backend>> = Vec::new();
        for arch in gpusim::all_architectures() {
            v.push(Arc::new(GpuBackend::new(arch)));
        }
        v.push(Arc::new(CpuBackend::new(1)));
        v.push(Arc::new(CpuBackend::new(4)));
        v.push(Arc::new(AccBackend::naive()));
        v.push(Arc::new(AccBackend::optimized()));
        BackendSet { backends: v }
    })
}

/// Keys of every built-in backend (stable, CLI-facing).
pub fn backend_keys() -> Vec<&'static str> {
    builtin_backends()
        .backends
        .iter()
        .map(|b| b.key())
        .collect()
}

/// Looks a built-in backend up by key: one `Arc` bump on hit, nothing
/// rebuilt. Callers holding a [`BackendSet`] (sessions, the daemon) should
/// resolve against it instead so runtime-loaded descriptors are visible.
pub fn backend_by_key(key: &str) -> Option<Arc<dyn Backend>> {
    builtin_backends().get(key).cloned()
}

/// One backend's row of a whole-set sweep.
pub struct BackendTuning {
    pub key: String,
    pub name: String,
    /// End-to-end modeled seconds (device + transfers, or CPU wall time).
    pub total_seconds: f64,
    /// Sustained GFlop/s at the flop count the backend executes.
    pub gflops: f64,
    /// The full search result, for backends that ran one (GPU targets).
    pub tuned: Option<TunedWorkload>,
}

/// Tunes/times the workload on every built-in backend against one shared
/// [`EvalCache`]: searchable (GPU) backends each run SURF — their per-op
/// timing entries stay disjoint by architecture name, while the
/// arch-independent feature memo is shared across all of them — and the
/// derived backends ride along: OpenACC-optimized borrows the directives of
/// the reference (K20) tuned configuration from this same sweep, so it
/// costs no extra search.
pub fn tune_all_backends(
    tuner: &WorkloadTuner,
    params: TuneParams,
    cache: &EvalCache,
) -> Result<Vec<BackendTuning>, BarracudaError> {
    tune_all_backends_with(builtin_backends(), tuner, |_, arch| {
        tuner.autotune_with_cache(arch, params, cache)
    })
}

/// [`tune_all_backends`] over an explicit [`BackendSet`] and with the
/// per-backend search step supplied by the caller: `tune_one` produces the
/// tuned result for each searchable backend (a plain search, or a
/// store-first lookup — see `crate::session::TuningSession`), and the
/// derived backends ride along exactly as in the plain sweep.
pub fn tune_all_backends_with<F>(
    set: &BackendSet,
    tuner: &WorkloadTuner,
    mut tune_one: F,
) -> Result<Vec<BackendTuning>, BarracudaError>
where
    F: FnMut(&dyn Backend, &GpuArch) -> Result<TunedWorkload, BarracudaError>,
{
    let mut rows = Vec::new();
    let mut reference: Option<TunedWorkload> = None;
    // Derived-backend flop counts depend only on the workload, not on the
    // backend: lower once per sweep, lazily, instead of re-lowering per
    // non-searchable backend.
    let mut acc_flops: Option<u64> = None;
    let mut cpu_flops: Option<u64> = None;
    for backend in set.iter() {
        if backend.caps().searchable {
            let arch = backend.arch().ok_or_else(|| BarracudaError::Search {
                workload: tuner.workload.name.clone(),
                detail: format!("searchable backend {} has no architecture", backend.key()),
            })?;
            let tuned = tune_one(backend.as_ref(), arch)?;
            if backend.key() == "k20" {
                reference = Some(tuned.clone());
            }
            rows.push(BackendTuning {
                key: backend.key().to_string(),
                name: backend.name(),
                total_seconds: tuned.total_seconds(),
                gflops: tuned.gflops(),
                tuned: Some(tuned),
            });
        } else {
            // Derived/fixed backends time the reference configuration: the
            // K20 search result when one exists in this sweep, else id 0.
            let id = reference.as_ref().map_or(0, |t| t.id);
            let total_seconds = backend.time_config(tuner, id)?;
            let flops = if backend.caps().accelerator {
                // OpenACC analogs execute the best-flop lowering.
                match acc_flops {
                    Some(f) => f,
                    None => {
                        let f = try_cpu_programs(&tuner.workload)?
                            .iter()
                            .map(|p| p.flops())
                            .sum::<u64>();
                        acc_flops = Some(f);
                        f
                    }
                }
            } else {
                *cpu_flops.get_or_insert_with(|| {
                    workload_cpu_time(&tuner.workload, &CpuModel::haswell(), 1).flops
                })
            };
            rows.push(BackendTuning {
                key: backend.key().to_string(),
                name: backend.name(),
                total_seconds,
                gflops: flops as f64 / total_seconds / 1e9,
                tuned: None,
            });
        }
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;
    use std::collections::BTreeSet;
    use tensor::index::uniform_dims;

    fn matmul(n: usize) -> Workload {
        Workload::parse(
            "mm",
            "C[i k] = Sum([j], A[i j] * B[j k])",
            &uniform_dims(&["i", "j", "k"], n),
        )
        .unwrap()
    }

    #[test]
    fn registry_keys_are_stable_and_distinct() {
        let keys = backend_keys();
        assert_eq!(
            keys,
            vec![
                "gtx980",
                "k20",
                "c2050",
                "cpu1",
                "cpu4",
                "acc-naive",
                "acc-opt"
            ]
        );
        let set: BTreeSet<_> = keys.iter().collect();
        assert_eq!(set.len(), keys.len());
        for k in keys {
            assert!(backend_by_key(k).is_some(), "lookup must find {k}");
        }
        assert!(backend_by_key("tpu").is_none());
    }

    #[test]
    fn gpu_salts_are_distinct_and_feature_salt_shared() {
        let salts: BTreeSet<u64> = builtin_backends().iter().map(|b| b.cache_salt()).collect();
        assert_eq!(salts.len(), 7, "no two backends may share a timing salt");
        assert!(!salts.contains(&0), "salt 0 is the shared feature memo");
    }

    #[test]
    fn gpu_salts_are_descriptor_digests() {
        for b in builtin_backends().iter().filter(|b| b.caps().searchable) {
            let arch = b.arch().unwrap();
            let expected = ArchDescriptor::from_arch(arch.clone()).digest();
            assert_eq!(b.cache_salt(), expected, "{}", b.key());
        }
    }

    #[test]
    fn backend_set_extends_from_a_descriptor_and_rejects_duplicates() {
        let mut set = BackendSet::builtin();
        let mut arch = gpusim::k20();
        arch.key = "k20x".to_string();
        arch.name = "Tesla K20X-ish".to_string();
        arch.sm_count = 14;
        set.add_arch(arch.clone()).unwrap();
        assert_eq!(set.len(), 8);
        let b = set.get("k20x").unwrap();
        assert!(b.caps().searchable);
        // Same numbers as k20 except sm_count → a different digest.
        assert_ne!(b.cache_salt(), set.get("k20").unwrap().cache_salt());
        // Re-adding the same key, or a fresh key with a colliding name,
        // is a typed descriptor error.
        assert!(matches!(
            set.add_arch(arch.clone()),
            Err(BarracudaError::Descriptor { .. })
        ));
        arch.key = "k20y".to_string();
        assert!(matches!(
            set.add_arch(arch),
            Err(BarracudaError::Descriptor { .. })
        ));
    }

    #[test]
    fn every_backend_times_the_tuned_configuration() {
        let w = matmul(16);
        let tuner = WorkloadTuner::build(&w);
        let tuned = tuner.autotune(&gpusim::k20(), TuneParams::quick()).unwrap();
        for b in builtin_backends().iter() {
            b.validate(&tuner, tuned.id).unwrap();
            let t = b.time_config(&tuner, tuned.id).unwrap();
            assert!(t.is_finite() && t > 0.0, "{}: {t}", b.key());
        }
    }

    #[test]
    fn gpu_backend_time_matches_direct_path() {
        let w = matmul(16);
        let tuner = WorkloadTuner::build(&w);
        let arch = gpusim::gtx980();
        let tuned = tuner.autotune(&arch, TuneParams::quick()).unwrap();
        let b = backend_by_key("gtx980").unwrap();
        let t = b.time_config(&tuner, tuned.id).unwrap();
        assert_eq!(t.to_bits(), tuned.total_seconds().to_bits());
    }

    #[test]
    fn sweep_covers_every_backend_and_shares_the_cache() {
        let w = matmul(16);
        let tuner = WorkloadTuner::build(&w);
        let cache = EvalCache::new();
        let rows = tune_all_backends(&tuner, TuneParams::quick(), &cache).unwrap();
        assert_eq!(rows.len(), 7);
        for row in &rows {
            assert!(
                row.total_seconds.is_finite() && row.total_seconds > 0.0,
                "{}",
                row.key
            );
        }
        // The paper's ordering holds on matmul: tuned K20 beats naive ACC.
        let t = |k: &str| {
            rows.iter()
                .find(|r| r.key == k)
                .map(|r| r.total_seconds)
                .unwrap()
        };
        assert!(t("k20") <= t("acc-naive"));
        assert!(t("acc-opt") <= t("acc-naive"));
        // Re-sweeping against the same cache re-simulates nothing.
        let again = tune_all_backends(&tuner, TuneParams::quick(), &cache).unwrap();
        for (a, b) in rows.iter().zip(&again) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.total_seconds.to_bits(), b.total_seconds.to_bits());
        }
        let (second_hits, second_misses) = (
            again
                .iter()
                .filter_map(|r| r.tuned.as_ref())
                .map(|t| t.search.time_hits)
                .sum::<usize>(),
            again
                .iter()
                .filter_map(|r| r.tuned.as_ref())
                .map(|t| t.search.time_misses)
                .sum::<usize>(),
        );
        assert_eq!(second_misses, 0, "second sweep must be pure cache hits");
        assert!(second_hits > 0);
    }
}
