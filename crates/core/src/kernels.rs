//! The benchmark computations of Table I.
//!
//! | Name      | Description |
//! |-----------|-------------|
//! | Eqn.(1)   | spectral-element example of Figure 2, `V = A B C U` |
//! | Lg3       | `local_grad3` from Nekbone (gradient in r/s/t) |
//! | Lg3t      | `local_grad3t` (transposed gradient, accumulating) |
//! | TCE ex    | 4-tensor example from the TCE paper [Baumgartner 2005] |
//! | S1 / D1 / D2 | NWChem CCSD(T) kernel families, 9 permutation variants each |
//!
//! The NWChem kernels are reconstructed from the structure of Hammond's
//! loop-driven `nwchem-tce-triples-kernels`: a rank-6 `triplesx` output over
//! holes `h3 h2 h1` and particles `p6 p5 p4` (trip count 16 each), with S1
//! an outer product of `t1` (rank 2) and `v2` (rank 4), D1 contracting over
//! an extra hole `h7`, and D2 over an extra particle `p7`. The nine variants
//! of each family permute which hole/particle the small operand carries —
//! exactly the axis that stresses coalescing and decomposition choices.

use crate::workload::Workload;
use tensor::index::uniform_dims;
use tensor::IndexMap;

/// Default extent for Eqn.(1) (the paper's `N = J = M = I = L = K = 10`).
pub const EQN1_N: usize = 10;
/// Nekbone polynomial order: "a problem size of 12 x 12 x 12 was used".
pub const NEK_ORDER: usize = 12;
/// Mesh elements processed per kernel launch in Lg3/Lg3t/Nekbone.
pub const NEK_ELEMENTS: usize = 512;
/// NWChem CCSD(T) tile size: "trip counts of 16 iterations in each dimension".
pub const NWCHEM_TRIP: usize = 16;
/// Extent used for the TCE example.
pub const TCE_N: usize = 10;

/// Eqn. (1): `V[i j k] = Sum([l m n], A[l k] B[m j] C[n i] U[l m n])`.
pub fn eqn1(n: usize) -> Workload {
    Workload::parse(
        "ex",
        "V[i j k] = Sum([l m n], A[l k] * B[m j] * C[n i] * U[l m n])",
        &uniform_dims(&["i", "j", "k", "l", "m", "n"], n),
    )
    .unwrap_or_else(|e| panic!("eqn1 must parse: {e}"))
}

fn nek_dims(order: usize, elements: usize) -> IndexMap {
    let mut dims = uniform_dims(&["i", "j", "k", "l"], order);
    dims.insert("e".into(), elements);
    dims
}

/// `local_grad3`: differentiate `u` in the three reference directions for
/// every element. `D` is the 1-D spectral differentiation matrix.
pub fn lg3(order: usize, elements: usize) -> Workload {
    Workload::parse(
        "lg3",
        "\
ur[e i j k] = Sum([l], D[i l] * u[e l j k])
us[e i j k] = Sum([l], D[j l] * u[e i l k])
ut[e i j k] = Sum([l], D[k l] * u[e i j l])",
        &nek_dims(order, elements),
    )
    .unwrap_or_else(|e| panic!("lg3 must parse: {e}"))
}

/// `local_grad3t`: the transposed gradient, accumulating the three
/// directional contributions into `w` (note `D` read transposed: `D[l i]`).
pub fn lg3t(order: usize, elements: usize) -> Workload {
    Workload::parse(
        "lg3t",
        "\
w[e i j k] = Sum([l], D[l i] * ur[e l j k])
w[e i j k] += Sum([l], D[l j] * us[e i l k])
w[e i j k] += Sum([l], D[l k] * ut[e i j l])",
        &nek_dims(order, elements),
    )
    .unwrap_or_else(|e| panic!("lg3t must parse: {e}"))
}

/// The TCE paper's running example:
/// `S[a b i j] = Sum([c d e f k l], A[a c i k] B[b e f l] C[d f j k] D[c d e l])`.
pub fn tce_ex(n: usize) -> Workload {
    Workload::parse(
        "tce",
        "S[a b i j] = Sum([c d e f k l], \
         A[a c i k] * B[b e f l] * C[d f j k] * D[c d e l])",
        &uniform_dims(&["a", "b", "c", "d", "e", "f", "i", "j", "k", "l"], n),
    )
    .unwrap_or_else(|e| panic!("tce_ex must parse: {e}"))
}

const HOLES: [&str; 3] = ["h1", "h2", "h3"];
const PARTICLES: [&str; 3] = ["p4", "p5", "p6"];

fn nwchem_dims(trip: usize) -> IndexMap {
    uniform_dims(&["h1", "h2", "h3", "h7", "p4", "p5", "p6", "p7"], trip)
}

/// Variant index (1..=9) → which particle/hole the small operand carries.
fn pick(
    variant: usize,
) -> (
    &'static str,
    &'static str,
    [&'static str; 2],
    [&'static str; 2],
) {
    assert!((1..=9).contains(&variant), "variant must be 1..=9");
    let p = PARTICLES[(variant - 1) / 3]; // p4, p5 or p6
    let h = HOLES[(variant - 1) % 3]; // h1, h2 or h3
                                      // The v2 operand carries the complementary holes and particles.
    let hs: Vec<&str> = HOLES.iter().rev().filter(|x| **x != h).copied().collect();
    let ps: Vec<&str> = PARTICLES
        .iter()
        .rev()
        .filter(|x| **x != p)
        .copied()
        .collect();
    (p, h, [hs[0], hs[1]], [ps[0], ps[1]])
}

/// Sign of a CCSD(T) permutation variant: odd hole permutations subtract
/// (the real `sd_t_*` kernels carry such signs; we assign `-=` to the
/// variants that move `h2`, matching the alternating pattern).
fn sign_op(variant: usize) -> &'static str {
    if (variant - 1) % 3 == 1 {
        "-="
    } else {
        "+="
    }
}

/// `sd_t_s1_<variant>`: `t3[h3 h2 h1 p6 p5 p4] ±= t1[p h] * v2[h h p p]`
/// — an outer product (no summation index), memory-bound.
pub fn nwchem_s1(variant: usize, trip: usize) -> Workload {
    let (p, h, hs, ps) = pick(variant);
    let src = format!(
        "t3[h3 h2 h1 p6 p5 p4] {} t1[{p} {h}] * v2[{} {} {} {}]",
        sign_op(variant),
        hs[0],
        hs[1],
        ps[0],
        ps[1]
    );
    Workload::parse(format!("s1_{variant}"), &src, &nwchem_dims(trip))
        .unwrap_or_else(|e| panic!("s1 must parse: {e}"))
}

/// `sd_t_d1_<variant>`: contraction over the extra hole `h7`.
pub fn nwchem_d1(variant: usize, trip: usize) -> Workload {
    let (p, h, hs, ps) = pick(variant);
    // t2 carries (h7, p4|p5|p6-complement pair, h); v2 the rest plus h7.
    let t2_ps: Vec<&str> = PARTICLES.iter().filter(|x| **x != p).copied().collect();
    let src = format!(
        "t3[h3 h2 h1 p6 p5 p4] {} Sum([h7], t2[h7 {} {} {h}] * v2[{} {} {p} h7])",
        sign_op(variant),
        t2_ps[0],
        t2_ps[1],
        hs[0],
        hs[1]
    );
    let _ = ps;
    Workload::parse(format!("d1_{variant}"), &src, &nwchem_dims(trip))
        .unwrap_or_else(|e| panic!("d1 must parse: {e}"))
}

/// `sd_t_d2_<variant>`: contraction over the extra particle `p7`.
pub fn nwchem_d2(variant: usize, trip: usize) -> Workload {
    let (p, h, hs, _ps) = pick(variant);
    let t2_ps: Vec<&str> = PARTICLES.iter().filter(|x| **x != p).copied().collect();
    let src = format!(
        "t3[h3 h2 h1 p6 p5 p4] {} Sum([p7], t2[p7 {} {} {h}] * v2[p7 {} {} {p}])",
        sign_op(variant),
        t2_ps[0],
        t2_ps[1],
        hs[0],
        hs[1]
    );
    Workload::parse(format!("d2_{variant}"), &src, &nwchem_dims(trip))
        .unwrap_or_else(|e| panic!("d2 must parse: {e}"))
}

/// All nine kernels of a family, in order.
pub fn nwchem_family(family: &str, trip: usize) -> Vec<Workload> {
    (1..=9)
        .map(|v| match family {
            "s1" => nwchem_s1(v, trip),
            "d1" => nwchem_d1(v, trip),
            "d2" => nwchem_d2(v, trip),
            other => panic!("unknown NWChem family {other}"),
        })
        .collect()
}

/// Resolve a builtin workload by its short name, at the paper's sizes:
/// `eqn1`, `lg3`, `lg3t`, `tce`, or an NWChem excitation `s1_1`..`s1_9`,
/// `d1_1`..`d1_9`, `d2_1`..`d2_9`. Returns `None` for anything else — the
/// shared vocabulary of the CLI's `builtin:` specs and the serving
/// daemon's `workload` field.
pub fn builtin(name: &str) -> Option<Workload> {
    let w = match name {
        "eqn1" => eqn1(EQN1_N),
        "lg3" => lg3(NEK_ORDER, NEK_ELEMENTS),
        "lg3t" => lg3t(NEK_ORDER, NEK_ELEMENTS),
        "tce" => tce_ex(TCE_N),
        other => {
            let (family, var) = other.split_once('_')?;
            let v: usize = var.parse().ok()?;
            if !(1..=9).contains(&v) {
                return None;
            }
            match family {
                "s1" => nwchem_s1(v, NWCHEM_TRIP),
                "d1" => nwchem_d1(v, NWCHEM_TRIP),
                "d2" => nwchem_d2(v, NWCHEM_TRIP),
                _ => return None,
            }
        }
    };
    Some(w)
}

/// The individual tensor-contraction benchmarks of Table II, at the paper's
/// sizes.
pub fn table2_benchmarks() -> Vec<Workload> {
    vec![
        eqn1(EQN1_N),
        lg3(NEK_ORDER, NEK_ELEMENTS),
        lg3t(NEK_ORDER, NEK_ELEMENTS),
        tce_ex(TCE_N),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eqn1_matches_paper_structure() {
        let w = eqn1(10);
        assert_eq!(w.statements.len(), 1);
        assert_eq!(w.statements[0].terms.len(), 4);
        assert_eq!(w.naive_flops(), 4 * 10u64.pow(6));
    }

    #[test]
    fn lg3_has_three_directional_statements() {
        let w = lg3(12, 8);
        assert_eq!(w.statements.len(), 3);
        assert_eq!(w.external_inputs(), vec!["D", "u"]);
        assert_eq!(w.external_outputs(), vec!["ur", "us", "ut"]);
        // 3 statements x 2 flops x E x p^4.
        let flops: u64 = 3 * 2 * 8 * 12u64.pow(4);
        assert_eq!(w.naive_flops(), flops);
    }

    #[test]
    fn lg3t_accumulates_into_w() {
        let w = lg3t(12, 8);
        assert_eq!(w.external_outputs(), vec!["w"]);
        assert!(!w.external_inputs().contains(&"w".to_string()));
        assert!(w.statements[1].accumulate);
        assert!(w.statements[2].accumulate);
        assert!(!w.statements[0].accumulate);
    }

    #[test]
    fn lg3_lg3t_adjoint_property() {
        // <lg3(u), (vr,vs,vt)> == <u, lg3t(vr,vs,vt)> — the defining
        // property of the transposed operator; validates the D[l i] trick.
        let order = 4;
        let elements = 2;
        let g3 = lg3(order, elements);
        let g3t = lg3t(order, elements);
        let d = tensor::Tensor::random(tensor::Shape::new([order, order]), 1);
        let u = tensor::Tensor::random(tensor::Shape::new([elements, order, order, order]), 2);
        let vr = tensor::Tensor::random(u.shape().clone(), 3);
        let vs = tensor::Tensor::random(u.shape().clone(), 4);
        let vt = tensor::Tensor::random(u.shape().clone(), 5);

        let grads = g3
            .evaluate_reference(&[("D".to_string(), d.clone()), ("u".to_string(), u.clone())])
            .unwrap();
        let lhs: f64 = grads
            .iter()
            .zip([&vr, &vs, &vt])
            .flat_map(|((_, g), v)| g.data().iter().zip(v.data()))
            .map(|(a, b)| a * b)
            .sum();

        let wt = g3t
            .evaluate_reference(&[
                ("D".to_string(), d),
                ("ur".to_string(), vr),
                ("us".to_string(), vs),
                ("ut".to_string(), vt),
            ])
            .unwrap();
        let rhs: f64 = wt[0]
            .1
            .data()
            .iter()
            .zip(u.data())
            .map(|(a, b)| a * b)
            .sum();
        assert!(
            (lhs - rhs).abs() < 1e-9 * lhs.abs().max(1.0),
            "{lhs} vs {rhs}"
        );
    }

    #[test]
    fn tce_ex_strength_reduction_is_large() {
        let w = tce_ex(10);
        let tuner = crate::variant::StatementTuner::build("tce", &w.statements[0], &w.dims);
        assert_eq!(tuner.variants.len(), 15);
        let best = tuner.variants[0].factorization.flops;
        // Naive is O(N^10); the best factorization must be orders better.
        assert!(
            w.naive_flops() / best > 1000,
            "gain {}",
            w.naive_flops() / best
        );
    }

    #[test]
    fn nwchem_s1_is_outer_product() {
        for v in 1..=9 {
            let w = nwchem_s1(v, 16);
            assert!(w.statements[0].sum_indices.is_empty());
            assert!(w.statements[0].accumulate);
            assert_eq!(w.statements[0].output.indices.len(), 6);
        }
    }

    #[test]
    fn nwchem_variants_carry_alternating_signs() {
        for family in ["s1", "d1", "d2"] {
            let ws = nwchem_family(family, 4);
            let signs: Vec<f64> = ws.iter().map(|w| w.statements[0].coefficient).collect();
            assert_eq!(signs[0], 1.0);
            assert_eq!(signs[1], -1.0, "{family}_2 subtracts");
            assert_eq!(signs[2], 1.0);
            assert_eq!(signs.iter().filter(|&&s| s == -1.0).count(), 3);
        }
    }

    #[test]
    fn nwchem_d1_d2_contract_once() {
        for v in 1..=9 {
            let d1 = nwchem_d1(v, 16);
            assert_eq!(d1.statements[0].sum_indices.len(), 1);
            assert_eq!(d1.statements[0].sum_indices[0].name(), "h7");
            let d2 = nwchem_d2(v, 16);
            assert_eq!(d2.statements[0].sum_indices[0].name(), "p7");
            // flops: 2 per point over 16^7.
            assert_eq!(d2.naive_flops(), 2 * 16u64.pow(7));
        }
    }

    #[test]
    fn nine_variants_are_distinct() {
        for family in ["s1", "d1", "d2"] {
            let ws = nwchem_family(family, 4);
            assert_eq!(ws.len(), 9);
            for a in 0..9 {
                for b in (a + 1)..9 {
                    assert_ne!(
                        ws[a].statements[0],
                        ws[b].statements[0],
                        "{family} variants {} and {} coincide",
                        a + 1,
                        b + 1
                    );
                }
            }
        }
    }

    #[test]
    fn all_nwchem_kernels_validate_small() {
        for family in ["s1", "d1", "d2"] {
            for w in nwchem_family(family, 3) {
                let inputs = w.random_inputs(1);
                let out = w.evaluate_reference(&inputs).unwrap();
                assert_eq!(out.len(), 1);
                assert_eq!(out[0].0, "t3");
            }
        }
    }
}
