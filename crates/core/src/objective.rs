//! Pluggable search objectives: what "best configuration" means.
//!
//! The paper ranks candidates by simulated device time alone, which lets
//! the tuner pick a factorization whose temporaries would never fit on a
//! real device. An [`Objective`] generalizes the ranking to a weighted
//! combination of simulated time, peak live temporary bytes and global
//! read/write volume (following omeco's `ScoreFunction`: time/space/
//! read-write weights plus a space target), with an optional hard memory
//! budget that either prunes oversized versions from the pool before
//! evaluation or penalizes them into irrelevance ([`BudgetMode`]).
//!
//! The default objective is time-only with no budget, and its score *is*
//! the raw simulated time (bit-for-bit — see [`Objective::score`]), so
//! every existing pick, timing line and stored plan is reproduced exactly.
//! Plans record the objective they were tuned under (schema v3), and
//! replay refuses a plan whose recorded objective differs from the one
//! requested — a memory-capped plan must never silently serve a time-only
//! query or vice versa.

use crate::json::Json;

/// What happens to a candidate whose modeled peak temporary footprint
/// exceeds the objective's memory budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BudgetMode {
    /// Remove over-budget versions from the pool before lowering or
    /// evaluating them (the default): they cost nothing and can never win.
    Prune,
    /// Keep over-budget candidates in the pool but add a penalty large
    /// enough that any within-budget survivor outranks them. Their
    /// evaluations still train the surrogate (useful on spaces where
    /// pruning would gut the pool), but the final pick refuses them just
    /// like [`BudgetMode::Prune`]: if nothing within budget survives, the
    /// search fails with a typed error rather than exceeding the cap.
    Penalize,
}

impl BudgetMode {
    /// Stable serialization tag (`prune` / `penalize`).
    pub fn as_str(self) -> &'static str {
        match self {
            BudgetMode::Prune => "prune",
            BudgetMode::Penalize => "penalize",
        }
    }

    /// Inverse of [`BudgetMode::as_str`].
    pub fn from_tag(tag: &str) -> Option<BudgetMode> {
        match tag {
            "prune" => Some(BudgetMode::Prune),
            "penalize" => Some(BudgetMode::Penalize),
            _ => None,
        }
    }
}

/// Additive score penalty for an over-budget candidate under
/// [`BudgetMode::Penalize`]: far larger than any real weighted score
/// (times are microseconds, footprints mebibytes), scaled by the
/// overshoot so less-oversized candidates still order sensibly.
const OVER_BUDGET_PENALTY: f64 = 1e12;

/// A search objective: the scalar the tuner minimizes.
///
/// `score = time_weight * t_us + mem_weight * peak_MiB + rw_weight * rw_MiB`
///
/// where `t_us` is the simulated device time in microseconds, `peak_MiB`
/// the peak live temporary footprint and `rw_MiB` the total global-memory
/// read+write volume of the candidate's versions (both modeled in
/// [`crate::stages::lower`]). `Copy`, like [`TuneParams`], so it threads
/// through parameter structs by value.
///
/// [`TuneParams`]: crate::pipeline::TuneParams
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Objective {
    pub time_weight: f64,
    pub mem_weight: f64,
    pub rw_weight: f64,
    /// Hard cap on modeled peak temporary bytes, when set.
    pub mem_budget: Option<u64>,
    /// How over-budget candidates are handled. Irrelevant without a
    /// budget.
    pub budget_mode: BudgetMode,
}

impl Default for Objective {
    fn default() -> Self {
        Objective::time_only()
    }
}

impl Objective {
    /// The paper's objective: simulated time, nothing else. The default.
    pub fn time_only() -> Objective {
        Objective {
            time_weight: 1.0,
            mem_weight: 0.0,
            rw_weight: 0.0,
            mem_budget: None,
            budget_mode: BudgetMode::Prune,
        }
    }

    /// Memory-first preset: footprint dominates, time breaks ties.
    pub fn memory() -> Objective {
        Objective {
            time_weight: 1.0,
            mem_weight: 8.0,
            rw_weight: 1.0,
            mem_budget: None,
            budget_mode: BudgetMode::Prune,
        }
    }

    /// Balanced preset: time leads, footprint and traffic both matter.
    pub fn balanced() -> Objective {
        Objective {
            time_weight: 1.0,
            mem_weight: 1.0,
            rw_weight: 0.25,
            mem_budget: None,
            budget_mode: BudgetMode::Prune,
        }
    }

    /// Parses a preset name (`time` / `memory` / `balanced`).
    pub fn preset(name: &str) -> Option<Objective> {
        match name {
            "time" => Some(Objective::time_only()),
            "memory" => Some(Objective::memory()),
            "balanced" => Some(Objective::balanced()),
            _ => None,
        }
    }

    /// Whether this objective ranks by raw simulated time alone: no
    /// memory or traffic weight and no budget. [`Objective::score`] is
    /// the identity on time for such objectives, which is what keeps the
    /// default pipeline bit-identical to the pre-objective builds.
    pub fn is_time_only(&self) -> bool {
        self.mem_weight == 0.0 && self.rw_weight == 0.0 && self.mem_budget.is_none()
    }

    /// Whether `peak_bytes` exceeds the budget (always `false` without
    /// one).
    pub fn over_budget(&self, peak_bytes: u64) -> bool {
        self.mem_budget.is_some_and(|b| peak_bytes > b)
    }

    /// Scores one candidate (lower = better).
    ///
    /// Time-only objectives return `time_s` unchanged — same bits, so
    /// ranking, tie-breaking and every recorded evaluation value match
    /// the historical raw-time pipeline exactly. (A bare `time_weight`
    /// rescale would not change the ranking either, so the fast path
    /// ignores it.) Weighted objectives combine microseconds with
    /// mebibytes; under [`BudgetMode::Penalize`] an over-budget candidate
    /// additionally pays `OVER_BUDGET_PENALTY` scaled by its overshoot.
    pub fn score(&self, time_s: f64, peak_bytes: u64, rw_bytes: u64) -> f64 {
        if self.is_time_only() {
            return time_s;
        }
        let mib = 1.0 / (1024.0 * 1024.0);
        let mut s = self.time_weight * time_s * 1e6
            + self.mem_weight * peak_bytes as f64 * mib
            + self.rw_weight * rw_bytes as f64 * mib;
        if let Some(budget) = self.mem_budget {
            if self.budget_mode == BudgetMode::Penalize && peak_bytes > budget {
                let overshoot = (peak_bytes - budget) as f64 / (budget.max(1)) as f64;
                s += OVER_BUDGET_PENALTY * (1.0 + overshoot);
            }
        }
        s
    }

    /// Bit-exact equality: same weights (by `f64::to_bits`), budget and
    /// mode. This is what plan replay compares — `PartialEq` would call
    /// `-0.0` and `0.0` equal and `NaN` unequal to itself.
    pub fn same_as(&self, other: &Objective) -> bool {
        self.time_weight.to_bits() == other.time_weight.to_bits()
            && self.mem_weight.to_bits() == other.mem_weight.to_bits()
            && self.rw_weight.to_bits() == other.rw_weight.to_bits()
            && self.mem_budget == other.mem_budget
            && self.budget_mode == other.budget_mode
    }

    /// Stable 64-bit digest (FNV-1a over the weight bits, budget and
    /// mode), used by the serving daemon's coalescing key: two requests
    /// merge only when they tune under the same objective.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(&self.time_weight.to_bits().to_le_bytes());
        eat(&self.mem_weight.to_bits().to_le_bytes());
        eat(&self.rw_weight.to_bits().to_le_bytes());
        match self.mem_budget {
            Some(b) => {
                eat(&[1]);
                eat(&b.to_le_bytes());
            }
            None => eat(&[0]),
        }
        eat(&[self.budget_mode as u8]);
        h
    }

    /// Human-readable form for timing lines and `plans list`:
    /// `time-only`, or e.g. `time*1+mem*8+rw*1, budget 1048576 B (prune)`.
    pub fn describe(&self) -> String {
        if self.is_time_only() {
            return "time-only".to_string();
        }
        let mut s = format!(
            "time*{}+mem*{}+rw*{}",
            self.time_weight, self.mem_weight, self.rw_weight
        );
        if let Some(b) = self.mem_budget {
            s.push_str(&format!(" budget {b} B ({})", self.budget_mode.as_str()));
        }
        s
    }

    /// The objective as a JSON object (weights round-trip bit-exactly via
    /// shortest `Display`; the budget travels as a decimal string, like
    /// every `u64` in the plan schema).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("time_weight".into(), Json::Num(self.time_weight)),
            ("mem_weight".into(), Json::Num(self.mem_weight)),
            ("rw_weight".into(), Json::Num(self.rw_weight)),
            (
                "mem_budget".into(),
                match self.mem_budget {
                    Some(b) => Json::Str(b.to_string()),
                    None => Json::Null,
                },
            ),
            (
                "budget_mode".into(),
                Json::Str(self.budget_mode.as_str().to_string()),
            ),
        ])
    }

    /// Inverse of [`Objective::to_json`].
    pub fn from_json(v: &Json) -> Result<Objective, String> {
        let weight = |key: &str| {
            v.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("objective: missing numeric field `{key}`"))
        };
        let mem_budget =
            match v.get("mem_budget") {
                None | Some(Json::Null) => None,
                Some(b) => Some(b.as_str().and_then(|s| s.parse::<u64>().ok()).ok_or_else(
                    || "objective: `mem_budget` must be a decimal u64 string".to_string(),
                )?),
            };
        let budget_mode = match v.get("budget_mode") {
            None => BudgetMode::Prune,
            Some(m) => m
                .as_str()
                .and_then(BudgetMode::from_tag)
                .ok_or_else(|| "objective: unknown `budget_mode`".to_string())?,
        };
        Ok(Objective {
            time_weight: weight("time_weight")?,
            mem_weight: weight("mem_weight")?,
            rw_weight: weight("rw_weight")?,
            mem_budget,
            budget_mode,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_time_only_and_score_is_the_identity_on_time() {
        let o = Objective::default();
        assert!(o.is_time_only());
        for t in [0.0, 1.5e-6, 3.25e-4, f64::MIN_POSITIVE, 1e300] {
            assert_eq!(o.score(t, u64::MAX, u64::MAX).to_bits(), t.to_bits());
        }
        assert!(!o.over_budget(u64::MAX));
    }

    #[test]
    fn weighted_score_combines_time_memory_and_traffic() {
        let o = Objective {
            time_weight: 1.0,
            mem_weight: 2.0,
            rw_weight: 0.5,
            mem_budget: None,
            budget_mode: BudgetMode::Prune,
        };
        let mib = 1024 * 1024;
        let s = o.score(3e-6, 4 * mib, 8 * mib);
        assert!((s - (3.0 + 8.0 + 4.0)).abs() < 1e-9, "{s}");
    }

    #[test]
    fn penalize_mode_dominates_any_within_budget_score() {
        let o = Objective {
            mem_budget: Some(1024),
            budget_mode: BudgetMode::Penalize,
            ..Objective::balanced()
        };
        let fits = o.score(1.0, 1024, 0); // one full second, within budget
        let busts = o.score(1e-9, 2048, 0); // instant, but over budget
        assert!(busts > fits);
        // More overshoot scores worse.
        assert!(o.score(1e-9, 4096, 0) > busts);
    }

    #[test]
    fn prune_mode_adds_no_penalty_to_the_score() {
        let prune = Objective {
            mem_budget: Some(1024),
            budget_mode: BudgetMode::Prune,
            ..Objective::balanced()
        };
        let capless = Objective {
            mem_budget: None,
            ..Objective::balanced()
        };
        assert_eq!(
            prune.score(1e-6, 2048, 512).to_bits(),
            capless.score(1e-6, 2048, 512).to_bits(),
            "pruning happens in the pool, not the score"
        );
        assert!(prune.over_budget(2048));
        assert!(!prune.over_budget(1024));
    }

    #[test]
    fn presets_parse_and_digest_distinctly() {
        let time = Objective::preset("time").unwrap();
        let memory = Objective::preset("memory").unwrap();
        let balanced = Objective::preset("balanced").unwrap();
        assert!(time.is_time_only());
        assert!(!memory.is_time_only());
        assert!(Objective::preset("speed").is_none());
        let digests = [time.digest(), memory.digest(), balanced.digest()];
        assert_ne!(digests[0], digests[1]);
        assert_ne!(digests[1], digests[2]);
        assert_ne!(digests[0], digests[2]);
        // Budget changes the digest too.
        let capped = Objective {
            mem_budget: Some(1 << 20),
            ..balanced
        };
        assert_ne!(capped.digest(), balanced.digest());
    }

    #[test]
    fn json_roundtrip_is_bit_lossless() {
        let objectives = [
            Objective::time_only(),
            Objective::memory(),
            Objective {
                time_weight: 0.1 + 0.2, // a value with an untidy binary tail
                mem_weight: 3.5,
                rw_weight: 1e-30,
                mem_budget: Some(u64::MAX),
                budget_mode: BudgetMode::Penalize,
            },
        ];
        for o in objectives {
            let text = o.to_json().to_string_compact();
            let back = Objective::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert!(o.same_as(&back), "{text}");
        }
    }

    #[test]
    fn same_as_compares_bits_not_values() {
        let a = Objective::time_only();
        let mut b = a;
        assert!(a.same_as(&b));
        b.mem_weight = -0.0;
        assert!(!a.same_as(&b), "-0.0 must not pass for 0.0");
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn describe_names_the_parts() {
        assert_eq!(Objective::time_only().describe(), "time-only");
        let capped = Objective {
            mem_budget: Some(2048),
            ..Objective::balanced()
        };
        let d = capped.describe();
        assert!(d.contains("mem*1"), "{d}");
        assert!(d.contains("budget 2048 B (prune)"), "{d}");
    }
}
