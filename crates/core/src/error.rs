//! Typed error taxonomy for the whole pipeline.
//!
//! Every fallible stage — parsing, validation, factorization, mapping,
//! simulation, search — reports a [`BarracudaError`] carrying enough
//! context (workload, statement, version, configuration) to act on: retry
//! with a different input, quarantine a version, or fail the run with a
//! meaningful exit code. Panics are reserved for programmer errors
//! (violated internal invariants), never for bad inputs or bad
//! configurations.

use std::fmt;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, BarracudaError>;

/// One typed failure, tagged by the pipeline stage that raised it.
#[derive(Clone, Debug, PartialEq)]
pub enum BarracudaError {
    /// The OCTOPI DSL source did not parse.
    Parse {
        workload: String,
        /// Byte offset of the failure in the source.
        offset: usize,
        message: String,
    },
    /// The parsed workload is malformed: an index with no extent, an empty
    /// statement list, an input binding that does not cover a tensor.
    Validation {
        workload: String,
        /// Statement index, when the failure is attributable to one.
        statement: Option<usize>,
        detail: String,
    },
    /// A factorization (OCTOPI version) could not be lowered to TCR.
    Factorization {
        workload: String,
        statement: usize,
        version: usize,
        detail: String,
    },
    /// A configuration could not be applied to its statement's loop nest.
    Mapping {
        workload: String,
        statement: usize,
        /// Version index within the statement, when known.
        version: Option<usize>,
        /// Flat configuration id, when the failure arose inside a search.
        config: Option<u128>,
        detail: String,
    },
    /// The simulator rejected a mapped kernel or produced a non-finite or
    /// absurd time.
    Simulation {
        workload: String,
        config: Option<u128>,
        detail: String,
    },
    /// The search itself could not produce a result (empty pool, every
    /// attempt quarantined).
    Search { workload: String, detail: String },
    /// A saved tuning plan could not be read, parsed, or applied — wrong
    /// schema version, corrupt JSON, a workload fingerprint that no longer
    /// matches the plan, or a cache salt from a foreign backend/model.
    Plan { workload: String, detail: String },
    /// The plan *store* itself failed: the directory cannot be created or
    /// scanned, an entry cannot be written or removed, or a stored file
    /// name does not decode to a valid store key. Distinct from [`Plan`]
    /// (the content of one plan) so scripts can tell a broken artifact
    /// from a broken store.
    ///
    /// [`Plan`]: BarracudaError::Plan
    Store { detail: String },
    /// The serving daemon itself failed: a malformed request line, an
    /// unresolvable workload spec, a transport that cannot bind or accept,
    /// or a coalesced wait that outlived its deadline. Distinct from the
    /// pipeline stages so clients can tell a broken request from a broken
    /// tune.
    Serve { detail: String },
    /// An architecture descriptor file could not be read, parsed, or
    /// validated, or a loaded set of descriptors is inconsistent (duplicate
    /// keys or names). Distinct from [`Plan`]/[`Store`] so scripts can tell
    /// a bad machine description from a bad artifact.
    ///
    /// [`Plan`]: BarracudaError::Plan
    /// [`Store`]: BarracudaError::Store
    Descriptor {
        /// The file involved, when the failure is attributable to one.
        path: Option<String>,
        detail: String,
    },
    /// The daemon is overloaded (every cold-search permit and queue slot
    /// is taken) or draining for shutdown: a 429-style rejection, not a
    /// failure of the request itself. Clients should back off for
    /// `retry_after_ms` (with jitter) and retry — the same request will
    /// succeed once the storm passes.
    Busy {
        detail: String,
        /// Suggested client back-off before retrying, in milliseconds.
        retry_after_ms: u64,
    },
}

impl BarracudaError {
    /// Short machine-readable stage tag (stable; used for quarantine
    /// classification and CLI messages).
    pub fn stage(&self) -> &'static str {
        match self {
            BarracudaError::Parse { .. } => "parse",
            BarracudaError::Validation { .. } => "validation",
            BarracudaError::Factorization { .. } => "factorization",
            BarracudaError::Mapping { .. } => "mapping",
            BarracudaError::Simulation { .. } => "simulation",
            BarracudaError::Search { .. } => "search",
            BarracudaError::Plan { .. } => "plan",
            BarracudaError::Store { .. } => "store",
            BarracudaError::Serve { .. } => "serve",
            BarracudaError::Descriptor { .. } => "descriptor",
            BarracudaError::Busy { .. } => "busy",
        }
    }

    /// Process exit code for the CLI: every stage fails distinctly, so
    /// scripts can tell a typo from a quarantined space. 0 = success,
    /// 1 = generic, 2 = usage; stages start at 3. Exit code 9 is reserved
    /// for `--strict` runs that completed degraded (see `bin/barracuda`).
    pub fn exit_code(&self) -> i32 {
        match self {
            BarracudaError::Parse { .. } => 3,
            BarracudaError::Validation { .. } => 4,
            BarracudaError::Factorization { .. } => 5,
            BarracudaError::Mapping { .. } => 6,
            BarracudaError::Simulation { .. } => 7,
            BarracudaError::Search { .. } => 8,
            BarracudaError::Plan { .. } => 10,
            BarracudaError::Store { .. } => 11,
            BarracudaError::Serve { .. } => 12,
            BarracudaError::Busy { .. } => 13,
            BarracudaError::Descriptor { .. } => 14,
        }
    }

    /// The workload the error belongs to.
    pub fn workload(&self) -> &str {
        match self {
            BarracudaError::Parse { workload, .. }
            | BarracudaError::Validation { workload, .. }
            | BarracudaError::Factorization { workload, .. }
            | BarracudaError::Mapping { workload, .. }
            | BarracudaError::Simulation { workload, .. }
            | BarracudaError::Search { workload, .. }
            | BarracudaError::Plan { workload, .. } => workload,
            BarracudaError::Store { .. } => "store",
            BarracudaError::Serve { .. } => "serve",
            BarracudaError::Descriptor { .. } => "descriptor",
            BarracudaError::Busy { .. } => "serve",
        }
    }
}

impl From<gpusim::DescriptorError> for BarracudaError {
    fn from(e: gpusim::DescriptorError) -> Self {
        let path = match &e {
            gpusim::DescriptorError::Io { path, .. } => Some(path.clone()),
            _ => None,
        };
        BarracudaError::Descriptor {
            path,
            detail: e.to_string(),
        }
    }
}

impl fmt::Display for BarracudaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BarracudaError::Parse {
                workload,
                offset,
                message,
            } => write!(f, "{workload}: parse error at byte {offset}: {message}"),
            BarracudaError::Validation {
                workload,
                statement,
                detail,
            } => match statement {
                Some(s) => write!(f, "{workload}: statement {s} is invalid: {detail}"),
                None => write!(f, "{workload}: invalid workload: {detail}"),
            },
            BarracudaError::Factorization {
                workload,
                statement,
                version,
                detail,
            } => write!(
                f,
                "{workload}: statement {statement} version {version} failed to lower: {detail}"
            ),
            BarracudaError::Mapping {
                workload,
                statement,
                version,
                config,
                detail,
            } => {
                write!(f, "{workload}: statement {statement}")?;
                if let Some(v) = version {
                    write!(f, " version {v}")?;
                }
                if let Some(c) = config {
                    write!(f, " config {c}")?;
                }
                write!(f, " failed to map: {detail}")
            }
            BarracudaError::Simulation {
                workload,
                config,
                detail,
            } => {
                write!(f, "{workload}:")?;
                if let Some(c) = config {
                    write!(f, " config {c}")?;
                }
                write!(f, " failed to simulate: {detail}")
            }
            BarracudaError::Search { workload, detail } => {
                write!(f, "{workload}: search failed: {detail}")
            }
            BarracudaError::Plan { workload, detail } => {
                write!(f, "{workload}: plan error: {detail}")
            }
            BarracudaError::Store { detail } => {
                write!(f, "plan store error: {detail}")
            }
            BarracudaError::Serve { detail } => {
                write!(f, "serve error: {detail}")
            }
            BarracudaError::Descriptor { path, detail } => match path {
                Some(p) => write!(f, "descriptor error in {p}: {detail}"),
                None => write!(f, "descriptor error: {detail}"),
            },
            BarracudaError::Busy {
                detail,
                retry_after_ms,
            } => {
                write!(f, "busy: {detail} (retry after {retry_after_ms} ms)")
            }
        }
    }
}

impl std::error::Error for BarracudaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_distinct_per_stage() {
        let errs = [
            BarracudaError::Parse {
                workload: "w".into(),
                offset: 0,
                message: "m".into(),
            },
            BarracudaError::Validation {
                workload: "w".into(),
                statement: Some(0),
                detail: "d".into(),
            },
            BarracudaError::Factorization {
                workload: "w".into(),
                statement: 0,
                version: 0,
                detail: "d".into(),
            },
            BarracudaError::Mapping {
                workload: "w".into(),
                statement: 0,
                version: None,
                config: None,
                detail: "d".into(),
            },
            BarracudaError::Simulation {
                workload: "w".into(),
                config: None,
                detail: "d".into(),
            },
            BarracudaError::Search {
                workload: "w".into(),
                detail: "d".into(),
            },
            BarracudaError::Plan {
                workload: "w".into(),
                detail: "d".into(),
            },
            BarracudaError::Store { detail: "d".into() },
            BarracudaError::Serve { detail: "d".into() },
            BarracudaError::Descriptor {
                path: None,
                detail: "d".into(),
            },
            BarracudaError::Busy {
                detail: "d".into(),
                retry_after_ms: 100,
            },
        ];
        let mut codes: Vec<i32> = errs.iter().map(|e| e.exit_code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), errs.len());
        assert!(codes.iter().all(|&c| c > 2), "0/1/2 are reserved");
    }

    #[test]
    fn display_names_the_context() {
        let e = BarracudaError::Mapping {
            workload: "lg3".into(),
            statement: 1,
            version: Some(4),
            config: Some(77),
            detail: "unroll out of range".into(),
        };
        let s = e.to_string();
        assert!(s.contains("lg3") && s.contains("statement 1"));
        assert!(s.contains("version 4") && s.contains("config 77"));
        assert_eq!(e.stage(), "mapping");
    }
}
