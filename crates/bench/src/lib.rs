//! Experiment drivers regenerating every table and figure of the paper.
//!
//! Each submodule computes one experiment's data as plain structs and knows
//! how to render it as a text table; the `src/bin/*` binaries are thin
//! wrappers. `bin/report` runs everything and emits the text that
//! EXPERIMENTS.md records.

pub mod experiments;

pub use experiments::*;
