//! Pruning study (the paper's §VIII future work): how much can the search
//! space shrink before result quality degrades?
//!
//! For each benchmark: full space vs conservative vs aggressive rules, with
//! the tuned time found by SURF at the same budget on each space.

use barracuda::pipeline::{TuneParams, WorkloadTuner};
use barracuda::report::{fmt_f, Table};
use barracuda::workload::Workload;
use tcr::PruneRules;

#[derive(Clone, Debug)]
pub struct PruningRow {
    pub workload: String,
    pub full_space: u128,
    pub conservative_space: u128,
    pub aggressive_space: u128,
    pub full_us: f64,
    pub conservative_us: f64,
    pub aggressive_us: f64,
}

pub fn run_workload(w: &Workload, arch: &gpusim::GpuArch, params: TuneParams) -> PruningRow {
    let full = WorkloadTuner::build(w);
    let cons = WorkloadTuner::build_pruned(w, &PruneRules::conservative());
    let aggr = WorkloadTuner::build_pruned(w, &PruneRules::aggressive());
    let t_full = full.autotune(arch, params).unwrap();
    let t_cons = cons.autotune(arch, params).unwrap();
    let t_aggr = aggr.autotune(arch, params).unwrap();
    PruningRow {
        workload: w.name.clone(),
        full_space: full.total_space(),
        conservative_space: cons.total_space(),
        aggressive_space: aggr.total_space(),
        full_us: t_full.gpu_seconds * 1e6,
        conservative_us: t_cons.gpu_seconds * 1e6,
        aggressive_us: t_aggr.gpu_seconds * 1e6,
    }
}

pub fn run(params: TuneParams) -> Vec<PruningRow> {
    let arch = gpusim::k20();
    vec![
        run_workload(&barracuda::kernels::eqn1(10), &arch, params),
        run_workload(
            &barracuda::kernels::lg3t(
                barracuda::kernels::NEK_ORDER,
                barracuda::kernels::NEK_ELEMENTS,
            ),
            &arch,
            params,
        ),
        run_workload(&barracuda::kernels::nwchem_d1(1, 16), &arch, params),
    ]
}

pub fn render(rows: &[PruningRow]) -> Table {
    let mut t = Table::new(
        "Pruning (paper SVIII future work): space size vs tuned time (K20)",
        &[
            "workload",
            "full space",
            "conserv.",
            "aggressive",
            "full (us)",
            "conserv. (us)",
            "aggr. (us)",
        ],
    );
    for r in rows {
        t.row(vec![
            r.workload.clone(),
            r.full_space.to_string(),
            r.conservative_space.to_string(),
            r.aggressive_space.to_string(),
            fmt_f(r.full_us),
            fmt_f(r.conservative_us),
            fmt_f(r.aggressive_us),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::smoke_params;

    #[test]
    fn pruning_preserves_quality_within_factor() {
        let w = barracuda::kernels::nwchem_d1(1, 8);
        let r = run_workload(&w, &gpusim::k20(), smoke_params());
        assert!(r.aggressive_space < r.full_space);
        assert!(r.conservative_space <= r.full_space);
        // Aggressively pruned search must stay within 2x of the full-space
        // result (usually it is *better*: denser good region).
        assert!(
            r.aggressive_us <= r.full_us * 2.0,
            "aggressive {} vs full {}",
            r.aggressive_us,
            r.full_us
        );
    }
}
