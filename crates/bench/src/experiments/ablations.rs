//! Ablations of the design choices DESIGN.md calls out: what does each
//! ingredient of the pipeline buy, measured on the simulator?
//!
//! - **strength reduction** (OCTOPI): best factorization vs the worst tree,
//! - **scalar replacement** (always-on in the paper): tuned kernels with the
//!   output register demoted back to global memory,
//! - **loop permutation**: tuned kernels with the interior order reset to
//!   the default,
//! - **unrolling**: tuned kernels with the unroll factor reset to 1,
//! - **search strategy**: SURF vs uniform random sampling at equal budget.

use barracuda::pipeline::{TuneParams, WorkloadTuner};
use barracuda::report::{fmt_f, Table};
use barracuda::workload::Workload;
use gpusim::GpuArch;
use surf::random_search;
use tcr::mapping::map_kernel;
use tcr::space::{LoopSel, OpConfig};

/// Slowdown factors relative to the fully-tuned configuration (>1 = the
/// ablated variant is slower, i.e. the feature helps).
#[derive(Clone, Debug)]
pub struct AblationResult {
    pub workload: String,
    pub arch: String,
    pub tuned_us: f64,
    pub no_strength_reduction: f64,
    pub no_scalar_replacement: f64,
    pub no_permutation: f64,
    pub no_unroll: f64,
    pub random_vs_surf: f64,
    /// Speedup from fusing the statement chain into one kernel (1.0 when
    /// the chain cannot fuse).
    pub fusion_speedup: f64,
}

/// Times the tuned workload with one structural feature removed.
fn retime_with(
    tuned: &barracuda::pipeline::TunedWorkload,
    workload: &Workload,
    arch: &GpuArch,
    mutate: impl Fn(&tcr::TcrProgram, &tcr::MappedKernel) -> tcr::MappedKernel,
) -> f64 {
    let mut total = 0.0;
    for (program, ks) in tuned.programs.iter().zip(&tuned.kernels) {
        let new: Vec<tcr::MappedKernel> = ks.iter().map(|k| mutate(program, k)).collect();
        total += gpusim::time_program(program, &new, arch, false).gpu_s;
    }
    let _ = workload;
    total
}

/// Rebuilds a kernel's config with overrides applied.
fn remap(
    program: &tcr::TcrProgram,
    k: &tcr::MappedKernel,
    default_order: bool,
    unroll_one: bool,
) -> tcr::MappedKernel {
    let op = &program.ops[k.op_index];
    let interior: Vec<tensor::IndexVar> = if default_order {
        program
            .loop_vars(op)
            .into_iter()
            .filter(|v| {
                *v != k.tx.0
                    && k.ty.as_ref().map(|(t, _)| t) != Some(v)
                    && k.bx.as_ref().map(|(b, _)| b) != Some(v)
                    && k.by.as_ref().map(|(b, _)| b) != Some(v)
            })
            .collect()
    } else {
        k.interior.iter().map(|l| l.var.clone()).collect()
    };
    let unroll = if unroll_one {
        1
    } else {
        // Clamp: a reordered interior may end in a different-extent loop.
        interior
            .last()
            .map(|v| k.unroll.min(program.dims[v]))
            .unwrap_or(1)
    };
    let cfg = OpConfig {
        tx: k.tx.0.clone(),
        ty: k
            .ty
            .as_ref()
            .map(|(v, _)| LoopSel::Var(v.clone()))
            .unwrap_or(LoopSel::One),
        bx: k
            .bx
            .as_ref()
            .map(|(v, _)| LoopSel::Var(v.clone()))
            .unwrap_or(LoopSel::One),
        by: k
            .by
            .as_ref()
            .map(|(v, _)| LoopSel::Var(v.clone()))
            .unwrap_or(LoopSel::One),
        interior,
        unroll,
        staged: k.staged.clone(),
    };
    // Derived from a kernel that already mapped, so this config is valid.
    map_kernel(program, k.op_index, &cfg, k.accumulate)
        .unwrap_or_else(|e| panic!("ablation remap failed: {e}"))
}

pub fn run_workload(workload: &Workload, arch: &GpuArch, params: TuneParams) -> AblationResult {
    let tuner = WorkloadTuner::build(workload);
    let tuned = tuner.autotune(arch, params).unwrap();
    let base = tuned.gpu_seconds;

    // No strength reduction: the worst (maximal-flop) version of every
    // statement vs the best version, each with its best-of-sample
    // configuration (same selection procedure on both sides so the ratio
    // isolates the factorization choice).
    let sweep_best = |variant: &barracuda::variant::Variant| -> f64 {
        let n = variant.space.len();
        let mut best = f64::INFINITY;
        for k in 0..64u128 {
            let cfg = variant.space.config(n * k / 64);
            let Ok(kernels) =
                tcr::mapping::map_program(&variant.program, &variant.space, &cfg, false)
            else {
                continue; // unmappable sample point: skip, don't abort the sweep
            };
            best = best.min(gpusim::time_program(&variant.program, &kernels, arch, false).gpu_s);
        }
        best
    };
    let mut worst_total = 0.0;
    let mut best_total = 0.0;
    for st in &tuner.statements {
        worst_total += sweep_best(st.variants.last().expect("at least one variant"));
        best_total += sweep_best(st.variants.first().expect("at least one variant"));
    }

    let no_scalar = retime_with(&tuned, workload, arch, |_, k| {
        let mut k = k.clone();
        k.scalar_replacement = false;
        k
    });
    let no_perm = retime_with(&tuned, workload, arch, |p, k| remap(p, k, true, false));
    let no_unroll = retime_with(&tuned, workload, arch, |p, k| remap(p, k, false, true));

    // Search strategy at equal budget.
    let pool = tuner.pool(params.pool_cap, params.seed);
    let rnd = random_search(
        &pool,
        |id| tuner.gpu_seconds(id, arch),
        tuned.search.n_evals,
        params.seed,
    );

    // Fusion alternative (paper SIII): one kernel instead of the chain.
    let fusion_speedup = barracuda::fusionopt::fuse_alternatives(&tuned, arch)
        .iter()
        .flatten()
        .map(|a| a.speedup())
        .fold(1.0f64, f64::max);

    AblationResult {
        workload: workload.name.clone(),
        arch: arch.name.to_string(),
        tuned_us: base * 1e6,
        no_strength_reduction: worst_total / best_total,
        no_scalar_replacement: no_scalar / base,
        no_permutation: no_perm / base,
        no_unroll: no_unroll / base,
        random_vs_surf: rnd.best_y / base,
        fusion_speedup,
    }
}

pub fn run(params: TuneParams) -> Vec<AblationResult> {
    let arch = gpusim::k20();
    vec![
        run_workload(&barracuda::kernels::eqn1(10), &arch, params),
        run_workload(
            &barracuda::kernels::lg3(
                barracuda::kernels::NEK_ORDER,
                barracuda::kernels::NEK_ELEMENTS,
            ),
            &arch,
            params,
        ),
        run_workload(&barracuda::kernels::nwchem_d1(1, 16), &arch, params),
    ]
}

pub fn render(rows: &[AblationResult]) -> Table {
    let mut t = Table::new(
        "Ablations: slowdown when a feature is removed (x tuned time)",
        &[
            "workload",
            "arch",
            "tuned (us)",
            "-strength-red.",
            "-scalar-repl.",
            "-permutation",
            "-unroll",
            "random search",
            "+fusion",
        ],
    );
    for r in rows {
        t.row(vec![
            r.workload.clone(),
            r.arch.clone(),
            fmt_f(r.tuned_us),
            format!("{:.2}x", r.no_strength_reduction),
            format!("{:.2}x", r.no_scalar_replacement),
            format!("{:.2}x", r.no_permutation),
            format!("{:.2}x", r.no_unroll),
            format!("{:.2}x", r.random_vs_surf),
            format!("{:.2}x", r.fusion_speedup),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::smoke_params;

    #[test]
    fn features_never_hurt_much_and_usually_help() {
        let w = barracuda::kernels::nwchem_d1(1, 8);
        let r = run_workload(&w, &gpusim::k20(), smoke_params());
        // Removing a searched feature can never make the kernel *faster*
        // than the tuned pick by more than noise.
        for v in [
            r.no_scalar_replacement,
            r.no_permutation,
            r.no_unroll,
            r.random_vs_surf,
        ] {
            assert!(v >= 0.95, "ablated variant unexpectedly faster: {v}");
        }
        assert!(r.no_strength_reduction >= 0.95);
    }

    #[test]
    fn strength_reduction_matters_for_eqn1() {
        let r = run_workload(
            &barracuda::kernels::eqn1(10),
            &gpusim::k20(),
            smoke_params(),
        );
        assert!(
            r.no_strength_reduction > 1.2,
            "worst tree should be clearly slower: {}",
            r.no_strength_reduction
        );
    }
}
