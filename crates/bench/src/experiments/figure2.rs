//! Figure 2: the pipeline's artifacts for Eqn. (1) — DSL input, TCR
//! listing, Orio/CHiLL annotation, and the optimized CUDA output.

use barracuda::pipeline::{TuneParams, WorkloadTuner};
use tcr::codegen::orio_annotations;

/// Everything Figure 2 shows, as strings.
#[derive(Clone, Debug)]
pub struct Figure2Artifacts {
    pub dsl: String,
    pub tcr_listing: String,
    pub annotation: String,
    pub cuda: String,
}

pub fn run(params: TuneParams) -> Figure2Artifacts {
    let w = barracuda::kernels::eqn1(barracuda::kernels::EQN1_N);
    let tuner = WorkloadTuner::build(&w);
    let arch = gpusim::gtx980();
    let tuned = tuner.autotune(&arch, params).unwrap();
    let (variant, _) = &tuned.choices[0];
    let st = &tuner.statements[0];
    Figure2Artifacts {
        dsl: w.statements[0].to_string(),
        tcr_listing: tuned.programs[0].listing(),
        annotation: orio_annotations(&st.variants[*variant].space),
        cuda: tuned.cuda_source(),
    }
}

pub fn render(a: &Figure2Artifacts) -> String {
    format!(
        "== Figure 2(a): OCTOPI input ==\n{}\n\n\
         == Figure 2(b): TCR input ==\n{}\n\
         == Figure 2(c): Orio/CHiLL search-space annotation ==\n{}\n\
         == Figure 2(d): optimized CUDA output ==\n{}",
        a.dsl, a.tcr_listing, a.annotation, a.cuda
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::smoke_params;

    #[test]
    fn artifacts_have_paper_shape() {
        let a = run(smoke_params());
        assert!(a.dsl.contains("Sum([l m n]"));
        assert!(a.tcr_listing.contains("operations:"));
        assert!(a.annotation.contains("PERMUTE"));
        assert!(a.cuda.contains("__global__ void ex"));
        let r = render(&a);
        assert!(r.contains("Figure 2(d)"));
    }
}
