//! Figure 3: speedup of Barracuda and optimized OpenACC over *naive*
//! OpenACC for the 27 NWChem kernels (d1_1..9, d2_1..9, s1_1..9) on
//! Tesla C2050 and Tesla K20.

use barracuda::kernels::nwchem_family;
use barracuda::openacc::{openacc_naive, openacc_optimized};
use barracuda::pipeline::{TuneParams, WorkloadTuner};
use barracuda::report::{fmt_f, Table};
use barracuda::TuningSession;
use gpusim::GpuArch;

/// One kernel's speedups on one architecture.
#[derive(Clone, Debug)]
pub struct Figure3Point {
    pub kernel: String,
    pub arch: String,
    pub barracuda_speedup: f64,
    pub acc_opt_speedup: f64,
    /// Absolute Barracuda GFlops (device-side), for the §VI-A ranges.
    pub barracuda_gflops: f64,
}

pub fn run_kernel(
    session: &TuningSession,
    w: &barracuda::workload::Workload,
    arch: &GpuArch,
    params: TuneParams,
) -> Figure3Point {
    let tuned = session
        .tune_on_arch(&WorkloadTuner::build(w), arch, params)
        .unwrap();
    let naive = openacc_naive(w).gpu_seconds(arch);
    let opt = openacc_optimized(w, &tuned).gpu_seconds(arch);
    Figure3Point {
        kernel: w.name.clone(),
        arch: arch.name.to_string(),
        barracuda_speedup: naive / tuned.gpu_seconds,
        acc_opt_speedup: naive / opt,
        barracuda_gflops: tuned.gflops_device(),
    }
}

/// All 27 kernels on an explicit architecture list (`--backend`). One
/// [`TuningSession`] spans the full sweep.
pub fn run_with_archs(trip: usize, archs: &[GpuArch], params: TuneParams) -> Vec<Figure3Point> {
    let session = TuningSession::new();
    let mut out = Vec::new();
    for family in ["d1", "d2", "s1"] {
        for w in nwchem_family(family, trip) {
            for arch in archs {
                out.push(run_kernel(&session, &w, arch, params));
            }
        }
    }
    out
}

/// All 27 kernels × the paper's 2 architectures.
pub fn run(trip: usize, params: TuneParams) -> Vec<Figure3Point> {
    run_with_archs(trip, &[gpusim::c2050(), gpusim::k20()], params)
}

pub fn render(points: &[Figure3Point]) -> Table {
    let mut t = Table::new(
        "Figure 3: speedup over naive OpenACC (NWChem kernels)",
        &["kernel", "arch", "Barracuda x", "ACC-opt x", "Barracuda GF"],
    );
    for p in points {
        t.row(vec![
            p.kernel.clone(),
            p.arch.clone(),
            format!("{:.1}x", p.barracuda_speedup),
            format!("{:.1}x", p.acc_opt_speedup),
            fmt_f(p.barracuda_gflops),
        ]);
    }
    t
}

/// GFlops range of a family (the paper quotes 7–20 for S1, 20–125 for D1,
/// 9–53 for D2).
pub fn family_range(points: &[Figure3Point], family: &str) -> (f64, f64) {
    let vals: Vec<f64> = points
        .iter()
        .filter(|p| p.kernel.starts_with(family))
        .map(|p| p.barracuda_gflops)
        .collect();
    let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = vals.iter().cloned().fold(0.0, f64::max);
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::smoke_params;

    #[test]
    fn smoke_one_kernel_both_archs() {
        let w = barracuda::kernels::nwchem_d1(1, 8);
        let session = TuningSession::new();
        for arch in [gpusim::c2050(), gpusim::k20()] {
            let p = run_kernel(&session, &w, &arch, smoke_params());
            assert!(
                p.barracuda_speedup > 1.0,
                "Barracuda must beat naive OpenACC: {}",
                p.barracuda_speedup
            );
            assert!(p.acc_opt_speedup > 1.0);
            assert!(
                p.barracuda_speedup >= p.acc_opt_speedup * 0.999,
                "tuned {} should be at least ACC-opt {}",
                p.barracuda_speedup,
                p.acc_opt_speedup
            );
        }
    }
}
