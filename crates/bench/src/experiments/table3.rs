//! Table III: Nekbone performance — OpenACC naive/optimized vs Barracuda
//! (GFlops on Tesla K20 and Tesla C2050).

use barracuda::nekbone::{model_gpu_perf_with, NekboneConfig, NekbonePerf};
use barracuda::pipeline::TuneParams;
use barracuda::report::{fmt_f, Table};
use barracuda::TuningSession;

/// One row: architecture + the three strategies' GFlops.
#[derive(Clone, Debug)]
pub struct Table3Row {
    pub arch: String,
    pub acc_naive: f64,
    pub acc_optimized: f64,
    pub barracuda: f64,
}

pub fn run_arch(
    session: &TuningSession,
    arch: &gpusim::GpuArch,
    cfg: NekboneConfig,
    params: TuneParams,
) -> Table3Row {
    let perf: NekbonePerf = model_gpu_perf_with(session, cfg, arch, params).unwrap();
    Table3Row {
        arch: arch.name.to_string(),
        acc_naive: perf.acc_naive_gflops,
        acc_optimized: perf.acc_opt_gflops,
        barracuda: perf.barracuda_gflops,
    }
}

/// Runs the table on an explicit architecture list (`--backend`). One
/// [`TuningSession`] spans both architectures, sharing the feature memo.
pub fn run_with_archs(archs: &[gpusim::GpuArch], params: TuneParams) -> Vec<Table3Row> {
    let cfg = NekboneConfig::default();
    let session = TuningSession::new();
    archs
        .iter()
        .map(|a| run_arch(&session, a, cfg, params))
        .collect()
}

/// The paper reports K20 and C2050 for this table.
pub fn run(params: TuneParams) -> Vec<Table3Row> {
    run_with_archs(&[gpusim::k20(), gpusim::c2050()], params)
}

pub fn render(rows: &[Table3Row]) -> Table {
    let mut t = Table::new(
        "Table III: Nekbone, OpenACC vs Barracuda (GFlops)",
        &["arch", "ACC naive", "ACC optimized", "Barracuda"],
    );
    for r in rows {
        t.row(vec![
            r.arch.clone(),
            fmt_f(r.acc_naive),
            fmt_f(r.acc_optimized),
            fmt_f(r.barracuda),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::smoke_params;

    #[test]
    fn smoke_ordering() {
        let cfg = NekboneConfig {
            order: 8,
            elements: 32,
            cg_iters: 1,
            tol: 1e-6,
        };
        let row = run_arch(&TuningSession::new(), &gpusim::k20(), cfg, smoke_params());
        // The paper's headline ordering: naive << optimized <= Barracuda-ish.
        assert!(row.acc_naive < row.acc_optimized);
        assert!(row.barracuda > row.acc_naive);
        assert!(row.barracuda > 0.0);
    }
}
