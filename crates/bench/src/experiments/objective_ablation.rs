//! Objective ablation: the same workloads tuned under the time-only,
//! balanced, memory-heavy and memory-capped objectives, reporting what each
//! trade costs in simulated time and buys in peak temporary footprint.
//!
//! The time-only row doubles as a regression guard: it is produced by an
//! explicit `Objective::preset("time")` and checked bit-for-bit against a
//! run with the default parameters, pinning the refactor's promise that the
//! default objective reproduces historical picks exactly. [`write_json`]
//! emits the rows as `BENCH_objective.json` (the `report` binary calls it).

use barracuda::pipeline::{TuneParams, WorkloadTuner};
use barracuda::report::{fmt_f, Table};
use barracuda::stages::lower;
use barracuda::workload::Workload;
use barracuda::{BudgetMode, Objective};

/// One (workload, objective) tuning outcome.
#[derive(Clone, Debug)]
pub struct ObjectiveAblationRow {
    pub workload: String,
    /// Human-readable objective, as `Objective::describe` prints it.
    pub objective: String,
    pub gpu_us: f64,
    pub peak_temp_bytes: u64,
    pub rw_bytes: u64,
    pub versions_over_budget: usize,
    pub pruned_by_memory: usize,
    pub n_evals: usize,
    /// Pick matches the time-only pick for the same workload. Expected
    /// `true` on the time row (it pins default-objective reproducibility)
    /// and informative on the others: `false` means the objective actually
    /// changed the winner.
    pub same_pick_as_time: bool,
}

/// The tightest budget every statement can satisfy: each statement must
/// keep at least one version, so the floor is the max over statements of
/// their per-statement minimum peak. Deterministic — derived from the
/// model, not from timing.
pub fn feasible_budget(tuner: &WorkloadTuner) -> u64 {
    lower::version_memory_table(&tuner.statements)
        .iter()
        .map(|versions| versions.iter().map(|&(peak, _)| peak).min().unwrap_or(0))
        .max()
        .unwrap_or(0)
}

fn run_workload(
    w: &Workload,
    arch: &gpusim::GpuArch,
    params: TuneParams,
) -> Vec<ObjectiveAblationRow> {
    let tuner = WorkloadTuner::build(w);
    // Default-parameter run: what `tune` does with no objective flags.
    let baseline = tuner.autotune(arch, params).unwrap();
    let budget = feasible_budget(&tuner);
    let capped = Objective {
        mem_budget: Some(budget),
        budget_mode: BudgetMode::Prune,
        ..Objective::time_only()
    };
    let objectives: Vec<Objective> = vec![
        Objective::preset("time").unwrap(),
        Objective::preset("balanced").unwrap(),
        Objective::preset("memory").unwrap(),
        capped,
    ];
    objectives
        .iter()
        .map(|&obj| {
            let mut p = params;
            p.objective = obj;
            let tuned = tuner
                .autotune(arch, p)
                .unwrap_or_else(|e| panic!("{} under {}: {e}", w.name, obj.describe()));
            let same_pick_as_time = tuned.id == baseline.id
                && tuned.gpu_seconds.to_bits() == baseline.gpu_seconds.to_bits();
            ObjectiveAblationRow {
                workload: w.name.clone(),
                objective: obj.describe(),
                gpu_us: tuned.gpu_seconds * 1e6,
                peak_temp_bytes: tuned.search.peak_temp_bytes,
                rw_bytes: tuned.search.rw_bytes,
                versions_over_budget: tuned.search.versions_over_budget,
                pruned_by_memory: tuned.search.pruned_by_memory,
                n_evals: tuned.search.n_evals,
                same_pick_as_time,
            }
        })
        .collect()
}

pub fn run(params: TuneParams) -> Vec<ObjectiveAblationRow> {
    let arch = gpusim::k20();
    let mut rows = run_workload(
        &barracuda::kernels::table2_benchmarks()
            .into_iter()
            .find(|w| w.name == "tce")
            .unwrap(),
        &arch,
        params,
    );
    rows.extend(run_workload(
        &barracuda::kernels::lg3t(
            barracuda::kernels::NEK_ORDER,
            barracuda::kernels::NEK_ELEMENTS,
        ),
        &arch,
        params,
    ));
    rows
}

pub fn render(rows: &[ObjectiveAblationRow]) -> Table {
    let mut t = Table::new(
        "Objective ablation (K20): time vs memory trade per objective",
        &[
            "workload",
            "objective",
            "us",
            "peak B",
            "rw B",
            "over-budget",
            "pruned",
            "evals",
            "same pick",
        ],
    );
    for r in rows {
        t.row(vec![
            r.workload.clone(),
            r.objective.clone(),
            fmt_f(r.gpu_us),
            r.peak_temp_bytes.to_string(),
            r.rw_bytes.to_string(),
            r.versions_over_budget.to_string(),
            r.pruned_by_memory.to_string(),
            r.n_evals.to_string(),
            r.same_pick_as_time.to_string(),
        ]);
    }
    t
}

/// Renders the rows as a JSON document (hand-rolled: the workspace carries
/// no serialization dependency).
pub fn to_json(rows: &[ObjectiveAblationRow]) -> String {
    let mut s = String::from("{\n  \"objective_ablation\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"workload\": \"{}\", \"objective\": \"{}\", \"gpu_us\": {:.4}, \
             \"peak_temp_bytes\": {}, \"rw_bytes\": {}, \"versions_over_budget\": {}, \
             \"pruned_by_memory\": {}, \"n_evals\": {}, \"same_pick_as_time\": {}}}{}\n",
            r.workload,
            r.objective,
            r.gpu_us,
            r.peak_temp_bytes,
            r.rw_bytes,
            r.versions_over_budget,
            r.pruned_by_memory,
            r.n_evals,
            r.same_pick_as_time,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Writes [`to_json`] to `path`.
pub fn write_json(rows: &[ObjectiveAblationRow], path: &str) -> std::io::Result<()> {
    std::fs::write(path, to_json(rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::smoke_params;

    #[test]
    fn time_row_reproduces_the_default_run_exactly() {
        let rows = run(smoke_params());
        for r in rows.iter().filter(|r| r.objective == "time-only") {
            assert!(
                r.same_pick_as_time,
                "{}: explicit time objective diverged from the default run",
                r.workload
            );
        }
    }

    #[test]
    fn capped_row_prunes_and_stays_within_its_budget() {
        let w = barracuda::kernels::table2_benchmarks()
            .into_iter()
            .find(|w| w.name == "tce")
            .unwrap();
        let rows = run_workload(&w, &gpusim::k20(), smoke_params());
        let capped = rows
            .iter()
            .find(|r| r.objective.contains("budget"))
            .unwrap();
        let tuner = WorkloadTuner::build(&w);
        let budget = feasible_budget(&tuner);
        assert!(capped.peak_temp_bytes <= budget);
        // The tightest feasible budget must exclude at least one version on
        // a workload with more than one memory class, and those exclusions
        // are what the pruned counter reports.
        assert!(capped.versions_over_budget > 0, "{capped:?}");
        assert!(capped.pruned_by_memory > 0, "{capped:?}");
        // Every peak is never above the unconstrained memory-heavy pick's
        // worst case: the budget row bounds the footprint by construction.
        let time = rows.iter().find(|r| r.objective == "time-only").unwrap();
        assert!(capped.peak_temp_bytes <= time.peak_temp_bytes.max(budget));
    }

    #[test]
    fn json_is_well_formed_enough() {
        let w = barracuda::kernels::table2_benchmarks()
            .into_iter()
            .find(|w| w.name == "tce")
            .unwrap();
        let rows = run_workload(&w, &gpusim::k20(), smoke_params());
        let j = to_json(&rows);
        assert!(j.starts_with('{') && j.trim_end().ends_with('}'));
        assert_eq!(j.matches("\"workload\"").count(), rows.len());
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
