//! Table II: individual tensor-contraction results.
//!
//! For each of Eqn.(1), Lg3, Lg3t and TCE ex: speedup of the GTX 980 result
//! over sequential Haswell, plus (GFlops, SURF search time) on GTX 980,
//! K20 and C2050. GFlops include PCIe transfers, as the paper's do.

use barracuda::cpu::workload_cpu_time;
use barracuda::pipeline::{TuneParams, WorkloadTuner};
use barracuda::report::{fmt_f, fmt_secs, Table};
use barracuda::workload::Workload;
use barracuda::TuningSession;
use cpusim::model::CpuModel;
use gpusim::GpuArch;

/// One benchmark's results across the three architectures.
#[derive(Clone, Debug)]
pub struct Table2Row {
    pub name: String,
    /// GTX 980 speedup over sequential Haswell (paper's first column).
    pub speedup: f64,
    /// (gflops, search_seconds, n_evals) per architecture.
    pub per_arch: Vec<(String, f64, f64, usize)>,
}

/// Runs one benchmark on every architecture.
///
/// GFlops follow the paper's measurement protocol: times are averaged over
/// `reps` repetitions with device-resident data, so PCIe transfers amortize
/// across the repetitions. The speedup baseline is *naive* sequential C
/// (the untuned loop nests the framework starts from).
pub fn run_benchmark(
    session: &TuningSession,
    workload: &Workload,
    archs: &[GpuArch],
    params: TuneParams,
) -> Table2Row {
    let tuner = WorkloadTuner::build(workload);
    let cpu = workload_cpu_time(workload, &CpuModel::haswell_naive(), 1);
    let mut per_arch = Vec::new();
    let mut speedup = 0.0;
    for arch in archs {
        let tuned = session.tune_on_arch(&tuner, arch, params).unwrap();
        let search = tuned.search.search_seconds(arch, params.reps);
        if arch.name == "GTX 980" {
            speedup = cpu.time_s / tuned.amortized_seconds(params.reps);
        }
        per_arch.push((
            arch.name.to_string(),
            tuned.gflops_amortized(params.reps),
            search,
            tuned.search.n_evals,
        ));
    }
    Table2Row {
        name: workload.name.clone(),
        speedup,
        per_arch,
    }
}

/// Runs the full table on an explicit architecture list (`--backend`).
/// One [`TuningSession`] spans the whole table, so repeated ops share the
/// session's feature memo across benchmarks and architectures.
pub fn run_with_archs(archs: &[GpuArch], params: TuneParams) -> Vec<Table2Row> {
    let session = TuningSession::new();
    barracuda::kernels::table2_benchmarks()
        .iter()
        .map(|w| run_benchmark(&session, w, archs, params))
        .collect()
}

/// Runs the full table on the paper's three architectures.
pub fn run(params: TuneParams) -> Vec<Table2Row> {
    run_with_archs(&gpusim::arch::all_architectures(), params)
}

/// Renders the table in the paper's layout. The GF/search column pairs
/// follow whatever architectures the rows were run on (the paper's three
/// by default, fewer under `--backend`).
pub fn render(rows: &[Table2Row]) -> Table {
    // "GTX 980" -> "980", "Tesla K20" -> "K20".
    let short = |name: &str| {
        name.trim_start_matches("GTX ")
            .trim_start_matches("Tesla ")
            .to_string()
    };
    let mut headers = vec!["bench".to_string(), "speedup(980 vs 1-core)".to_string()];
    if let Some(first) = rows.first() {
        for (name, _, _, _) in &first.per_arch {
            headers.push(format!("{} GF", short(name)));
            headers.push(format!("{} search", short(name)));
        }
    }
    let mut t = Table::new(
        "Table II: individual tensor contractions (GFlops include transfers)",
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for r in rows {
        let mut cells = vec![r.name.clone(), format!("{:.2}x", r.speedup)];
        for (_, gf, search, _) in &r.per_arch {
            cells.push(fmt_f(*gf));
            cells.push(fmt_secs(*search));
        }
        t.row(cells);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::smoke_params;
    use tensor::index::uniform_dims;

    #[test]
    fn smoke_single_benchmark() {
        let w = Workload::parse(
            "mm",
            "C[i k] = Sum([j], A[i j] * B[j k])",
            &uniform_dims(&["i", "j", "k"], 12),
        )
        .unwrap();
        let archs = gpusim::arch::all_architectures();
        let row = run_benchmark(&TuningSession::new(), &w, &archs, smoke_params());
        assert_eq!(row.per_arch.len(), 3);
        assert!(row.speedup > 0.0);
        for (_, gf, search, evals) in &row.per_arch {
            assert!(*gf > 0.0);
            assert!(*search > 0.0);
            assert!(*evals > 0);
        }
        let t = render(&[row]);
        assert!(t.to_string().contains("mm"));
    }
}
