//! Parallel-search benchmark: serial vs rayon-parallel SURF evaluation on
//! the Table II workloads, with memo-cache statistics.
//!
//! This measures the evaluation engine itself, not the simulated kernels:
//! wall-clock per search, evaluations per second, threads used, cache hit
//! rate, and a bit-identity check between the serial and parallel runs.
//! [`write_json`] emits the rows as `BENCH_search.json` for machine
//! consumption (the `report` binary calls it).

use barracuda::pipeline::{TuneParams, WorkloadTuner};
use barracuda::report::{fmt_f, Table};

/// One workload's serial-vs-parallel search measurements.
#[derive(Clone, Debug)]
pub struct SearchBenchRow {
    pub workload: String,
    pub space_size: u128,
    pub n_evals: usize,
    pub serial_wall_s: f64,
    pub parallel_wall_s: f64,
    /// Serial wall-clock over parallel wall-clock (>1 means parallel wins).
    pub speedup: f64,
    /// Threads the parallel run used (`RAYON_NUM_THREADS` or all cores).
    pub threads: usize,
    pub evals_per_sec: f64,
    pub cache_hits: usize,
    pub cache_misses: usize,
    pub cache_hit_rate: f64,
    /// Parallel run reproduced the serial run bit for bit.
    pub identical: bool,
}

pub fn run(params: TuneParams) -> Vec<SearchBenchRow> {
    let arch = gpusim::k20();
    barracuda::kernels::table2_benchmarks()
        .iter()
        .map(|w| {
            let tuner = WorkloadTuner::build(w);
            let mut serial_params = params;
            serial_params.threads = 1;
            let serial = tuner.autotune(&arch, serial_params).unwrap();
            let mut parallel_params = params;
            parallel_params.threads = 0;
            let parallel = tuner.autotune(&arch, parallel_params).unwrap();
            let bits = |v: &[f64]| v.iter().map(|t| t.to_bits()).collect::<Vec<_>>();
            let identical = serial.id == parallel.id
                && bits(&serial.search.evaluated_times) == bits(&parallel.search.evaluated_times);
            SearchBenchRow {
                workload: w.name.clone(),
                space_size: tuner.total_space(),
                n_evals: parallel.search.n_evals,
                serial_wall_s: serial.search.wall_s,
                parallel_wall_s: parallel.search.wall_s,
                speedup: serial.search.wall_s / parallel.search.wall_s.max(1e-12),
                threads: parallel.search.threads,
                evals_per_sec: parallel.search.n_evals as f64 / parallel.search.wall_s.max(1e-12),
                cache_hits: parallel.search.cache_hits,
                cache_misses: parallel.search.cache_misses,
                cache_hit_rate: parallel.search.cache_hit_rate(),
                identical,
            }
        })
        .collect()
}

pub fn render(rows: &[SearchBenchRow]) -> Table {
    let mut t = Table::new(
        "Search engine: serial vs parallel wall-clock (identical results required)",
        &[
            "workload",
            "evals",
            "serial s",
            "parallel s",
            "speedup",
            "threads",
            "evals/s",
            "hit rate",
            "identical",
        ],
    );
    for r in rows {
        t.row(vec![
            r.workload.clone(),
            r.n_evals.to_string(),
            fmt_f(r.serial_wall_s),
            fmt_f(r.parallel_wall_s),
            fmt_f(r.speedup),
            r.threads.to_string(),
            fmt_f(r.evals_per_sec),
            fmt_f(r.cache_hit_rate),
            r.identical.to_string(),
        ]);
    }
    t
}

/// Renders the rows as a JSON document (hand-rolled: the workspace carries
/// no serialization dependency).
pub fn to_json(rows: &[SearchBenchRow]) -> String {
    let mut s = String::from("{\n  \"search_bench\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"workload\": \"{}\", \"space_size\": {}, \"n_evals\": {}, \
             \"serial_wall_s\": {:.6}, \"parallel_wall_s\": {:.6}, \"speedup\": {:.3}, \
             \"threads\": {}, \"evals_per_sec\": {:.1}, \"cache_hits\": {}, \
             \"cache_misses\": {}, \"cache_hit_rate\": {:.4}, \"identical\": {}}}{}\n",
            r.workload,
            r.space_size,
            r.n_evals,
            r.serial_wall_s,
            r.parallel_wall_s,
            r.speedup,
            r.threads,
            r.evals_per_sec,
            r.cache_hits,
            r.cache_misses,
            r.cache_hit_rate,
            r.identical,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Writes [`to_json`] to `path`.
pub fn write_json(rows: &[SearchBenchRow], path: &str) -> std::io::Result<()> {
    std::fs::write(path, to_json(rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::smoke_params;

    #[test]
    fn smoke_parallel_matches_serial_everywhere() {
        let rows = run(smoke_params());
        assert!(!rows.is_empty());
        for r in &rows {
            assert!(
                r.identical,
                "{} diverged between serial/parallel",
                r.workload
            );
            assert!(r.n_evals > 0);
            assert!(r.threads >= 1);
        }
    }

    #[test]
    fn json_is_well_formed_enough() {
        let rows = run(smoke_params());
        let j = to_json(&rows);
        assert!(j.starts_with('{') && j.trim_end().ends_with('}'));
        assert_eq!(j.matches("\"workload\"").count(), rows.len());
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "balanced braces"
        );
    }
}
