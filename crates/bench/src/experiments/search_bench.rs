//! Parallel-search benchmark: serial vs rayon-parallel SURF evaluation on
//! the Table II workloads, with memo-cache statistics.
//!
//! This measures the evaluation engine itself, not the simulated kernels:
//! wall-clock per search, evaluations per second, threads used, cache hit
//! rate, and a bit-identity check between the serial and parallel runs.
//! [`write_json`] emits the rows as `BENCH_search.json` for machine
//! consumption (the `report` binary calls it).

use barracuda::pipeline::{TuneParams, WorkloadTuner};
use barracuda::report::{fmt_f, Table};

/// One workload's serial-vs-parallel search measurements.
#[derive(Clone, Debug)]
pub struct SearchBenchRow {
    pub workload: String,
    pub space_size: u128,
    pub n_evals: usize,
    pub serial_wall_s: f64,
    pub parallel_wall_s: f64,
    /// Serial wall-clock over parallel wall-clock (>1 means parallel wins).
    pub speedup: f64,
    /// Actual size of the rayon pool the parallel run fanned out over
    /// (workers + calling thread). A single-CPU host legitimately reports
    /// 1 — the backend still goes through the parallel code path.
    pub threads: usize,
    pub evals_per_sec: f64,
    pub cache_hits: usize,
    pub cache_misses: usize,
    pub cache_hit_rate: f64,
    /// Per-op memo layer traffic: lookups keyed by `(statement, version,
    /// op, choice)` under the whole-configuration cache.
    pub per_op_hits: usize,
    pub per_op_misses: usize,
    pub per_op_hit_rate: f64,
    /// Whole-configuration time-cache hit rate (the rate the per-op layer
    /// is meant to beat).
    pub time_hit_rate: f64,
    /// Hot-path stage split of the parallel run, nanoseconds.
    pub decode_ns: u64,
    pub map_ns: u64,
    pub sim_ns: u64,
    pub predict_ns: u64,
    /// Parallel run reproduced the serial run bit for bit.
    pub identical: bool,
}

pub fn run(params: TuneParams) -> Vec<SearchBenchRow> {
    let arch = gpusim::k20();
    barracuda::kernels::table2_benchmarks()
        .iter()
        .map(|w| {
            let tuner = WorkloadTuner::build(w);
            let mut serial_params = params;
            serial_params.threads = 1;
            let serial = tuner.autotune(&arch, serial_params).unwrap();
            let mut parallel_params = params;
            parallel_params.threads = 0;
            let parallel = tuner.autotune(&arch, parallel_params).unwrap();
            let bits = |v: &[f64]| v.iter().map(|t| t.to_bits()).collect::<Vec<_>>();
            let identical = serial.id == parallel.id
                && bits(&serial.search.evaluated_times) == bits(&parallel.search.evaluated_times);
            SearchBenchRow {
                workload: w.name.clone(),
                space_size: tuner.total_space(),
                n_evals: parallel.search.n_evals,
                serial_wall_s: serial.search.wall_s,
                parallel_wall_s: parallel.search.wall_s,
                speedup: serial.search.wall_s / parallel.search.wall_s.max(1e-12),
                // The backend's own count can be stale when the pool is
                // lazily initialized; ask rayon for the real pool size.
                threads: parallel.search.threads.max(rayon::current_num_threads()),
                evals_per_sec: parallel.search.n_evals as f64 / parallel.search.wall_s.max(1e-12),
                cache_hits: parallel.search.cache_hits,
                cache_misses: parallel.search.cache_misses,
                cache_hit_rate: parallel.search.cache_hit_rate(),
                per_op_hits: parallel.search.per_op_hits,
                per_op_misses: parallel.search.per_op_misses,
                per_op_hit_rate: parallel.search.per_op_hit_rate(),
                time_hit_rate: parallel.search.time_hit_rate(),
                decode_ns: parallel.search.hot.decode_ns,
                map_ns: parallel.search.hot.map_ns,
                sim_ns: parallel.search.hot.sim_ns,
                predict_ns: parallel.search.hot.predict_ns,
                identical,
            }
        })
        .collect()
}

pub fn render(rows: &[SearchBenchRow]) -> Table {
    let mut t = Table::new(
        "Search engine: serial vs parallel wall-clock (identical results required)",
        &[
            "workload",
            "evals",
            "serial s",
            "parallel s",
            "speedup",
            "threads",
            "evals/s",
            "hit rate",
            "per-op rate",
            "identical",
        ],
    );
    for r in rows {
        t.row(vec![
            r.workload.clone(),
            r.n_evals.to_string(),
            fmt_f(r.serial_wall_s),
            fmt_f(r.parallel_wall_s),
            fmt_f(r.speedup),
            r.threads.to_string(),
            fmt_f(r.evals_per_sec),
            fmt_f(r.cache_hit_rate),
            fmt_f(r.per_op_hit_rate),
            r.identical.to_string(),
        ]);
    }
    t
}

/// Hot-path stage split of the same rows: where evaluation wall-time goes.
pub fn render_hot(rows: &[SearchBenchRow]) -> Table {
    let mut t = Table::new(
        "Evaluation hot path: per-stage wall-time (ms) and memo traffic",
        &[
            "workload",
            "decode ms",
            "map ms",
            "sim ms",
            "predict ms",
            "per-op hits",
            "per-op misses",
            "per-op rate",
            "time rate",
        ],
    );
    let ms = |ns: u64| fmt_f(ns as f64 / 1e6);
    for r in rows {
        t.row(vec![
            r.workload.clone(),
            ms(r.decode_ns),
            ms(r.map_ns),
            ms(r.sim_ns),
            ms(r.predict_ns),
            r.per_op_hits.to_string(),
            r.per_op_misses.to_string(),
            fmt_f(r.per_op_hit_rate),
            fmt_f(r.time_hit_rate),
        ]);
    }
    t
}

/// Renders the rows as a JSON document (hand-rolled: the workspace carries
/// no serialization dependency).
pub fn to_json(rows: &[SearchBenchRow]) -> String {
    let mut s = String::from("{\n  \"search_bench\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"workload\": \"{}\", \"space_size\": {}, \"n_evals\": {}, \
             \"serial_wall_s\": {:.6}, \"parallel_wall_s\": {:.6}, \"speedup\": {:.3}, \
             \"threads\": {}, \"evals_per_sec\": {:.1}, \"cache_hits\": {}, \
             \"cache_misses\": {}, \"cache_hit_rate\": {:.4}, \"per_op_hits\": {}, \
             \"per_op_misses\": {}, \"per_op_hit_rate\": {:.4}, \"time_hit_rate\": {:.4}, \
             \"decode_ns\": {}, \"map_ns\": {}, \"sim_ns\": {}, \"predict_ns\": {}, \
             \"identical\": {}}}{}\n",
            r.workload,
            r.space_size,
            r.n_evals,
            r.serial_wall_s,
            r.parallel_wall_s,
            r.speedup,
            r.threads,
            r.evals_per_sec,
            r.cache_hits,
            r.cache_misses,
            r.cache_hit_rate,
            r.per_op_hits,
            r.per_op_misses,
            r.per_op_hit_rate,
            r.time_hit_rate,
            r.decode_ns,
            r.map_ns,
            r.sim_ns,
            r.predict_ns,
            r.identical,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Writes [`to_json`] to `path`.
pub fn write_json(rows: &[SearchBenchRow], path: &str) -> std::io::Result<()> {
    std::fs::write(path, to_json(rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::smoke_params;

    #[test]
    fn smoke_parallel_matches_serial_everywhere() {
        let rows = run(smoke_params());
        assert!(!rows.is_empty());
        for r in &rows {
            assert!(
                r.identical,
                "{} diverged between serial/parallel",
                r.workload
            );
            assert!(r.n_evals > 0);
            assert!(r.threads >= 1);
        }
    }

    #[test]
    fn per_op_layer_sees_traffic_on_every_workload() {
        let rows = run(smoke_params());
        for r in &rows {
            assert!(
                r.per_op_hits + r.per_op_misses > 0,
                "{}: per-op memo layer saw no traffic",
                r.workload
            );
            // Fresh-cache runs never revisit a whole configuration, so the
            // per-op layer can only do better than the time cache.
            assert!(
                r.per_op_hit_rate >= r.time_hit_rate,
                "{}: per-op rate {} fell below whole-config time rate {}",
                r.workload,
                r.per_op_hit_rate,
                r.time_hit_rate
            );
        }
    }

    #[test]
    fn per_op_layer_outhits_whole_config_cache_at_real_budgets() {
        // Per-op reuse comes from distinct configurations sharing per-op
        // digits, which needs a non-trivial eval budget to materialize;
        // the search is seeded, so these rates are exact and reproducible.
        let w = barracuda::kernels::table2_benchmarks()
            .into_iter()
            .find(|w| w.name == "tce")
            .unwrap();
        let tuner = WorkloadTuner::build(&w);
        let mut params = TuneParams::quick();
        params.surf.max_evals = 150;
        params.pool_cap = 5000;
        let tuned = tuner.autotune(&gpusim::k20(), params).unwrap();
        assert!(
            tuned.search.per_op_hit_rate() > tuned.search.cache_hit_rate(),
            "tce: per-op rate {} must beat whole-config rate {}",
            tuned.search.per_op_hit_rate(),
            tuned.search.cache_hit_rate()
        );
    }

    #[test]
    fn json_is_well_formed_enough() {
        let rows = run(smoke_params());
        let j = to_json(&rows);
        assert!(j.starts_with('{') && j.trim_end().ends_with('}'));
        assert_eq!(j.matches("\"workload\"").count(), rows.len());
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "balanced braces"
        );
    }
}
